"""Reactor client/server architecture (paper Section 5) + live traffic.

Computing the static PDG and pointer analysis can take a long time, so
the paper runs the reactor as a server that precomputes the PDG as soon
as the target code is available and parses the PM trace incrementally; a
thin RPC client invokes it at failure time and only pays the (fast)
slicing cost.  :class:`ReactorServer` / :class:`ReactorClient` model
that split in-process.

The rest of the module is the **live-traffic recovery server**: an
asyncio front-end that keeps serving a sustained YCSB stream against a
PM-backed miniature while a hard fault is detected in-line, quarantined,
and mitigated *cooperatively* — the number that matters at production
scale is the p50/p99 a client sees during a mitigation, not mitigation
wall-time.

Serving contract during a mitigation (the soundness core):

* The mitigation owns the pool.  Probe epochs capture pre-images of
  every durable write and undo them wholesale, so client traffic must
  never touch the pool mid-mitigation: reads are answered from the
  server's reconciled view (the oracle plus a read-your-writes overlay),
  writes are deferred and re-applied in arrival order once recovery
  lands, and requests against quarantined keys get a typed
  :class:`Quarantined` response with a retry-after, burning an explicit
  error budget.
* Quarantine is *scoped*: the reversion plan's candidate addresses are
  joined back through the checkpoint log (update spans; whole blocks
  only when small) to a :class:`RangeLockTable`, and the
  :class:`KeyTouchIndex` maps the locked words to the client keys whose
  operations ever wrote them.  Everything outside keeps flowing.
* Digest determinism: every pool-visible operation is keyed to a request
  *index*, never to wall-clock time — pre-detection traffic is
  sequential, mid-mitigation traffic never touches the pool, deferred
  writes drain in index order, and the view reconcile runs at the fixed
  ``release_index`` boundary.  A quarantine-scoped run, a stop-the-world
  run and a fully quiesced run therefore produce byte-identical pool
  digests; only the latency distributions differ.
"""

from __future__ import annotations

import asyncio
import threading
import time
from bisect import bisect_left, bisect_right
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis import AnalysisResult, analyze_module
from repro.checkpoint.log import CheckpointLog
from repro.detector.monitor import RunOutcome
from repro.detector.signature import FailureSignature
from repro.errors import Trap
from repro.instrument.guids import GuidMap
from repro.instrument.tracer import PMTrace
from repro.lang.ir import Module
from repro.reactor.plan import (
    PolicyFn,
    ReversionPlan,
    compute_plan,
    distance_policy,
)
from repro.workloads.generators import Op, OpKind
from repro.workloads.ycsb import YCSBWorkload


class ReactorServer:
    """Holds the precomputed PDG; answers plan requests quickly.

    Because the server keeps one :class:`AnalysisResult` alive across
    requests, the slice/distance memoization on its PDG (see
    :mod:`repro.analysis.slicing`) makes repeated plan requests for the
    same fault iid — the harness's detector/reactor rounds re-plan up to
    4x per mode — skip the graph walk entirely and pay only the
    trace x log join.
    """

    def __init__(self, module: Module, analysis: Optional[AnalysisResult] = None):
        start = time.perf_counter()
        self.analysis = analysis if analysis is not None else analyze_module(module)
        #: background precomputation cost (excluded from mitigation time)
        self.analysis_seconds = time.perf_counter() - start
        self.requests_served = 0

    def compute_plan(
        self,
        guid_map: GuidMap,
        trace: PMTrace,
        log: CheckpointLog,
        fault_iid: int,
        policy: Optional[PolicyFn] = None,
        yield_fn=None,
    ) -> ReversionPlan:
        """Serve one plan request (slice + trace/log join)."""
        self.requests_served += 1
        trace.flush()  # incremental trace parsing catches up at request time
        return compute_plan(
            self.analysis, guid_map, trace, log, fault_iid, policy=policy,
            yield_fn=yield_fn,
        )


class ReactorClient:
    """Thin stand-in for the paper's RPC client."""

    def __init__(self, server: ReactorServer):
        self.server = server

    def request_mitigation_plan(
        self,
        guid_map: GuidMap,
        trace: PMTrace,
        log: CheckpointLog,
        fault_iid: int,
        policy: Optional[PolicyFn] = None,
    ) -> ReversionPlan:
        return self.server.compute_plan(guid_map, trace, log, fault_iid, policy)


# ======================================================================
# quarantine machinery
# ======================================================================
class RangeLockTable:
    """Sorted, disjoint half-open word ranges ``[lo, hi)`` under lock."""

    def __init__(self) -> None:
        self._ranges: List[Tuple[int, int]] = []

    def lock(self, lo: int, hi: int) -> None:
        """Lock ``[lo, hi)``, coalescing with overlapping/adjacent locks."""
        if hi <= lo:
            return
        rs = self._ranges
        i = bisect_right(rs, (lo,))
        if i > 0 and rs[i - 1][1] >= lo:
            i -= 1
        j = i
        while j < len(rs) and rs[j][0] <= hi:
            lo = min(lo, rs[j][0])
            hi = max(hi, rs[j][1])
            j += 1
        rs[i:j] = [(lo, hi)]

    def covers(self, addr: int) -> bool:
        rs = self._ranges
        k = bisect_right(rs, (addr,))
        if k < len(rs) and rs[k][0] <= addr < rs[k][1]:
            return True
        return k > 0 and rs[k - 1][0] <= addr < rs[k - 1][1]

    def overlaps(self, lo: int, hi: int) -> bool:
        rs = self._ranges
        k = bisect_right(rs, (lo,))
        if k > 0 and rs[k - 1][1] > lo:
            return True
        return k < len(rs) and rs[k][0] < hi

    def ranges(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self._ranges)

    def clear(self) -> None:
        self._ranges = []

    @property
    def locked_words(self) -> int:
        return sum(hi - lo for lo, hi in self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)


class KeyTouchIndex:
    """address -> client keys whose operations persisted to it.

    Fed from the PM trace on the request path (one mark/flush diff per
    applied op — the same pattern ``SystemAdapter.recover`` uses for the
    recovery-access window), queried once per mitigation to join locked
    word ranges back to the keys that must be quarantined.
    """

    def __init__(self) -> None:
        self._addr_keys: Dict[int, Set[int]] = {}
        self._sorted: List[int] = []

    def note(self, key: int, addrs: Iterable[int]) -> None:
        ak = self._addr_keys
        for addr in addrs:
            s = ak.get(addr)
            if s is None:
                ak[addr] = {key}
            else:
                s.add(key)

    def keys_in_ranges(
        self,
        ranges: Iterable[Tuple[int, int]],
        structural_threshold: Optional[int] = None,
    ) -> Set[int]:
        """Keys that persisted into any locked range.

        ``structural_threshold`` classifies words written by more than
        that many distinct keys as *structural* (allocator counters,
        hash-directory heads): they belong to the data structure, not to
        any key, and attributing them would degenerate the quarantine to
        the whole keyspace.  Structural words stay range-locked; they
        just don't nominate keys.
        """
        if len(self._sorted) != len(self._addr_keys):
            self._sorted = sorted(self._addr_keys)
        sa = self._sorted
        ak = self._addr_keys
        out: Set[int] = set()
        for lo, hi in ranges:
            for i in range(bisect_left(sa, lo), bisect_left(sa, hi)):
                keys = ak[sa[i]]
                if structural_threshold is not None \
                        and len(keys) > structural_threshold:
                    continue
                out |= keys
        return out

    @property
    def tracked_addresses(self) -> int:
        return len(self._addr_keys)


@dataclass(slots=True)
class Quarantined:
    """Typed rejection for a request against a quarantined key."""

    key: int
    retry_after_s: float


@dataclass(slots=True)
class ServeRecord:
    """One client request as the server answered it."""

    index: int
    kind: str
    key: int
    #: ok | deferred | quarantined | fault | unavailable
    status: str
    value: int = -1
    arrival_s: float = 0.0
    latency_s: float = 0.0
    during_mitigation: bool = False
    retry_after_s: float = 0.0


class _CooperativeGate:
    """Turnstile between the event loop and the mitigation worker thread.

    Strict alternation: the worker calls :meth:`checkpoint` at every
    yield point (each re-execution, plus the macro-phase boundaries) and
    blocks; the loop wakes, drains due arrivals, and :meth:`resume`\\ s
    it.  Exactly one side is ever active, so no shared state needs finer
    locking.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self.wake = asyncio.Event()
        self._grant = threading.Event()
        self.checkpoints = 0

    def checkpoint(self) -> None:
        """Worker side: hand control to the loop, wait to be resumed."""
        self.checkpoints += 1
        self._grant.clear()
        self._loop.call_soon_threadsafe(self.wake.set)
        self._grant.wait()

    def resume(self) -> None:
        """Loop side: let the worker run to its next checkpoint."""
        self.wake.clear()
        self._grant.set()


class WorkerGate:
    """Thread-only turnstile between a serving thread and a mitigation
    worker — the synchronous analogue of :class:`_CooperativeGate` for
    callers without an event loop (the shard supervisor runs a sick
    node's mitigation in a plain thread while the cluster keeps serving
    healthy shards from the caller's thread).

    Strict alternation again: the worker parks at every
    :meth:`checkpoint`; the serving side observes the park with
    :meth:`wait_parked`, does its serving turn, and :meth:`resume`\\ s.
    Exactly one side is ever active, so no shared state needs finer
    locking.  :meth:`close` retires the gate — late checkpoints become
    no-ops, so the worker can finish after the serving side stops
    listening.
    """

    def __init__(self) -> None:
        self._parked = threading.Event()
        self._grant = threading.Event()
        self.checkpoints = 0
        self.closed = False

    def checkpoint(self) -> None:
        """Worker side: park until the serving side resumes us."""
        if self.closed:
            return
        self.checkpoints += 1
        self._grant.clear()
        self._parked.set()
        self._grant.wait()

    def wait_parked(self, timeout: Optional[float] = None) -> bool:
        """Serving side: True once the worker is parked at a checkpoint."""
        return self._parked.wait(timeout)

    def resume(self) -> None:
        """Serving side: let the worker run to its next checkpoint."""
        self._parked.clear()
        self._grant.set()

    def close(self) -> None:
        """Retire the gate, releasing a parked worker for good."""
        self.closed = True
        self._parked.clear()
        self._grant.set()


def _percentile(sorted_lat: List[float], q: float) -> float:
    if not sorted_lat:
        return 0.0
    i = min(len(sorted_lat) - 1, max(0, int(q * len(sorted_lat) + 0.999999) - 1))
    return sorted_lat[i]


def _latency_stats(latencies: List[float]) -> Dict[str, float]:
    lat = sorted(latencies)
    return {
        "count": len(lat),
        "p50": _percentile(lat, 0.50),
        "p99": _percentile(lat, 0.99),
        "p999": _percentile(lat, 0.999),
        "max": lat[-1] if lat else 0.0,
        "mean": (sum(lat) / len(lat)) if lat else 0.0,
    }


# ======================================================================
# the live-traffic recovery server
# ======================================================================
class LiveRecoveryServer:
    """Serve a YCSB stream against a PM miniature, mitigating under fire.

    ``mode`` picks the serving policy around a mitigation window:

    * ``"quarantine"``      — scoped: non-quarantined traffic keeps
      flowing between cooperative mitigation chunks,
    * ``"stop-the-world"``  — every window arrival stalls until the
      mitigation completes, then drains with identical classification,
    * ``"quiesced"``        — no arrivals are even consumed during the
      window; the arrival schedule shifts by the window's wall time
      (the digest-equivalence oracle for the crash tests).
    """

    MODES = ("quarantine", "stop-the-world", "quiesced")

    def __init__(
        self,
        fid: str,
        solution: str = "arthas-bi",
        seed: int = 0,
        mode: str = "quarantine",
        keyspace: int = 512,
        read_ratio: float = 0.5,
        theta: float = 0.9,
        detect_every: int = 16,
        error_budget: int = 64,
        release_after: int = 256,
        trigger_at: Optional[int] = None,
        max_mitigations: int = 3,
        inject_plan=None,
        small_block_words: int = 32,
        structural_key_threshold: Optional[int] = None,
        quarantine_horizon: int = 16,
        yield_every_steps: int = 4_000,
        yield_min_interval_s: float = 0.004,
        vm_engine: str = "fused",
    ) -> None:
        # imported here, not at module scope: harness.experiment imports
        # ReactorServer from this module
        from repro.baselines.pmcriu import PmCRIU
        from repro.detector.monitor import Detector, LeakMonitor
        from repro.faults.registry import scenario_by_id
        from repro.harness.experiment import SNAPSHOT_INTERVAL, ExperimentContext
        from repro.harness.simclock import OP_PERIOD

        self._op_period = OP_PERIOD

        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; pick from {self.MODES}")
        self.fid = fid
        self.solution = solution
        self.seed = seed
        self.mode = mode
        self.keyspace = keyspace
        self.detect_every = detect_every
        self.error_budget = error_budget
        self.release_after = release_after
        self.trigger_at = trigger_at
        self.max_mitigations = max_mitigations
        self.inject_plan = inject_plan
        self.small_block_words = small_block_words
        self.quarantine_horizon = quarantine_horizon
        self.yield_every_steps = yield_every_steps
        self.yield_min_interval_s = yield_min_interval_s
        self.structural_key_threshold = (
            structural_key_threshold
            if structural_key_threshold is not None
            else max(8, keyspace // 8)
        )

        self.scenario = scenario_by_id(fid)
        self.adapter = self.scenario.adapter_cls()(
            seed=seed, with_tracing=True, with_checkpoint=True,
            vm_engine=vm_engine,
        )
        self.adapter.start()
        self.ctx = ExperimentContext(self.adapter, self.scenario, seed)
        self.detector = Detector()
        self.monitor: Optional[LeakMonitor] = None
        if self.scenario.kind == "leak":
            self.monitor = LeakMonitor(
                self.adapter.allocator,
                self.adapter.expected_item_words,
                threshold_ratio=self.scenario.leak_ratio,
            )
            self.detector.set_leak_monitor(self.monitor)
        self.snapshotter = PmCRIU(
            self.adapter.pool, self.adapter.allocator, SNAPSHOT_INTERVAL
        )
        self.reactor = ReactorServer(self.adapter.module, analysis=self.adapter.analysis)
        self.workload = YCSBWorkload(
            seed=seed * 31 + 7, keyspace=keyspace,
            read_ratio=read_ratio, theta=theta,
        )

        self.locks = RangeLockTable()
        self.touch_index = KeyTouchIndex()
        self.records: List[ServeRecord] = []
        self.quarantined_keys: Set[int] = set()
        #: view at the moment the last mitigation window opened — the
        #: no-mid-rollback-value tests replay responses against it
        self.view_snapshot: Dict[int, int] = {}
        self.mitigation_runs: List[object] = []
        self.digest_after_mitigation = ""
        self.confirmed_hard: Optional[bool] = None

        self._overlay: Dict[int, Optional[int]] = {}
        self._deferred: List[Tuple[int, Op]] = []
        self._windows: List[Tuple[float, float]] = []
        self._mitigations = 0
        self._release_index = -1
        self._triggered = False
        self._detected_ever = False
        self._served_through_view = False
        self._reconciled = True
        self._quarantine_ready = False
        self._unavailable = False
        self._retry_period = 0.001
        self._op_base = 0
        self._load()

    # ------------------------------------------------------------------
    # setup / plumbing
    # ------------------------------------------------------------------
    def _load(self) -> None:
        for i, op in enumerate(self.workload.load_ops()):
            self.ctx.op_index = i
            self.ctx.clock.advance(self._op_period)
            self.snapshotter.maybe_snapshot(self.ctx.clock.now)
            self._apply_traced(op)
            self._op_base = i + 1

    def _apply_traced(self, op: Op) -> None:
        """Apply one op, attributing its persisted words to its key."""
        trace = self.adapter.trace
        trace.flush()
        mark = len(trace.records)
        try:
            self.scenario.apply_op(self.ctx, op)
        finally:
            trace.flush()
            if len(trace.records) > mark:
                self.touch_index.note(
                    op.key, {a for _g, a in trace.records[mark:]}
                )

    def _view_value(self, key: int) -> int:
        if key in self._overlay:
            v = self._overlay[key]
            return -1 if v is None else v
        return self.ctx.oracle.get(key, -1)

    def _record(
        self, idx: int, op: Op, status: str, arrival: float,
        completion: float, value: int = -1, during: bool = False,
        retry_after: float = 0.0,
    ) -> ServeRecord:
        rec = ServeRecord(
            index=idx, kind=op.kind.name, key=op.key, status=status,
            value=value, arrival_s=arrival,
            latency_s=max(0.0, completion - arrival),
            during_mitigation=during, retry_after_s=retry_after,
        )
        self.records.append(rec)
        return rec

    # ------------------------------------------------------------------
    # detection (in-line on the request path)
    # ------------------------------------------------------------------
    def _probe(self) -> Optional[RunOutcome]:
        """Deterministic detection probe between requests."""
        outcome = self.detector.observe(
            self.adapter.machine, lambda: self.scenario.manifest(self.ctx)
        )
        if outcome.ok and self.monitor is not None:
            violation = self.monitor.check()
            if violation is not None:
                outcome = RunOutcome(ok=False, violation=violation)
        return None if outcome.ok else outcome

    def _inflight_outcome(self) -> RunOutcome:
        fault = self.adapter.machine.last_fault
        signature = FailureSignature.from_fault(fault)
        self.detector.history.append(signature)
        return RunOutcome(ok=False, fault=fault, signature=signature)

    # ------------------------------------------------------------------
    # quarantine derivation (plan cuts -> word ranges -> keys)
    # ------------------------------------------------------------------
    def _lock_plan_ranges(self, log: CheckpointLog, plan: ReversionPlan) -> None:
        """Widen each plan candidate to the words a revert may touch.

        A reverted cut restores logged update spans, so the lock covers
        the widest retained version at the candidate address.  When the
        covering live allocation is small (an item block), the whole
        block is locked — object-granular safety.  Large shared blocks
        (hash directories: every key wrote their head words) stay at
        update-span granularity or the quarantine would degenerate to
        the full keyspace.

        Only a ranked *prefix* of the plan is locked: the reverters
        (purge, bisect) consume candidates in plan order (value-flow
        rank, slice distance, newest-first) and in practice revert a
        tiny prefix of it — the trace join fans every in-slice store
        instruction out to all addresses it ever wrote, so the full
        candidate list covers essentially the whole pool and locking it
        would quarantine every key.  The horizon bounds what mitigation
        will plausibly touch; if a revert reaches *beyond* it, serving
        stays sound anyway — mid-mitigation reads come from the view
        (never the pool) and the release-boundary reconcile folds back
        whatever the pool actually holds.
        """
        for cand in plan.candidates[: self.quarantine_horizon]:
            span = 1
            entry = log.entries.get(cand.addr)
            if entry is not None:
                span = max(span, entry.max_size)
            block = log.live_alloc_covering(cand.addr)
            if block is not None and block[1] <= self.small_block_words:
                self.locks.lock(block[0], block[0] + block[1])
            self.locks.lock(cand.addr, cand.addr + span)

    # ------------------------------------------------------------------
    # the serving loop
    # ------------------------------------------------------------------
    async def run(
        self, n_requests: int, arrival_period_s: float = 0.0005
    ) -> dict:
        from repro.harness.supervisor import pool_digest

        loop = asyncio.get_running_loop()
        ops = list(self.workload.run_ops(n_requests))
        trigger_at = (
            self.trigger_at if self.trigger_at is not None else n_requests // 3
        )
        period = arrival_period_s
        t0 = time.perf_counter()
        shift = 0.0
        idx = 0
        while idx < n_requests:
            if self._unavailable:
                now = time.perf_counter()
                while idx < n_requests:
                    self._record(
                        idx, ops[idx], "unavailable",
                        t0 + shift + idx * period, now,
                    )
                    idx += 1
                break
            if idx == trigger_at and not self._triggered:
                self.scenario.trigger(self.ctx)
                self._triggered = True
            arrival = t0 + shift + idx * period
            delay = arrival - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            rec = self._serve_request(idx, ops[idx], arrival)
            idx += 1
            outcome = None
            if rec.status == "fault":
                outcome = self._inflight_outcome()
            elif (
                self._triggered
                and not self._detected_ever
                and idx % self.detect_every == 0
            ):
                outcome = self._probe()
            if outcome is not None:
                if self._mitigations >= self.max_mitigations:
                    self._unavailable = True
                    continue
                idx, shift = await self._mitigation_window(
                    loop, ops, idx, n_requests, t0, shift, period, outcome
                )
        report = self._report(n_requests, period, t0)
        report["final_digest"] = pool_digest(
            self.adapter.pool, self.adapter.allocator
        )
        return report

    def run_sync(self, n_requests: int, arrival_period_s: float = 0.0005) -> dict:
        return asyncio.run(self.run(n_requests, arrival_period_s))

    # ------------------------------------------------------------------
    def _serve_request(self, idx: int, op: Op, arrival: float) -> ServeRecord:
        """Serve one request outside a mitigation window."""
        if not self._served_through_view:
            # pre-fault steady state: full read-through, side effects on
            self.ctx.op_index = self._op_base + idx
            self.ctx.clock.advance(self._op_period)
            if not self._detected_ever:
                self.snapshotter.maybe_snapshot(self.ctx.clock.now)
            try:
                self._apply_traced(op)
            except Trap:
                self._detected_ever = True
                return self._record(
                    idx, op, "fault", arrival, time.perf_counter()
                )
            value = self._view_value(op.key) if op.kind is OpKind.GET else op.value
            return self._record(
                idx, op, "ok", arrival, time.perf_counter(), value=value
            )

        # post-mitigation serving: reads come from the reconciled view
        # permanently (index-deterministic pool traffic), writes apply
        self._maybe_reconcile(idx)
        held = op.key in self.quarantined_keys and idx < self._release_index
        if held:
            retry_after = max(
                (self._release_index - idx), 1
            ) * self._retry_period
            return self._record(
                idx, op, "quarantined", arrival, time.perf_counter(),
                retry_after=retry_after,
            )
        if op.kind is OpKind.GET:
            return self._record(
                idx, op, "ok", arrival, time.perf_counter(),
                value=self._view_value(op.key),
            )
        self.ctx.op_index = self._op_base + idx
        self.ctx.clock.advance(self._op_period)
        try:
            self._apply_traced(op)
        except Trap:
            self._detected_ever = True
            return self._record(idx, op, "fault", arrival, time.perf_counter())
        return self._record(
            idx, op, "ok", arrival, time.perf_counter(), value=op.value
        )

    def _serve_during(
        self, idx: int, op: Op, arrival: float,
        completion: Optional[float] = None,
    ) -> ServeRecord:
        """Classify one window arrival (never touches the pool)."""
        now = completion if completion is not None else time.perf_counter()
        if op.kind is OpKind.GET:
            if op.key in self.quarantined_keys:
                retry_after = max(
                    (self._release_index - idx), 1
                ) * self._retry_period
                return self._record(
                    idx, op, "quarantined", arrival, now, during=True,
                    retry_after=retry_after,
                )
            return self._record(
                idx, op, "ok", arrival, now,
                value=self._view_value(op.key), during=True,
            )
        # writes: reject quarantined ones inside the release horizon
        # (index-deterministic, so every mode rejects the same set);
        # defer the rest for the in-order drain
        if op.key in self.quarantined_keys and idx < self._release_index:
            retry_after = max(
                (self._release_index - idx), 1
            ) * self._retry_period
            return self._record(
                idx, op, "quarantined", arrival, now, during=True,
                retry_after=retry_after,
            )
        self._deferred.append((idx, op))
        if op.kind is OpKind.DELETE:
            self._overlay[op.key] = None
        else:
            self._overlay[op.key] = op.value
        # echo the accepted value so the client (and the rollback-value
        # tests) can replay the window from the response stream alone
        value = -1 if op.kind is OpKind.DELETE else op.value
        return self._record(
            idx, op, "deferred", arrival, now, value=value, during=True
        )

    # ------------------------------------------------------------------
    async def _mitigation_window(
        self, loop, ops: List[Op], idx: int, n: int, t0: float,
        shift: float, period: float, outcome: RunOutcome,
    ) -> Tuple[int, float]:
        """Run one cooperative mitigation; returns (next index, shift)."""
        self._mitigations += 1
        self._detected_ever = True
        self._served_through_view = True
        self._reconciled = False
        self._release_index = idx + self.release_after
        self._retry_period = period
        self.view_snapshot = dict(self.ctx.oracle)
        self._overlay = {}
        self._deferred = []
        self._quarantine_ready = False
        self.detect_index = idx - 1
        start_wall = time.perf_counter()
        gate = _CooperativeGate(loop)
        fut = loop.run_in_executor(None, self._mitigate_blocking, gate, outcome)
        preq: List[Tuple[int, Op, float]] = []
        while True:
            wake = asyncio.ensure_future(gate.wake.wait())
            await asyncio.wait({wake, fut}, return_when=asyncio.FIRST_COMPLETED)
            if not gate.wake.is_set():
                wake.cancel()
                if fut.done():
                    break
                continue
            wake.cancel()
            # worker parked at a checkpoint: drain due arrivals, resume
            if self.mode != "quiesced":
                now = time.perf_counter()
                while idx < n and t0 + shift + idx * period <= now:
                    arrival = t0 + shift + idx * period
                    if self.mode == "stop-the-world" or not self._quarantine_ready:
                        preq.append((idx, ops[idx], arrival))
                    else:
                        while preq:
                            j, qop, qarr = preq.pop(0)
                            self._serve_during(j, qop, qarr)
                        self._serve_during(idx, ops[idx], arrival)
                    idx += 1
            gate.resume()
        run = await fut
        end_wall = time.perf_counter()
        self._windows.append((start_wall, end_wall))
        if self.mode == "quiesced":
            shift += end_wall - start_wall
        # stalled window arrivals drain with identical classification
        for j, qop, qarr in preq:
            self._serve_during(j, qop, qarr, completion=time.perf_counter())
        if not run.recovered:
            self._unavailable = True
            return idx, shift
        self._drain_deferred()
        return idx, shift

    def _mitigate_blocking(self, gate: _CooperativeGate, outcome: RunOutcome):
        """Worker-thread body: confirm, derive quarantine, mitigate."""
        adapter = self.adapter

        # park inside long guest calls too: the VM fires this hook every
        # ``yield_every_steps`` executed steps, so even a full 400k-step
        # hang probe (confirmation, failed re-execution verifies) is
        # chunked into millisecond slices instead of one quarter-second
        # stall.  Installed on the adapter (not the machine) because
        # every restart builds a fresh machine.  Cleared in the finally:
        # after this window the event loop itself runs guest calls, and
        # a checkpoint from the loop thread would deadlock.
        # host-side mitigation loops (probe-engine seeks, plan joins)
        # call ctx.yield_fn far more often than once per chunk, so the
        # shared yield is throttled by wall time; the VM step hook goes
        # through the same throttle so the overall checkpoint cadence is
        # one knob
        last_yield = [0.0]

        def throttled_yield() -> None:
            now = time.monotonic()
            if now - last_yield[0] >= self.yield_min_interval_s:
                last_yield[0] = now
                gate.checkpoint()

        adapter.step_hook = throttled_yield
        adapter.step_hook_every = self.yield_every_steps
        if adapter.machine is not None:
            adapter.machine.step_hook = throttled_yield
            adapter.machine.step_hook_every = self.yield_every_steps
        self.ctx.yield_fn = throttled_yield
        try:
            return self._mitigate_body(gate, outcome)
        finally:
            self.ctx.yield_fn = None
            adapter.step_hook = None
            adapter.step_hook_every = 0
            if adapter.machine is not None:
                adapter.machine.step_hook = None
                adapter.machine.step_hook_every = 0

    def _mitigate_body(self, gate: _CooperativeGate, outcome: RunOutcome):
        """Confirm the fault, derive the quarantine, run mitigation."""
        from repro import faultinject
        from repro.harness.experiment import (
            _make_reexec,
            _mitigate_supervised,
        )
        from repro.harness.simclock import ReexecDelay, SimClock
        from repro.harness.supervisor import pool_digest

        adapter = self.adapter
        scenario = self.scenario
        ctx = self.ctx
        gate.checkpoint()

        # quarantine derivation first — it only needs the fault iid, the
        # trace and the checkpoint log, so unaffected traffic resumes
        # after one short chunk instead of stalling behind confirmation
        if outcome.fault is not None and adapter.ckpt is not None:
            log = adapter.ckpt.log
            plan = self.reactor.compute_plan(
                adapter.guid_map, adapter.trace, log, outcome.fault.iid,
                policy=distance_policy(max_distance=8),
                yield_fn=ctx.yield_fn,
            )
            self._lock_plan_ranges(log, plan)
            self.quarantined_keys |= self.touch_index.keys_in_ranges(
                self.locks.ranges(),
                structural_threshold=self.structural_key_threshold,
            )
        self._quarantine_ready = True
        gate.checkpoint()

        # hard-fault confirmation: restart and watch it recur
        adapter.restart()
        confirm = self.detector.observe(
            adapter.machine, lambda: (adapter.recover(), scenario.manifest(ctx))
        )
        if confirm.ok and self.monitor is not None:
            violation = self.monitor.check()
            if violation is not None:
                confirm = RunOutcome(ok=False, violation=violation)
        if confirm.signature is not None and outcome.signature is not None:
            self.confirmed_hard = self.detector.is_potential_hard_failure(
                confirm.signature
            )
        else:
            self.confirmed_hard = not confirm.ok
        gate.checkpoint()

        mclock = SimClock()
        delay = ReexecDelay(seed=self.seed * 13 + 5)
        base_reexec = _make_reexec(ctx, scenario, self.detector, self.monitor)

        def gated_reexec() -> RunOutcome:
            gate.checkpoint()
            return base_reexec()

        inject_cm = (
            faultinject.activate(self.inject_plan)
            if self.inject_plan is not None else nullcontext()
        )
        with inject_cm:
            run = _mitigate_supervised(
                ctx, scenario, outcome, gated_reexec, mclock, delay,
                solution=self.solution, batch_size=1,
                snapshotter=self.snapshotter, inject_plan=self.inject_plan,
                max_crash_retries=6, reactor_server=self.reactor,
            )
        run.pool_digest = pool_digest(adapter.pool, adapter.allocator)
        self.digest_after_mitigation = run.pool_digest
        self.mitigation_runs.append(run)
        return run

    # ------------------------------------------------------------------
    def _drain_deferred(self) -> None:
        """Re-apply accepted window writes in arrival order."""
        for j, op in self._deferred:
            if j >= self._release_index:
                self._maybe_reconcile(self._release_index)
            self.ctx.op_index = self._op_base + j
            self.ctx.clock.advance(self._op_period)
            try:
                self._apply_traced(op)
            except Trap:
                self._unavailable = True
                break
        self._deferred = []
        self._overlay = {}

    def _maybe_reconcile(self, idx: int) -> None:
        """Refresh the view from the pool at the release boundary.

        Runs exactly once per mitigation, keyed to ``release_index`` so
        its (potentially mutating) lookups land at the same position in
        the pool-visible op sequence in every mode.
        """
        if self._reconciled or idx < self._release_index:
            return
        self._reconciled = True
        keys = sorted(set(self.ctx.oracle) | self.quarantined_keys)
        try:
            for key in keys:
                value = self.adapter.lookup(key)
                if value == -1:
                    self.ctx.oracle.pop(key, None)
                else:
                    self.ctx.oracle[key] = value
        except Trap:
            self._unavailable = True

    # ------------------------------------------------------------------
    def _report(self, n_requests: int, period: float, t0: float) -> dict:
        ok = [r.latency_s for r in self.records if r.status in ("ok", "deferred")]

        def in_window(arrival: float) -> bool:
            return any(s <= arrival <= e for s, e in self._windows)

        # three buckets by *arrival* time: requests that arrived while a
        # mitigation window was open (the scoped-vs-STW comparison the
        # bench makes), requests that arrived earlier but were served
        # through the window drain (detection backlog: the in-line hang
        # probe stalls the loop identically in every mode), and steady
        # traffic outside any window
        during = [
            r.latency_s for r in self.records
            if r.during_mitigation and r.status in ("ok", "deferred")
            and in_window(r.arrival_s)
        ]
        backlog = [
            r.latency_s for r in self.records
            if r.during_mitigation and r.status in ("ok", "deferred")
            and not in_window(r.arrival_s)
        ]
        steady = [
            r.latency_s for r in self.records
            if not r.during_mitigation and r.status in ("ok", "deferred")
        ]
        quarantined = sum(1 for r in self.records if r.status == "quarantined")
        faults = sum(1 for r in self.records if r.status == "fault")
        unavailable = sum(1 for r in self.records if r.status == "unavailable")
        burned = quarantined + faults + unavailable
        runs = self.mitigation_runs
        report = {
            "fid": self.fid,
            "solution": self.solution,
            "mode": self.mode,
            "seed": self.seed,
            "n_requests": n_requests,
            "arrival_period_s": period,
            "requests_answered": len(self.records),
            "wall_seconds": time.perf_counter() - t0,
            "latency": _latency_stats(ok),
            "during_mitigation": _latency_stats(during),
            "detection_backlog": _latency_stats(backlog),
            "steady": _latency_stats(steady),
            "error_budget": {
                "budget": self.error_budget,
                "burned": burned,
                "remaining": max(0, self.error_budget - burned),
                "exhausted": burned > self.error_budget,
                "quarantined_responses": quarantined,
                "fault_responses": faults,
                "unavailable_responses": unavailable,
            },
            "quarantine": {
                "ranges": len(self.locks),
                "locked_words": self.locks.locked_words,
                "keys": sorted(self.quarantined_keys),
                "stream_keys": sorted(
                    k for k in self.quarantined_keys if k < self.keyspace
                ),
                "release_index": self._release_index,
            },
            "reactor": {
                "analysis_seconds": self.reactor.analysis_seconds,
                "plan_requests": self.reactor.requests_served,
            },
            "mitigation": {
                "count": len(runs),
                "recovered": bool(runs) and all(r.recovered for r in runs),
                "confirmed_hard": self.confirmed_hard,
                "attempts": sum(r.attempts for r in runs),
                "sim_seconds": sum(r.duration_seconds for r in runs),
                "wall_seconds": sum(e - s for s, e in self._windows),
                "analysis_seconds": max(
                    (r.analysis_seconds for r in runs), default=0.0
                ),
                "reactor_requests": max(
                    (r.reactor_requests for r in runs), default=0
                ),
            },
            "digest_after_mitigation": self.digest_after_mitigation,
            "unavailable": self._unavailable,
        }
        return report
