"""Reactor client/server architecture (paper Section 5).

Computing the static PDG and pointer analysis can take a long time, so
the paper runs the reactor as a server that precomputes the PDG as soon
as the target code is available and parses the PM trace incrementally; a
thin RPC client invokes it at failure time and only pays the (fast)
slicing cost.

This module models that split in-process: :class:`ReactorServer` owns the
expensive precomputation, :class:`ReactorClient` forwards mitigation
requests.  Timing is accounted the same way the paper reports it — the
server's ``analysis_seconds`` are *not* part of the mitigation latency,
the per-request ``slicing_seconds`` are.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.analysis import AnalysisResult, analyze_module
from repro.checkpoint.log import CheckpointLog
from repro.instrument.guids import GuidMap
from repro.instrument.tracer import PMTrace
from repro.lang.ir import Module
from repro.reactor.plan import PolicyFn, ReversionPlan, compute_plan


class ReactorServer:
    """Holds the precomputed PDG; answers plan requests quickly.

    Because the server keeps one :class:`AnalysisResult` alive across
    requests, the slice/distance memoization on its PDG (see
    :mod:`repro.analysis.slicing`) makes repeated plan requests for the
    same fault iid — the harness's detector/reactor rounds re-plan up to
    4x per mode — skip the graph walk entirely and pay only the
    trace x log join.
    """

    def __init__(self, module: Module, analysis: Optional[AnalysisResult] = None):
        start = time.perf_counter()
        self.analysis = analysis if analysis is not None else analyze_module(module)
        #: background precomputation cost (excluded from mitigation time)
        self.analysis_seconds = time.perf_counter() - start
        self.requests_served = 0

    def compute_plan(
        self,
        guid_map: GuidMap,
        trace: PMTrace,
        log: CheckpointLog,
        fault_iid: int,
        policy: Optional[PolicyFn] = None,
    ) -> ReversionPlan:
        """Serve one plan request (slice + trace/log join)."""
        self.requests_served += 1
        trace.flush()  # incremental trace parsing catches up at request time
        return compute_plan(
            self.analysis, guid_map, trace, log, fault_iid, policy=policy
        )


class ReactorClient:
    """Thin stand-in for the paper's RPC client."""

    def __init__(self, server: ReactorServer):
        self.server = server

    def request_mitigation_plan(
        self,
        guid_map: GuidMap,
        trace: PMTrace,
        log: CheckpointLog,
        fault_iid: int,
        policy: Optional[PolicyFn] = None,
    ) -> ReversionPlan:
        return self.server.compute_plan(guid_map, trace, log, fault_iid, policy)
