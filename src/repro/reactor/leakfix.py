"""Persistent-memory-leak mitigation (paper Section 4.7).

The idea: a PM program's recovery function retrieves (touches) all live
PM data structures, while the checkpoint log knows about every PM object
ever allocated and whether it was freed.  Objects that are (a) still
allocated, (b) never freed in the log and (c) never accessed during the
recovery run are leak suspects.  The reactor reports them and frees them
only after confirmation.

The recovery-access set comes from the PM-address trace recorded while
the recovery function runs — our equivalent of bracketing it between the
paper's ``pmem_recover_begin``/``pmem_recover_end`` annotations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.checkpoint.log import CheckpointLog
from repro.errors import AllocationError
from repro.pmem.allocator import PMAllocator


def find_leaked_objects(
    log: CheckpointLog,
    allocator: PMAllocator,
    recovery_addresses: Set[int],
    protect: Iterable[int] = (),
) -> Dict[int, int]:
    """Return addr -> nwords of suspected leaked PM blocks.

    ``recovery_addresses`` are the PM addresses the instrumented recovery
    run touched; ``protect`` lists block addresses that must never be
    reported (e.g. the root object).
    """
    protected = set(protect)
    leaked: Dict[int, int] = {}
    for addr, nwords in log.live_unfreed_allocs().items():
        if addr in protected:
            continue
        if not allocator.is_allocated(addr):
            continue
        touched = any(a in recovery_addresses for a in range(addr, addr + nwords))
        if not touched:
            leaked[addr] = nwords
    return leaked


def mitigate_leak(
    allocator: PMAllocator,
    leaked: Dict[int, int],
    confirm: bool = True,
) -> int:
    """Free confirmed leaked blocks; returns the number of words freed.

    ``confirm=False`` models the operator declining the reactor's
    suggestion — nothing is freed.
    """
    if not confirm:
        return 0
    freed_words = 0
    for addr, nwords in leaked.items():
        try:
            allocator.free(addr)
            freed_words += nwords
        except AllocationError:  # pragma: no cover - racing free
            continue
    return freed_words
