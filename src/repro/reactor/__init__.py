"""The Arthas reactor (paper Sections 4.4-4.7).

Given a fault instruction, the reactor:

1. computes the backward slice over the static PDG and keeps PM nodes,
2. joins slice nodes with the dynamic PM-address trace via GUIDs,
3. finds checkpoint-log entries for those addresses — the **candidate
   list** of sequence numbers (:mod:`repro.reactor.plan`),
4. reverts candidates under the **purge** or **rollback** strategy, one
   by one or in batches, re-executing the target after each reversion
   until the failure stops recurring (:mod:`repro.reactor.revert`),
5. mitigates persistent leaks by diffing checkpoint-log liveness against
   PM objects the recovery function touches (:mod:`repro.reactor.leakfix`).

:mod:`repro.reactor.server` provides the client/server split of the
paper's Section 5: the PDG is computed ahead of failure so mitigation
latency only pays for slicing.
"""

from repro.reactor.leakfix import find_leaked_objects, mitigate_leak
from repro.reactor.plan import Candidate, ReversionPlan, compute_plan
from repro.reactor.revert import MitigationResult, Reverter
from repro.reactor.server import ReactorClient, ReactorServer

__all__ = [
    "Candidate",
    "ReversionPlan",
    "compute_plan",
    "MitigationResult",
    "Reverter",
    "ReactorServer",
    "ReactorClient",
    "find_leaked_objects",
    "mitigate_leak",
]
