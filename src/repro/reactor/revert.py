"""Reversion execution: purge and rollback strategies (Section 4.4-4.6).

Both strategies walk the plan's candidate list, revert PM state, and call
a re-execution script after each reversion to check whether the failure
still recurs:

* **purge** reverts *only* the selected checkpoint entries (expanded to
  their enclosing transactions), then runs a second pass purging
  forward-dependent updates for consistency.  Minimal data loss, small
  risk of semantic inconsistency.
* **rollback** reverts the selected entry *and every log event with a
  higher sequence number* — value updates restored to their last version
  before the cut, frees un-freed, allocations released.  Conservative:
  strictly respects time order.

Reversions write durable words directly (they model the reactor patching
the pool file offline), so they never re-enter the checkpoint hooks.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro import faultinject
from repro.checkpoint.log import CheckpointLog
from repro.detector.monitor import RunOutcome
from repro.errors import AllocationError
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.pmem.snapshot import restore_snapshot, take_snapshot
from repro.reactor.plan import Candidate, ReversionPlan

ReexecFn = Callable[[], RunOutcome]
ForwardSeqsFn = Callable[[Candidate], Set[int]]


class IntentJournal:
    """Write-ahead intents for reversion cuts (crash-safe mitigation).

    Before applying a cut the reverter records a *begin* intent; after
    the cut is fully applied and its re-execution attempt resolved, a
    *commit* record marks it done.  A crash anywhere in between leaves a
    pending intent, and a re-run of the same mitigation:

    * **re-applies** every done cut — ``rollback_to_before`` is a pure
      function of ``(log, cut)``, so re-application is idempotent — but
      skips its re-execution (the journal already knows it did not
      recover, else mitigation would have ended);
    * treats a pending cut as never applied and runs it normally.

    This is what makes supervised mitigation converge to the same final
    state as an uninterrupted run, no matter where it crashed.  With a
    ``path`` the journal appends one JSON line per record (each line is
    flushed before the cut proceeds, modelling a durable intent region);
    without one it is in-memory, which is enough for the in-process
    injection sweep where the journal object survives the "crash".
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        #: cut -> "pending" | "done"
        self.status: Dict[int, str] = {}
        #: cuts whose re-execution attempt resolved as not-recovered
        self._recovered: Dict[int, bool] = {}
        if path is not None and os.path.exists(path):
            self._replay(path)

    def _replay(self, path: str) -> None:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    break  # torn tail: the writer died mid-append
                if rec.get("op") == "begin":
                    self.status[rec["cut"]] = "pending"
                elif rec.get("op") == "commit":
                    self.status[rec["cut"]] = "done"
                    self._recovered[rec["cut"]] = bool(rec.get("recovered"))

    def _append(self, rec: dict) -> None:
        if self.path is None:
            return
        with open(self.path, "a") as f:
            f.write(json.dumps(rec) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def begin(self, cut: int, mode: str) -> None:
        self.status[cut] = "pending"
        self._append({"op": "begin", "cut": cut, "mode": mode})

    def commit(self, cut: int, recovered: bool = False) -> None:
        self.status[cut] = "done"
        self._recovered[cut] = recovered
        self._append({"op": "commit", "cut": cut, "recovered": recovered})

    def is_done(self, cut: int) -> bool:
        return self.status.get(cut) == "done"

    def done_cuts(self) -> List[int]:
        return sorted(c for c, s in self.status.items() if s == "done")


class _NullClock:
    """Fallback clock when the caller does not supply one."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt


@dataclass
class MitigationResult:
    """Outcome of one mitigation run."""

    recovered: bool
    mode: str
    attempts: int = 0
    reverted_seqs: List[int] = field(default_factory=list)
    duration_seconds: float = 0.0
    aborted_empty_plan: bool = False
    timed_out: bool = False
    notes: str = ""
    #: outcome of the last re-execution (None if none ran); a different
    #: fault than the one being mitigated starts a new detector/reactor
    #: round in the harness
    last_outcome: Optional[RunOutcome] = None

    @property
    def discarded_updates(self) -> int:
        """Unique checkpoint updates reverted (the data-loss numerator)."""
        return len(set(self.reverted_seqs))


class _ProbeDelta:
    """Undo record for one probe step.

    Pairs a pool dirty-word epoch (pre-images of every durable word
    mutated while the delta is open) with a *lazily* captured allocator
    metadata pre-image: the allocator's pre-mutate hook fires before its
    first metadata mutation, at which point the metadata still equals its
    state when the delta opened — so nothing is copied for the common
    probe step that never touches the allocator.
    """

    __slots__ = ("pool", "allocator", "token", "pre_meta", "_armed")

    def __init__(self, pool: PMPool, allocator: PMAllocator):
        self.pool = pool
        self.allocator = allocator
        self.token = pool.open_epoch()
        self.pre_meta: Optional[dict] = None
        self._armed = True
        allocator.add_pre_mutate_hook(self._capture)

    def _capture(self) -> None:
        if self._armed and self.pre_meta is None:
            self.pre_meta = self.allocator.export_meta()

    def undo(self, close: bool = True) -> None:
        """Rewrite only the dirtied words; restore allocator meta if it
        changed.  With ``close=False`` the delta keeps tracking from the
        restored state (used by the baseline across a resync)."""
        self._armed = False
        self.pool.epoch_undo(self.token, close=close)
        if self.pre_meta is not None:
            self.allocator.import_meta(self.pre_meta)
        if close:
            self.allocator.remove_pre_mutate_hook(self._capture)
        else:
            self.pre_meta = None
            self._armed = True

    def close(self) -> None:
        """Stop tracking without undoing (keeps the current state)."""
        self._armed = False
        self.pool.close_epoch(self.token)
        self.allocator.remove_pre_mutate_hook(self._capture)


class _SnapshotProbeEngine:
    """Oracle probe engine: every seek restores the full baseline
    snapshot and re-applies the reversion prefix from scratch.

    O(pool + prefix) per probe — this is the seed behaviour, kept as the
    correctness oracle for the incremental engine (same role
    ``checkpoint/reference.py`` plays for the log indexes).
    """

    def __init__(self, reverter: "Reverter", groups: List[List[int]]):
        self.r = reverter
        self.groups = groups
        self.baseline = take_snapshot(reverter.pool, reverter.allocator)

    def seek(self, k: int) -> List[int]:
        """Move the pool to the state with groups[:k] applied."""
        restore_snapshot(self.r.pool, self.baseline, self.r.allocator)
        applied: List[int] = []
        for group in self.groups[:k]:
            self.r._maybe_yield()
            for s in sorted(group, reverse=True):
                if self.r.revert_update_seq(s, 1, guard_dangling=True):
                    applied.append(s)
        return applied

    def begin_reexec(self) -> None:
        pass  # the next seek's full restore wipes any re-execution dirt

    def end_reexec(self) -> None:
        pass

    def abort(self) -> None:
        restore_snapshot(self.r.pool, self.baseline, self.r.allocator)

    def finish(self) -> None:
        pass


class _DeltaProbeEngine:
    """Incremental probe engine: O(delta) state movement between probes.

    Keeps one :class:`_ProbeDelta` per applied reversion group; moving
    from probe point ``k`` to ``k'`` applies or undoes only the
    ``|k - k'|`` group deltas in between.  Re-executions run inside their
    own delta and are undone immediately, so every probe point's durable
    image is byte-identical to what the snapshot oracle would produce.

    If a re-execution grew the checkpoint log (recording updates can
    evict ring versions the prefix reconstruction depends on), the
    recorded deltas no longer match a fresh application with the current
    log; the engine then rewinds to the baseline and rebuilds the prefix,
    which is exactly the oracle's apply-with-current-log semantics.
    """

    def __init__(self, reverter: "Reverter", groups: List[List[int]]):
        self.r = reverter
        self.groups = groups
        self.pos = 0
        self.baseline = _ProbeDelta(reverter.pool, reverter.allocator)
        self.deltas: List[_ProbeDelta] = []
        self.applied: List[List[int]] = []
        self._log_seq = reverter.log.max_seq()
        self._reexec_delta: Optional[_ProbeDelta] = None

    def _apply_group(self, group: List[int]) -> None:
        self.r._maybe_yield()
        delta = _ProbeDelta(self.r.pool, self.r.allocator)
        seqs: List[int] = []
        for s in sorted(group, reverse=True):
            if self.r.revert_update_seq(s, 1, guard_dangling=True):
                seqs.append(s)
        self.deltas.append(delta)
        self.applied.append(seqs)
        self.pos += 1

    def _undo_group(self) -> None:
        self.r._maybe_yield()
        self.deltas.pop().undo()
        self.applied.pop()
        self.pos -= 1

    def _rewind(self) -> None:
        while self.deltas:
            self._undo_group()
        self.baseline.undo(close=False)

    def seek(self, k: int) -> List[int]:
        if self.r.log.max_seq() != self._log_seq:
            self._rewind()
            self._log_seq = self.r.log.max_seq()
        while self.pos > k:
            self._undo_group()
        while self.pos < k:
            self._apply_group(self.groups[self.pos])
        return [s for seqs in self.applied for s in seqs]

    def begin_reexec(self) -> None:
        self._reexec_delta = _ProbeDelta(self.r.pool, self.r.allocator)

    def end_reexec(self) -> None:
        if self._reexec_delta is not None:
            self._reexec_delta.undo()
            self._reexec_delta = None

    def abort(self) -> None:
        while self.deltas:
            self._undo_group()
        self.baseline.undo(close=True)

    def finish(self) -> None:
        for delta in reversed(self.deltas):
            delta.close()
        self.baseline.close()


#: engine name -> class, for callers that select by string
PROBE_ENGINES = {
    "incremental": _DeltaProbeEngine,
    "snapshot": _SnapshotProbeEngine,
}


class Reverter:
    """Executes reversion plans against one pool + checkpoint log."""

    def __init__(
        self,
        log: CheckpointLog,
        pool: PMPool,
        allocator: PMAllocator,
        reexec: ReexecFn,
        clock=None,
        reexec_delay: Callable[[], float] = lambda: 4.0,
        revert_cost: float = 0.002,
        max_versions: int = 3,
        max_attempts: int = 200,
        timeout_seconds: float = 600.0,
        forward_seqs_fn: Optional[ForwardSeqsFn] = None,
        known_faults: Optional[Set[int]] = None,
        enable_divergence_repair: bool = True,
        intents: Optional[IntentJournal] = None,
        yield_fn: Optional[Callable[[], None]] = None,
    ):
        self.log = log
        self.pool = pool
        self.allocator = allocator
        self.reexec = reexec
        self.clock = clock if clock is not None else _NullClock()
        self.reexec_delay = reexec_delay
        self.revert_cost = revert_cost
        self.max_versions = max_versions
        self.max_attempts = max_attempts
        self.timeout_seconds = timeout_seconds
        self.forward_seqs_fn = forward_seqs_fn
        #: fault iids already being mitigated; a re-execution failing with
        #: a fault *outside* this set ends the strategy early so the
        #: caller can re-slice from the new fault (detector/reactor cycle)
        self.known_faults = known_faults
        #: divergence repair is only sound before any reversion has been
        #: applied — afterwards the durable state legitimately differs
        #: from the log's reconstruction
        self.enable_divergence_repair = enable_divergence_repair
        #: write-ahead intent journal; when set, rollback cuts become
        #: resumable after a crash (see :class:`IntentJournal`)
        self.intents = intents
        #: cooperative yield point for live serving: probe engines call
        #: it per group apply/undo so long host-side seeks (delta
        #: reversion, prefix rebuilds) park the same way long guest
        #: calls do.  Must not touch the pool; ``None`` = run straight.
        self.yield_fn = yield_fn
        #: clock reading when the current strategy started (see _begin)
        self._t0 = self.clock.now

    def _maybe_yield(self) -> None:
        if self.yield_fn is not None:
            self.yield_fn()

    def _is_new_fault(self, outcome: RunOutcome) -> bool:
        return (
            self.known_faults is not None
            and outcome.fault is not None
            and outcome.fault.iid not in self.known_faults
        )

    # ------------------------------------------------------------------
    # low-level reversion primitives
    # ------------------------------------------------------------------
    def _plan_range_before(self, addr: int, size: int, cut_seq: int):
        """Compute the writes reconstructing ``[addr, addr+size)`` as it
        was just before ``cut_seq``; returns ``{addr: value}``.

        The range starts from zeros, then every checkpoint entry
        overlapping it re-applies its newest pre-cut version (oldest
        first, so newer pre-cut writes win).  This handles ranges that
        cover *neighbouring objects* — e.g. a buffer-overflow persist
        that spilled past its own block — which a naive same-entry
        version copy would corrupt.

        Only entries whose versions can reach the range are visited
        (``entries_possibly_overlapping``, the size-class interval
        index); the
        non-overlap filter below stays as the exact check.
        """
        writes = {addr + i: 0 for i in range(size)}
        informed: Set[int] = set()
        overlapping = []
        for entry in self.log.entries_possibly_overlapping(addr, size):
            pre_cut = [v for v in entry.versions if v.seq < cut_seq]
            if not pre_cut and entry.history_evicted and entry.versions:
                # the true pre-cut version was evicted from the ring;
                # floor at the oldest retained version rather than zeros
                # (applied first, so genuine pre-cut data wins over it)
                overlapping.append((-1, entry.address, entry.versions[0]))
                continue
            # apply every pre-cut version in order: versions of one entry
            # may have different sizes (a whole-struct persist followed by
            # field-granular persists share the base address), so the
            # latest alone cannot reconstruct the full range
            for version in pre_cut:
                overlapping.append((version.seq, entry.address, version))
        # (seq, base) pairs are unique, so keying on them reproduces the
        # full-tuple sort without ever comparing Version objects
        for _seq, base, version in sorted(
            overlapping, key=lambda t: (t[0], t[1])
        ):
            if not (base < addr + size and addr < base + version.size):
                continue
            for i, value in enumerate(version.data):
                a = base + i
                if addr <= a < addr + size:
                    writes[a] = value
                    informed.add(a)
        return writes, informed

    def restore_range_before(self, addr: int, size: int, cut_seq: int) -> None:
        """Apply the pre-``cut_seq`` reconstruction of a range."""
        writes, _informed = self._plan_range_before(addr, size, cut_seq)
        for a, value in writes.items():
            self.pool.durable_write(a, value)

    def restore_ranges_before(self, ranges, cut_seq: int) -> None:
        """Batched :meth:`restore_range_before` over many ranges at once.

        The reconstructed value of a word depends only on ``(word,
        cut_seq)`` — ``_plan_range_before`` picks the newest pre-cut
        version covering it regardless of the queried range — so
        coalescing the ranges is exact.  Adjacent/overlapping ranges are
        merged into maximal spans (never bridging gaps, which would
        zero-fill untouched words), each span is planned once, and every
        pool word is written exactly once.  A rollback cut touching many
        neighbouring objects thus pays one planning pass and one write
        pass instead of one of each per entry.
        """
        spans: List[Tuple[int, int]] = []
        for addr, size in sorted(ranges):
            if size <= 0:
                continue
            if spans and addr <= spans[-1][1]:
                if addr + size > spans[-1][1]:
                    spans[-1] = (spans[-1][0], addr + size)
            else:
                spans.append((addr, addr + size))
        writes: dict = {}
        for lo, hi in spans:
            span_writes, _informed = self._plan_range_before(lo, hi - lo, cut_seq)
            writes.update(span_writes)
        for a, value in writes.items():
            self.pool.durable_write(a, value)

    def _dangling_targets(self, writes) -> List[int]:
        """Restored words that point into freed persistent memory."""
        out: List[int] = []
        for value in writes.values():
            if value and self.pool.contains(value):
                if self.allocator.block_containing(value) is None:
                    out.append(value)
        return out

    def _unfree_covering(self, target: int) -> bool:
        """Revert the free event whose block contains ``target``.

        Installing an old pointer to a since-freed block would let a
        future allocation silently alias live data, so a reversion that
        references freed memory must revert the free as well — the log
        records every free (Section 3.2's intercepted ``free`` calls).
        Newest covering free wins (the block may have been freed and
        reused repeatedly); the log's free-address index answers that
        without sorting the event stream.
        """
        ev = self.log.newest_free_covering(target)
        if ev is None:
            return False
        try:
            self.allocator.unfree(ev.addr, ev.nwords)
            return True
        except AllocationError:
            return False

    def revert_update_seq(
        self, seq: int, steps_back: int = 1, guard_dangling: bool = False
    ) -> bool:
        """Restore the range to its state ``steps_back`` versions earlier.

        Returns False when the sequence number is not a revertible update
        (already evicted from the version ring, not an update, or — with
        ``guard_dangling`` — the reversion would resurrect a pointer to
        freed memory).
        """
        ev = self.log.event(seq)
        if ev is None or ev.kind != "update":
            return False
        entry = self.log.entries.get(ev.addr)
        if entry is None:
            return False
        idx = entry.version_index(seq)
        if idx is None:
            return False
        # reverting k steps from version idx means restoring the state just
        # before version (idx - k + 1); clamp at the oldest retained version
        target_idx = max(idx - steps_back + 1, 0)
        cut_seq = entry.versions[target_idx].seq
        size = max(v.size for v in entry.versions[target_idx : idx + 1])
        writes, informed = self._plan_range_before(entry.address, size, cut_seq)
        has_own_preimage = (
            any(v.seq < cut_seq for v in entry.versions)
            or entry.history_evicted
            or entry.address in informed
        )
        if not has_own_preimage:
            # no recorded version anywhere describes this entry's pre-cut
            # state; the paper only ever copies *recorded* version data,
            # so a blind zero-fill (e.g. un-writing the root object's
            # initialisation) is never attempted
            return False
        if guard_dangling:
            for target in self._dangling_targets(writes):
                if not self._unfree_covering(target):
                    return False  # cannot make the reversion safe; skip it
        for a, value in writes.items():
            self.pool.durable_write(a, value)
        return True

    def tx_closure(self, seq: int) -> List[int]:
        """All update seqs in the same transaction (Section 4.6)."""
        tx_id = self.log.tx_of_seq(seq)
        if not tx_id:
            return [seq]
        members = self.log.seqs_in_tx(tx_id)
        return sorted(set(members) | {seq}, reverse=True)

    def rollback_to_before(self, seq: int) -> List[int]:
        """Time-ordered rollback of every event with seq >= ``seq``.

        Returns the update sequence numbers that were reverted.
        """
        reverted: List[int] = []
        # value updates: reconstruct every range touched at-or-after the
        # cut — found through the event index (any update event >= seq
        # implies the entry retains a version >= seq: eviction only drops
        # the *oldest* versions), so only the log suffix is scanned
        touched: List[tuple] = []
        for addr in self.log.update_addrs_since(seq):
            entry = self.log.entries.get(addr)
            if entry is None:  # pragma: no cover - defensive
                continue
            newer = [v for v in entry.versions if v.seq >= seq]
            if not newer:  # pragma: no cover - see invariant above
                continue
            reverted.extend(v.seq for v in newer)
            touched.append((entry.address, max(v.size for v in entry.versions)))
        # one coalesced planning + write pass over all touched ranges
        # (the seed looped restore_range_before per entry; the reference
        # reverter still does, and the pool-image equality tests pin the
        # two paths to identical durable bytes)
        self.restore_ranges_before(touched, seq)
        # allocator events, newest first (events_after is seq-ascending)
        for ev in reversed(self.log.events_after(seq - 1)):
            if ev.kind == "free":
                try:
                    self.allocator.unfree(ev.addr, ev.nwords)
                except AllocationError:
                    pass  # range partially reused; best effort
            elif ev.kind == "alloc":
                if self.allocator.is_allocated(ev.addr):
                    try:
                        self.allocator.free(ev.addr)
                    except AllocationError:  # pragma: no cover - defensive
                        pass
        return reverted

    # ------------------------------------------------------------------
    # out-of-band corruption repair
    # ------------------------------------------------------------------
    def _expected_word(self, addr: int) -> Optional[int]:
        """Value the newest checkpoint version says ``addr`` should hold.

        Served by the log's windowed newest-version index; the old scan
        over every version of every entry made ``repair_divergence``
        O(entries x versions) *per word*.
        """
        return self.log.expected_word(addr)

    def repair_divergence(self, plan: ReversionPlan) -> List[int]:
        """Re-apply logged values where durable PM diverges from the log.

        Every value the program persisted went through the checkpoint
        hooks, so the log can reconstruct the last persisted image of any
        logged range.  A durable word that differs from that image was
        corrupted *out of band* — a hardware fault (bit flip) rather than
        a software store.  Restricted to the plan's candidate entries so
        the repair stays within the fault's dependence slice.

        Returns the repaired addresses (empty for pure software faults).
        """
        repaired: List[int] = []
        seen_entries: Set[int] = set()
        for cand in plan.candidates:
            ev = self.log.event(cand.seq)
            if ev is None or ev.addr in seen_entries:
                continue
            seen_entries.add(ev.addr)
            entry = self.log.entries.get(ev.addr)
            if entry is None or not entry.versions:
                continue
            size = max(v.size for v in entry.versions)
            for i in range(size):
                a = entry.address + i
                expected = self._expected_word(a)
                if expected is not None and self.pool.durable_read(a) != expected:
                    self.pool.durable_write(a, expected)
                    repaired.append(a)
        return repaired

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def _try_divergence_repair(self, result: MitigationResult,
                               plan: ReversionPlan) -> Optional[RunOutcome]:
        """Step 0 of both strategies; returns the outcome if it re-executed."""
        if not self.enable_divergence_repair:
            return None
        repaired = self.repair_divergence(plan)
        if not repaired:
            return None
        result.notes = f"repaired {len(repaired)} divergent word(s)"
        return self._attempt(result, len(repaired))

    def mitigate_purge(
        self, plan: ReversionPlan, batch_size: int = 1
    ) -> MitigationResult:
        """Dependency-based purge: revert only dependent entries."""
        result = self._begin("purge")
        if plan.empty:
            result.aborted_empty_plan = True
            return self._finish(result)
        outcome = self._try_divergence_repair(result, plan)
        if outcome is not None and outcome.ok:
            result.recovered = True
            return self._finish(result)
        tried: Set[tuple] = set()
        for steps_back in range(1, self.max_versions + 1):
            batch: List[Candidate] = []
            for cand in plan.candidates:
                batch.append(cand)
                if len(batch) < batch_size and cand is not plan.candidates[-1]:
                    continue
                group: List[int] = []
                for c in batch:
                    for s in self.tx_closure(c.seq):
                        if (s, steps_back) not in tried:
                            tried.add((s, steps_back))
                            group.append(s)
                batch_cands, batch = list(batch), []
                if not group:
                    continue
                faultinject.fire("revert.cut")  # crash between purge groups
                reverted_any = False
                for s in sorted(group, reverse=True):
                    if self.revert_update_seq(s, steps_back, guard_dangling=True):
                        result.reverted_seqs.append(s)
                        reverted_any = True
                if not reverted_any:
                    continue
                faultinject.fire("revert.commit")
                outcome = self._attempt(result, len(group))
                if outcome is None:
                    return self._finish(result)  # budget exhausted
                if not outcome.ok and self._is_new_fault(outcome):
                    result.notes = "stopped: new fault surfaced"
                    return self._finish(result)
                if outcome.ok:
                    extra = self._purge_forward_pass(result, batch_cands, min(group))
                    result.recovered = True
                    if extra:
                        # re-execute once more so recovery runs over the
                        # forward-purged state (and confirms it still works)
                        confirm = self._attempt(result, extra)
                        result.recovered = confirm is not None and confirm.ok
                    return self._finish(result)
        return self._finish(result)

    def _purge_forward_pass(
        self, result: MitigationResult, cands: List[Candidate], cut: int
    ) -> int:
        """Second pass: purge updates that depend on the reverted ones.

        Only *value updates* are purged forward; free/alloc events are
        left alone (undoing frees is rollback-mode territory), which is
        the source of the purge mode's rare semantic inconsistencies.
        """
        if self.forward_seqs_fn is None:
            return 0
        extra: Set[int] = set()
        for cand in cands:
            for dep_seq in self.forward_seqs_fn(cand):
                if dep_seq > cut and dep_seq not in result.reverted_seqs:
                    extra.add(dep_seq)
        reverted = 0
        for s in sorted(extra, reverse=True):
            if self.revert_update_seq(s, 1):
                result.reverted_seqs.append(s)
                self.clock.advance(self.revert_cost)
                reverted += 1
        return reverted

    def mitigate_rollback(self, plan: ReversionPlan) -> MitigationResult:
        """Conservative, time-respecting rollback."""
        result = self._begin("rollback")
        if plan.empty:
            result.aborted_empty_plan = True
            return self._finish(result)
        outcome = self._try_divergence_repair(result, plan)
        if outcome is not None and outcome.ok:
            result.recovered = True
            return self._finish(result)
        cuts: List[int] = []
        seen: Set[int] = set()
        for cand in plan.candidates:
            cut = min(self.tx_closure(cand.seq))
            if cut not in seen:
                seen.add(cut)
                cuts.append(cut)
        for cut in cuts:
            if self.intents is not None and self.intents.is_done(cut):
                # a crashed previous run already applied and tested this
                # cut; re-apply idempotently, skip the re-execution
                reverted = self.rollback_to_before(cut)
                result.reverted_seqs.extend(reverted)
                continue
            faultinject.fire("revert.cut")  # crash between reversion steps
            if self.intents is not None:
                self.intents.begin(cut, mode="rollback")
            reverted = self.rollback_to_before(cut)
            result.reverted_seqs.extend(reverted)
            outcome = self._attempt(result, max(1, len(reverted)))
            faultinject.fire("revert.commit")  # crash after cut, before done
            if outcome is None:
                return self._finish(result)
            recovered = outcome.ok
            if self.intents is not None:
                self.intents.commit(cut, recovered=recovered)
            if not outcome.ok and self._is_new_fault(outcome):
                result.notes = "stopped: new fault surfaced"
                return self._finish(result)
            if recovered:
                result.recovered = True
                return self._finish(result)
        return self._finish(result)

    def mitigate_bisect(
        self, plan: ReversionPlan, engine: str = "incremental"
    ) -> MitigationResult:
        """Binary-search reversion (the paper's technical-report variant).

        When slice nodes alias many sequence numbers, one-at-a-time
        reversion pays one re-execution per candidate.  Instead: revert
        *all* candidates once; if that recovers the system, binary-search
        the smallest newest-first prefix that still recovers it, so the
        search is O(log n) re-executions and the final data loss is the
        minimal prefix.  Falls back (returns unrecovered) when even the
        full reversion does not help — the caller can then try purge or
        rollback.

        State movement between probe points is pluggable (``engine``):

        * ``"incremental"`` (default) — :class:`_DeltaProbeEngine`; keeps
          per-group undo deltas and moves between probe prefixes in
          O(words dirtied), never replaying the pool;
        * ``"snapshot"`` — :class:`_SnapshotProbeEngine`; the seed's
          full-restore + re-apply path, kept as the test oracle.

        Probe outcomes are memoized per prefix length, so the final
        ``probe(best)`` (in the seed a guaranteed redundant re-execution)
        and any repeated midpoint only move state — with *either* engine —
        leaving the pool in the minimal recovered state.

        After the search the same forward-dependence pass as purge
        reverts updates computed over the discarded prefix.  The pass is
        one PDG hop deep, so — like purge — bisect retains a small risk
        of semantic inconsistency (e.g. shared accounting counters more
        than one hop from the kept candidates).
        """
        result = self._begin("bisect")
        if plan.empty:
            result.aborted_empty_plan = True
            return self._finish(result)
        outcome = self._try_divergence_repair(result, plan)
        if outcome is not None and outcome.ok:
            result.recovered = True
            return self._finish(result)

        groups: List[List[int]] = []
        group_cands: List[Candidate] = []
        seen: Set[int] = set()
        for cand in plan.candidates:
            group = [s for s in self.tx_closure(cand.seq) if s not in seen]
            if group:
                seen.update(group)
                groups.append(group)
                group_cands.append(cand)

        try:
            engine_cls = PROBE_ENGINES[engine]
        except KeyError:
            raise ValueError(
                f"unknown probe engine {engine!r} "
                f"(expected one of {sorted(PROBE_ENGINES)})"
            ) from None
        eng = engine_cls(self, groups)
        memo: Dict[int, RunOutcome] = {}
        applied_by_k: Dict[int, List[int]] = {}

        def probe(k: int) -> Optional[RunOutcome]:
            if k in memo:
                eng.seek(k)  # move state only; the outcome is known
                result.last_outcome = memo[k]
                return memo[k]
            applied_by_k[k] = eng.seek(k)
            eng.begin_reexec()
            outcome = self._attempt(result, max(1, len(applied_by_k[k])))
            eng.end_reexec()
            if outcome is not None:
                memo[k] = outcome
            return outcome

        full = probe(len(groups))
        if full is None or not full.ok:
            eng.abort()
            result.notes = "full reversion did not recover; bisect aborted"
            return self._finish(result)
        lo, hi = 1, len(groups)  # smallest k in [1, n] that recovers
        best = len(groups)
        while lo < hi:
            mid = (lo + hi) // 2
            outcome = probe(mid)
            if outcome is None:
                break  # budget exhausted; keep the best known prefix
            if outcome.ok:
                best, hi = mid, mid
            else:
                lo = mid + 1
        # leave the pool in the minimal recovered state; ``best`` is
        # always memoized, so this is a pure state move — no re-execution
        probe(best)
        eng.finish()
        result.recovered = True
        result.reverted_seqs = list(applied_by_k[best])
        result.notes = f"bisect kept {best} of {len(groups)} reversion groups"
        # same consistency pass purge runs: updates forward-dependent on
        # the reverted prefix (e.g. accounting counters incremented over
        # reverted state) are reverted too, else a partial prefix leaves
        # shared words embedding discarded history
        extra = self._purge_forward_pass(
            result, group_cands[:best], min(applied_by_k[best], default=0)
        )
        if extra:
            confirm = self._attempt(result, extra)
            result.recovered = confirm is not None and confirm.ok
        return self._finish(result)

    # ------------------------------------------------------------------
    def _begin(self, mode: str) -> MitigationResult:
        """Start a strategy: records the start time so the result's
        duration covers only *this* run even on a shared clock."""
        # absorb the workload's staged tail in one merge up front, so
        # every query this strategy issues hits fully built indexes
        self.log._flush_staging()
        self._t0 = self.clock.now
        return MitigationResult(recovered=False, mode=mode)

    def _attempt(self, result: MitigationResult, reverted_count: int) -> Optional[RunOutcome]:
        """Charge time, re-execute; None when the budget is exhausted."""
        if result.attempts >= self.max_attempts:
            result.timed_out = True
            return None
        # the re-execution delay is charged to the clock, and _finish
        # reports the clock delta — so it reaches duration_seconds too
        # (the seed added a literal 0.0 here and under-reported Fig. 8)
        self.clock.advance(self.revert_cost * reverted_count)
        self.clock.advance(self.reexec_delay())
        if self.clock.now > self.timeout_seconds:
            result.timed_out = True
            return None
        result.attempts += 1
        outcome = self.reexec()
        result.last_outcome = outcome
        return outcome

    def _finish(self, result: MitigationResult) -> MitigationResult:
        result.duration_seconds = self.clock.now - self._t0
        return result
