"""Reversion-plan computation (paper Section 4.5).

``slice × trace × checkpoint log -> candidate sequence numbers``:

* backward-slice the fault instruction over the PDG, retaining nodes with
  persistent operands,
* for each retained node, look up its GUID's runtime PM addresses in the
  trace,
* for each address, collect the sequence numbers of checkpoint-log
  versions covering it,
* apply a policy function to order and de-duplicate the result.

The default policy de-duplicates and sorts newest-first (reversions walk
back in time towards the root cause).  The distance policy additionally
orders by slice distance from the fault and can cap the distance — the
paper's "more complex function".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.analysis import AnalysisResult
from repro.analysis.slicing import backward_slice, slice_distances
from repro.checkpoint.log import CheckpointLog
from repro.instrument.guids import GuidMap
from repro.instrument.tracer import PMTrace


@dataclass(frozen=True)
class Candidate:
    """One potentially revertible PM update."""

    seq: int
    addr: int
    guid: str
    slice_iid: int


@dataclass
class ReversionPlan:
    """Ordered candidate list plus slicing metadata."""

    fault_iid: int
    candidates: List[Candidate] = field(default_factory=list)
    slice_size: int = 0
    pm_slice_size: int = 0
    #: seconds spent slicing (Table 9's "Slicing" row)
    slicing_seconds: float = 0.0

    def seqs(self) -> List[int]:
        return [c.seq for c in self.candidates]

    @property
    def empty(self) -> bool:
        """An empty plan means the failure is not caused by bad PM state
        (detector false alarm); the reactor aborts and simply restarts."""
        return not self.candidates


PolicyFn = Callable[[List[Candidate], "PlanContext"], List[Candidate]]


@dataclass
class PlanContext:
    """Inputs a policy function may consult."""

    analysis: AnalysisResult
    fault_iid: int


def default_policy(candidates: List[Candidate], ctx: PlanContext) -> List[Candidate]:
    """De-duplicate by sequence number; newest first."""
    best: Dict[int, Candidate] = {}
    for c in candidates:
        best.setdefault(c.seq, c)
    return [best[s] for s in sorted(best, reverse=True)]


#: slice-node opcodes that represent genuine value flow; candidates found
#: through them rank ahead of candidates found only through address
#: computations (gep) or persistence plumbing (persist/flush/txadd),
#: which alias to many unrelated sequence numbers
_VALUE_FLOW_OPS = frozenset({"store", "load", "alloc", "realloc", "setroot", "getroot"})


def distance_policy(max_distance: Optional[int] = None) -> PolicyFn:
    """Order by (value-flow rank, slice distance, newest-first).

    ``max_distance`` filters out candidates whose slice node is too far
    from the fault instruction, bounding excessive reversions.
    """

    def policy(candidates: List[Candidate], ctx: PlanContext) -> List[Candidate]:
        dist = slice_distances(ctx.analysis.pdg, ctx.fault_iid)
        module = ctx.analysis.module
        best: Dict[int, Candidate] = {}
        order: Dict[int, tuple] = {}
        for c in candidates:
            d = dist.get(c.slice_iid, 1 << 30)
            if max_distance is not None and d > max_distance:
                continue
            rank = 0 if module.instr(c.slice_iid).op in _VALUE_FLOW_OPS else 1
            key = (rank, d)
            if c.seq not in best or key < order[c.seq]:
                best[c.seq] = c
                order[c.seq] = key
        return sorted(best.values(), key=lambda c: (order[c.seq], -c.seq))

    return policy


def compute_plan(
    analysis: AnalysisResult,
    guid_map: GuidMap,
    trace: PMTrace,
    log: CheckpointLog,
    fault_iid: int,
    policy: Optional[PolicyFn] = None,
    max_slice_nodes: Optional[int] = None,
    slice_override: Optional[Set[int]] = None,
    yield_fn: Optional[Callable[[], None]] = None,
) -> ReversionPlan:
    """Build the candidate list for one fault instruction.

    ``slice_override`` substitutes an externally computed slice (e.g. a
    *dynamic* slice from :mod:`repro.analysis.dynslice`) for the static
    backward slice; everything downstream (PM filtering, trace/log join,
    policy ordering) is unchanged.  ``yield_fn`` (when set) is invoked
    once per PM slice node during the trace/log join so a live server
    can keep serving while the plan is computed.
    """
    start = time.perf_counter()
    trace.flush()  # catch up on buffered records before joining
    log._flush_staging()  # merge the staged tail before the trace/log join
    if slice_override is not None:
        full_slice = set(slice_override)
    else:
        full_slice = backward_slice(
            analysis.pdg, fault_iid, max_nodes=max_slice_nodes
        )
    pm_nodes: Set[int] = {n for n in full_slice if analysis.pm.is_pm_instr(n)}

    candidates: List[Candidate] = []
    for iid in pm_nodes:
        if yield_fn is not None:
            yield_fn()
        guid = guid_map.guid_of(iid)
        if guid is None:
            continue
        for addr in trace.addresses_for_guid(guid):
            for seq in log.update_seqs_for_address(addr):
                candidates.append(
                    Candidate(seq=seq, addr=addr, guid=guid, slice_iid=iid)
                )

    ctx = PlanContext(analysis=analysis, fault_iid=fault_iid)
    chosen_policy = policy if policy is not None else default_policy
    ordered = chosen_policy(candidates, ctx)
    return ReversionPlan(
        fault_iid=fault_iid,
        candidates=ordered,
        slice_size=len(full_slice),
        pm_slice_size=len(pm_nodes),
        slicing_seconds=time.perf_counter() - start,
    )
