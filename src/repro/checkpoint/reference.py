"""Linear-scan reference implementations of the checkpoint-log queries.

:mod:`repro.checkpoint.log` answers every reactor query from
incrementally maintained indexes.  This module keeps the original
(pre-index) full-scan implementations verbatim, for two purposes:

* **equivalence testing** — property tests assert that every indexed
  query returns results identical (including ordering) to the scans on
  randomized event streams;
* **benchmarking** — ``benchmarks/bench_perf_hotpaths.py`` times the
  indexed reactor against :class:`LinearScanReverter` on a large
  synthetic log to track the speedup across PRs.

Nothing in the production pipeline imports this module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.checkpoint.log import (
    CheckpointEntry,
    CheckpointLog,
    LogEvent,
    Version,
)
from repro.errors import AllocationError, CheckpointError
from repro.reactor.revert import Reverter


# ----------------------------------------------------------------------
# query references (the seed's CheckpointLog method bodies)
# ----------------------------------------------------------------------
def entries_overlapping(log: CheckpointLog, addr: int) -> List[CheckpointEntry]:
    out = []
    for entry in log.entries.values():
        latest = entry.latest()
        if latest is None:
            continue
        if entry.address <= addr < entry.address + latest.size:
            out.append(entry)
    return out


def update_seqs_for_address(log: CheckpointLog, addr: int) -> List[int]:
    seqs: List[int] = []
    for entry in entries_overlapping(log, addr):
        seqs.extend(v.seq for v in entry.versions)
    return seqs


def events_after(log: CheckpointLog, seq: int) -> List[LogEvent]:
    return [ev for ev in log.events if ev.seq > seq]


def live_unfreed_allocs(log: CheckpointLog) -> Dict[int, int]:
    live: Dict[int, int] = {}
    for ev in log.events:
        if ev.kind == "alloc":
            live[ev.addr] = ev.nwords
        elif ev.kind == "free":
            live.pop(ev.addr, None)
    return live


def expected_word(log: CheckpointLog, addr: int) -> Optional[int]:
    best_seq = -1
    best_val: Optional[int] = None
    for entry in log.entries.values():
        for version in entry.versions:
            if entry.address <= addr < entry.address + version.size:
                if version.seq > best_seq:
                    best_seq = version.seq
                    best_val = version.data[addr - entry.address]
    return best_val


def newest_free_covering(log: CheckpointLog, target: int) -> Optional[LogEvent]:
    for ev in sorted(log.events, key=lambda e: -e.seq):
        if ev.kind == "free" and ev.addr <= target < ev.addr + ev.nwords:
            return ev
    return None


def update_addrs_since(log: CheckpointLog, seq: int) -> List[int]:
    addrs: List[int] = []
    for entry in log.entries.values():
        if any(v.seq >= seq for v in entry.versions):
            addrs.append(entry.address)
    return addrs


# ----------------------------------------------------------------------
# the seed write path, verbatim
# ----------------------------------------------------------------------
class SeedWriteLog(CheckpointLog):
    """A :class:`CheckpointLog` recording with the *seed's* write path.

    The seed maintained no derived indexes, so its ``record_*`` methods
    only appended to the entry table and the event stream.  Keeping that
    path lets ``benchmarks/bench_perf_hotpaths.py`` measure what the
    PR 1 indexes' incremental maintenance costs on the checkpoint
    *write* side (every persisted range pays it at runtime, Figure 12's
    overhead path).  Reads on this class are **not** valid — the derived
    indexes stay empty — so it must never leave the benchmark.
    """

    def record_update(
        self, addr: int, nwords: int, values: List[int], tx_id: int = 0
    ) -> int:
        if len(values) != nwords:
            raise CheckpointError(
                f"update at {addr:#x}: {len(values)} values for {nwords} words"
            )
        ev = self._seed_event("update", addr, nwords, tx_id)
        entry = self.entries.get(addr)
        if entry is None:
            entry = CheckpointEntry(addr, self.max_versions)
            self.entries[addr] = entry
        entry.add_version(Version(ev.seq, tuple(values), nwords, tx_id))
        if tx_id:
            self.tx_members.setdefault(tx_id, []).append(ev.seq)
        self.total_updates += 1
        return ev.seq

    def record_alloc(self, addr: int, nwords: int) -> int:
        return self._seed_event("alloc", addr, nwords).seq

    def record_free(self, addr: int, nwords: int) -> int:
        return self._seed_event("free", addr, nwords).seq

    def record_tx_begin(self, tx_id: int) -> int:
        return self._seed_event("tx-begin", tx_id=tx_id).seq

    def record_tx_commit(self, tx_id: int) -> int:
        return self._seed_event("tx-commit", tx_id=tx_id).seq

    def _seed_event(
        self, kind: str, addr: int = 0, nwords: int = 0, tx_id: int = 0
    ) -> LogEvent:
        ev = LogEvent(self._next(), kind, addr, nwords, tx_id)
        self.events.append(ev)
        self._event_seqs.append(ev.seq)
        return ev


# ----------------------------------------------------------------------
# the seed Reverter's hot paths, verbatim
# ----------------------------------------------------------------------
class LinearScanReverter(Reverter):
    """A :class:`Reverter` running the pre-index full-scan hot paths.

    Used as the benchmark baseline and the byte-identical-pool oracle in
    the equivalence tests; must never be used in production code.
    """

    def _plan_range_before(self, addr: int, size: int, cut_seq: int):
        writes = {addr + i: 0 for i in range(size)}
        informed: Set[int] = set()
        overlapping = []
        for entry in self.log.entries.values():
            pre_cut = [v for v in entry.versions if v.seq < cut_seq]
            if not pre_cut and entry.history_evicted and entry.versions:
                overlapping.append((-1, entry.address, entry.versions[0]))
                continue
            for version in pre_cut:
                overlapping.append((version.seq, entry.address, version))
        for _seq, base, version in sorted(
            overlapping, key=lambda t: (t[0], t[1])
        ):
            if not (base < addr + size and addr < base + version.size):
                continue
            for i, value in enumerate(version.data):
                a = base + i
                if addr <= a < addr + size:
                    writes[a] = value
                    informed.add(a)
        return writes, informed

    def _expected_word(self, addr: int) -> Optional[int]:
        return expected_word(self.log, addr)

    def _unfree_covering(self, target: int) -> bool:
        ev = newest_free_covering(self.log, target)
        if ev is None:
            return False
        try:
            self.allocator.unfree(ev.addr, ev.nwords)
            return True
        except AllocationError:
            return False

    def rollback_to_before(self, seq: int) -> List[int]:
        reverted: List[int] = []
        touched: List[tuple] = []
        for entry in self.log.entries.values():
            newer = [v for v in entry.versions if v.seq >= seq]
            if not newer:
                continue
            reverted.extend(v.seq for v in newer)
            touched.append((entry.address, max(v.size for v in entry.versions)))
        for addr, size in touched:
            self.restore_range_before(addr, size, seq)
        for ev in sorted(events_after(self.log, seq - 1), key=lambda e: -e.seq):
            if ev.kind == "free":
                try:
                    self.allocator.unfree(ev.addr, ev.nwords)
                except AllocationError:
                    pass
            elif ev.kind == "alloc":
                if self.allocator.is_allocated(ev.addr):
                    try:
                        self.allocator.free(ev.addr)
                    except AllocationError:  # pragma: no cover - defensive
                        pass
        return reverted
