"""Wires the checkpoint log into a running PM system (Section 4.2).

The manager registers hooks on the pool, the transaction manager and the
allocator, so that:

* every explicitly persisted range becomes a checkpoint-log version
  *after* it is durable (never prematurely — the paper's "respects the
  program's persistence points"),
* transaction commits bracket their member updates with begin/commit
  marks, so the reactor can revert whole transactions,
* frees and reallocs are recorded, enabling free-reversion and the
  ``old_entry``/``new_entry`` linking.

Checkpointing is transparent to the guest program: it costs pool-hook
callbacks only, which is the runtime overhead Figure 12 measures.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import faultinject
from repro.checkpoint.log import MAX_VERSIONS, CheckpointLog
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.pmem.tx import TransactionManager


class CheckpointManager:
    """Attaches a :class:`CheckpointLog` to one pool's persistence points."""

    def __init__(
        self,
        pool: PMPool,
        allocator: PMAllocator,
        txman: TransactionManager,
        max_versions: int = MAX_VERSIONS,
        log: Optional[CheckpointLog] = None,
    ):
        self.pool = pool
        self.allocator = allocator
        self.txman = txman
        self.log = log if log is not None else CheckpointLog(max_versions)
        self.enabled = True
        #: count of checkpointed ranges, for the overhead model
        self.updates_recorded = 0
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Register all hooks; idempotent."""
        if self._attached:
            return
        self.pool.add_persist_hook(self._on_persist)
        self.txman.add_begin_hook(self._on_tx_begin)
        self.txman.add_commit_hook(self._on_tx_commit)
        self.allocator.add_alloc_hook(self._on_alloc)
        self.allocator.add_free_hook(self._on_free)
        self.allocator.add_realloc_hook(self._on_realloc)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self.pool.remove_persist_hook(self._on_persist)
        self._attached = False
        self.enabled = False

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _on_persist(self, addr: int, nwords: int, values: List[int], tag: str) -> None:
        if not self.enabled:
            return
        # crash here = the process died after the range became durable
        # but before the checkpoint hook recorded it (log behind pool)
        spec = faultinject.fire("ckpt.record_update")
        tx_id = self.txman.current_tx_id if tag == "tx-commit" else 0
        seq = self.log.record_update(addr, nwords, values, tx_id=tx_id)
        self.updates_recorded += 1
        if spec is not None and spec.kind == "bitflip":
            self._flip_recorded_bit(addr, seq, spec.seed)

    def _flip_recorded_bit(self, addr: int, seq: int, seed: int) -> None:
        """Corrupt one bit of the just-recorded version's data in place.

        Models media corruption of the checkpoint region.  The version's
        checksum was computed over the original data, so the flip is
        detectable by ``CheckpointLog.verify_checksums`` — which is the
        property the injection sweep asserts.
        """
        import random

        entry = self.log.entries.get(addr)
        version = entry.version_with_seq(seq) if entry is not None else None
        if version is None or not version.data:  # pragma: no cover - defensive
            return
        rng = random.Random((seed << 16) ^ seq)
        i = rng.randrange(len(version.data))
        bit = 1 << rng.randrange(32)
        data = list(version.data)
        data[i] ^= bit
        version.data = tuple(data)

    def _on_tx_begin(self, tx_id: int) -> None:
        if self.enabled:
            faultinject.fire("ckpt.record_tx_begin")
            self.log.record_tx_begin(tx_id)

    def _on_tx_commit(self, tx_id: int, ranges: List[Tuple[int, int]]) -> None:
        if self.enabled:
            faultinject.fire("ckpt.record_tx_commit")
            self.log.record_tx_commit(tx_id)

    def _on_alloc(self, addr: int, nwords: int) -> None:
        if self.enabled:
            faultinject.fire("ckpt.record_alloc")
            self.log.record_alloc(addr, nwords)

    def _on_free(self, addr: int, nwords: int) -> None:
        if self.enabled:
            faultinject.fire("ckpt.record_free")
            self.log.record_free(addr, nwords)

    def _on_realloc(self, old_addr: int, new_addr: int, nwords: int) -> None:
        if self.enabled:
            self.log.link_realloc(old_addr, new_addr)
