"""The versioned checkpoint log (paper Figure 5).

One :class:`CheckpointEntry` per persisted PM address range; each entry
keeps the last ``MAX_VERSIONS`` versions of the range's data together
with the atomic sequence number that orders all PM updates by logical
time.  Transaction begin/commit marks and alloc/free events share the
same sequence space so the reactor can group and order reversions.

Indexes
-------

Every reactor query used to be a linear scan over all entries or all
events, which made mitigation time quadratic in log size.  The log now
maintains derived indexes incrementally as events are recorded:

* a **size-class interval index** answering "which entries could
  intersect range ``[a, a+s)``": entries are bucketed by the power-of-two
  class of their widest retained version, each bucket a sorted
  base-address list, so a query costs ``O(log n + w)`` per non-empty
  class (at most ``~32`` classes) with ``w`` the matches of *that*
  class.  The seed used one global ``_max_version_size`` window, which a
  single multi-KB persisted range widened for **every** lookup,
  degrading planning toward a full scan; here a huge range only widens
  the window of its own (sparsely populated) class;
* the **event stream position index** — events already arrive in
  sequence order, so ``events_after`` is a single ``bisect_right``;
* a **free-event address index** (per-base event lists plus a sorted
  base-address list) answering "newest free covering address ``a``"
  without sorting the whole event stream;
* an incrementally maintained **live-allocation map**, replacing the
  ``O(events)`` replay that ``live_unfreed_allocs`` used to do;
* a windowed **newest-version-covering-word** query (``expected_word``)
  for the reactor's divergence repair.

All queries preserve the exact result (including list/dict ordering) of
the original linear scans; :mod:`repro.checkpoint.reference` keeps the
scan implementations for equivalence testing and benchmarking.
Deserialized logs (``instrument.artifacts``) call
:meth:`CheckpointLog.rebuild_indexes` after populating the raw state.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CheckpointError, CorruptLogError

#: default maximum versions retained per entry (paper default: 3)
MAX_VERSIONS = 3


def version_crc(addr: int, seq: int, data: Tuple[int, ...], size: int, tx_id: int) -> int:
    """Checksum binding a version's data to its identity.

    Computed when the version is recorded and carried through
    serialization; any later divergence of the data words (a bit flip in
    the checkpoint region) is caught by
    :meth:`CheckpointLog.verify_checksums`.
    """
    head = f"{addr}:{seq}:{size}:{tx_id}:".encode()
    body = ",".join(map(str, data)).encode()
    return zlib.crc32(body, zlib.crc32(head)) & 0xFFFFFFFF


@dataclass
class Version:
    """One version of one address range."""

    seq: int
    data: Tuple[int, ...]
    size: int
    tx_id: int = 0
    #: checksum from :func:`version_crc`; -1 = recorded without one
    #: (reference/seed logs), which the verifier skips
    crc: int = -1


@dataclass
class LogEvent:
    """One entry in the global, sequence-ordered event stream."""

    seq: int
    kind: str  # "update" | "alloc" | "free" | "tx-begin" | "tx-commit"
    addr: int = 0
    nwords: int = 0
    tx_id: int = 0


class CheckpointEntry:
    """Versions of one PM address range, newest last."""

    __slots__ = (
        "address",
        "versions",
        "old_entry",
        "new_entry",
        "max_versions",
        "total_versions",
        "order",
        "max_size",
    )

    def __init__(self, address: int, max_versions: int = MAX_VERSIONS):
        self.address = address
        self.versions: List[Version] = []
        #: address of the pre-realloc incarnation of this object (or None)
        self.old_entry: Optional[int] = None
        #: address this object moved to on realloc (or None)
        self.new_entry: Optional[int] = None
        self.max_versions = max_versions
        #: versions ever recorded; > len(versions) when history was evicted
        self.total_versions = 0
        #: creation rank in the owning log; windowed queries sort matches
        #: by it so results keep the pre-index (dict-insertion) order
        self.order = 0
        #: widest retained version (monotone while recording); drives the
        #: owning log's size-class interval index
        self.max_size = 1

    def add_version(self, version: Version) -> None:
        self.versions.append(version)
        self.total_versions += 1
        if len(self.versions) > self.max_versions:
            self.versions.pop(0)

    @property
    def history_evicted(self) -> bool:
        """True when versions older than the retained ring were dropped."""
        return self.total_versions > len(self.versions)

    def version_with_seq(self, seq: int) -> Optional[Version]:
        """The retained version recorded at exactly ``seq``, if any."""
        for v in self.versions:
            if v.seq == seq:
                return v
        return None

    def version_index(self, seq: int) -> Optional[int]:
        """Index of the version with sequence number ``seq`` in the ring."""
        for i, v in enumerate(self.versions):
            if v.seq == seq:
                return i
        return None

    def latest(self) -> Optional[Version]:
        """The newest retained version (None for an empty entry)."""
        return self.versions[-1] if self.versions else None

    def latest_before(self, seq: int) -> Optional[Version]:
        """Latest version strictly older than ``seq``."""
        best: Optional[Version] = None
        for v in self.versions:
            if v.seq < seq and (best is None or v.seq > best.seq):
                best = v
        return best


class CheckpointLog:
    """All entries plus the sequence-ordered event stream."""

    def __init__(self, max_versions: int = MAX_VERSIONS):
        self.max_versions = max_versions
        self.entries: Dict[int, CheckpointEntry] = {}
        self.events: List[LogEvent] = []
        self._next_seq = 1
        #: update-event seqs grouped by transaction id
        self.tx_members: Dict[int, List[int]] = {}
        #: seq -> event, for O(1) reactor lookups
        self._event_by_seq: Dict[int, LogEvent] = {}
        # counters for the data-loss metrics
        self.total_updates = 0
        # ---- derived indexes (kept in sync by the record_* methods) ----
        #: size-class interval index: class exponent -> sorted base
        #: addresses of entries whose ``max_size`` fits in ``2**exp``.
        #: An entry in class ``e`` can only intersect ``[lo, hi)`` when
        #: its base lies in ``[lo - 2**e + 1, hi)``
        self._size_class_addrs: Dict[int, List[int]] = {}
        #: entry base address -> its current class exponent
        self._entry_class: Dict[int, int] = {}
        #: event seqs, parallel to ``events`` (ascending by construction)
        self._event_seqs: List[int] = []
        #: free events grouped by base address, each list seq-ascending
        self._frees_by_addr: Dict[int, List[LogEvent]] = {}
        #: sorted base addresses of free events
        self._free_addrs: List[int] = []
        #: widest freed block seen so far
        self._max_free_size = 1
        #: alloc'd-and-not-yet-freed blocks, in first-alloc order —
        #: maintained incrementally instead of replaying all events
        self._live_allocs: Dict[int, int] = {}
        #: (addr, Version) pairs removed by :meth:`quarantine_corrupt`
        self.quarantined: List[Tuple[int, Version]] = []

    # ------------------------------------------------------------------
    def _next(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _event(self, kind: str, addr: int = 0, nwords: int = 0, tx_id: int = 0) -> LogEvent:
        ev = LogEvent(self._next(), kind, addr, nwords, tx_id)
        self.events.append(ev)
        self._event_seqs.append(ev.seq)
        self._event_by_seq[ev.seq] = ev
        return ev

    def _new_entry(self, addr: int) -> CheckpointEntry:
        entry = CheckpointEntry(addr, self.max_versions)
        entry.order = len(self.entries)
        self.entries[addr] = entry
        self._entry_class[addr] = 0
        insort(self._size_class_addrs.setdefault(0, []), addr)
        return entry

    def _reclass_entry(self, entry: CheckpointEntry) -> None:
        """Move an entry to the size class covering its ``max_size``."""
        exp = (entry.max_size - 1).bit_length()
        old = self._entry_class.get(entry.address)
        if old == exp:
            return
        if old is not None:
            addrs = self._size_class_addrs[old]
            addrs.pop(bisect_left(addrs, entry.address))
        self._entry_class[entry.address] = exp
        insort(self._size_class_addrs.setdefault(exp, []), entry.address)

    # ------------------------------------------------------------------
    def record_update(
        self, addr: int, nwords: int, values: List[int], tx_id: int = 0
    ) -> int:
        """Record one persisted range; returns its sequence number."""
        if len(values) != nwords:
            raise CheckpointError(
                f"update at {addr:#x}: {len(values)} values for {nwords} words"
            )
        ev = self._event("update", addr, nwords, tx_id)
        entry = self.entries.get(addr)
        if entry is None:
            entry = self._new_entry(addr)
        data = tuple(values)
        entry.add_version(Version(
            ev.seq, data, nwords, tx_id,
            crc=version_crc(addr, ev.seq, data, nwords, tx_id),
        ))
        if nwords > entry.max_size:
            entry.max_size = nwords
            self._reclass_entry(entry)
        if tx_id:
            self.tx_members.setdefault(tx_id, []).append(ev.seq)
        self.total_updates += 1
        return ev.seq

    def record_alloc(self, addr: int, nwords: int) -> int:
        """Record a PM allocation event; returns its sequence number."""
        seq = self._event("alloc", addr, nwords).seq
        self._live_allocs[addr] = nwords
        return seq

    def record_free(self, addr: int, nwords: int) -> int:
        """Record a PM free event; returns its sequence number."""
        ev = self._event("free", addr, nwords)
        self._live_allocs.pop(addr, None)
        if addr not in self._frees_by_addr:
            self._frees_by_addr[addr] = []
            insort(self._free_addrs, addr)
        self._frees_by_addr[addr].append(ev)
        if nwords > self._max_free_size:
            self._max_free_size = nwords
        return ev.seq

    def record_tx_begin(self, tx_id: int) -> int:
        """Insert a transaction-begin mark into the event stream."""
        return self._event("tx-begin", tx_id=tx_id).seq

    def record_tx_commit(self, tx_id: int) -> int:
        """Insert a transaction-commit mark into the event stream."""
        return self._event("tx-commit", tx_id=tx_id).seq

    def link_realloc(self, old_addr: int, new_addr: int) -> None:
        """Connect the two incarnations of a resized object."""
        old = self.entries.get(old_addr)
        if old is not None:
            old.new_entry = new_addr
        new = self.entries.get(new_addr)
        if new is None:
            new = self._new_entry(new_addr)
        new.old_entry = old_addr

    # ------------------------------------------------------------------
    def validate_raw_state(self) -> None:
        """Raise :class:`CorruptLogError` when the raw entry/event state
        violates the log's structural invariants.

        Deserialized logs used to be trusted blindly; a corrupt file
        (torn tail, bit rot, a buggy writer) would silently get indexes
        rebuilt over garbage.  Checked invariants:

        * event sequence numbers are strictly increasing and below
          ``next_seq``;
        * each entry's retained versions are seq-ascending, below
          ``next_seq``, and consistent with ``total_versions``;
        * realloc forward links (``new_entry``) target an existing entry
          whose ``old_entry`` points back (backward links may dangle:
          the pre-realloc incarnation may never have been persisted).
        """
        last = 0
        for ev in self.events:
            if ev.seq <= last:
                raise CorruptLogError(
                    f"event stream out of order: seq {ev.seq} after {last}"
                )
            last = ev.seq
        if last >= self._next_seq:
            raise CorruptLogError(
                f"event seq {last} >= next_seq {self._next_seq}"
            )
        for addr, entry in self.entries.items():
            if entry.address != addr:
                raise CorruptLogError(
                    f"entry keyed {addr:#x} claims address {entry.address:#x}"
                )
            prev = 0
            for v in entry.versions:
                if v.seq <= prev:
                    raise CorruptLogError(
                        f"entry {addr:#x}: version seqs out of order "
                        f"({v.seq} after {prev})"
                    )
                if v.seq >= self._next_seq:
                    raise CorruptLogError(
                        f"entry {addr:#x}: version seq {v.seq} >= next_seq "
                        f"{self._next_seq}"
                    )
                prev = v.seq
            if entry.total_versions < len(entry.versions):
                raise CorruptLogError(
                    f"entry {addr:#x}: total_versions {entry.total_versions} "
                    f"< {len(entry.versions)} retained"
                )
            if entry.new_entry is not None:
                target = self.entries.get(entry.new_entry)
                if target is None or target.old_entry != addr:
                    raise CorruptLogError(
                        f"entry {addr:#x}: dangling realloc link to "
                        f"{entry.new_entry:#x}"
                    )

    def rebuild_indexes(self, validate: bool = True) -> None:
        """Recompute every derived index from ``entries`` and ``events``.

        Deserialization (:mod:`repro.instrument.artifacts`) populates the
        raw entry/event state directly; this restores the invariants the
        record_* methods maintain incrementally.  ``validate`` (default)
        runs :meth:`validate_raw_state` first so a corrupt log raises a
        typed :class:`CorruptLogError` instead of silently getting
        indexes rebuilt over bad state; repair paths that have already
        quarantined what they could pass ``validate=False``.
        """
        if validate:
            self.validate_raw_state()
        self._size_class_addrs = {}
        self._entry_class = {}
        for order, entry in enumerate(self.entries.values()):
            entry.order = order
            entry.max_size = max((v.size for v in entry.versions), default=1)
            exp = (entry.max_size - 1).bit_length()
            self._entry_class[entry.address] = exp
            self._size_class_addrs.setdefault(exp, []).append(entry.address)
        for addrs in self._size_class_addrs.values():
            addrs.sort()
        self._event_seqs = [ev.seq for ev in self.events]
        self._frees_by_addr = {}
        self._max_free_size = 1
        self._live_allocs = {}
        for ev in self.events:
            if ev.kind == "free":
                self._frees_by_addr.setdefault(ev.addr, []).append(ev)
                if ev.nwords > self._max_free_size:
                    self._max_free_size = ev.nwords
                self._live_allocs.pop(ev.addr, None)
            elif ev.kind == "alloc":
                self._live_allocs[ev.addr] = ev.nwords
        self._free_addrs = sorted(self._frees_by_addr)

    def _entries_intersecting(self, lo: int, hi: int) -> List[CheckpointEntry]:
        """Entries whose ``[address, address + max_size)`` span can
        intersect ``[lo, hi)``, in creation order.

        One bisect window per non-empty size class: class ``e`` holds
        entries no wider than ``2**e`` words, so only bases in
        ``[lo - 2**e + 1, hi)`` can reach into the query range.  A
        superset filter — an entry's *versions* may be narrower than its
        class bound — and callers re-check exactly per version.
        """
        entries = self.entries
        matches: List[CheckpointEntry] = []
        for exp, addrs in self._size_class_addrs.items():
            i = bisect_left(addrs, lo - (1 << exp) + 1)
            j = bisect_left(addrs, hi, lo=i)
            for a in addrs[i:j]:
                matches.append(entries[a])
        matches.sort(key=lambda e: e.order)
        return matches

    # ------------------------------------------------------------------
    # queries used by the reactor
    # ------------------------------------------------------------------
    def event(self, seq: int) -> Optional[LogEvent]:
        """The event recorded at ``seq`` (None if out of range)."""
        return self._event_by_seq.get(seq)

    def entries_overlapping(self, addr: int) -> List[CheckpointEntry]:
        """Entries whose latest range covers ``addr``."""
        out = []
        for entry in self._entries_intersecting(addr, addr + 1):
            latest = entry.latest()
            if latest is None:
                continue
            if entry.address <= addr < entry.address + latest.size:
                out.append(entry)
        return out

    def entries_possibly_overlapping(self, addr: int, size: int) -> List[CheckpointEntry]:
        """Entries whose *any* retained version could overlap
        ``[addr, addr+size)`` — a superset filter for range
        reconstruction (callers re-check per version)."""
        return self._entries_intersecting(addr, addr + size)

    def update_seqs_for_address(self, addr: int) -> List[int]:
        """Sequence numbers of all retained versions covering ``addr``."""
        seqs: List[int] = []
        for entry in self.entries_overlapping(addr):
            seqs.extend(v.seq for v in entry.versions)
        return seqs

    def seqs_in_tx(self, tx_id: int) -> List[int]:
        """Update sequence numbers belonging to one transaction."""
        return list(self.tx_members.get(tx_id, ()))

    def tx_of_seq(self, seq: int) -> int:
        """Transaction id of an update (0 when not transactional)."""
        ev = self._event_by_seq.get(seq)
        return ev.tx_id if ev else 0

    def max_seq(self) -> int:
        """The newest sequence number issued so far."""
        return self._next_seq - 1

    def events_after(self, seq: int) -> List[LogEvent]:
        """All events with sequence number strictly greater than ``seq``."""
        return self.events[bisect_right(self._event_seqs, seq):]

    def update_addrs_since(self, seq: int) -> List[int]:
        """Addresses with an update event at-or-after ``seq``, each listed
        once, ordered by the owning entry's creation rank (the order the
        pre-index reactor visited them)."""
        seen: set = set()
        for ev in self.events_after(seq - 1):
            if ev.kind == "update":
                seen.add(ev.addr)
        addrs = list(seen)
        addrs.sort(key=lambda a: self.entries[a].order)
        return addrs

    def newest_free_covering(self, target: int) -> Optional[LogEvent]:
        """The newest free event whose block contains ``target``."""
        best: Optional[LogEvent] = None
        i = bisect_left(self._free_addrs, target - self._max_free_size + 1)
        j = bisect_right(self._free_addrs, target, lo=i)
        for base in self._free_addrs[i:j]:
            for ev in reversed(self._frees_by_addr[base]):
                if ev.addr <= target < ev.addr + ev.nwords:
                    if best is None or ev.seq > best.seq:
                        best = ev
                    break
        return best

    def expected_word(self, addr: int) -> Optional[int]:
        """Value the newest retained version covering ``addr`` holds for
        it (None when no logged range covers the address)."""
        best_seq = -1
        best_val: Optional[int] = None
        for entry in self._entries_intersecting(addr, addr + 1):
            base = entry.address
            for version in entry.versions:
                if base <= addr < base + version.size and version.seq > best_seq:
                    best_seq = version.seq
                    best_val = version.data[addr - base]
        return best_val

    def live_unfreed_allocs(self) -> Dict[int, int]:
        """Blocks with an alloc event and no later free (leak candidates)."""
        return dict(self._live_allocs)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def verify_checksums(self) -> List[Tuple[int, int]]:
        """(address, seq) of retained versions whose data no longer
        matches the checksum recorded with them.

        A mismatch means the checkpoint region itself was corrupted out
        of band (bit flip, torn write) — the version's data must not be
        trusted by reversion.  Versions recorded without a checksum
        (``crc == -1``, e.g. seed-era logs) are skipped.
        """
        bad: List[Tuple[int, int]] = []
        for entry in self.entries.values():
            for v in entry.versions:
                if v.crc >= 0 and version_crc(
                    entry.address, v.seq, v.data, v.size, v.tx_id
                ) != v.crc:
                    bad.append((entry.address, v.seq))
        return bad

    def quarantine_corrupt(self) -> List[Tuple[int, Version]]:
        """Remove checksum-failing versions from the ring (and record
        them in :attr:`quarantined`) instead of letting reversion
        deserialize garbage.

        ``total_versions`` is left untouched, so the entry reports
        ``history_evicted`` and the reverter applies its evicted-history
        floor rather than trusting a hole in the ring.  Returns the
        versions quarantined by this call.
        """
        bad = set(self.verify_checksums())
        if not bad:
            return []
        newly: List[Tuple[int, Version]] = []
        for addr, entry in self.entries.items():
            kept = []
            for v in entry.versions:
                if (addr, v.seq) in bad:
                    newly.append((addr, v))
                else:
                    kept.append(v)
            entry.versions = kept
        self.quarantined.extend(newly)
        self.rebuild_indexes(validate=False)
        return newly
