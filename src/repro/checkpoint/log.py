"""The versioned checkpoint log (paper Figure 5).

One :class:`CheckpointEntry` per persisted PM address range; each entry
keeps the last ``MAX_VERSIONS`` versions of the range's data together
with the atomic sequence number that orders all PM updates by logical
time.  Transaction begin/commit marks and alloc/free events share the
same sequence space so the reactor can group and order reversions.

Staged index maintenance
------------------------

The ``record_*`` hooks sit on *every* durable write, so they must cost
as close to an append as possible.  They therefore write nothing but
a flat staging buffer — one interleaved ``array('Q')`` holding
``(kind, addr, size, tx)`` per record (sequence numbers are implicit:
the staged records are exactly the last ``n`` seqs issued, so the merge
re-derives them from ``next_seq``) — plus one shared **word slab**
holding the version data of every staged update back to back (a plain
list: guest words are unbounded Python ints).  No :class:`Version`, no
:class:`LogEvent`, no index touch, no checksum on the hot path.

The derived indexes absorb the staging tail lazily, in one merge pass
(:meth:`CheckpointLog.flush_staging`), triggered by

* the first query — every reactor-facing query method flushes, and the
  ``entries``/``events``/``tx_members`` attributes are flush-on-access
  properties so even direct consumers (serialization, the reference
  scans, tests) always observe the merged log; or
* every ``staging_limit`` records (default ``STAGING_LIMIT`` = 4096),
  bounding the merge latency any single record can hit.

The merge is observably identical to eager maintenance: sequence
numbers are issued eagerly at record time, entries are created in
first-update order, the version ring keeps the newest ``max_versions``
versions, and ``max_size`` grows over *all* staged sizes exactly as
the eager per-record check did.  Version storage stays slab-packed
past the merge: entries hold pending ``(seq, slab, offset, size, tx,
crc)`` rows, checksummed at merge time with one seeded ``crc32``
straight off the slab bytes, and :class:`Version` objects (data tuple
+ dataclass) materialize only when the entry is first queried —
versions evicted while still pending are never materialized at all.
``staging_limit=1`` degenerates to the eager merge cadence and serves
as the equivalence oracle.

Crash-derivability: the staged columns model log records already
durable in the checkpoint region — only the *derived* indexes are
volatile.  The merge fires the ``ckpt.index_merge`` fault-injection
site before touching any state, so an injected crash loses nothing
(staging intact, indexes unchanged) and the post-restart retry
converges; a real crash rebuilds every index from the persisted region
via :meth:`rebuild_indexes`.

Indexes
-------

Every reactor query used to be a linear scan over all entries or all
events, which made mitigation time quadratic in log size.  The merged
indexes are:

* a **size-class interval index** answering "which entries could
  intersect range ``[a, a+s)``": entries are bucketed by the power-of-two
  class of their widest retained version, each bucket a sorted
  base-address list, so a query costs ``O(log n + w)`` per non-empty
  class (at most ``~32`` classes) with ``w`` the matches of *that*
  class.  The seed used one global ``_max_version_size`` window, which a
  single multi-KB persisted range widened for **every** lookup,
  degrading planning toward a full scan; here a huge range only widens
  the window of its own (sparsely populated) class;
* the **event stream position index** — events already arrive in
  sequence order, so ``events_after`` is a single ``bisect_right``;
* a **free-event address index** (per-base event lists plus a sorted
  base-address list) answering "newest free covering address ``a``"
  without sorting the whole event stream;
* an incrementally maintained **live-allocation map**, replacing the
  ``O(events)`` replay that ``live_unfreed_allocs`` used to do;
* a windowed **newest-version-covering-word** query (``expected_word``)
  for the reactor's divergence repair.

All queries preserve the exact result (including list/dict ordering) of
the original linear scans; :mod:`repro.checkpoint.reference` keeps the
scan implementations for equivalence testing and benchmarking.
Deserialized logs (``instrument.artifacts``) call
:meth:`CheckpointLog.rebuild_indexes` after populating the raw state.
"""

from __future__ import annotations

import copy
import zlib
from array import array
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import faultinject
from repro.errors import CheckpointError, CorruptLogError

#: default maximum versions retained per entry (paper default: 3)
MAX_VERSIONS = 3

#: default staging-buffer capacity before an automatic index merge
STAGING_LIMIT = 4096

#: staged record kinds, by column code
_KIND_NAMES = ("update", "alloc", "free", "tx-begin", "tx-commit")
_UPDATE, _ALLOC, _FREE, _TX_BEGIN, _TX_COMMIT = range(5)

#: fields per record in the interleaved staging buffer
_STRIDE = 4


def version_crc(
    addr: int, seq: int, data: Tuple[int, ...], size: int, tx_id: int
) -> int:
    """Checksum binding a version's data to its identity.

    Computed when the version is first observed (for staged recording:
    when the owning entry materializes its pending slab rows) and
    carried through serialization; any later divergence of the data
    words (a bit flip in the checkpoint region) is caught by
    :meth:`CheckpointLog.verify_checksums`.

    The crc runs over the data words as a raw 64-bit array, *seeded*
    with a 32-bit multiplicative mix of the identity fields — seeding
    replaces packing an identity header, so one ``crc32`` call per
    version suffices.  Values outside the signed-64-bit range (guest
    words are unbounded Python ints) fall back to a tagged string
    encoding.
    """
    mix = (
        addr * 0x9E3779B1 + seq * 0x85EBCA77
        + size * 0xC2B2AE3D + tx_id * 0x27D4EB2F
    ) & 0xFFFFFFFF
    try:
        body = array("q", data).tobytes()
    except (OverflowError, TypeError):
        body = ",".join(map(str, data)).encode()
        mix ^= 0x5F5F5F5F  # tag the fallback encoding
    return zlib.crc32(body, mix) & 0xFFFFFFFF


@dataclass(slots=True)
class Version:
    """One version of one address range."""

    seq: int
    data: Tuple[int, ...]
    size: int
    tx_id: int = 0
    #: checksum from :func:`version_crc`; -1 = recorded without one
    #: (reference/seed logs), which the verifier skips
    crc: int = -1


@dataclass(slots=True)
class LogEvent:
    """One entry in the global, sequence-ordered event stream."""

    seq: int
    kind: str  # "update" | "alloc" | "free" | "tx-begin" | "tx-commit"
    addr: int = 0
    nwords: int = 0
    tx_id: int = 0


class CheckpointEntry:
    """Versions of one PM address range, newest last.

    The retained ring is **slab-packed**: the staged merge appends
    lightweight pending rows ``(seq, words, woff, size, tx)``
    referencing the merge's word slab instead of building a
    :class:`Version` (tuple + object + dataclass init) per record.  The
    :attr:`versions` property materializes pending rows on first access
    — reactor queries, verification and serialization all pay that cost
    (including the version crc) once, off the durable write path.  The
    corruption binding is not weakened: every consumer that can observe
    or mutate version data (``verify_checksums``, serialization, the
    bitflip injection) goes through :attr:`versions` first, so the crc
    is always computed from the slab words as recorded, before any
    later divergence.
    """

    __slots__ = (
        "address",
        "_versions",
        "_pending",
        "old_entry",
        "new_entry",
        "max_versions",
        "total_versions",
        "order",
        "max_size",
    )

    def __init__(self, address: int, max_versions: int = MAX_VERSIONS):
        self.address = address
        self._versions: List[Version] = []
        #: slab-packed rows not yet materialized, newest last
        self._pending: List[tuple] = []
        #: address of the pre-realloc incarnation of this object (or None)
        self.old_entry: Optional[int] = None
        #: address this object moved to on realloc (or None)
        self.new_entry: Optional[int] = None
        self.max_versions = max_versions
        #: versions ever recorded; > len(versions) when history was evicted
        self.total_versions = 0
        #: creation rank in the owning log; windowed queries sort matches
        #: by it so results keep the pre-index (dict-insertion) order
        self.order = 0
        #: widest retained version (monotone while recording); drives the
        #: owning log's size-class interval index
        self.max_size = 1

    @property
    def versions(self) -> List[Version]:
        pend = self._pending
        if pend:
            self._pending = []
            vs = self._versions
            addr = self.address
            for seq, words, woff, size, tx in pend:
                data = tuple(words[woff:woff + size])
                vs.append(
                    Version(seq, data, size, tx,
                            version_crc(addr, seq, data, size, tx))
                )
        return self._versions

    @versions.setter
    def versions(self, value: List[Version]) -> None:
        self._versions = value
        self._pending = []

    def add_version(self, version: Version) -> None:
        vs = self.versions
        vs.append(version)
        self.total_versions += 1
        if len(vs) > self.max_versions:
            vs.pop(0)

    @property
    def history_evicted(self) -> bool:
        """True when versions older than the retained ring were dropped."""
        return self.total_versions > len(self._versions) + len(self._pending)

    def version_with_seq(self, seq: int) -> Optional[Version]:
        """The retained version recorded at exactly ``seq``, if any."""
        for v in self.versions:
            if v.seq == seq:
                return v
        return None

    def version_index(self, seq: int) -> Optional[int]:
        """Index of the version with sequence number ``seq`` in the ring."""
        for i, v in enumerate(self.versions):
            if v.seq == seq:
                return i
        return None

    def latest(self) -> Optional[Version]:
        """The newest retained version (None for an empty entry)."""
        return self.versions[-1] if self.versions else None

    def latest_before(self, seq: int) -> Optional[Version]:
        """Latest version strictly older than ``seq``."""
        best: Optional[Version] = None
        for v in self.versions:
            if v.seq < seq and (best is None or v.seq > best.seq):
                best = v
        return best


class CheckpointLog:
    """All entries plus the sequence-ordered event stream."""

    def __init__(
        self,
        max_versions: int = MAX_VERSIONS,
        staging_limit: int = STAGING_LIMIT,
    ):
        self.max_versions = max_versions
        #: staged records per automatic merge; 1 = eager (the oracle)
        self.staging_limit = staging_limit
        # ---- staging columns (the durable-write hot path) ----
        #: interleaved flat record buffer, stride ``_STRIDE``:
        #: (kind, addr, size, tx_id) per record.  Sequence numbers are
        #: *derived* at merge time — staged records are exactly the last
        #: ``len//_STRIDE`` seqs issued — so recording appends one
        #: 4-tuple instead of five columns
        self._stage = array("Q")
        #: shared word slab: staged update data, back to back
        self._stage_words: List[int] = []
        # ---- merged state (behind flush-on-access properties) ----
        self._entries: Dict[int, CheckpointEntry] = {}
        self._events: List[LogEvent] = []
        self._next_seq = 1
        #: update-event seqs grouped by transaction id
        self._tx_members: Dict[int, List[int]] = {}
        # counters for the data-loss metrics
        self.total_updates = 0
        # ---- derived indexes (synced by flush_staging) ----
        #: size-class interval index: class exponent -> sorted base
        #: addresses of entries whose ``max_size`` fits in ``2**exp``.
        #: An entry in class ``e`` can only intersect ``[lo, hi)`` when
        #: its base lies in ``[lo - 2**e + 1, hi)``
        self._size_class_addrs: Dict[int, List[int]] = {}
        #: entry base address -> its current class exponent
        self._entry_class: Dict[int, int] = {}
        #: event seqs, parallel to ``events`` (ascending by construction)
        self._event_seqs: List[int] = []
        #: free events grouped by base address, each list seq-ascending
        self._frees_by_addr: Dict[int, List[LogEvent]] = {}
        #: sorted base addresses of free events
        self._free_addrs: List[int] = []
        #: widest freed block seen so far
        self._max_free_size = 1
        #: alloc'd-and-not-yet-freed blocks, in first-alloc order —
        #: maintained incrementally instead of replaying all events
        self._live_allocs: Dict[int, int] = {}
        #: (addr, Version) pairs removed by :meth:`quarantine_corrupt`
        self.quarantined: List[Tuple[int, Version]] = []
        #: optional capture tap: called with ``(kind, addr, size, tx_id,
        #: values-or-None)`` for every record as it is staged.  The
        #: cluster's delta engine installs it around one primary-side op
        #: to collect the op's exact record stream (staging may auto-merge
        #: mid-op, so reading ``_stage`` afterwards would miss records);
        #: replay the tuples elsewhere with :meth:`replay_record`.
        self.record_tap = None

    # ------------------------------------------------------------------
    # flush-on-access views of the merged state
    # ------------------------------------------------------------------
    @property
    def staging_limit(self) -> int:
        return self._staging_limit

    @staging_limit.setter
    def staging_limit(self, n: int) -> None:
        self._staging_limit = max(1, n)
        #: auto-merge threshold in buffer slots (records × stride)
        self._stage_cap = self._staging_limit * _STRIDE

    @property
    def entries(self) -> Dict[int, CheckpointEntry]:
        if self._stage:
            self.flush_staging()
        return self._entries

    @entries.setter
    def entries(self, value: Dict[int, CheckpointEntry]) -> None:
        self._entries = value

    @property
    def events(self) -> List[LogEvent]:
        if self._stage:
            self.flush_staging()
        return self._events

    @events.setter
    def events(self, value: List[LogEvent]) -> None:
        self._events = value

    @property
    def tx_members(self) -> Dict[int, List[int]]:
        if self._stage:
            self.flush_staging()
        return self._tx_members

    @tx_members.setter
    def tx_members(self, value: Dict[int, List[int]]) -> None:
        self._tx_members = value

    # ------------------------------------------------------------------
    def _next(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _new_entry(self, addr: int) -> CheckpointEntry:
        entry = CheckpointEntry(addr, self.max_versions)
        entry.order = len(self._entries)
        self._entries[addr] = entry
        self._entry_class[addr] = 0
        insort(self._size_class_addrs.setdefault(0, []), addr)
        return entry

    def _reclass_entry(self, entry: CheckpointEntry) -> None:
        """Move an entry to the size class covering its ``max_size``."""
        exp = (entry.max_size - 1).bit_length()
        old = self._entry_class.get(entry.address)
        if old == exp:
            return
        if old is not None:
            addrs = self._size_class_addrs[old]
            addrs.pop(bisect_left(addrs, entry.address))
        self._entry_class[entry.address] = exp
        insort(self._size_class_addrs.setdefault(exp, []), entry.address)

    # ------------------------------------------------------------------
    # the staged record_* hot path (staging inlined: no helper call)
    # ------------------------------------------------------------------
    def record_update(
        self, addr: int, nwords: int, values: List[int], tx_id: int = 0
    ) -> int:
        """Record one persisted range; returns its sequence number."""
        if len(values) != nwords:
            raise CheckpointError(
                f"update at {addr:#x}: {len(values)} values for {nwords} words"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        buf = self._stage
        buf.extend((_UPDATE, addr, nwords, tx_id))
        self._stage_words.extend(values)
        self.total_updates += 1
        if self.record_tap is not None:
            self.record_tap((_UPDATE, addr, nwords, tx_id, tuple(values)))
        if len(buf) >= self._stage_cap:
            self.flush_staging()
        return seq

    def record_alloc(self, addr: int, nwords: int) -> int:
        """Record a PM allocation event; returns its sequence number."""
        seq = self._next_seq
        self._next_seq = seq + 1
        buf = self._stage
        buf.extend((_ALLOC, addr, nwords, 0))
        if self.record_tap is not None:
            self.record_tap((_ALLOC, addr, nwords, 0, None))
        if len(buf) >= self._stage_cap:
            self.flush_staging()
        return seq

    def record_free(self, addr: int, nwords: int) -> int:
        """Record a PM free event; returns its sequence number."""
        seq = self._next_seq
        self._next_seq = seq + 1
        buf = self._stage
        buf.extend((_FREE, addr, nwords, 0))
        if self.record_tap is not None:
            self.record_tap((_FREE, addr, nwords, 0, None))
        if len(buf) >= self._stage_cap:
            self.flush_staging()
        return seq

    def record_tx_begin(self, tx_id: int) -> int:
        """Insert a transaction-begin mark into the event stream."""
        seq = self._next_seq
        self._next_seq = seq + 1
        buf = self._stage
        buf.extend((_TX_BEGIN, 0, 0, tx_id))
        if self.record_tap is not None:
            self.record_tap((_TX_BEGIN, 0, 0, tx_id, None))
        if len(buf) >= self._stage_cap:
            self.flush_staging()
        return seq

    def record_tx_commit(self, tx_id: int) -> int:
        """Insert a transaction-commit mark into the event stream."""
        seq = self._next_seq
        self._next_seq = seq + 1
        buf = self._stage
        buf.extend((_TX_COMMIT, 0, 0, tx_id))
        if self.record_tap is not None:
            self.record_tap((_TX_COMMIT, 0, 0, tx_id, None))
        if len(buf) >= self._stage_cap:
            self.flush_staging()
        return seq

    def replay_record(
        self,
        kind: int,
        addr: int,
        size: int,
        tx_id: int,
        values: Optional[Tuple[int, ...]] = None,
    ) -> int:
        """Append one shipped record tuple (as captured by the tap).

        Sequence numbers are issued by *this* log — replica logs number
        their own streams, since per-node counters legitimately diverge
        (routed lookups and peer recoveries append records on one node
        only).  Returns the issued sequence number.
        """
        if kind == _UPDATE:
            return self.record_update(addr, size, list(values), tx_id)
        if kind == _ALLOC:
            return self.record_alloc(addr, size)
        if kind == _FREE:
            return self.record_free(addr, size)
        if kind == _TX_BEGIN:
            return self.record_tx_begin(tx_id)
        if kind == _TX_COMMIT:
            return self.record_tx_commit(tx_id)
        raise CheckpointError(f"unknown shipped record kind {kind}")

    def clone(self) -> "CheckpointLog":
        """Deep-copy this log (compaction base images / node rebase).

        Flushes staging first so the copy starts merged; the capture tap
        is never carried over.
        """
        self.flush_staging()
        tap, self.record_tap = self.record_tap, None
        try:
            dup = copy.deepcopy(self)
        finally:
            self.record_tap = tap
        return dup

    # ------------------------------------------------------------------
    def flush_staging(self) -> None:
        """Merge the staging tail into the entries, events and indexes.

        Observably identical to having run the eager per-record
        maintenance: same entry creation order, same version rings, same
        ``max_size`` growth, same event stream.  Version data stays
        **slab-packed**: the merge appends pending rows referencing the
        word slab; :class:`Version` objects (tuple + dataclass + crc)
        only materialize when the owning entry is first queried.
        Versions evicted from the ring while still pending are simply
        dropped — never materialized, never checksummed.

        Fires the ``ckpt.index_merge`` fault-injection site *before*
        mutating anything: an injected crash leaves the staging buffers
        and every index untouched, so the post-restart retry (the spec
        is one-shot) converges on exactly the merged state a
        never-crashed run produces.
        """
        buf = self._stage
        if not buf:
            return
        faultinject.fire("ckpt.index_merge")
        words = self._stage_words
        self._stage = array("Q")
        self._stage_words = []

        entries = self._entries
        append_event = self._events.append
        append_seq = self._event_seqs.append
        tx_members = self._tx_members
        live = self._live_allocs
        frees_by_addr = self._frees_by_addr
        new_entry = self._new_entry
        names = _KIND_NAMES
        off = 0
        # staged records are exactly the last n seqs issued
        seq = self._next_seq - len(buf) // _STRIDE
        it = iter(buf)
        for kind, addr, size, tx in zip(it, it, it, it):
            ev = LogEvent(seq, names[kind], addr, size, tx)
            append_event(ev)
            append_seq(seq)
            if kind == _UPDATE:
                entry = entries.get(addr)
                if entry is None:
                    entry = new_entry(addr)
                pend = entry._pending
                pend.append((seq, words, off, size, tx))
                entry.total_versions += 1
                vs = entry._versions
                if len(vs) + len(pend) > entry.max_versions:
                    if vs:
                        del vs[0]
                    else:
                        del pend[0]
                if size > entry.max_size:
                    entry.max_size = size
                    self._reclass_entry(entry)
                off += size
                if tx:
                    tx_members.setdefault(tx, []).append(seq)
            elif kind == _ALLOC:
                live[addr] = size
            elif kind == _FREE:
                live.pop(addr, None)
                if addr not in frees_by_addr:
                    frees_by_addr[addr] = []
                    insort(self._free_addrs, addr)
                frees_by_addr[addr].append(ev)
                if size > self._max_free_size:
                    self._max_free_size = size
            seq += 1

    #: the single entry point Reverter/plan call before querying
    _flush_staging = flush_staging

    def link_realloc(self, old_addr: int, new_addr: int) -> None:
        """Connect the two incarnations of a resized object.

        The newest predecessor wins: if ``new_addr`` was already linked
        from a different old incarnation, that incarnation's forward
        link is cleared — otherwise it would dangle (forward links must
        be reciprocated, see :meth:`validate_raw_state`).
        """
        if self._stage:
            self.flush_staging()
        old = self._entries.get(old_addr)
        if old is not None:
            old.new_entry = new_addr
        new = self._entries.get(new_addr)
        if new is None:
            new = self._new_entry(new_addr)
        prev_old = new.old_entry
        if prev_old is not None and prev_old != old_addr:
            stale = self._entries.get(prev_old)
            if stale is not None and stale.new_entry == new_addr:
                stale.new_entry = None
        new.old_entry = old_addr

    # ------------------------------------------------------------------
    def validate_raw_state(self) -> None:
        """Raise :class:`CorruptLogError` when the raw entry/event state
        violates the log's structural invariants.

        Deserialized logs used to be trusted blindly; a corrupt file
        (torn tail, bit rot, a buggy writer) would silently get indexes
        rebuilt over garbage.  Checked invariants:

        * event sequence numbers are strictly increasing and below
          ``next_seq``;
        * each entry's retained versions are seq-ascending, below
          ``next_seq``, and consistent with ``total_versions``;
        * realloc forward links (``new_entry``) target an existing entry
          whose ``old_entry`` points back (backward links may dangle:
          the pre-realloc incarnation may never have been persisted).
        """
        if self._stage:
            self.flush_staging()
        last = 0
        for ev in self._events:
            if ev.seq <= last:
                raise CorruptLogError(
                    f"event stream out of order: seq {ev.seq} after {last}"
                )
            last = ev.seq
        if last >= self._next_seq:
            raise CorruptLogError(
                f"event seq {last} >= next_seq {self._next_seq}"
            )
        for addr, entry in self._entries.items():
            if entry.address != addr:
                raise CorruptLogError(
                    f"entry keyed {addr:#x} claims address {entry.address:#x}"
                )
            prev = 0
            for v in entry.versions:
                if v.seq <= prev:
                    raise CorruptLogError(
                        f"entry {addr:#x}: version seqs out of order "
                        f"({v.seq} after {prev})"
                    )
                if v.seq >= self._next_seq:
                    raise CorruptLogError(
                        f"entry {addr:#x}: version seq {v.seq} >= next_seq "
                        f"{self._next_seq}"
                    )
                prev = v.seq
            if entry.total_versions < len(entry.versions):
                raise CorruptLogError(
                    f"entry {addr:#x}: total_versions {entry.total_versions} "
                    f"< {len(entry.versions)} retained"
                )
            if entry.new_entry is not None:
                target = self._entries.get(entry.new_entry)
                if target is None or target.old_entry != addr:
                    raise CorruptLogError(
                        f"entry {addr:#x}: dangling realloc link to "
                        f"{entry.new_entry:#x}"
                    )

    def rebuild_indexes(self, validate: bool = True) -> None:
        """Recompute every derived index from ``entries`` and ``events``.

        Deserialization (:mod:`repro.instrument.artifacts`) populates the
        raw entry/event state directly; this restores the invariants the
        staged merge maintains.  ``validate`` (default) runs
        :meth:`validate_raw_state` first so a corrupt log raises a
        typed :class:`CorruptLogError` instead of silently getting
        indexes rebuilt over bad state; repair paths that have already
        quarantined what they could pass ``validate=False``.
        """
        if self._stage:
            self.flush_staging()
        if validate:
            self.validate_raw_state()
        self._size_class_addrs = {}
        self._entry_class = {}
        for order, entry in enumerate(self._entries.values()):
            entry.order = order
            entry.max_size = max((v.size for v in entry.versions), default=1)
            exp = (entry.max_size - 1).bit_length()
            self._entry_class[entry.address] = exp
            self._size_class_addrs.setdefault(exp, []).append(entry.address)
        for addrs in self._size_class_addrs.values():
            addrs.sort()
        self._event_seqs = [ev.seq for ev in self._events]
        self._frees_by_addr = {}
        self._max_free_size = 1
        self._live_allocs = {}
        for ev in self._events:
            if ev.kind == "free":
                self._frees_by_addr.setdefault(ev.addr, []).append(ev)
                if ev.nwords > self._max_free_size:
                    self._max_free_size = ev.nwords
                self._live_allocs.pop(ev.addr, None)
            elif ev.kind == "alloc":
                self._live_allocs[ev.addr] = ev.nwords
        self._free_addrs = sorted(self._frees_by_addr)

    def structural_digest(self) -> int:
        """Order-insensitive-free fingerprint of the *logical* log state.

        Hashes everything a reader can observe — the event stream, every
        entry's retained versions (seq, data, size, tx, crc), realloc
        links, eviction counts, live allocations, free events and
        transaction membership — after merging any staged tail.  Two
        logs with equal digests answer every reactor query identically,
        so the staged write path can be checked against the eager
        (``staging_limit=1``) oracle, and a crash-recovered log against
        a never-crashed run.
        """
        if self._stage:
            self.flush_staging()
        acc: List[tuple] = [
            ("meta", self._next_seq, self.total_updates),
            ("events", tuple(
                (ev.seq, ev.kind, ev.addr, ev.nwords, ev.tx_id)
                for ev in self._events
            )),
        ]
        for addr in sorted(self._entries):
            entry = self._entries[addr]
            acc.append((
                "entry", addr, entry.old_entry, entry.new_entry,
                entry.total_versions,
                tuple(
                    (v.seq, v.data, v.size, v.tx_id, v.crc)
                    for v in entry.versions
                ),
            ))
        acc.append(("live", tuple(sorted(self._live_allocs.items()))))
        acc.append(("frees", tuple(
            (a, tuple(ev.seq for ev in evs))
            for a, evs in sorted(self._frees_by_addr.items())
        )))
        acc.append(("tx", tuple(
            (tx, tuple(seqs)) for tx, seqs in sorted(self._tx_members.items())
        )))
        return hash(tuple(acc))

    def _entries_intersecting(self, lo: int, hi: int) -> List[CheckpointEntry]:
        """Entries whose ``[address, address + max_size)`` span can
        intersect ``[lo, hi)``, in creation order.

        One bisect window per non-empty size class: class ``e`` holds
        entries no wider than ``2**e`` words, so only bases in
        ``[lo - 2**e + 1, hi)`` can reach into the query range.  A
        superset filter — an entry's *versions* may be narrower than its
        class bound — and callers re-check exactly per version.
        """
        if self._stage:
            self.flush_staging()
        entries = self._entries
        matches: List[CheckpointEntry] = []
        for exp, addrs in self._size_class_addrs.items():
            i = bisect_left(addrs, lo - (1 << exp) + 1)
            j = bisect_left(addrs, hi, lo=i)
            for a in addrs[i:j]:
                matches.append(entries[a])
        matches.sort(key=lambda e: e.order)
        return matches

    # ------------------------------------------------------------------
    # queries used by the reactor
    # ------------------------------------------------------------------
    def event(self, seq: int) -> Optional[LogEvent]:
        """The event recorded at ``seq`` (None if out of range).

        A bisect over the (sorted) event-seq list: event lookups are
        reactor-rare, so the merge no longer maintains a seq->event
        dict just to make them O(1).
        """
        if self._stage:
            self.flush_staging()
        seqs = self._event_seqs
        i = bisect_left(seqs, seq)
        if i < len(seqs) and seqs[i] == seq:
            return self._events[i]
        return None

    def entries_overlapping(self, addr: int) -> List[CheckpointEntry]:
        """Entries whose latest range covers ``addr``."""
        out = []
        for entry in self._entries_intersecting(addr, addr + 1):
            latest = entry.latest()
            if latest is None:
                continue
            if entry.address <= addr < entry.address + latest.size:
                out.append(entry)
        return out

    def entries_possibly_overlapping(self, addr: int, size: int) -> List[CheckpointEntry]:
        """Entries whose *any* retained version could overlap
        ``[addr, addr+size)`` — a superset filter for range
        reconstruction (callers re-check per version)."""
        return self._entries_intersecting(addr, addr + size)

    def update_seqs_for_address(self, addr: int) -> List[int]:
        """Sequence numbers of all retained versions covering ``addr``."""
        seqs: List[int] = []
        for entry in self.entries_overlapping(addr):
            seqs.extend(v.seq for v in entry.versions)
        return seqs

    def seqs_in_tx(self, tx_id: int) -> List[int]:
        """Update sequence numbers belonging to one transaction."""
        if self._stage:
            self.flush_staging()
        return list(self._tx_members.get(tx_id, ()))

    def tx_of_seq(self, seq: int) -> int:
        """Transaction id of an update (0 when not transactional)."""
        ev = self.event(seq)
        return ev.tx_id if ev else 0

    def max_seq(self) -> int:
        """The newest sequence number issued so far.

        Sequence numbers are issued eagerly at record time, so this
        needs no flush — staged records are already counted.
        """
        return self._next_seq - 1

    def events_after(self, seq: int) -> List[LogEvent]:
        """All events with sequence number strictly greater than ``seq``."""
        if self._stage:
            self.flush_staging()
        return self._events[bisect_right(self._event_seqs, seq):]

    def update_addrs_since(self, seq: int) -> List[int]:
        """Addresses with an update event at-or-after ``seq``, each listed
        once, ordered by the owning entry's creation rank (the order the
        pre-index reactor visited them)."""
        seen: set = set()
        for ev in self.events_after(seq - 1):
            if ev.kind == "update":
                seen.add(ev.addr)
        addrs = list(seen)
        addrs.sort(key=lambda a: self._entries[a].order)
        return addrs

    def newest_free_covering(self, target: int) -> Optional[LogEvent]:
        """The newest free event whose block contains ``target``."""
        if self._stage:
            self.flush_staging()
        best: Optional[LogEvent] = None
        i = bisect_left(self._free_addrs, target - self._max_free_size + 1)
        j = bisect_right(self._free_addrs, target, lo=i)
        for base in self._free_addrs[i:j]:
            for ev in reversed(self._frees_by_addr[base]):
                if ev.addr <= target < ev.addr + ev.nwords:
                    if best is None or ev.seq > best.seq:
                        best = ev
                    break
        return best

    def expected_word(self, addr: int) -> Optional[int]:
        """Value the newest retained version covering ``addr`` holds for
        it (None when no logged range covers the address)."""
        best_seq = -1
        best_val: Optional[int] = None
        for entry in self._entries_intersecting(addr, addr + 1):
            base = entry.address
            for version in entry.versions:
                if base <= addr < base + version.size and version.seq > best_seq:
                    best_seq = version.seq
                    best_val = version.data[addr - base]
        return best_val

    def live_unfreed_allocs(self) -> Dict[int, int]:
        """Blocks with an alloc event and no later free (leak candidates)."""
        if self._stage:
            self.flush_staging()
        return dict(self._live_allocs)

    def live_alloc_covering(self, addr: int) -> Optional[Tuple[int, int]]:
        """``(base, nwords)`` of the live-alloc-map block covering ``addr``.

        The key ↔ address-range join the live-traffic server uses: a
        reversion-plan candidate address is widened to the whole live
        allocation containing it, so quarantine locks cover every word a
        reverted cut may touch inside that object.  Returns None when no
        live (un-freed) allocation covers the address.
        """
        if self._stage:
            self.flush_staging()
        bases = sorted(self._live_allocs)
        i = bisect_right(bases, addr) - 1
        if i < 0:
            return None
        base = bases[i]
        nwords = self._live_allocs[base]
        if base <= addr < base + nwords:
            return (base, nwords)
        return None

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def verify_checksums(self) -> List[Tuple[int, int]]:
        """(address, seq) of retained versions whose data no longer
        matches the checksum recorded with them.

        A mismatch means the checkpoint region itself was corrupted out
        of band (bit flip, torn write) — the version's data must not be
        trusted by reversion.  Versions recorded without a checksum
        (``crc == -1``, e.g. seed-era logs) are skipped.
        """
        if self._stage:
            self.flush_staging()
        bad: List[Tuple[int, int]] = []
        for entry in self._entries.values():
            for v in entry.versions:
                if v.crc >= 0 and version_crc(
                    entry.address, v.seq, v.data, v.size, v.tx_id
                ) != v.crc:
                    bad.append((entry.address, v.seq))
        return bad

    def quarantine_corrupt(self) -> List[Tuple[int, Version]]:
        """Remove checksum-failing versions from the ring (and record
        them in :attr:`quarantined`) instead of letting reversion
        deserialize garbage.

        ``total_versions`` is left untouched, so the entry reports
        ``history_evicted`` and the reverter applies its evicted-history
        floor rather than trusting a hole in the ring.  Returns the
        versions quarantined by this call.
        """
        bad = set(self.verify_checksums())
        if not bad:
            return []
        newly: List[Tuple[int, Version]] = []
        for addr, entry in self._entries.items():
            kept = []
            for v in entry.versions:
                if (addr, v.seq) in bad:
                    newly.append((addr, v))
                else:
                    kept.append(v)
            entry.versions = kept
        self.quarantined.extend(newly)
        self.rebuild_indexes(validate=False)
        return newly
