"""The versioned checkpoint log (paper Figure 5).

One :class:`CheckpointEntry` per persisted PM address range; each entry
keeps the last ``MAX_VERSIONS`` versions of the range's data together
with the atomic sequence number that orders all PM updates by logical
time.  Transaction begin/commit marks and alloc/free events share the
same sequence space so the reactor can group and order reversions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CheckpointError

#: default maximum versions retained per entry (paper default: 3)
MAX_VERSIONS = 3


@dataclass
class Version:
    """One version of one address range."""

    seq: int
    data: Tuple[int, ...]
    size: int
    tx_id: int = 0


@dataclass
class LogEvent:
    """One entry in the global, sequence-ordered event stream."""

    seq: int
    kind: str  # "update" | "alloc" | "free" | "tx-begin" | "tx-commit"
    addr: int = 0
    nwords: int = 0
    tx_id: int = 0


class CheckpointEntry:
    """Versions of one PM address range, newest last."""

    __slots__ = (
        "address",
        "versions",
        "old_entry",
        "new_entry",
        "max_versions",
        "total_versions",
    )

    def __init__(self, address: int, max_versions: int = MAX_VERSIONS):
        self.address = address
        self.versions: List[Version] = []
        #: address of the pre-realloc incarnation of this object (or None)
        self.old_entry: Optional[int] = None
        #: address this object moved to on realloc (or None)
        self.new_entry: Optional[int] = None
        self.max_versions = max_versions
        #: versions ever recorded; > len(versions) when history was evicted
        self.total_versions = 0

    def add_version(self, version: Version) -> None:
        self.versions.append(version)
        self.total_versions += 1
        if len(self.versions) > self.max_versions:
            self.versions.pop(0)

    @property
    def history_evicted(self) -> bool:
        """True when versions older than the retained ring were dropped."""
        return self.total_versions > len(self.versions)

    def version_with_seq(self, seq: int) -> Optional[Version]:
        """The retained version recorded at exactly ``seq``, if any."""
        for v in self.versions:
            if v.seq == seq:
                return v
        return None

    def version_index(self, seq: int) -> Optional[int]:
        """Index of the version with sequence number ``seq`` in the ring."""
        for i, v in enumerate(self.versions):
            if v.seq == seq:
                return i
        return None

    def latest(self) -> Optional[Version]:
        """The newest retained version (None for an empty entry)."""
        return self.versions[-1] if self.versions else None

    def latest_before(self, seq: int) -> Optional[Version]:
        """Latest version strictly older than ``seq``."""
        best: Optional[Version] = None
        for v in self.versions:
            if v.seq < seq and (best is None or v.seq > best.seq):
                best = v
        return best


class CheckpointLog:
    """All entries plus the sequence-ordered event stream."""

    def __init__(self, max_versions: int = MAX_VERSIONS):
        self.max_versions = max_versions
        self.entries: Dict[int, CheckpointEntry] = {}
        self.events: List[LogEvent] = []
        self._next_seq = 1
        #: update-event seqs grouped by transaction id
        self.tx_members: Dict[int, List[int]] = {}
        #: seq -> event, for O(1) reactor lookups
        self._event_by_seq: Dict[int, LogEvent] = {}
        # counters for the data-loss metrics
        self.total_updates = 0

    # ------------------------------------------------------------------
    def _next(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _event(self, kind: str, addr: int = 0, nwords: int = 0, tx_id: int = 0) -> LogEvent:
        ev = LogEvent(self._next(), kind, addr, nwords, tx_id)
        self.events.append(ev)
        self._event_by_seq[ev.seq] = ev
        return ev

    # ------------------------------------------------------------------
    def record_update(
        self, addr: int, nwords: int, values: List[int], tx_id: int = 0
    ) -> int:
        """Record one persisted range; returns its sequence number."""
        if len(values) != nwords:
            raise CheckpointError(
                f"update at {addr:#x}: {len(values)} values for {nwords} words"
            )
        ev = self._event("update", addr, nwords, tx_id)
        entry = self.entries.get(addr)
        if entry is None:
            entry = CheckpointEntry(addr, self.max_versions)
            self.entries[addr] = entry
        entry.add_version(Version(ev.seq, tuple(values), nwords, tx_id))
        if tx_id:
            self.tx_members.setdefault(tx_id, []).append(ev.seq)
        self.total_updates += 1
        return ev.seq

    def record_alloc(self, addr: int, nwords: int) -> int:
        """Record a PM allocation event; returns its sequence number."""
        return self._event("alloc", addr, nwords).seq

    def record_free(self, addr: int, nwords: int) -> int:
        """Record a PM free event; returns its sequence number."""
        return self._event("free", addr, nwords).seq

    def record_tx_begin(self, tx_id: int) -> int:
        """Insert a transaction-begin mark into the event stream."""
        return self._event("tx-begin", tx_id=tx_id).seq

    def record_tx_commit(self, tx_id: int) -> int:
        """Insert a transaction-commit mark into the event stream."""
        return self._event("tx-commit", tx_id=tx_id).seq

    def link_realloc(self, old_addr: int, new_addr: int) -> None:
        """Connect the two incarnations of a resized object."""
        old = self.entries.get(old_addr)
        if old is not None:
            old.new_entry = new_addr
        new = self.entries.setdefault(
            new_addr, CheckpointEntry(new_addr, self.max_versions)
        )
        new.old_entry = old_addr

    # ------------------------------------------------------------------
    # queries used by the reactor
    # ------------------------------------------------------------------
    def event(self, seq: int) -> Optional[LogEvent]:
        """The event recorded at ``seq`` (None if out of range)."""
        return self._event_by_seq.get(seq)

    def entries_overlapping(self, addr: int) -> List[CheckpointEntry]:
        """Entries whose latest range covers ``addr``."""
        out = []
        for entry in self.entries.values():
            latest = entry.latest()
            if latest is None:
                continue
            if entry.address <= addr < entry.address + latest.size:
                out.append(entry)
        return out

    def update_seqs_for_address(self, addr: int) -> List[int]:
        """Sequence numbers of all retained versions covering ``addr``."""
        seqs: List[int] = []
        for entry in self.entries_overlapping(addr):
            seqs.extend(v.seq for v in entry.versions)
        return seqs

    def seqs_in_tx(self, tx_id: int) -> List[int]:
        """Update sequence numbers belonging to one transaction."""
        return list(self.tx_members.get(tx_id, ()))

    def tx_of_seq(self, seq: int) -> int:
        """Transaction id of an update (0 when not transactional)."""
        ev = self._event_by_seq.get(seq)
        return ev.tx_id if ev else 0

    def max_seq(self) -> int:
        """The newest sequence number issued so far."""
        return self._next_seq - 1

    def events_after(self, seq: int) -> List[LogEvent]:
        """All events with sequence number strictly greater than ``seq``."""
        return [ev for ev in self.events if ev.seq > seq]

    def live_unfreed_allocs(self) -> Dict[int, int]:
        """Blocks with an alloc event and no later free (leak candidates)."""
        live: Dict[int, int] = {}
        for ev in self.events:
            if ev.kind == "alloc":
                live[ev.addr] = ev.nwords
            elif ev.kind == "free":
                live.pop(ev.addr, None)
        return live
