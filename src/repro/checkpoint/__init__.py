"""Fine-grained PM checkpointing with versioning (paper Section 4.2).

* :mod:`repro.checkpoint.log` — the checkpoint log: one entry per PM
  address range, each holding up to ``MAX_VERSIONS`` versions ordered by
  an atomic sequence number, with transaction marks and realloc links
  (the paper's Figure 5 layout).
* :mod:`repro.checkpoint.manager` — hooks the pool's persist points,
  transaction commits and allocator free/realloc so checkpointing happens
  *eagerly at each durability point*, at exactly the granularity the
  target program chose.
"""

from repro.checkpoint.log import (
    MAX_VERSIONS,
    CheckpointEntry,
    CheckpointLog,
    LogEvent,
    Version,
)
from repro.checkpoint.manager import CheckpointManager

__all__ = [
    "MAX_VERSIONS",
    "CheckpointLog",
    "CheckpointEntry",
    "LogEvent",
    "Version",
    "CheckpointManager",
]
