"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``list-faults`` — the Table 2 registry.
* ``study`` — the Section 2 empirical-study aggregates.
* ``run`` — one (fault, solution) experiment with full reporting.
* ``matrix`` — the recoverability row for one solution over every
  registered fault (``--jobs N`` fans cells out over a process pool).
* ``matrix-all`` — the full fault x solution sweep in parallel, with
  per-family recoverability and a JSON report under ``results/``.
* ``analyze`` — static-analysis statistics for one target system.
* ``bench-hotpaths`` — indexed-vs-linear-scan hot-path benchmark.
* ``inject-sweep`` — crash/torn/bitflip injection at every enumerable
  site of the recovery pipeline; exits non-zero unless every cell ends
  verified-consistent.
* ``fuzz-sweep`` — deterministic crash-consistency fuzzer over the
  guest persistence layer; discovers, minimizes and registers new
  fault-family scenarios (f13+) past the seeded Table-2 set.
* ``cluster-sweep`` — every registered fault injected into one shard
  of a replicated cluster; replica promotion, online re-recovery and
  byte-identical promoted-vs-quiesced digests per cell.
* ``cluster-status`` — demo heal: wedge one shard, run the promotion
  protocol, print the per-shard health table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.faults.registry import ALL_SCENARIOS
from repro.faults.study import (
    bugs_per_system,
    consequence_distribution,
    propagation_distribution,
    reproduced_family_distribution,
    root_cause_distribution,
)
from repro.harness.experiment import (
    EXTRA_SOLUTIONS,
    SOLUTIONS,
    run_experiment,
)
from repro.harness.report import render_bars, render_table
from repro.lang.fuse import VM_ENGINES


def _cmd_list_faults(_args) -> int:
    rows = [
        [s.fid, s.system, s.fault, s.consequence, s.kind]
        for s in ALL_SCENARIOS
    ]
    print(render_table(
        "Reproduced hard faults (paper Table 2)",
        ["id", "system", "fault", "consequence", "kind"],
        rows,
    ))
    return 0


def _cmd_study(_args) -> int:
    counts = bugs_per_system()
    rows = [[s, o, n] for (s, o), n in sorted(counts.items())]
    print(render_table("Study dataset (paper Table 1)",
                       ["system", "type", "cases"], rows))
    print()
    print(render_bars("Root causes (Figure 2)", root_cause_distribution(),
                      unit="%"))
    print()
    print(render_bars("Consequences (Figure 3)", consequence_distribution(),
                      unit="%"))
    print()
    print(render_bars("Propagation (Section 2.6)",
                      propagation_distribution(), unit="%"))
    print()
    fam_rows = [
        [family, stats["scenarios"], stats["systems"]]
        for family, stats in reproduced_family_distribution().items()
    ]
    print(render_table(
        "Reproduced fault families (seeded + fuzzer-discovered)",
        ["family", "scenarios", "systems"],
        fam_rows,
    ))
    return 0


def _report_result(result) -> None:
    if not result.manifested:
        print("the fault did not manifest with this seed")
        return
    print(f"detected: "
          f"{result.detection_fault.kind + ' at ' + result.detection_fault.location if result.detection_fault else result.detection_violation}")
    print(f"confirmed hard (recurs across restart): {result.confirmed_hard}")
    m = result.mitigation
    if m is None:
        return
    print(f"mitigation [{m.solution}]: recovered={m.recovered} "
          f"attempts={m.attempts} time={m.duration_seconds:.1f}s "
          f"discarded={m.discarded_pct:.2f}%")
    if m.consistent is not None:
        print(f"consistent: {m.consistent}"
              + (f" violations: {m.violations}" if m.violations else ""))
    if m.notes:
        print(f"notes: {m.notes}")


def _cmd_run(args) -> int:
    result = run_experiment(
        args.fault, args.solution, seed=args.seed,
        bisect_engine=args.bisect_engine,
        vm_engine=args.vm_engine,
    )
    _report_result(result)
    return 0 if (result.mitigation and result.mitigation.recovered) else 1


def _progress_line(done: int, total: int, outcome) -> None:
    status = "done" if outcome.ok else f"ERROR ({outcome.error['kind']})"
    print(f"  [{done}/{total}] {outcome.spec.label()}: {status}",
          file=sys.stderr)


def _matrix_row(fid: str, outcome) -> List[object]:
    if not outcome.ok:
        return [fid, "ERR", "-", "-", "-"]
    m = outcome.result().mitigation
    return [
        fid,
        "Y" if (m and m.recovered) else "N",
        m.attempts if m else "-",
        f"{m.discarded_pct:.2f}%" if m else "-",
        {True: "Y", False: "N", None: "-"}[m.consistent if m else None],
    ]


def _cmd_matrix(args) -> int:
    from repro.harness.matrix import expand_matrix, run_matrix

    specs = expand_matrix(solutions=[args.solution], seeds=[args.seed])
    report = run_matrix(
        specs, jobs=args.jobs, cell_timeout=args.cell_timeout,
        progress=_progress_line,
    )
    by_key = report.by_key()
    rows = [
        _matrix_row(spec.fid, by_key[spec.key]) for spec in specs
    ]
    print(render_table(
        f"Recoverability row for {args.solution} (seed {args.seed}, "
        f"{report.jobs} worker{'s' if report.jobs != 1 else ''}, "
        f"{report.wall_seconds:.1f}s)",
        ["fault", "recovered", "attempts", "discarded", "consistent"],
        rows,
    ))
    return 0 if report.n_errors == 0 else 1


def _cmd_matrix_all(args) -> int:
    import json
    import os

    from repro.harness.matrix import expand_matrix, run_matrix

    specs = expand_matrix(seeds=range(args.seeds))
    report = run_matrix(
        specs, jobs=args.jobs, cell_timeout=args.cell_timeout,
        progress=_progress_line,
    )
    from repro.faults.registry import scenario_by_id

    def _recovered(c) -> bool:
        return bool(
            c.ok and c.result().mitigation is not None
            and c.result().mitigation.recovered
        )

    rows = []
    for solution in SOLUTIONS:
        cells = [c for c in report.cells if c.spec.solution == solution]
        recovered = sum(1 for c in cells if _recovered(c))
        errors = sum(1 for c in cells if not c.ok)
        rows.append([solution, len(cells), recovered, errors])
    print(render_table(
        f"Full matrix sweep ({args.seeds} seed(s), {report.jobs} "
        f"worker(s), {report.wall_seconds:.1f}s wall)",
        ["solution", "cells", "recovered", "errors"],
        rows,
    ))
    # per-family recoverability: the seeded table2 row vs the
    # fuzzer-discovered families, per solution
    families: List[str] = []
    for cell in report.cells:
        fam = scenario_by_id(cell.spec.fid).family
        if fam not in families:
            families.append(fam)
    family_rows = []
    family_json: dict = {}
    for family in families:
        fam_cells = [
            c for c in report.cells
            if scenario_by_id(c.spec.fid).family == family
        ]
        fids = sorted({c.spec.fid for c in fam_cells},
                      key=lambda f: int(f[1:]))
        row: List[object] = [family, len(fids)]
        family_json[family] = {"faults": fids, "solutions": {}}
        for solution in SOLUTIONS:
            cells = [c for c in fam_cells if c.spec.solution == solution]
            recovered = sum(1 for c in cells if _recovered(c))
            row.append(f"{recovered}/{len(cells)}")
            family_json[family]["solutions"][solution] = {
                "cells": len(cells), "recovered": recovered,
            }
        family_rows.append(row)
    print()
    print(render_table(
        "Recoverability by fault family (recovered/cells)",
        ["family", "faults"] + list(SOLUTIONS),
        family_rows,
    ))
    if args.out != "-":
        payload = {
            "config": {
                "seeds": args.seeds,
                "jobs": report.jobs,
                "cell_timeout": args.cell_timeout,
            },
            "families": family_json,
            "report": report.to_json(),
        }
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report.n_errors == 0 else 1


def _cmd_analyze(args) -> int:
    from repro.systems import ALL_ADAPTERS

    cls = ALL_ADAPTERS[args.system]
    static = cls.static_artifacts()
    module, analysis = static.module, static.analysis
    rows = [
        ["IR instructions", module.instr_count()],
        ["functions", len(module.functions)],
        ["PM instructions", len(analysis.pm.pm_instr_iids)],
        ["PM registers", len(analysis.pm.pm_registers)],
        ["PDG nodes", analysis.pdg.node_count()],
        ["PDG edges", analysis.pdg.edge_count()],
        ["points-to iterations", analysis.points_to.iterations],
        ["trace GUIDs", len(static.guid_map)],
    ]
    print(render_table(f"Static analysis of {args.system}",
                       ["metric", "value"], rows))
    return 0


def _profile_report_path(out: str) -> str:
    import os

    if out == "-":
        return "results/BENCH_hotpaths_profile.txt"
    root, _ = os.path.splitext(out)
    return root + "_profile.txt"


def _cmd_bench_hotpaths(args) -> int:
    from repro.harness.hotpaths import render_summary, run_and_write

    n_updates = args.updates
    if n_updates is None:
        n_updates = 5_000 if args.quick else 50_000
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    report = run_and_write(
        n_updates=n_updates, seed=args.seed,
        out_path=None if args.out == "-" else args.out,
        only=args.only,
    )
    if profiler is not None:
        import io
        import os
        import pstats

        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(args.profile_top)
        stats.sort_stats("tottime").print_stats(args.profile_top)
        path = _profile_report_path(args.out)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as f:
            f.write(buf.getvalue())
        print(f"wrote {path}", file=sys.stderr)
    print(render_summary(report))
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.harness.hotpaths import bench_live_traffic, write_report

    if args.quick:
        params = dict(n_requests=240, keyspace=192, release_after=96)
    else:
        params = dict(n_requests=300, keyspace=192, release_after=120)
    if args.requests is not None:
        params["n_requests"] = args.requests
    section = bench_live_traffic(
        fid=args.fid, solution=args.solution, seed=args.seed, **params
    )
    scoped = section["quarantine"]
    stw = section["stop_the_world"]
    print(
        f"live traffic ({args.fid}/{args.solution}, "
        f"{section['n_requests']} requests):"
    )
    for label, side in (("scoped", scoped), ("stop-the-world", stw)):
        d = side["during_mitigation"]
        print(
            f"  {label:<15} during-mitigation p50 {d['p50'] * 1000:7.1f}ms  "
            f"p99 {d['p99'] * 1000:7.1f}ms  p999 {d['p999'] * 1000:7.1f}ms  "
            f"(n={d['count']}, budget burned "
            f"{side['error_budget']['burned']}/"
            f"{side['error_budget']['budget']})"
        )
    print(
        f"  p99 ratio {section['stw_over_scoped_p99_ratio']:.1f}x, "
        f"{scoped['quarantine']['stream_keys']} keys quarantined, "
        f"analysis {scoped['analysis_seconds']:.3f}s, "
        f"digests identical"
    )
    if args.out != "-":
        # write only the live_traffic section; write_report's
        # setdefault-merge keeps every other benched section intact
        write_report({"live_traffic": section}, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_inject_sweep(args) -> int:
    import json
    import os

    from repro.faultinject import KINDS
    from repro.harness.inject_sweep import run_sweep

    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    for k in kinds:
        if k not in KINDS:
            print(f"unknown fault kind {k!r}; pick from {','.join(KINDS)}",
                  file=sys.stderr)
            return 2
    fids = [f.strip() for f in args.faults.split(",") if f.strip()]
    max_per_site = 1 if args.quick else args.max_per_site

    def progress(cell) -> None:
        status = "ok  " if cell.verified else "FAIL"
        print(f"  {status} {cell.label} (retries={cell.crash_retries}, "
              f"by={cell.recovered_by})", file=sys.stderr)

    report = run_sweep(
        fids=fids, solution=args.solution, kinds=kinds, seed=args.seed,
        max_per_site=max_per_site, progress=progress,
    )
    print(report.summary())
    if args.out != "-":
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report.all_verified else 1


def _cmd_fuzz_sweep(args) -> int:
    import json
    import os

    from repro.faults import fuzzed
    from repro.harness.fuzz_sweep import (
        QUICK_TRIALS,
        check_against,
        emit_registry,
        run_fuzz_sweep,
    )

    systems = None
    if args.systems:
        systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    trials = QUICK_TRIALS if args.quick else args.trials

    def progress(d) -> None:
        print(f"  found [{d.family}/{d.phase}] {d.system}: {d.fault}",
              file=sys.stderr)

    report = run_fuzz_sweep(
        systems=systems, trials=trials, sweep_seed=args.seed,
        max_per_system=args.max_per_system, progress=progress,
    )
    print(report.summary())

    if args.check:
        if not os.path.exists(args.out):
            print(f"drift check: no committed report at {args.out}",
                  file=sys.stderr)
            return 1
        with open(args.out) as f:
            committed = json.load(f)
        problems = check_against(report, committed)
        if problems:
            for p in problems:
                print(f"drift check: {p}", file=sys.stderr)
            return 1
        print(f"drift check: quick sweep matches {args.out}",
              file=sys.stderr)
        return 0

    if args.out != "-":
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.emit_registry:
        emit_registry(report.discoveries, fuzzed.__file__)
        print(f"rewrote FUZZED_FAULT_SPECS in {fuzzed.__file__} "
              f"({len(report.discoveries)} entries)", file=sys.stderr)
    return 0


def _cmd_cluster_sweep(args) -> int:
    import json
    import os

    from repro.distributed.cluster import DEFAULT_REPLICATION_ENGINE
    from repro.harness.cluster_sweep import check_against, run_cluster_sweep

    def progress(cell) -> None:
        print(f"  {cell.cell_key}: "
              f"{'converged' if cell.converged else 'FAILED'}",
              file=sys.stderr)

    report = run_cluster_sweep(
        sweep_seed=args.seed, quick=args.quick, progress=progress,
        engine=args.replication_engine or DEFAULT_REPLICATION_ENGINE,
    )
    print(report.summary())

    if args.check:
        if not os.path.exists(args.out):
            print(f"drift check: no committed report at {args.out}",
                  file=sys.stderr)
            return 1
        with open(args.out) as f:
            committed = json.load(f)
        problems = check_against(report, committed)
        if problems:
            for p in problems:
                print(f"drift check: {p}", file=sys.stderr)
            return 1
        print(f"drift check: sweep matches {args.out}", file=sys.stderr)
        return 0 if report.all_converged else 1

    if args.out != "-":
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report.all_converged else 1


def _cmd_cluster_status(args) -> int:
    from repro.detector.monitor import Detector
    from repro.distributed.cluster import (
        DEFAULT_REPLICATION_ENGINE, Cluster, ClusterClient,
    )
    from repro.distributed.shardmgr import ShardManager
    from repro.faults.registry import scenario_by_id
    from repro.harness.experiment import ExperimentContext

    scenario = scenario_by_id(args.fid)
    cluster = Cluster(
        n_nodes=args.nodes, n_clients=1,
        adapter_cls=scenario.adapter_cls(), seed=args.seed, replication=2,
        replication_engine=args.replication_engine
        or DEFAULT_REPLICATION_ENGINE,
    )
    client = ClusterClient(cluster, 0)
    for key in range(40):
        client.insert(key, 500 + key)
    target = 0
    node = cluster.nodes[target]
    ctx = ExperimentContext(node, scenario, args.seed)
    ctx.oracle = cluster.oracles[target]
    scenario.trigger(ctx)
    detector = Detector()
    outcome = detector.observe(node.machine, lambda: scenario.manifest(ctx))
    if outcome.ok:
        print(f"{args.fid} did not manifest on shard {target}",
              file=sys.stderr)
        return 1
    mgr = ShardManager(cluster, solution="arthas", seed=args.seed)
    mgr.note_verdict(target)
    report = mgr.heal(target, ctx, scenario, outcome, detector)
    print(f"heal({args.fid} @ shard {target}): "
          f"recovered={report.recovered} via {report.recovered_by or '-'}, "
          f"demoted={report.demoted}, "
          f"resync_replayed={report.resync_replayed}")
    rows = [
        [row["node"], row["status"], row["score"], row["verdicts"],
         row["mitigations"]]
        for row in mgr.health_table()
    ]
    print(render_table(
        "Cluster shard health",
        ["shard", "status", "score", "verdicts", "mitigations"],
        rows,
    ))
    return 0 if report.recovered else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arthas reproduction: hard-fault recovery for PM systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-faults", help="list the registered fault scenarios")
    sub.add_parser("study", help="print the Section 2 study aggregates")

    run_p = sub.add_parser("run", help="run one fault/solution experiment")
    run_p.add_argument("--fault", required=True,
                       choices=[s.fid for s in ALL_SCENARIOS])
    run_p.add_argument("--solution", default="arthas",
                       choices=list(SOLUTIONS) + list(EXTRA_SOLUTIONS))
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--bisect-engine", default="incremental",
                       choices=["incremental", "snapshot"],
                       help="probe engine for arthas-bi (snapshot is the "
                            "full-restore oracle)")
    run_p.add_argument("--vm-engine", default="fused",
                       choices=list(VM_ENGINES),
                       help="PMLang VM engine (table is the per-step "
                            "dispatch oracle)")

    matrix_p = sub.add_parser("matrix",
                              help="all registered faults for one solution")
    matrix_p.add_argument("--solution", default="arthas", choices=SOLUTIONS)
    matrix_p.add_argument("--seed", type=int, default=0)
    matrix_p.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: CPU count; "
                               "1 = exact serial path)")
    matrix_p.add_argument("--cell-timeout", type=float, default=None,
                          help="per-cell wall-clock budget in seconds")

    matrix_all_p = sub.add_parser(
        "matrix-all",
        help="the full fault x solution sweep over a process pool, "
             "with per-family recoverability",
    )
    matrix_all_p.add_argument("--seeds", type=int, default=1,
                              help="run seeds 0..K-1 per cell (default 1)")
    matrix_all_p.add_argument("--jobs", type=int, default=None,
                              help="worker processes (default: CPU count; "
                                   "1 = exact serial path)")
    matrix_all_p.add_argument("--cell-timeout", type=float, default=None,
                              help="per-cell wall-clock budget in seconds")
    matrix_all_p.add_argument("--out", default="results/matrix_all.json",
                              help="JSON report path ('-' to skip writing)")

    analyze_p = sub.add_parser("analyze", help="static-analysis statistics")
    analyze_p.add_argument("--system", required=True,
                           choices=["memcached", "redis", "cceh",
                                    "pelikan", "pmemkv", "levelhash"])

    bench_p = sub.add_parser(
        "bench-hotpaths",
        help="time the indexed reactor hot paths vs the seed linear scans",
    )
    bench_p.add_argument("--quick", action="store_true",
                         help="5k-update smoke run instead of 50k")
    bench_p.add_argument("--updates", type=int, default=None,
                         help="override the synthetic log size")
    bench_p.add_argument("--seed", type=int, default=0)
    bench_p.add_argument("--out", default="results/BENCH_hotpaths.json",
                         help="report path ('-' to skip writing)")
    bench_p.add_argument("--only", default=None,
                         choices=["plan", "mitigation", "probe_engine",
                                  "vm", "write_path", "live_traffic",
                                  "cluster"],
                         help="run a single section (partial reports "
                              "omit the summary block; --profile then "
                              "profiles just that section)")
    bench_p.add_argument("--profile", action="store_true",
                         help="run under cProfile and write a top-N "
                              "cumulative/tottime report next to the JSON")
    bench_p.add_argument("--profile-top", type=int, default=30,
                         help="entries per sort order in the profile report")

    serve_p = sub.add_parser(
        "serve-bench",
        help="live-traffic recovery server: p50/p99 under fire, "
             "quarantine-scoped vs stop-the-world mitigation",
    )
    serve_p.add_argument("--fid", default="f1",
                         help="fault scenario to trigger mid-stream")
    serve_p.add_argument("--solution", default="arthas-bi",
                         help="mitigation solution (default arthas-bi)")
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--requests", type=int, default=None,
                         help="stream length (default 300; --quick 240)")
    serve_p.add_argument("--quick", action="store_true",
                         help="smaller keyspace/stream (CI smoke mode)")
    serve_p.add_argument("--out", default="results/BENCH_hotpaths.json",
                         help="report path, merged as the live_traffic "
                              "section ('-' to skip writing)")

    sweep_p = sub.add_parser(
        "inject-sweep",
        help="inject a fault at every enumerable recovery-pipeline site "
             "and demand verified-consistent pools",
    )
    sweep_p.add_argument("--faults", default="f9,f12",
                         help="comma-separated fault ids to sweep")
    sweep_p.add_argument("--solution", default="arthas-rb", choices=SOLUTIONS)
    sweep_p.add_argument("--kinds", default="crash,torn,bitflip",
                         help="comma-separated fault kinds to inject")
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument("--max-per-site", type=int, default=3,
                         help="occurrences sampled per site family "
                              "(first/last always included)")
    sweep_p.add_argument("--quick", action="store_true",
                         help="one occurrence per site (CI smoke mode)")
    sweep_p.add_argument("--out", default="results/inject_sweep.json",
                         help="JSON report path ('-' to skip writing)")

    fuzz_p = sub.add_parser(
        "fuzz-sweep",
        help="fuzz the guest persistence layer for new crash-consistency "
             "and kernel-PM fault families; minimize and register finds",
    )
    fuzz_p.add_argument("--systems", default=None,
                        help="comma-separated subset of systems to fuzz "
                             "(default: all six)")
    fuzz_p.add_argument("--trials", type=int, default=40,
                        help="fuzz trials per system (default 40)")
    fuzz_p.add_argument("--seed", type=int, default=2026,
                        help="sweep seed; discoveries are deterministic "
                             "per (seed, system, trial)")
    fuzz_p.add_argument("--max-per-system", type=int, default=2,
                        help="registered reproducers per system cap")
    fuzz_p.add_argument("--quick", action="store_true",
                        help="first 10 trials per system (CI smoke mode; "
                             "a strict prefix of the full sweep)")
    fuzz_p.add_argument("--check", action="store_true",
                        help="drift check: compare this sweep's finds "
                             "against the committed report at --out")
    fuzz_p.add_argument("--emit-registry", action="store_true",
                        help="rewrite the generated FUZZED_FAULT_SPECS "
                             "block in faults/fuzzed.py")
    fuzz_p.add_argument("--out", default="results/fuzz_sweep.json",
                        help="JSON report path ('-' to skip writing)")

    csweep_p = sub.add_parser(
        "cluster-sweep",
        help="inject every registered fault into one shard of a "
             "replicated cluster and demand promotion-healed, "
             "digest-identical convergence per cell",
    )
    csweep_p.add_argument("--seed", type=int, default=11,
                          help="sweep seed (cells are deterministic "
                               "per seed)")
    csweep_p.add_argument("--quick", action="store_true",
                          help="f1+f5 and one heal-crash cell (CI smoke "
                               "mode; a strict subset of the full sweep)")
    csweep_p.add_argument("--check", action="store_true",
                          help="drift check: compare this sweep's cells "
                               "against the committed report at --out")
    csweep_p.add_argument("--out", default="results/cluster_sweep.json",
                          help="JSON report path ('-' to skip writing)")
    csweep_p.add_argument("--replication-engine", default=None,
                          choices=["reexec", "delta"],
                          help="replication engine under test (default: "
                               "the cluster default, currently delta)")

    cstatus_p = sub.add_parser(
        "cluster-status",
        help="demo heal: wedge one shard, run the promotion protocol, "
             "print the per-shard health table",
    )
    cstatus_p.add_argument("--fid", default="f1",
                           help="fault scenario to wedge shard 0 with")
    cstatus_p.add_argument("--nodes", type=int, default=3)
    cstatus_p.add_argument("--seed", type=int, default=0)
    cstatus_p.add_argument("--replication-engine", default=None,
                           choices=["reexec", "delta"],
                           help="replication engine for the demo cluster")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list-faults": _cmd_list_faults,
        "study": _cmd_study,
        "run": _cmd_run,
        "matrix": _cmd_matrix,
        "matrix-all": _cmd_matrix_all,
        "analyze": _cmd_analyze,
        "bench-hotpaths": _cmd_bench_hotpaths,
        "serve-bench": _cmd_serve_bench,
        "inject-sweep": _cmd_inject_sweep,
        "fuzz-sweep": _cmd_fuzz_sweep,
        "cluster-sweep": _cmd_cluster_sweep,
        "cluster-status": _cmd_cluster_status,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
