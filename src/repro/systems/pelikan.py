"""Mini-Pelikan in PMLang: slab-class cache with a stats block.

Carries the logic of faults f10-f11 (paper Table 2):

* **f10** — ``pl_set`` keeps the value length in an 8-bit field and
  validates capacity against the *wrapped* total, so an oversized value
  writes far past the item's inline array, trashing neighbouring items'
  chain words (persisted via the covering transaction).  The next lookup
  that walks a trashed chain dereferences garbage — segmentation fault.
* **f11** — ``pl_stats_reset`` frees the stats block and persists a null
  pointer, relying on a lazy re-allocation that was never implemented;
  every subsequent stats request dereferences null.  The null pointer is
  persistent, so the segfault recurs across restarts.

Items carry a slab-class id; class 0 items may use 4 inline value words,
class 1 items all 8.  ``pl_delete`` asserts the stored length fits the
class — the check that trips over f10's leftover corruption.
"""

from __future__ import annotations

from typing import List

from repro.systems.common import SystemAdapter

STRUCTS = {
    "proot": [
        "pl_ht",
        "pl_htsize",
        "pl_count",
        "pl_bytes",
        "pl_stats",
        "pl_time",
    ],
    "pitem": [
        "pi_key",
        "pi_klass",
        "pi_vallen",
        "pi_d0",
        "pi_d1",
        "pi_d2",
        "pi_d3",
        "pi_d4",
        "pi_d5",
        "pi_d6",
        "pi_d7",
        "pi_hnext",
    ],
    "pstats": ["ps_hits", "ps_misses", "ps_sets", "ps_dels"],
}

SOURCE = '''
def pl_init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("proot"))
        ht = pm_alloc(64)
        st = pm_alloc(sizeof("pstats"))
        root.pl_ht = ht
        root.pl_htsize = 64
        root.pl_count = 0
        root.pl_bytes = 0
        root.pl_stats = st
        root.pl_time = 0
        persist(st, sizeof("pstats"))
        persist(root, sizeof("proot"))
        set_root(root)
    return root


def pl_bump(root, which):
    st = root.pl_stats
    if st == 0:
        return 0
    if which == 0:
        st.ps_hits = st.ps_hits + 1
        persist(addr(st.ps_hits), 1)
    elif which == 1:
        st.ps_misses = st.ps_misses + 1
        persist(addr(st.ps_misses), 1)
    elif which == 2:
        st.ps_sets = st.ps_sets + 1
        persist(addr(st.ps_sets), 1)
    else:
        st.ps_dels = st.ps_dels + 1
        persist(addr(st.ps_dels), 1)
    return 0


def pl_class_cap(klass):
    if klass == 0:
        return 4
    return 8


def pl_find(root, key):
    ht = root.pl_ht
    b = key % root.pl_htsize
    it = ht[b]
    while it != 0:
        if it.pi_key == key:
            return it
        it = it.pi_hnext
    return 0


def pl_set(root, key, n, val):
    klass = 0
    if n > 4:
        klass = 1
    cap = pl_class_cap(klass)
    stored = n % 256
    if stored > cap:
        return -1
    it = pl_find(root, key)
    if it == 0:
        it = pm_alloc(sizeof("pitem"))
        ht = root.pl_ht
        b = key % root.pl_htsize
        tx_begin()
        tx_add(it, sizeof("pitem"))
        tx_add(addr(ht[b]), 1)
        tx_add(addr(root.pl_count), 1)
        it.pi_key = key
        it.pi_klass = klass
        it.pi_hnext = ht[b]
        ht[b] = it
        root.pl_count = root.pl_count + 1
        tx_commit()
    tx_begin()
    tx_add(it, 3 + n)
    tx_add(addr(root.pl_bytes), 1)
    base = it + 3
    i = 0
    while i < n:
        base[i] = val
        i = i + 1
    root.pl_bytes = root.pl_bytes - it.pi_vallen + n
    it.pi_vallen = stored
    tx_commit()
    pl_bump(root, 2)
    return 1


def pl_get(root, key):
    it = pl_find(root, key)
    if it == 0:
        pl_bump(root, 1)
        return -1
    pl_bump(root, 0)
    return it.pi_d0


def pl_delete(root, key):
    ht = root.pl_ht
    b = key % root.pl_htsize
    it = ht[b]
    prev = 0
    while it != 0:
        if it.pi_key == key:
            cap = pl_class_cap(it.pi_klass)
            assert_true(it.pi_vallen <= cap, "slab_release: corrupt item length")
            tx_begin()
            if prev == 0:
                tx_add(addr(ht[b]), 1)
                ht[b] = it.pi_hnext
            else:
                tx_add(addr(prev.pi_hnext), 1)
                prev.pi_hnext = it.pi_hnext
            tx_add(addr(root.pl_count), 1)
            tx_add(addr(root.pl_bytes), 1)
            root.pl_count = root.pl_count - 1
            root.pl_bytes = root.pl_bytes - it.pi_vallen
            tx_commit()
            pm_free(it)
            pl_bump(root, 3)
            return 1
        prev = it
        it = it.pi_hnext
    return 0


def pl_stats_cmd(root):
    st = root.pl_stats
    return st.ps_hits + st.ps_misses + st.ps_sets + st.ps_dels


def pl_stats_reset(root):
    st = root.pl_stats
    pm_free(st)
    root.pl_stats = 0
    persist(addr(root.pl_stats), 1)
    return 1


def pl_check(root, key):
    it = pl_find(root, key)
    assert_true(it != 0, "check: key missing")
    return it.pi_d0


def pl_recover(root):
    n = 0
    total = 0
    ht = root.pl_ht
    size = root.pl_htsize
    b = 0
    while b < size:
        it = ht[b]
        while it != 0:
            k = it.pi_key
            total = total + it.pi_vallen
            n = n + 1
            it = it.pi_hnext
        b = b + 1
    st = root.pl_stats
    if st != 0:
        h = st.ps_hits
    root.pl_count = n
    root.pl_bytes = total
    persist(addr(root.pl_count), 1)
    persist(addr(root.pl_bytes), 1)
    return n


def pl_scan(root, limit):
    n = 0
    ht = root.pl_ht
    size = root.pl_htsize
    b = 0
    while b < size:
        it = ht[b]
        steps = 0
        while it != 0:
            if steps > limit:
                return -1
            n = n + 1
            steps = steps + 1
            it = it.pi_hnext
        b = b + 1
    return n


def pl_scan_bytes(root, limit):
    n = 0
    ht = root.pl_ht
    size = root.pl_htsize
    b = 0
    while b < size:
        it = ht[b]
        steps = 0
        while it != 0:
            if steps > limit:
                return -1
            n = n + it.pi_vallen
            steps = steps + 1
            it = it.pi_hnext
        b = b + 1
    return n


def pl_count(root):
    return root.pl_count


def pl_bytes(root):
    return root.pl_bytes


def __driver__():
    root = pl_init()
    pl_set(root, 1, 2, 3)
    pl_get(root, 1)
    pl_check(root, 1)
    pl_stats_cmd(root)
    pl_delete(root, 1)
    pl_stats_reset(root)
    pl_recover(root)
    pl_scan(root, 10)
    pl_scan_bytes(root, 10)
    pl_count(root)
    pl_bytes(root)
    return 0
'''


class PelikanAdapter(SystemAdapter):
    """Harness adapter for mini-Pelikan."""

    NAME = "pelikan"
    STRUCTS = STRUCTS
    SOURCE = SOURCE
    INIT_FN = "pl_init"
    RECOVER_FN = "pl_recover"

    ITEM_WORDS = len(STRUCTS["pitem"])

    def insert(self, key: int, value: int) -> int:
        return self.call("pl_set", self.root, key, 1, value)

    def set_value(self, key: int, nwords: int, value: int) -> int:
        return self.call("pl_set", self.root, key, nwords, value)

    def lookup(self, key: int) -> int:
        return self.call("pl_get", self.root, key)

    def delete(self, key: int) -> int:
        return self.call("pl_delete", self.root, key)

    def stats_cmd(self) -> int:
        return self.call("pl_stats_cmd", self.root)

    def stats_reset(self) -> int:
        return self.call("pl_stats_reset", self.root)

    def count_items(self) -> int:
        return self.call("pl_count", self.root)

    def check_key(self, key: int) -> None:
        self.call("pl_check", self.root, key)

    def consistency_violations(self) -> List[str]:
        violations = []
        count = self.count_items()
        limit = count + 64
        scanned = self.call("pl_scan", self.root, limit)
        if scanned == -1:
            violations.append("hash chain corrupt (walk exceeded bound)")
        elif scanned != count:
            violations.append(f"item count {count} != scanned items {scanned}")
        scanned_bytes = self.call("pl_scan_bytes", self.root, limit)
        stored_bytes = self.call("pl_bytes", self.root)
        if scanned_bytes != -1 and scanned_bytes != stored_bytes:
            violations.append(
                f"byte accounting {stored_bytes} != scanned bytes {scanned_bytes}"
            )
        return violations

    def expected_item_words(self) -> int:
        return (
            self.count_items() * self.ITEM_WORDS
            + 64
            + len(STRUCTS["proot"])
            + len(STRUCTS["pstats"])
        )
