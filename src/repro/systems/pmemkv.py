"""Mini-PMEMKV in PMLang: hashtable engine with asynchronous lazy free.

Carries fault f12 (paper Table 2, PMEMKV issue #7): when a client deletes
a key, the engine unlinks the entry from the persistent hashtable
immediately (for request latency) and queues the block on a **volatile**
to-free list that a background thread drains later with ``pm_free``.  If
the process crashes before the background thread runs, the unlinked
blocks are still allocated in persistent memory but unreachable from the
root — a persistent memory leak that survives every restart.

The adapter exposes ``delete`` (unlink + enqueue) and ``drain`` (run the
background free thread); the f12 scenario crashes between the two.
"""

from __future__ import annotations

from typing import List

from repro.systems.common import SystemAdapter

#: capacity of the volatile pending-free queue
QUEUE_CAP = 512

STRUCTS = {
    "kvroot": ["pk_ht", "pk_htsize", "pk_count"],
    "kventry": ["pe_key", "pe_val", "pe_next"],
}

SOURCE = '''
def pk_init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("kvroot"))
        ht = pm_alloc(64)
        root.pk_ht = ht
        root.pk_htsize = 64
        root.pk_count = 0
        persist(root, sizeof("kvroot"))
        set_root(root)
    return root


def pk_make_queue():
    q = valloc(2 + 512)
    q[0] = 0
    return q


def pk_find(root, key):
    ht = root.pk_ht
    b = key % root.pk_htsize
    e = ht[b]
    while e != 0:
        if e.pe_key == key:
            return e
        e = e.pe_next
    return 0


def pk_put(root, key, val):
    e = pk_find(root, key)
    if e != 0:
        tx_begin()
        tx_add(addr(e.pe_val), 1)
        e.pe_val = val
        tx_commit()
        return 1
    e = pm_alloc(sizeof("kventry"))
    ht = root.pk_ht
    b = key % root.pk_htsize
    tx_begin()
    tx_add(e, sizeof("kventry"))
    tx_add(addr(ht[b]), 1)
    tx_add(addr(root.pk_count), 1)
    e.pe_key = key
    e.pe_val = val
    e.pe_next = ht[b]
    ht[b] = e
    root.pk_count = root.pk_count + 1
    tx_commit()
    return 1


def pk_get(root, key):
    e = pk_find(root, key)
    if e == 0:
        return -1
    return e.pe_val


def pk_delete(root, q, key):
    ht = root.pk_ht
    b = key % root.pk_htsize
    e = ht[b]
    prev = 0
    while e != 0:
        if e.pe_key == key:
            tx_begin()
            if prev == 0:
                tx_add(addr(ht[b]), 1)
                ht[b] = e.pe_next
            else:
                tx_add(addr(prev.pe_next), 1)
                prev.pe_next = e.pe_next
            tx_add(addr(root.pk_count), 1)
            root.pk_count = root.pk_count - 1
            tx_commit()
            n = q[0]
            if n < 512:
                q[1 + n] = e
                q[0] = n + 1
            return 1
        prev = e
        e = e.pe_next
    return 0


def pk_lazy_free(q):
    n = q[0]
    i = 0
    while i < n:
        thread_yield()
        pm_free(q[1 + i])
        i = i + 1
    q[0] = 0
    return n


def pk_check(root, key):
    e = pk_find(root, key)
    assert_true(e != 0, "check: key missing")
    return e.pe_val


def pk_recover(root):
    n = 0
    ht = root.pk_ht
    size = root.pk_htsize
    b = 0
    while b < size:
        e = ht[b]
        while e != 0:
            k = e.pe_key
            v = e.pe_val
            n = n + 1
            e = e.pe_next
        b = b + 1
    root.pk_count = n
    persist(addr(root.pk_count), 1)
    return n


def pk_scan(root, limit):
    n = 0
    ht = root.pk_ht
    size = root.pk_htsize
    b = 0
    while b < size:
        e = ht[b]
        steps = 0
        while e != 0:
            if steps > limit:
                return -1
            n = n + 1
            steps = steps + 1
            e = e.pe_next
        b = b + 1
    return n


def pk_count(root):
    return root.pk_count


def __driver__():
    root = pk_init()
    q = pk_make_queue()
    pk_put(root, 1, 2)
    pk_get(root, 1)
    pk_check(root, 1)
    pk_delete(root, q, 1)
    pk_lazy_free(q)
    pk_recover(root)
    pk_scan(root, 10)
    pk_count(root)
    return 0
'''


class PmemkvAdapter(SystemAdapter):
    """Harness adapter for mini-PMEMKV."""

    NAME = "pmemkv"
    STRUCTS = STRUCTS
    SOURCE = SOURCE
    INIT_FN = "pk_init"
    RECOVER_FN = "pk_recover"

    ENTRY_WORDS = len(STRUCTS["kventry"])

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.queue = 0

    def start(self) -> None:
        super().start()
        self.queue = self.call("pk_make_queue")

    def restart(self) -> None:
        super().restart()
        # the pending-free queue is volatile: it does not survive a crash
        self.queue = self.call("pk_make_queue")

    def insert(self, key: int, value: int) -> int:
        return self.call("pk_put", self.root, key, value)

    def lookup(self, key: int) -> int:
        return self.call("pk_get", self.root, key)

    def delete(self, key: int) -> int:
        """Unlink now; the block is freed only when ``drain`` runs."""
        return self.call("pk_delete", self.root, self.queue, key)

    def drain(self) -> int:
        """Run the asynchronous free thread to completion."""
        return self.call("pk_lazy_free", self.queue)

    def count_items(self) -> int:
        return self.call("pk_count", self.root)

    def check_key(self, key: int) -> None:
        self.call("pk_check", self.root, key)

    def consistency_violations(self) -> List[str]:
        violations = []
        count = self.count_items()
        scanned = self.call("pk_scan", self.root, count + 64)
        if scanned == -1:
            violations.append("hash chain corrupt (walk exceeded bound)")
        elif scanned != count:
            violations.append(f"count {count} != scanned entries {scanned}")
        return violations

    def expected_item_words(self) -> int:
        return (
            self.count_items() * self.ENTRY_WORDS
            + 64
            + len(STRUCTS["kvroot"])
        )
