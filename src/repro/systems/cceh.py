"""CCEH in PMLang: directory-doubling extendible hashing (fault f9).

CCEH (FAST '19) grows by splitting 4-slot segments; when a segment's
local depth equals the global depth, the directory doubles.  The RECIPE
authors reported the bug the paper reproduces as **f9**: metadata updates
during directory doubling are not crash-atomic — if the process dies
after the new directory is installed but *before* the global depth is
bumped, every later insert into a full max-depth segment loops forever:

* the insert sees ``local_depth == global_depth`` and asks for a doubling,
* ``cc_double`` sees the directory capacity already doubled and returns
  early (believing the doubling happened), without fixing ``cc_gd``,
* the insert retries, the segment is still full — an infinite loop that
  recurs on every restart because the half-updated metadata is persistent.

The harness injects the crash at the ``nop()`` anchor between the two
metadata transactions.
"""

from __future__ import annotations

from typing import List

from repro.systems.common import SystemAdapter

#: key/value pairs per segment
SEG_CAP = 4

STRUCTS = {
    "ccroot": ["cc_dir", "cc_dircap", "cc_gd", "cc_count"],
    # segment: local depth, live pairs, then SEG_CAP inline (key, value)s
    "ccseg": [
        "cs_ld",
        "cs_count",
        "cs_k0",
        "cs_v0",
        "cs_k1",
        "cs_v1",
        "cs_k2",
        "cs_v2",
        "cs_k3",
        "cs_v3",
    ],
}

SOURCE = '''
def cc_new_seg(ld):
    seg = pm_alloc(sizeof("ccseg"))
    tx_begin()
    tx_add(seg, 2)
    seg.cs_ld = ld
    seg.cs_count = 0
    tx_commit()
    return seg


def cc_init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("ccroot"))
        d = pm_alloc(4)
        i = 0
        while i < 4:
            d[i] = cc_new_seg(2)
            i = i + 1
        root.cc_dir = d
        root.cc_dircap = 4
        root.cc_gd = 2
        root.cc_count = 0
        persist(d, 4)
        persist(root, sizeof("ccroot"))
        set_root(root)
    return root


def cc_seg_find(seg, key):
    base = seg + 2
    i = 0
    while i < seg.cs_count:
        if base[2 * i] == key:
            return i
        i = i + 1
    return -1


def cc_insert(root, key, val):
    while 1 == 1:
        mask = (1 << root.cc_gd) - 1
        idx = key & mask
        d = root.cc_dir
        seg = d[idx]
        slot = cc_seg_find(seg, key)
        if slot >= 0:
            base = seg + 2
            tx_begin()
            tx_add(addr(base[2 * slot + 1]), 1)
            base[2 * slot + 1] = val
            tx_commit()
            return 1
        if seg.cs_count < 4:
            base = seg + 2
            n = seg.cs_count
            tx_begin()
            tx_add(addr(base[2 * n]), 1)
            tx_add(addr(base[2 * n + 1]), 1)
            tx_add(addr(seg.cs_count), 1)
            tx_add(addr(root.cc_count), 1)
            base[2 * n] = key
            base[2 * n + 1] = val
            seg.cs_count = seg.cs_count + 1
            root.cc_count = root.cc_count + 1
            tx_commit()
            return 1
        if seg.cs_ld < root.cc_gd:
            cc_split(root, seg)
        else:
            cc_double(root)
    return 0


def cc_split(root, seg):
    ld = seg.cs_ld
    s0 = cc_new_seg(ld + 1)
    s1 = cc_new_seg(ld + 1)
    base = seg + 2
    i = 0
    while i < seg.cs_count:
        k = base[2 * i]
        v = base[2 * i + 1]
        t = s0
        if ((k >> ld) & 1) != 0:
            t = s1
        tbase = t + 2
        n = t.cs_count
        tx_begin()
        tx_add(addr(tbase[2 * n]), 1)
        tx_add(addr(tbase[2 * n + 1]), 1)
        tx_add(addr(t.cs_count), 1)
        tbase[2 * n] = k
        tbase[2 * n + 1] = v
        t.cs_count = t.cs_count + 1
        tx_commit()
        i = i + 1
    d = root.cc_dir
    cap = root.cc_dircap
    j = 0
    while j < cap:
        if d[j] == seg:
            t = s0
            if ((j >> ld) & 1) != 0:
                t = s1
            tx_begin()
            tx_add(addr(d[j]), 1)
            d[j] = t
            tx_commit()
        j = j + 1
    pm_free(seg)
    return 1


def cc_double(root):
    if root.cc_dircap == 2 * (1 << root.cc_gd):
        return 0
    cap = root.cc_dircap
    newcap = cap * 2
    d = root.cc_dir
    nd = pm_alloc(newcap)
    i = 0
    while i < cap:
        nd[i] = d[i]
        nd[i + cap] = d[i]
        i = i + 1
    persist(nd, newcap)
    tx_begin()
    tx_add(addr(root.cc_dir), 1)
    tx_add(addr(root.cc_dircap), 1)
    root.cc_dir = nd
    root.cc_dircap = newcap
    tx_commit()
    nop()
    tx_begin()
    tx_add(addr(root.cc_gd), 1)
    root.cc_gd = root.cc_gd + 1
    tx_commit()
    pm_free(d)
    return 1


def cc_get(root, key):
    mask = (1 << root.cc_gd) - 1
    idx = key & mask
    d = root.cc_dir
    seg = d[idx]
    slot = cc_seg_find(seg, key)
    if slot < 0:
        return -1
    base = seg + 2
    return base[2 * slot + 1]


def cc_delete(root, key):
    mask = (1 << root.cc_gd) - 1
    idx = key & mask
    d = root.cc_dir
    seg = d[idx]
    slot = cc_seg_find(seg, key)
    if slot < 0:
        return 0
    base = seg + 2
    last = seg.cs_count - 1
    tx_begin()
    tx_add(addr(base[2 * slot]), 1)
    tx_add(addr(base[2 * slot + 1]), 1)
    tx_add(addr(base[2 * last]), 1)
    tx_add(addr(base[2 * last + 1]), 1)
    tx_add(addr(seg.cs_count), 1)
    tx_add(addr(root.cc_count), 1)
    base[2 * slot] = base[2 * last]
    base[2 * slot + 1] = base[2 * last + 1]
    base[2 * last] = 0
    base[2 * last + 1] = 0
    seg.cs_count = last
    root.cc_count = root.cc_count - 1
    tx_commit()
    return 1


def cc_check(root, key):
    v = cc_get(root, key)
    assert_true(v != -1, "check: key missing")
    return v


def cc_recover(root):
    n = 0
    d = root.cc_dir
    cap = root.cc_dircap
    i = 0
    while i < cap:
        seg = d[i]
        base = seg + 2
        j = 0
        while j < seg.cs_count:
            k = base[2 * j]
            j = j + 1
        i = i + 1
        n = n + 1
    c = cc_scan(root)
    root.cc_count = c
    persist(addr(root.cc_count), 1)
    return n


def cc_scan(root):
    # each segment appears in 2^(gd - ld) directory slots; weight it out
    total = 0
    d = root.cc_dir
    cap = root.cc_dircap
    gd = root.cc_gd
    i = 0
    while i < cap:
        seg = d[i]
        share = 1 << (gd - seg.cs_ld)
        if share > 0:
            total = total + (seg.cs_count * 256) // share
        i = i + 1
    return total // 256


def cc_meta_ok(root):
    if root.cc_dircap == (1 << root.cc_gd):
        return 1
    return 0


def cc_count(root):
    return root.cc_count


def __driver__():
    root = cc_init()
    cc_insert(root, 1, 2)
    cc_get(root, 1)
    cc_check(root, 1)
    cc_delete(root, 1)
    cc_double(root)
    cc_recover(root)
    cc_scan(root)
    cc_meta_ok(root)
    cc_count(root)
    return 0
'''


class CCEHAdapter(SystemAdapter):
    """Harness adapter for CCEH."""

    NAME = "cceh"
    STRUCTS = STRUCTS
    SOURCE = SOURCE
    INIT_FN = "cc_init"
    RECOVER_FN = "cc_recover"

    def insert(self, key: int, value: int) -> int:
        return self.call("cc_insert", self.root, key, value)

    def lookup(self, key: int) -> int:
        return self.call("cc_get", self.root, key)

    def delete(self, key: int) -> int:
        return self.call("cc_delete", self.root, key)

    def count_items(self) -> int:
        return self.call("cc_count", self.root)

    def check_key(self, key: int) -> None:
        self.call("cc_check", self.root, key)

    def consistency_violations(self) -> List[str]:
        violations = []
        if not self.call("cc_meta_ok", self.root):
            violations.append("directory capacity does not match global depth")
        count = self.count_items()
        scanned = self.call("cc_scan", self.root)
        if scanned != count:
            violations.append(f"count {count} != scanned pairs {scanned}")
        return violations

    def expected_item_words(self) -> int:
        dircap = self.pool.read(self.root + STRUCTS["ccroot"].index("cc_dircap"))
        seg_words = len(STRUCTS["ccseg"])
        # at most dircap segments exist (usually fewer)
        return self.count_items() * 3 + dircap * (seg_words + 1) + 8

    def double_crash_iid(self) -> int:
        """Instruction id of the f9 crash-injection anchor (the nop)."""
        for instr in self.module.functions["cc_double"].instructions():
            if instr.op == "nop":
                return instr.iid
        raise AssertionError("cc_double has no nop anchor")
