"""The five PM target systems, written in PMLang (paper Section 6.1).

Miniature but faithful re-implementations of the systems the paper
evaluates — each contains the data-structure logic its bugs live in:

* :mod:`repro.systems.memcached` — chained hashtable, item refcounts,
  lazy expiry, rehash/expansion (faults f1-f5)
* :mod:`repro.systems.redis` — dict of objects with refcounts, listpacks,
  slowlog (faults f6-f8)
* :mod:`repro.systems.cceh` — directory-doubling extendible hashing
  (fault f9)
* :mod:`repro.systems.pelikan` — slab-class cache (faults f10-f11)
* :mod:`repro.systems.pmemkv` — KV engine with asynchronous lazy free
  (fault f12)
* :mod:`repro.systems.levelhash` — two-level write-optimized hashing
  (bonus system carrying the study's wrong-mask rehash bug)

Each module exposes a :class:`~repro.systems.common.SystemAdapter`
subclass providing a uniform insert/lookup/delete/check interface to the
experiment harness.
"""

from repro.systems.cceh import CCEHAdapter
from repro.systems.common import SystemAdapter
from repro.systems.levelhash import LevelHashAdapter
from repro.systems.memcached import MemcachedAdapter
from repro.systems.pelikan import PelikanAdapter
from repro.systems.pmemkv import PmemkvAdapter
from repro.systems.redis import RedisAdapter

ALL_ADAPTERS = {
    cls.NAME: cls
    for cls in (
        MemcachedAdapter,
        RedisAdapter,
        CCEHAdapter,
        PelikanAdapter,
        PmemkvAdapter,
        LevelHashAdapter,
    )
}

__all__ = [
    "SystemAdapter",
    "LevelHashAdapter",
    "MemcachedAdapter",
    "RedisAdapter",
    "CCEHAdapter",
    "PelikanAdapter",
    "PmemkvAdapter",
    "ALL_ADAPTERS",
]
