"""Mini Level hashing in PMLang (bonus system from the study's Table 1).

Level hashing (OSDI '18) is a write-optimized PM index: a two-level
structure where the top level has N two-slot buckets, the bottom level
N/2, and every key has two candidate top buckets plus one bottom bucket.
A resize allocates a new top level of 2N buckets, demotes the old top to
be the new bottom, and rehashes the old bottom's items into the new top.

The study's LevelHash entry (bug #5) is carried as the seeded bug here:
``lv_resize`` rehashes the old bottom's items **with the old level mask**
instead of the new one (the "wrong level mask" logic error), so the
rehashed items are persisted into top buckets where post-resize lookups
— which use the new mask — never look.  The misplacement is persistent:
a silently *wrong result* (Figure 3's second-largest consequence class)
that survives every restart.

This system is not part of the paper's Table 2 evaluation; it exists to
show the toolchain generalizes beyond the five evaluated systems
(`tests/test_systems_levelhash.py` walks Arthas through the recovery).
"""

from __future__ import annotations

from typing import List

from repro.systems.common import SystemAdapter

#: slots per bucket
SLOTS = 2

STRUCTS = {
    "lvroot": ["lv_top", "lv_bottom", "lv_n", "lv_count", "lv_resizes"],
    # one bucket: two (key, value) slots plus a fill bitmap
    "lvbucket": ["lb_bits", "lb_k0", "lb_v0", "lb_k1", "lb_v1"],
}

SOURCE = '''
def lv_new_table(n):
    t = pm_alloc(n * sizeof("lvbucket"))
    return t


def lv_init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("lvroot"))
        root.lv_top = lv_new_table(8)
        root.lv_bottom = lv_new_table(4)
        root.lv_n = 8
        root.lv_count = 0
        root.lv_resizes = 0
        persist(root, sizeof("lvroot"))
        set_root(root)
    return root


def lv_bucket(table, idx):
    return table + idx * sizeof("lvbucket")


def lv_h1(key, n):
    return key % n


def lv_h2(key, n):
    return (key * 7 + 3) % n


def lv_slot_find(b, key):
    if (b.lb_bits & 1) != 0 and b.lb_k0 == key:
        return 0
    if (b.lb_bits & 2) != 0 and b.lb_k1 == key:
        return 1
    return -1


def lv_slot_put(b, key, val):
    if (b.lb_bits & 1) == 0:
        tx_begin()
        tx_add(b, sizeof("lvbucket"))
        b.lb_k0 = key
        b.lb_v0 = val
        b.lb_bits = b.lb_bits | 1
        tx_commit()
        return 1
    if (b.lb_bits & 2) == 0:
        tx_begin()
        tx_add(b, sizeof("lvbucket"))
        b.lb_k1 = key
        b.lb_v1 = val
        b.lb_bits = b.lb_bits | 2
        tx_commit()
        return 1
    return 0


def lv_slot_update(b, slot, val):
    tx_begin()
    if slot == 0:
        tx_add(addr(b.lb_v0), 1)
        b.lb_v0 = val
    else:
        tx_add(addr(b.lb_v1), 1)
        b.lb_v1 = val
    tx_commit()
    return 1


def lv_find_bucket(root, key):
    n = root.lv_n
    b1 = lv_bucket(root.lv_top, lv_h1(key, n))
    if lv_slot_find(b1, key) >= 0:
        return b1
    b2 = lv_bucket(root.lv_top, lv_h2(key, n))
    if lv_slot_find(b2, key) >= 0:
        return b2
    b3 = lv_bucket(root.lv_bottom, lv_h1(key, n // 2))
    if lv_slot_find(b3, key) >= 0:
        return b3
    return 0


def lv_get(root, key):
    b = lv_find_bucket(root, key)
    if b == 0:
        return -1
    slot = lv_slot_find(b, key)
    if slot == 0:
        return b.lb_v0
    return b.lb_v1


def lv_insert(root, key, val):
    b = lv_find_bucket(root, key)
    if b != 0:
        return lv_slot_update(b, lv_slot_find(b, key), val)
    n = root.lv_n
    if lv_slot_put(lv_bucket(root.lv_top, lv_h1(key, n)), key, val) == 1:
        lv_bump(root)
        return 1
    if lv_slot_put(lv_bucket(root.lv_top, lv_h2(key, n)), key, val) == 1:
        lv_bump(root)
        return 1
    if lv_slot_put(lv_bucket(root.lv_bottom, lv_h1(key, n // 2)), key, val) == 1:
        lv_bump(root)
        return 1
    lv_resize(root)
    return lv_insert(root, key, val)


def lv_bump(root):
    root.lv_count = root.lv_count + 1
    persist(addr(root.lv_count), 1)
    return 0


def lv_delete(root, key):
    b = lv_find_bucket(root, key)
    if b == 0:
        return 0
    slot = lv_slot_find(b, key)
    tx_begin()
    tx_add(addr(b.lb_bits), 1)
    tx_add(addr(root.lv_count), 1)
    if slot == 0:
        b.lb_bits = b.lb_bits & 2
    else:
        b.lb_bits = b.lb_bits & 1
    root.lv_count = root.lv_count - 1
    tx_commit()
    return 1


def lv_rehash_bucket(root, b, newtop, mask_n):
    # BUG (study #5): items are republished under ``mask_n``, which the
    # caller wrongly passes as the OLD level size — post-resize lookups
    # hash with the new size and never find them
    if (b.lb_bits & 1) != 0:
        lv_slot_put(lv_bucket(newtop, lv_h1(b.lb_k0, mask_n)), b.lb_k0, b.lb_v0)
    if (b.lb_bits & 2) != 0:
        lv_slot_put(lv_bucket(newtop, lv_h1(b.lb_k1, mask_n)), b.lb_k1, b.lb_v1)
    return 0


def lv_resize(root):
    n = root.lv_n
    newn = n * 2
    newtop = lv_new_table(newn)
    oldbottom = root.lv_bottom
    i = 0
    while i < n // 2:
        b = lv_bucket(oldbottom, i)
        lv_rehash_bucket(root, b, newtop, n)
        i = i + 1
    tx_begin()
    tx_add(addr(root.lv_bottom), 1)
    tx_add(addr(root.lv_top), 1)
    tx_add(addr(root.lv_n), 1)
    tx_add(addr(root.lv_resizes), 1)
    root.lv_bottom = root.lv_top
    root.lv_top = newtop
    root.lv_n = newn
    root.lv_resizes = root.lv_resizes + 1
    tx_commit()
    pm_free(oldbottom)
    return 1


def lv_check(root, key):
    v = lv_get(root, key)
    assert_true(v != -1, "check: key missing")
    return v


def lv_scan(root):
    total = 0
    n = root.lv_n
    i = 0
    while i < n:
        b = lv_bucket(root.lv_top, i)
        if (b.lb_bits & 1) != 0:
            total = total + 1
        if (b.lb_bits & 2) != 0:
            total = total + 1
        i = i + 1
    i = 0
    while i < n // 2:
        b = lv_bucket(root.lv_bottom, i)
        if (b.lb_bits & 1) != 0:
            total = total + 1
        if (b.lb_bits & 2) != 0:
            total = total + 1
        i = i + 1
    return total


def lv_recover(root):
    c = lv_scan(root)
    root.lv_count = c
    persist(addr(root.lv_count), 1)
    return c


def lv_count(root):
    return root.lv_count


def __driver__():
    root = lv_init()
    lv_insert(root, 1, 2)
    lv_get(root, 1)
    lv_check(root, 1)
    lv_delete(root, 1)
    lv_resize(root)
    lv_recover(root)
    lv_scan(root)
    lv_count(root)
    return 0
'''


class LevelHashAdapter(SystemAdapter):
    """Harness adapter for mini Level hashing."""

    NAME = "levelhash"
    STRUCTS = STRUCTS
    SOURCE = SOURCE
    INIT_FN = "lv_init"
    RECOVER_FN = "lv_recover"

    def insert(self, key: int, value: int) -> int:
        return self.call("lv_insert", self.root, key, value)

    def lookup(self, key: int) -> int:
        return self.call("lv_get", self.root, key)

    def delete(self, key: int) -> int:
        return self.call("lv_delete", self.root, key)

    def count_items(self) -> int:
        return self.call("lv_count", self.root)

    def check_key(self, key: int) -> None:
        self.call("lv_check", self.root, key)

    def consistency_violations(self) -> List[str]:
        violations = []
        count = self.count_items()
        scanned = self.call("lv_scan", self.root)
        if scanned != count:
            violations.append(f"count {count} != scanned slots {scanned}")
        return violations

    def expected_item_words(self) -> int:
        n = self.pool.read(self.root + STRUCTS["lvroot"].index("lv_n"))
        bucket_words = len(STRUCTS["lvbucket"])
        return (n + n // 2) * bucket_words + len(STRUCTS["lvroot"])
