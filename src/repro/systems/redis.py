"""Mini-Redis in PMLang: dict of refcounted objects, listpacks, slowlog.

Carries the logic of faults f6-f8 (paper Table 2):

* **f6** — the listpack element encoder mis-encodes the stored length of
  large elements (``elemlen % 48``) while writing ``elemlen`` words of
  data, so the walk cursor desynchronises and interprets a data word
  (a large value) as a length; the next hop reads far outside the pool —
  segmentation fault.  The corrupt listpack is persisted, so the fault
  recurs across restarts.
* **f7** — ``rd_getset`` decrements the replaced object's refcount twice
  (copy-paste logic bug).  A shared object hits refcount 0 while still
  referenced: it is freed and its persisted refcount reads 0, so the next
  access panics ("server panic").  The freed block is then reclaimed by
  later allocations, which is what makes purge-mode recovery semantically
  delicate.
* **f8** — ``rd_slowlog_trim`` unlinks old slowlog entries but forgets to
  free them: a persistent memory leak that grows for as long as slow
  commands arrive.

Objects are reference-counted (``rd_copy`` shares an object between two
keys).  Integer objects hold the value inline; listpack objects point to
a separately allocated, reallocatable block.
"""

from __future__ import annotations

from typing import List

from repro.systems.common import SystemAdapter

#: listpack elements at least this long take the (buggy) large encoding
LP_LARGE = 48

STRUCTS = {
    "rroot": [
        "rd_dict",
        "rd_dictsize",
        "rd_count",
        "rd_slowhead",
        "rd_slowlen",
        "rd_time",
    ],
    "rentry": ["re_key", "re_obj", "re_next"],
    "robj": ["ro_refcount", "ro_type", "ro_val"],
    "rlp": ["lp_nwords", "lp_cap", "lp_nelems"],
    "rslow": ["sl_time", "sl_dur", "sl_next"],
}

SOURCE = '''
def rd_init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("rroot"))
        d = pm_alloc(64)
        root.rd_dict = d
        root.rd_dictsize = 64
        root.rd_count = 0
        root.rd_slowhead = 0
        root.rd_slowlen = 0
        root.rd_time = 0
        persist(root, sizeof("rroot"))
        set_root(root)
    return root


def rd_tick(root):
    t = root.rd_time + 1
    root.rd_time = t
    persist(addr(root.rd_time), 1)
    return t


def rd_find(root, key):
    d = root.rd_dict
    b = key % root.rd_dictsize
    e = d[b]
    while e != 0:
        if e.re_key == key:
            return e
        e = e.re_next
    return 0


def rd_new_int_obj(val):
    o = pm_alloc(sizeof("robj"))
    tx_begin()
    tx_add(o, sizeof("robj"))
    o.ro_refcount = 1
    o.ro_type = 0
    o.ro_val = val
    tx_commit()
    return o


def rd_set(root, key, val):
    rd_tick(root)
    e = rd_find(root, key)
    if e != 0:
        o = e.re_obj
        if o.ro_type == 0:
            tx_begin()
            tx_add(addr(o.ro_val), 1)
            o.ro_val = val
            tx_commit()
            return 1
        return 0
    o = rd_new_int_obj(val)
    e = pm_alloc(sizeof("rentry"))
    d = root.rd_dict
    b = key % root.rd_dictsize
    tx_begin()
    tx_add(e, sizeof("rentry"))
    tx_add(addr(d[b]), 1)
    tx_add(addr(root.rd_count), 1)
    e.re_key = key
    e.re_obj = o
    e.re_next = d[b]
    d[b] = e
    root.rd_count = root.rd_count + 1
    tx_commit()
    return 1


def rd_get(root, key):
    e = rd_find(root, key)
    if e == 0:
        return -1
    o = e.re_obj
    assert_true(o.ro_refcount > 0, "panic: refcount underflow on live object")
    if o.ro_type == 0:
        return o.ro_val
    return o.ro_val


def rd_copy(root, dst, src):
    se = rd_find(root, src)
    if se == 0:
        return 0
    if rd_find(root, dst) != 0:
        return 0
    o = se.re_obj
    rc = o.ro_refcount + 1
    tx_begin()
    tx_add(addr(o.ro_refcount), 1)
    o.ro_refcount = rc
    tx_commit()
    e = pm_alloc(sizeof("rentry"))
    d = root.rd_dict
    b = dst % root.rd_dictsize
    tx_begin()
    tx_add(e, sizeof("rentry"))
    tx_add(addr(d[b]), 1)
    tx_add(addr(root.rd_count), 1)
    e.re_key = dst
    e.re_obj = o
    e.re_next = d[b]
    d[b] = e
    root.rd_count = root.rd_count + 1
    tx_commit()
    return 1


def rd_decr_ref(o):
    rc = o.ro_refcount - 1
    o.ro_refcount = rc
    persist(addr(o.ro_refcount), 1)
    if rc == 0:
        if o.ro_type == 1:
            pm_free(o.ro_val)
        pm_free(o)
        return 1
    return 0


def rd_getset(root, key, val):
    e = rd_find(root, key)
    if e == 0:
        rd_set(root, key, val)
        return -1
    old = e.re_obj
    oldval = old.ro_val
    o = rd_new_int_obj(val)
    tx_begin()
    tx_add(addr(e.re_obj), 1)
    e.re_obj = o
    tx_commit()
    rd_decr_ref(old)
    rd_decr_ref(old)
    return oldval


def rd_delete(root, key):
    d = root.rd_dict
    b = key % root.rd_dictsize
    e = d[b]
    prev = 0
    while e != 0:
        if e.re_key == key:
            tx_begin()
            if prev == 0:
                tx_add(addr(d[b]), 1)
                d[b] = e.re_next
            else:
                tx_add(addr(prev.re_next), 1)
                prev.re_next = e.re_next
            tx_add(addr(root.rd_count), 1)
            root.rd_count = root.rd_count - 1
            tx_commit()
            rd_decr_ref(e.re_obj)
            pm_free(e)
            return 1
        prev = e
        e = e.re_next
    return 0


def rd_lpush(root, key, elemlen, val):
    rd_tick(root)
    e = rd_find(root, key)
    if e == 0:
        lp = pm_alloc(3 + 64)
        tx_begin()
        tx_add(lp, 3)
        lp.lp_nwords = 0
        lp.lp_cap = 64
        lp.lp_nelems = 0
        tx_commit()
        o = pm_alloc(sizeof("robj"))
        tx_begin()
        tx_add(o, sizeof("robj"))
        o.ro_refcount = 1
        o.ro_type = 1
        o.ro_val = lp
        tx_commit()
        en = pm_alloc(sizeof("rentry"))
        d = root.rd_dict
        b = key % root.rd_dictsize
        tx_begin()
        tx_add(en, sizeof("rentry"))
        tx_add(addr(d[b]), 1)
        tx_add(addr(root.rd_count), 1)
        en.re_key = key
        en.re_obj = o
        en.re_next = d[b]
        d[b] = en
        root.rd_count = root.rd_count + 1
        tx_commit()
        e = en
    o = e.re_obj
    if o.ro_type != 1:
        return 0
    lp = o.ro_val
    needed = lp.lp_nwords + 1 + elemlen
    if needed % 256 > lp.lp_cap:
        newcap = lp.lp_cap * 2
        while newcap < needed:
            newcap = newcap * 2
        lp = pm_realloc(lp, 3 + newcap)
        tx_begin()
        tx_add(addr(lp.lp_cap), 1)
        tx_add(addr(o.ro_val), 1)
        lp.lp_cap = newcap
        o.ro_val = lp
        tx_commit()
    base = lp + 3
    off = lp.lp_nwords
    tx_begin()
    tx_add(lp, 3 + needed)
    base[off] = elemlen
    i = 0
    while i < elemlen:
        base[off + 1 + i] = val
        i = i + 1
    lp.lp_nwords = needed
    lp.lp_nelems = lp.lp_nelems + 1
    tx_commit()
    return 1


def rd_lrange(root, key):
    e = rd_find(root, key)
    if e == 0:
        return -1
    o = e.re_obj
    if o.ro_type != 1:
        return -1
    lp = o.ro_val
    base = lp + 3
    total = 0
    off = 0
    while off < lp.lp_nwords:
        elen = base[off]
        i = 0
        while i < elen:
            total = total + base[off + 1 + i]
            i = i + 1
        off = off + 1 + elen
    return total


def rd_incr(root, key, delta):
    e = rd_find(root, key)
    if e == 0:
        rd_set(root, key, delta)
        return delta
    o = e.re_obj
    if o.ro_type != 0:
        return -1
    v = o.ro_val + delta
    tx_begin()
    tx_add(addr(o.ro_val), 1)
    o.ro_val = v
    tx_commit()
    return v


def rd_exists(root, key):
    if rd_find(root, key) != 0:
        return 1
    return 0


def rd_llen(root, key):
    e = rd_find(root, key)
    if e == 0:
        return -1
    o = e.re_obj
    if o.ro_type != 1:
        return -1
    lp = o.ro_val
    return lp.lp_nelems


def rd_slow_op(root, dur):
    now = rd_tick(root)
    s = pm_alloc(sizeof("rslow"))
    tx_begin()
    tx_add(s, sizeof("rslow"))
    tx_add(addr(root.rd_slowhead), 1)
    tx_add(addr(root.rd_slowlen), 1)
    s.sl_time = now
    s.sl_dur = dur
    s.sl_next = root.rd_slowhead
    root.rd_slowhead = s
    root.rd_slowlen = root.rd_slowlen + 1
    tx_commit()
    if root.rd_slowlen > 8:
        rd_slowlog_trim(root, 8)
    return 1


def rd_slowlog_trim(root, maxlen):
    n = 0
    s = root.rd_slowhead
    prev = 0
    while s != 0:
        n = n + 1
        nxt = s.sl_next
        if n == maxlen:
            tx_begin()
            tx_add(addr(s.sl_next), 1)
            tx_add(addr(root.rd_slowlen), 1)
            s.sl_next = 0
            root.rd_slowlen = maxlen
            tx_commit()
        prev = s
        s = nxt
    return n


def rd_check(root, key):
    e = rd_find(root, key)
    assert_true(e != 0, "check: key missing")
    o = e.re_obj
    assert_true(o.ro_refcount > 0, "check: refcount underflow")
    return o.ro_val


def rd_recover(root):
    n = 0
    d = root.rd_dict
    size = root.rd_dictsize
    b = 0
    while b < size:
        e = d[b]
        while e != 0:
            o = e.re_obj
            t = o.ro_type
            if t == 1:
                lp = o.ro_val
                w = lp.lp_nwords
            n = n + 1
            e = e.re_next
        b = b + 1
    m = 0
    s = root.rd_slowhead
    while s != 0:
        t = s.sl_time
        m = m + 1
        s = s.sl_next
    root.rd_count = n
    root.rd_slowlen = m
    persist(addr(root.rd_count), 1)
    persist(addr(root.rd_slowlen), 1)
    return n


def rd_lpcheck(root):
    bad = 0
    d = root.rd_dict
    size = root.rd_dictsize
    b = 0
    while b < size:
        e = d[b]
        while e != 0:
            o = e.re_obj
            if o.ro_type == 1:
                lp = o.ro_val
                if lp.lp_nwords > lp.lp_cap:
                    bad = bad + 1
            e = e.re_next
        b = b + 1
    return bad


def rd_scan(root, limit):
    n = 0
    d = root.rd_dict
    size = root.rd_dictsize
    b = 0
    while b < size:
        e = d[b]
        steps = 0
        while e != 0:
            if steps > limit:
                return -1
            n = n + 1
            steps = steps + 1
            e = e.re_next
        b = b + 1
    return n


def rd_count(root):
    return root.rd_count


def rd_slowlen(root):
    return root.rd_slowlen


def __driver__():
    root = rd_init()
    rd_set(root, 1, 2)
    rd_get(root, 1)
    rd_copy(root, 2, 1)
    rd_getset(root, 1, 3)
    rd_delete(root, 2)
    rd_lpush(root, 5, 2, 7)
    rd_lrange(root, 5)
    rd_incr(root, 1, 2)
    rd_exists(root, 1)
    rd_llen(root, 5)
    rd_slow_op(root, 11)
    rd_slowlog_trim(root, 8)
    rd_check(root, 5)
    rd_recover(root)
    rd_lpcheck(root)
    rd_scan(root, 10)
    rd_count(root)
    rd_slowlen(root)
    return 0
'''


class RedisAdapter(SystemAdapter):
    """Harness adapter for mini-Redis."""

    NAME = "redis"
    STRUCTS = STRUCTS
    SOURCE = SOURCE
    INIT_FN = "rd_init"
    RECOVER_FN = "rd_recover"

    def insert(self, key: int, value: int) -> int:
        return self.call("rd_set", self.root, key, value)

    def lookup(self, key: int) -> int:
        return self.call("rd_get", self.root, key)

    def delete(self, key: int) -> int:
        return self.call("rd_delete", self.root, key)

    def copy(self, dst: int, src: int) -> int:
        return self.call("rd_copy", self.root, dst, src)

    def getset(self, key: int, value: int) -> int:
        return self.call("rd_getset", self.root, key, value)

    def lpush(self, key: int, elemlen: int, value: int) -> int:
        return self.call("rd_lpush", self.root, key, elemlen, value)

    def lrange(self, key: int) -> int:
        return self.call("rd_lrange", self.root, key)

    def incr(self, key: int, delta: int) -> int:
        return self.call("rd_incr", self.root, key, delta)

    def exists(self, key: int) -> int:
        return self.call("rd_exists", self.root, key)

    def llen(self, key: int) -> int:
        return self.call("rd_llen", self.root, key)

    def slow_op(self, duration: int) -> int:
        return self.call("rd_slow_op", self.root, duration)

    def count_items(self) -> int:
        return self.call("rd_count", self.root)

    def check_key(self, key: int) -> None:
        self.call("rd_check", self.root, key)

    def consistency_violations(self) -> List[str]:
        violations = []
        count = self.count_items()
        scanned = self.call("rd_scan", self.root, count + 64)
        if scanned == -1:
            violations.append("dict chain corrupt (walk exceeded bound)")
        elif scanned != count:
            violations.append(f"dict count {count} != scanned entries {scanned}")
        bad_lp = self.call("rd_lpcheck", self.root)
        if bad_lp:
            violations.append(f"{bad_lp} listpack(s) with size beyond capacity")
        return violations

    def expected_item_words(self) -> int:
        # integer objects only (leak scenarios avoid listpacks): entry + obj
        entry_words = len(STRUCTS["rentry"]) + len(STRUCTS["robj"])
        slow_words = self.call("rd_slowlen", self.root) * len(STRUCTS["rslow"])
        return (
            self.count_items() * entry_words
            + slow_words
            + 64
            + len(STRUCTS["rroot"])
        )
