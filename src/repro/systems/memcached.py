"""Mini-Memcached in PMLang: chained hashtable, refcounts, lazy expiry.

Carries the data-structure logic of faults f1-f5 (paper Table 2):

* **f1** — ``mi_refcount`` is an 8-bit counter incremented on every GET
  without an overflow check; ``mc_reap`` frees refcount-0 items assuming
  they are already unlinked.  A wrap to 0 frees a still-linked item; a
  re-insert reclaims the same block and links it to itself — GETs on that
  bucket loop forever (the "assoc_find dead loop").
* **f2** — ``mc_flush_all`` persists a *future* flush time without
  scheduling; GETs then lazily delete perfectly valid items.
* **f3** — ``mc_set`` reads the bucket head, then yields before
  publishing (no bucket lock): two concurrent inserts to one bucket lose
  the first update.
* **f4** — ``mc_append`` stores the value length in 8 bits; the capacity
  check uses the *wrapped* total, so a large append writes far past the
  inline value array, trashing neighbouring items' ``mi_hnext``/
  ``mi_refcount`` words.  The transaction nonetheless covers the real
  range (as PMDK's ``TX_ADD`` of the live buffer would), persisting the
  corruption.
* **f5** — the persisted ``m_rehashing`` flag, when bit-flipped by a
  hardware fault, sends every lookup to a null old-table.

Item layout (11 words): key, insert-time, value length, 6 inline value
words, hash-chain next, refcount — ``mi_hnext`` sits *after* the value
array so an overflow corrupts it, as the paper's bugs do.
"""

from __future__ import annotations

from typing import List

from repro.systems.common import SystemAdapter

#: inline value capacity in words
VALUE_CAP = 6

STRUCTS = {
    "mroot": [
        "m_ht",
        "m_htsize",
        "m_oldht",
        "m_oldhtsize",
        "m_rehashing",
        "m_count",
        "m_bytes",
        "m_flushat",
        "m_time",
        "m_expandlock",
    ],
    "mitem": [
        "mi_key",
        "mi_itime",
        "mi_vallen",
        "mi_d0",
        "mi_d1",
        "mi_d2",
        "mi_d3",
        "mi_d4",
        "mi_d5",
        "mi_hnext",
        "mi_refcount",
    ],
}

SOURCE = '''
def mc_init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("mroot"))
        ht = pm_alloc(64)
        root.m_ht = ht
        root.m_htsize = 64
        root.m_oldht = 0
        root.m_oldhtsize = 0
        root.m_rehashing = 0
        root.m_count = 0
        root.m_bytes = 0
        root.m_flushat = 0
        root.m_time = 0
        root.m_expandlock = 0
        persist(root, sizeof("mroot"))
        set_root(root)
    return root


def mc_tick(root):
    t = root.m_time + 1
    root.m_time = t
    persist(addr(root.m_time), 1)
    return t


def mc_find(root, key):
    ht = root.m_ht
    size = root.m_htsize
    if root.m_rehashing != 0:
        ht = root.m_oldht
        size = root.m_oldhtsize
        if ht == 0:
            return 0
    b = key % size
    it = ht[b]
    while it != 0:
        if it.mi_key == key:
            return it
        it = it.mi_hnext
    return 0


def mc_set(root, key, val):
    now = mc_tick(root)
    it = mc_find(root, key)
    if it != 0:
        tx_begin()
        tx_add(addr(it.mi_d0), 1)
        tx_add(addr(it.mi_vallen), 1)
        tx_add(addr(root.m_bytes), 1)
        root.m_bytes = root.m_bytes - it.mi_vallen + 1
        it.mi_d0 = val
        it.mi_vallen = 1
        tx_commit()
        return 1
    it = pm_alloc(sizeof("mitem"))
    ht = root.m_ht
    b = key % root.m_htsize
    head = ht[b]
    thread_yield()
    tx_begin()
    tx_add(it, sizeof("mitem"))
    tx_add(addr(ht[b]), 1)
    tx_add(addr(root.m_count), 1)
    tx_add(addr(root.m_bytes), 1)
    it.mi_key = key
    it.mi_itime = now
    it.mi_vallen = 1
    it.mi_d0 = val
    it.mi_refcount = 1
    it.mi_hnext = head
    ht[b] = it
    root.m_count = root.m_count + 1
    root.m_bytes = root.m_bytes + 1
    tx_commit()
    if root.m_count > root.m_htsize * 2:
        mc_expand(root)
    return 1


def mc_get(root, key):
    it = mc_find(root, key)
    if it == 0:
        return -1
    if root.m_flushat != 0:
        if it.mi_itime <= root.m_flushat:
            mc_delete(root, key)
            return -1
    rc = (it.mi_refcount + 1) % 256
    it.mi_refcount = rc
    persist(addr(it.mi_refcount), 1)
    return it.mi_d0


def mc_append(root, key, n, val):
    it = mc_find(root, key)
    if it == 0:
        return 0
    total = it.mi_vallen + n
    stored = total % 256
    if stored > 6:
        return -1
    tx_begin()
    tx_add(it, 3 + total)
    tx_add(addr(root.m_bytes), 1)
    base = it + 3
    i = it.mi_vallen
    while i < total:
        base[i] = val
        i = i + 1
    it.mi_vallen = stored
    root.m_bytes = root.m_bytes + n
    tx_commit()
    return 1


def mc_delete(root, key):
    ht = root.m_ht
    size = root.m_htsize
    if root.m_rehashing != 0:
        ht = root.m_oldht
        size = root.m_oldhtsize
        if ht == 0:
            return 0
    b = key % size
    it = ht[b]
    prev = 0
    while it != 0:
        if it.mi_key == key:
            assert_true(it.mi_refcount < 256, "do_slabs_free: corrupt refcount")
            tx_begin()
            if prev == 0:
                tx_add(addr(ht[b]), 1)
                ht[b] = it.mi_hnext
            else:
                tx_add(addr(prev.mi_hnext), 1)
                prev.mi_hnext = it.mi_hnext
            tx_add(addr(root.m_count), 1)
            tx_add(addr(root.m_bytes), 1)
            root.m_count = root.m_count - 1
            root.m_bytes = root.m_bytes - it.mi_vallen
            tx_commit()
            pm_free(it)
            return 1
        prev = it
        it = it.mi_hnext
    return 0


def mc_reap(root):
    ht = root.m_ht
    size = root.m_htsize
    freed = 0
    b = 0
    while b < size:
        it = ht[b]
        while it != 0:
            nxt = it.mi_hnext
            if it.mi_refcount == 0:
                pm_free(it)
                freed = freed + 1
            it = nxt
        b = b + 1
    return freed


def mc_flush_all(root, when):
    root.m_flushat = when
    persist(addr(root.m_flushat), 1)
    return 1


def mc_expand(root):
    if root.m_expandlock != 0:
        return 0
    thread_yield()
    root.m_expandlock = 1
    newsize = root.m_htsize * 2
    newht = pm_alloc(newsize)
    tx_begin()
    tx_add(addr(root.m_oldht), 1)
    tx_add(addr(root.m_oldhtsize), 1)
    tx_add(addr(root.m_rehashing), 1)
    root.m_oldht = root.m_ht
    root.m_oldhtsize = root.m_htsize
    root.m_rehashing = 1
    oldht = root.m_oldht
    oldsize = root.m_oldhtsize
    b = 0
    while b < oldsize:
        it = oldht[b]
        while it != 0:
            nxt = it.mi_hnext
            nb = it.mi_key % newsize
            tx_add(addr(it.mi_hnext), 1)
            tx_add(addr(newht[nb]), 1)
            it.mi_hnext = newht[nb]
            newht[nb] = it
            it = nxt
        thread_yield()
        b = b + 1
    tx_add(addr(root.m_ht), 1)
    tx_add(addr(root.m_htsize), 1)
    tx_add(addr(root.m_rehashing), 1)
    tx_add(addr(root.m_oldht), 1)
    tx_add(addr(root.m_oldhtsize), 1)
    tx_add(addr(root.m_expandlock), 1)
    root.m_ht = newht
    root.m_htsize = newsize
    root.m_rehashing = 0
    root.m_oldht = 0
    root.m_oldhtsize = 0
    root.m_expandlock = 0
    tx_commit()
    return 1


def mc_check(root, key):
    it = mc_find(root, key)
    assert_true(it != 0, "check: key missing")
    if root.m_flushat != 0:
        assert_true(it.mi_itime > root.m_flushat, "check: key would be expired")
    return it.mi_d0


def mc_recover(root):
    n = 0
    total = 0
    ht = root.m_ht
    size = root.m_htsize
    b = 0
    while b < size:
        it = ht[b]
        while it != 0:
            k = it.mi_key
            total = total + it.mi_vallen
            emit("recover_key", k)
            n = n + 1
            it = it.mi_hnext
        b = b + 1
    root.m_count = n
    root.m_bytes = total
    persist(addr(root.m_count), 1)
    persist(addr(root.m_bytes), 1)
    return n


def mc_scan(root, limit):
    n = 0
    ht = root.m_ht
    size = root.m_htsize
    b = 0
    while b < size:
        it = ht[b]
        steps = 0
        while it != 0:
            if steps > limit:
                return -1
            n = n + 1
            steps = steps + 1
            it = it.mi_hnext
        b = b + 1
    return n


def mc_scan_bytes(root, limit):
    n = 0
    ht = root.m_ht
    size = root.m_htsize
    b = 0
    while b < size:
        it = ht[b]
        steps = 0
        while it != 0:
            if steps > limit:
                return -1
            n = n + it.mi_vallen
            steps = steps + 1
            it = it.mi_hnext
        b = b + 1
    return n


def mc_incr(root, key, delta):
    it = mc_find(root, key)
    if it == 0:
        return -1
    v = it.mi_d0 + delta
    tx_begin()
    tx_add(addr(it.mi_d0), 1)
    it.mi_d0 = v
    tx_commit()
    return v


def mc_touch(root, key, when):
    it = mc_find(root, key)
    if it == 0:
        return 0
    tx_begin()
    tx_add(addr(it.mi_itime), 1)
    it.mi_itime = when
    tx_commit()
    return 1


def mc_cas(root, key, expected, val):
    it = mc_find(root, key)
    if it == 0:
        return -1
    if it.mi_d0 != expected:
        return 0
    tx_begin()
    tx_add(addr(it.mi_d0), 1)
    it.mi_d0 = val
    tx_commit()
    return 1


def mc_refcount(root, key):
    it = mc_find(root, key)
    if it == 0:
        return -1
    return it.mi_refcount


def mc_count(root):
    return root.m_count


def mc_bytes(root):
    return root.m_bytes


def __driver__():
    root = mc_init()
    mc_set(root, 1, 2)
    mc_get(root, 1)
    mc_append(root, 1, 1, 3)
    mc_check(root, 1)
    mc_delete(root, 1)
    mc_reap(root)
    mc_flush_all(root, 0)
    mc_expand(root)
    mc_recover(root)
    mc_scan(root, 10)
    mc_scan_bytes(root, 10)
    mc_refcount(root, 1)
    mc_incr(root, 1, 1)
    mc_touch(root, 1, 5)
    mc_cas(root, 1, 0, 9)
    mc_count(root)
    mc_bytes(root)
    return 0
'''


class MemcachedAdapter(SystemAdapter):
    """Harness adapter for mini-Memcached."""

    NAME = "memcached"
    STRUCTS = STRUCTS
    SOURCE = SOURCE
    INIT_FN = "mc_init"
    RECOVER_FN = "mc_recover"

    ITEM_WORDS = len(STRUCTS["mitem"])

    def insert(self, key: int, value: int) -> int:
        return self.call("mc_set", self.root, key, value)

    def lookup(self, key: int) -> int:
        return self.call("mc_get", self.root, key)

    def delete(self, key: int) -> int:
        return self.call("mc_delete", self.root, key)

    def incr(self, key: int, delta: int) -> int:
        return self.call("mc_incr", self.root, key, delta)

    def touch(self, key: int, when: int) -> int:
        return self.call("mc_touch", self.root, key, when)

    def cas(self, key: int, expected: int, value: int) -> int:
        return self.call("mc_cas", self.root, key, expected, value)

    def append(self, key: int, nwords: int, value: int) -> int:
        return self.call("mc_append", self.root, key, nwords, value)

    def flush_all(self, when: int) -> int:
        return self.call("mc_flush_all", self.root, when)

    def reap(self) -> int:
        return self.call("mc_reap", self.root)

    def expand(self) -> int:
        return self.call("mc_expand", self.root)

    def count_items(self) -> int:
        return self.call("mc_count", self.root)

    def check_key(self, key: int) -> None:
        self.call("mc_check", self.root, key)

    def consistency_violations(self) -> List[str]:
        violations = []
        count = self.count_items()
        limit = count + 64
        scanned = self.call("mc_scan", self.root, limit)
        if scanned == -1:
            violations.append("hash chain corrupt (walk exceeded bound)")
        elif scanned != count:
            violations.append(f"item count {count} != scanned items {scanned}")
        scanned_bytes = self.call("mc_scan_bytes", self.root, limit)
        stored_bytes = self.call("mc_bytes", self.root)
        if scanned_bytes != -1 and scanned_bytes != stored_bytes:
            violations.append(
                f"byte accounting {stored_bytes} != scanned bytes {scanned_bytes}"
            )
        return violations

    def _root_field(self, name: str) -> int:
        return self.pool.read(self.root + STRUCTS["mroot"].index(name))

    def expected_item_words(self) -> int:
        # items + current/old hashtables + the root struct itself
        return (
            self.count_items() * self.ITEM_WORDS
            + self._root_field("m_htsize")
            + self._root_field("m_oldhtsize")
            + len(STRUCTS["mroot"])
        )
