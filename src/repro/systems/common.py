"""Shared scaffolding for the five PM target systems.

A :class:`SystemAdapter` owns one simulated "deployment" of a PM system:
the pool, allocator, transaction manager, the compiled+analyzed+
instrumented module (cached per class — static artifacts depend only on
the source), plus the optional Arthas attachments (checkpoint manager and
PM-address tracer).  It models the process lifecycle:

* ``start()`` — boot the system, creating or reopening the pool root,
* ``restart()`` — process crash + restart: volatile state and
  un-persisted PM stores vanish; a fresh interpreter reopens the pool,
* ``recover()`` — run the system's recovery function under tracing,
  returning the set of PM addresses it touched (Section 4.7's
  recovery-access window).

Subclasses wire the guest entry points into a uniform
insert/lookup/delete/check interface for the experiment harness.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.analysis import AnalysisResult, analyze_module
from repro.checkpoint.manager import CheckpointManager
from repro.instrument.guids import GuidMap
from repro.instrument.passes import instrument_module
from repro.instrument.tracer import PMTrace
from repro.lang.compiler import compile_module
from repro.lang.interp import Machine
from repro.lang.ir import Module
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.pmem.tx import TransactionManager

#: the miss sentinel every adapter's ``lookup`` returns.  Layers that
#: build on the lookup protocol (the distributed cluster, derived
#: writes) must compare against this constant — and must refuse to
#: *store* it, or a real stored -1 becomes indistinguishable from a
#: miss.
ABSENT = -1


class _StaticArtifacts:
    """Per-class compile/analyze/instrument results (computed once)."""

    def __init__(self, module: Module, analysis: AnalysisResult, guid_map: GuidMap,
                 instrument_seconds: float):
        self.module = module
        self.analysis = analysis
        self.guid_map = guid_map
        self.instrument_seconds = instrument_seconds


class SystemAdapter:
    """Base class: one deployment of one PM system."""

    NAME = "base"
    STRUCTS: Dict[str, List[str]] = {}
    SOURCE = ""
    INIT_FN = "init"
    RECOVER_FN = "recover"
    POOL_WORDS = 1 << 16
    STEP_BUDGET = 400_000

    _static: Dict[str, _StaticArtifacts] = {}

    # ------------------------------------------------------------------
    @classmethod
    def static_artifacts(cls) -> _StaticArtifacts:
        """Compile, analyze and instrument the module (cached per class)."""
        cached = SystemAdapter._static.get(cls.NAME)
        if cached is None:
            module = compile_module(cls.NAME, cls.SOURCE, structs=cls.STRUCTS)
            analysis = analyze_module(module)
            guid_map, seconds = instrument_module(module, analysis.pm)
            cached = _StaticArtifacts(module, analysis, guid_map, seconds)
            SystemAdapter._static[cls.NAME] = cached
        return cached

    @classmethod
    def build_module(cls) -> Module:
        return cls.static_artifacts().module

    # ------------------------------------------------------------------
    def __init__(
        self,
        seed: int = 0,
        pool_words: Optional[int] = None,
        with_arthas: bool = True,
        with_tracing: Optional[bool] = None,
        with_checkpoint: Optional[bool] = None,
        vm_engine: str = "fused",
    ):
        static = self.static_artifacts()
        self.module = static.module
        self.analysis = static.analysis
        self.guid_map = static.guid_map
        self.seed = seed
        self.vm_engine = vm_engine
        self.pool = PMPool(pool_words or self.POOL_WORDS, name=self.NAME)
        self.allocator = PMAllocator(self.pool)
        self.txman = TransactionManager(self.pool)
        tracing = with_arthas if with_tracing is None else with_tracing
        checkpointing = with_arthas if with_checkpoint is None else with_checkpoint
        self.trace: Optional[PMTrace] = PMTrace() if tracing else None
        self.ckpt: Optional[CheckpointManager] = None
        if checkpointing:
            self.ckpt = CheckpointManager(self.pool, self.allocator, self.txman)
            self.ckpt.attach()
        self.machine: Optional[Machine] = None
        self.root = 0
        self.restarts = 0
        #: cooperative yield hook, re-attached to every machine built by
        #: ``_new_machine`` (restarts replace the machine, so a hook set
        #: only on ``self.machine`` would vanish at the first crash)
        self.step_hook: Optional[Callable[[], None]] = None
        self.step_hook_every: int = 0

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def _new_machine(self) -> Machine:
        machine = Machine(
            self.module,
            pool=self.pool,
            allocator=self.allocator,
            txman=self.txman,
            seed=self.seed + self.restarts,
            step_budget=self.STEP_BUDGET,
            vm_engine=self.vm_engine,
        )
        if self.trace is not None:
            machine.tracer = self.trace.record
        if self.step_hook is not None:
            machine.step_hook = self.step_hook
            machine.step_hook_every = self.step_hook_every
        self.machine = machine
        return machine

    def start(self) -> None:
        """Boot the system (first start: creates the pool root)."""
        self._new_machine()
        self.root = self.call(self.INIT_FN)

    def restart(self) -> None:
        """Process crash + restart: drop all volatile/un-persisted state."""
        if self.machine is not None:
            self.machine.crash()
        if self.trace is not None:
            self.trace.crash()
        self.restarts += 1
        self._new_machine()
        self.root = self.call(self.INIT_FN)

    def recover(self) -> Set[int]:
        """Run the recovery function; returns PM addresses it touched."""
        assert self.machine is not None, "call start()/restart() first"
        if self.trace is not None:
            self.trace.flush()
            mark = len(self.trace.records)
        self.call(self.RECOVER_FN, self.root)
        if self.trace is not None:
            self.trace.flush()
            return {addr for _guid, addr in self.trace.records[mark:]}
        return set()

    # ------------------------------------------------------------------
    def call(self, fname: str, *args: int):
        assert self.machine is not None, "call start() first"
        return self.machine.call(fname, *args)

    # ------------------------------------------------------------------
    # uniform workload interface (subclasses implement)
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> int:
        raise NotImplementedError

    def lookup(self, key: int) -> int:
        """Returns the stored value or :data:`ABSENT` (-1) on miss."""
        raise NotImplementedError

    def delete(self, key: int) -> int:
        raise NotImplementedError

    def count_items(self) -> int:
        """Logical item count, for the pmCRIU data-loss metric."""
        raise NotImplementedError

    def check_key(self, key: int) -> None:
        """Guest-side presence check; traps on violation."""
        raise NotImplementedError

    def consistency_violations(self) -> List[str]:
        """Domain-specific semantic-consistency checks (Table 4)."""
        return []

    def expected_item_words(self) -> int:
        """Words that the live items should occupy (leak-monitor input)."""
        return 0
