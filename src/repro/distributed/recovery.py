"""The distributed recovery coordinator (paper Section 7 sketch).

Protocol, in the terms of Elnozahy et al.'s rollback-recovery survey
(which the paper cites as the blueprint):

1. **Local recovery.**  The failing node runs its local Arthas reactor
   (slice x trace x checkpoint log, purge mode) exactly as in the
   single-node case.
2. **Damage assessment.**  The reverted sequence numbers are mapped back
   through the operation log to the client requests they discarded.
3. **Causal cascade.**  Any request whose vector clock is causally after
   a discarded request (the client observed discarded state before
   issuing it) is *orphaned*: the coordinator reverts its checkpoint
   entries on whatever node it executed, transactions included.  New
   orphans found there cascade in turn, until a fixpoint.

The result is a causally consistent cut: no surviving request depends on
discarded state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Set

from repro.detector.monitor import Detector, RunOutcome
from repro.distributed.cluster import Cluster, OpRecord, vc_less
from repro.harness.simclock import ReexecDelay, SimClock
from repro.reactor.plan import distance_policy
from repro.reactor.revert import Reverter
from repro.reactor.server import ReactorServer


@dataclass
class DistributedRecoveryReport:
    """What the coordinator did across the cluster."""

    recovered: bool
    failing_node: int
    local_attempts: int = 0
    discarded_ops: List[OpRecord] = field(default_factory=list)
    cascaded_ops: List[OpRecord] = field(default_factory=list)
    rounds: int = 0

    def discarded_keys(self) -> Set[int]:
        return {op.key for op in self.discarded_ops + self.cascaded_ops}


class DistributedReactor:
    """Coordinator running the cascade over one cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    # ------------------------------------------------------------------
    def mitigate(
        self,
        failing_node: int,
        fault_iid: int,
        verify: Callable[[], None],
        seed: int = 0,
    ) -> DistributedRecoveryReport:
        """Recover ``failing_node`` from ``fault_iid``, then cascade.

        ``verify`` is the failing node's symptom check (raises a guest
        trap while the symptom persists), as in single-node re-execution.
        """
        node = self.cluster.nodes[failing_node]
        detector = Detector()

        def reexec() -> RunOutcome:
            node.restart()
            return detector.observe(
                node.machine, lambda: (node.recover(), verify())
            )

        server = ReactorServer(node.module, analysis=node.analysis)
        plan = server.compute_plan(
            node.guid_map, node.trace, node.ckpt.log, fault_iid,
            policy=distance_policy(max_distance=8),
        )
        reverter = Reverter(
            node.ckpt.log, node.pool, node.allocator,
            reexec=reexec, clock=SimClock(), reexec_delay=ReexecDelay(seed),
        )
        local = reverter.mitigate_purge(plan)
        report = DistributedRecoveryReport(
            recovered=local.recovered,
            failing_node=failing_node,
            local_attempts=local.attempts,
        )
        if not local.recovered:
            return report

        report.discarded_ops = self.cluster.ops_overlapping_seqs(
            failing_node, set(local.reverted_seqs)
        )
        for op in report.discarded_ops:
            op.discarded = True

        # causal cascade to a fixpoint
        frontier = list(report.discarded_ops)
        while frontier:
            report.rounds += 1
            orphans = self._orphans_of(frontier)
            if not orphans:
                break
            for orphan in orphans:
                self._revert_op(orphan)
                orphan.discarded = True
            report.cascaded_ops.extend(orphans)
            frontier = orphans
        # every touched node re-runs recovery over its final state
        touched = {op.node for op in report.cascaded_ops}
        for node_id in touched:
            peer = self.cluster.nodes[node_id]
            peer.restart()
            peer.recover()
        return report

    # ------------------------------------------------------------------
    def _orphans_of(self, discarded: List[OpRecord]) -> List[OpRecord]:
        """Not-yet-discarded ops causally after any discarded op."""
        orphans = []
        for op in self.cluster.oplog:
            if op.discarded:
                continue
            for gone in discarded:
                if vc_less(gone.vc, op.vc):
                    orphans.append(op)
                    break
        return orphans

    def _revert_op(self, op: OpRecord) -> None:
        """Revert one operation's checkpoint entries on its node."""
        node = self.cluster.nodes[op.node]
        reverter = Reverter(
            node.ckpt.log, node.pool, node.allocator,
            reexec=lambda: RunOutcome(ok=True),
        )
        seqs: Set[int] = set()
        for seq in range(op.first_seq, op.last_seq + 1):
            for member in reverter.tx_closure(seq):
                seqs.add(member)
        for seq in sorted(seqs, reverse=True):
            reverter.revert_update_seq(seq, 1, guard_dangling=True)
