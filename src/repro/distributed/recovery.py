"""The distributed recovery coordinator (paper Section 7 sketch).

Protocol, in the terms of Elnozahy et al.'s rollback-recovery survey
(which the paper cites as the blueprint):

1. **Local recovery.**  The failing node runs its local Arthas reactor
   (slice x trace x checkpoint log, purge mode) exactly as in the
   single-node case.
2. **Damage assessment.**  The reverted sequence numbers are mapped back
   through the operation log to the client requests they discarded.
3. **Causal cascade.**  Any request whose vector clock is causally after
   a discarded request (the client observed discarded state before
   issuing it) is *orphaned*: the coordinator reverts its checkpoint
   entries on every live node that applied it, transactions included.
   New orphans found there cascade in turn, until a fixpoint.

The cascade is *promotion-aware*: operations are replicated, so a
discarded or orphaned op is reverted on each node in its span map —
which is how an orphan whose primary is down (demoted, mid-mitigation)
still gets cleaned up through its replica's log.  Nodes that are down
when the cascade runs are recorded as owing a revert; re-sync settles
the debt (:meth:`DistributedReactor.catchup_reverts`) before replaying
the ops the node missed.

The result is a causally consistent cut: no surviving request depends
on discarded state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Set, Tuple

from repro.detector.monitor import Detector, RunOutcome
from repro.distributed.cluster import Cluster, OpRecord, vc_less
from repro.harness.simclock import ReexecDelay, SimClock
from repro.reactor.plan import distance_policy
from repro.reactor.revert import Reverter
from repro.reactor.server import ReactorServer


@dataclass
class DistributedRecoveryReport:
    """What the coordinator did across the cluster."""

    recovered: bool
    failing_node: int
    local_attempts: int = 0
    discarded_ops: List[OpRecord] = field(default_factory=list)
    cascaded_ops: List[OpRecord] = field(default_factory=list)
    rounds: int = 0

    def discarded_keys(self) -> Set[int]:
        return {op.key for op in self.discarded_ops + self.cascaded_ops}


class DistributedReactor:
    """Coordinator running the cascade over one cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    # ------------------------------------------------------------------
    def mitigate(
        self,
        failing_node: int,
        fault_iid: int,
        verify: Callable[[], None],
        seed: int = 0,
    ) -> DistributedRecoveryReport:
        """Recover ``failing_node`` from ``fault_iid``, then cascade.

        ``verify`` is the failing node's symptom check (raises a guest
        trap while the symptom persists), as in single-node re-execution.
        """
        node = self.cluster.nodes[failing_node]
        detector = Detector()

        def reexec() -> RunOutcome:
            node.restart()
            return detector.observe(
                node.machine, lambda: (node.recover(), verify())
            )

        server = ReactorServer(node.module, analysis=node.analysis)
        plan = server.compute_plan(
            node.guid_map, node.trace, node.ckpt.log, fault_iid,
            policy=distance_policy(max_distance=8),
        )
        reverter = Reverter(
            node.ckpt.log, node.pool, node.allocator,
            reexec=reexec, clock=SimClock(), reexec_delay=ReexecDelay(seed),
        )
        local = reverter.mitigate_purge(plan)
        report = DistributedRecoveryReport(
            recovered=local.recovered,
            failing_node=failing_node,
            local_attempts=local.attempts,
        )
        if not local.recovered:
            return report

        discarded, cascaded, rounds = self.cascade_from(
            failing_node, set(local.reverted_seqs)
        )
        report.discarded_ops = discarded
        report.cascaded_ops = cascaded
        report.rounds = rounds

        # every touched peer re-runs recovery over its final state
        touched = {
            nid
            for op in discarded + cascaded
            for nid in op.reverted_on
            if nid != failing_node and not self.cluster.is_down(nid)
        }
        for node_id in touched:
            peer = self.cluster.nodes[node_id]
            peer.restart()
            peer.recover()
        return report

    # ------------------------------------------------------------------
    def cascade_from(
        self, failing_node: int, reverted_seqs: Set[int]
    ) -> Tuple[List[OpRecord], List[OpRecord], int]:
        """Damage assessment + causal cascade after a local recovery.

        ``reverted_seqs`` are the checkpoint sequence numbers the local
        mitigation reverted *on the failing node*.  Maps them to the
        client ops they discarded, reverts those ops' replica spans,
        then cascades orphans to a fixpoint.  Returns
        ``(discarded, cascaded, rounds)``.
        """
        # every live mirror must be current before reverts — guest-level
        # mutations outside the delta stream — execute on it (no-op
        # under the re-execution engine)
        self.cluster.drain()
        discarded = self.cluster.ops_overlapping_seqs(
            failing_node, set(reverted_seqs)
        )
        for op in discarded:
            op.discarded = True
            # the local mitigation already reverted the failing node
            op.reverted_on.add(failing_node)
            self._revert_spans(op)

        cascaded: List[OpRecord] = []
        rounds = 0
        frontier = list(discarded)
        while frontier:
            rounds += 1
            orphans = self._orphans_of(frontier)
            if not orphans:
                break
            for orphan in orphans:
                orphan.discarded = True
                self._revert_spans(orphan)
            cascaded.extend(orphans)
            frontier = orphans
        if discarded or cascaded:
            # the reverts mutated live mirrors out-of-band: the cached
            # compaction base no longer matches them
            self.cluster.note_out_of_band()
        return discarded, cascaded, rounds

    def catchup_reverts(self, node_id: int) -> int:
        """Settle the revert debt a node accrued while it was down.

        Ops the cascade discarded carry spans on this node that nobody
        could revert at cascade time.  Reverting by seq is a pure
        function of the node's log, so a crashed-and-retried catchup
        converges.  Returns the number of ops reverted here.
        """
        reverted = 0
        for op in self.cluster.ops_on_node(node_id):
            if not op.discarded or node_id in op.reverted_on:
                continue
            self._revert_op_on(op, node_id)
            op.reverted_on.add(node_id)
            reverted += 1
        return reverted

    # ------------------------------------------------------------------
    def _orphans_of(self, discarded: List[OpRecord]) -> List[OpRecord]:
        """Not-yet-discarded ops causally after any discarded op."""
        orphans = []
        for op in self.cluster.oplog:
            if op.discarded:
                continue
            for gone in discarded:
                if vc_less(gone.vc, op.vc):
                    orphans.append(op)
                    break
        return orphans

    def _revert_spans(self, op: OpRecord) -> None:
        """Revert an op on every live node in its span map.

        Down nodes are skipped — their spans stay owed in
        ``op.reverted_on``'s complement until re-sync settles them.
        """
        for node_id in op.spans:
            if node_id in op.reverted_on:
                continue
            if self.cluster.is_down(node_id):
                continue
            self._revert_op_on(op, node_id)
            op.reverted_on.add(node_id)
        # conservative oracle maintenance: a discarded key is no longer
        # a trustworthy reference point on any node that applied it
        for node_id in op.spans:
            self.cluster.oracles[node_id].pop(op.key, None)

    def _revert_op(self, op: OpRecord) -> None:
        """Back-compat single-op entry: revert every live span."""
        self._revert_spans(op)

    def _revert_op_on(self, op: OpRecord, node_id: int) -> None:
        """Revert one operation on one node by logical anti-entropy.

        Physical checkpoint-seq surgery is reserved for the failing
        node's supervised ladder, where re-execution verifies the
        result.  On a live peer it is unsafe: an op's span can include
        structural writes (a CCEH directory doubling, a level-hash
        resize) that *later surviving* inserts depend on, and reverting
        them leaves the pool unrecoverable.  The peer instead restores
        the key to its last surviving write — the same causally
        consistent cut, reached through the system's own front door.
        Idempotent (a pure function of the log), so a crashed-and-
        retried catchup converges.
        """
        if node_id not in op.spans:
            return
        node = self.cluster.nodes[node_id]
        surviving = None
        for prior in self.cluster.ops_on_node(node_id):
            if prior.key == op.key and not prior.discarded:
                surviving = prior
        if surviving is None or surviving.kind == "delete":
            node.delete(op.key)
        else:
            node.insert(op.key, surviving.value)
