"""The shard supervisor: replica promotion + online re-recovery.

When a primary's detector flags a hard fault, the supervisor runs the
promotion protocol — four journaled, individually crash-retried phases
that leave the cluster serving throughout:

1. **promote** — mark the sick node down on the ring.  That single flag
   *is* the promotion: the next live preference node becomes primary
   for every key the sick node fronted, with no data movement (replica
   sets of size R ≥ 2 mean the new primary already holds the data).
2. **mitigate** — the sick node runs the crash-safe supervised ladder
   (:func:`repro.harness.experiment._mitigate_supervised`: purge →
   rollback → snapshot under crash retries, riding the delta probe
   engine for bisect solutions).  Routing skips the node, so healthy
   shards never block; hand the supervisor a
   :class:`repro.reactor.server.WorkerGate` and the ladder chunks
   itself through the turnstile so a *serving thread* can interleave
   reads between mitigation chunks.
2b. **rebuild** — when every ladder rung fails (some faults are beyond
   local repair — the single-node study recovers them only from
   snapshots), the supervisor abandons the pool and *re-replicates*:
   a fresh deployment whose state the resync phase replays wholesale
   from the surviving replicas.  The cluster's replicas are a snapshot
   that is always current.
3. **cascade** — damage assessment + the promotion-aware causal
   cascade (:meth:`DistributedReactor.cascade_from`): reverted seqs map
   to discarded client ops, orphans are reverted through every live
   replica's log — including orphans whose primary is the demoted node
   itself.
4. **resync + handoff** — settle the revert debt the node accrued
   while down, replay the oplog tail it missed, then demote it (sticky
   replica duty) and mark it up.

Each phase records completion in a per-node journal and every
externally-visible effect is idempotent (ring flags are sets, reverts
are pure functions of the log, replays record their span only after
applying), so a *second* fault arriving mid-promotion — modeled by the
``cluster.promote`` / ``cluster.resync`` / ``cluster.handoff`` crash
sites — converges on retry instead of splitting the brain.

Per-node health scores aggregate detector verdicts, mitigation
attempts, crash retries, resync lag and leak counts; the
``cluster-status`` CLI renders them.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro import faultinject
from repro.distributed.cluster import Cluster, OpRecord
from repro.distributed.recovery import DistributedReactor
from repro.harness.experiment import MitigationRun, _make_reexec, _mitigate_supervised
from repro.harness.simclock import ReexecDelay, SimClock
from repro.harness.supervisor import StepResult, with_crash_retries
from repro.systems.common import ABSENT


@dataclass
class NodeHealth:
    """Rolled-up per-shard health accounting."""

    node_id: int
    status: str = "serving"  # serving | down | mitigating | resyncing | demoted
    verdicts: int = 0
    mitigations: int = 0
    attempts: int = 0
    crash_retries: int = 0
    resync_lag: int = 0
    leaked_blocks: int = 0
    discarded_ops: int = 0

    @property
    def score(self) -> int:
        """0–100: how much the supervisor trusts this shard right now."""
        s = 100
        if self.status == "down":
            s -= 60
        elif self.status in ("mitigating", "resyncing"):
            s -= 40
        elif self.status == "demoted":
            s -= 15
        s -= 5 * min(self.verdicts, 4)
        s -= 2 * min(self.mitigations, 5)
        s -= min(self.crash_retries, 10)
        s -= min(self.resync_lag // 8, 10)
        s -= min(self.leaked_blocks // 16, 10)
        return max(0, s)

    def to_json(self) -> Dict[str, object]:
        return {
            "node": self.node_id,
            "status": self.status,
            "score": self.score,
            "verdicts": self.verdicts,
            "mitigations": self.mitigations,
            "attempts": self.attempts,
            "crash_retries": self.crash_retries,
            "resync_lag": self.resync_lag,
            "leaked_blocks": self.leaked_blocks,
            "discarded_ops": self.discarded_ops,
        }


class HealJournal:
    """Write-ahead record of completed promotion-protocol phases.

    Re-entering a phase that already completed is a no-op — the
    idempotence anchor for crash-retried heals.
    """

    PHASES = ("promote", "mitigate", "rebuild", "cascade", "resync", "handoff")

    def __init__(self) -> None:
        self.completed: Dict[str, dict] = {}

    def done(self, phase: str) -> bool:
        return phase in self.completed

    def complete(self, phase: str, **info) -> None:
        self.completed[phase] = info

    def phases_done(self) -> List[str]:
        return [p for p in self.PHASES if p in self.completed]


@dataclass
class HealReport:
    """One node's trip through the promotion protocol."""

    node_id: int
    promoted: bool = False
    recovered: bool = False
    recovered_by: str = ""
    run: Optional[MitigationRun] = None
    discarded_ops: List[OpRecord] = field(default_factory=list)
    cascaded_ops: List[OpRecord] = field(default_factory=list)
    cascade_rounds: int = 0
    resync_reverted: int = 0
    resync_replayed: int = 0
    crash_retries: int = 0
    demoted: bool = False
    phases: List[str] = field(default_factory=list)


class ShardManager:
    """Supervises one cluster's shards through fault, failover, heal."""

    def __init__(
        self,
        cluster: Cluster,
        solution: str = "arthas",
        seed: int = 0,
        max_crash_retries: int = 6,
    ):
        self.cluster = cluster
        self.reactor = DistributedReactor(cluster)
        self.solution = solution
        self.seed = seed
        self.max_crash_retries = max_crash_retries
        self.health: Dict[int, NodeHealth] = {
            i: NodeHealth(i) for i in range(cluster.n_nodes)
        }
        self._journals: Dict[int, HealJournal] = {}

    def journal(self, node_id: int) -> HealJournal:
        return self._journals.setdefault(node_id, HealJournal())

    def reset_journal(self, node_id: int) -> None:
        """Start a fresh heal for a node (a new, distinct fault)."""
        self._journals.pop(node_id, None)

    def note_verdict(self, node_id: int) -> None:
        """The detector flagged this node (confirmed-hard heuristics)."""
        self.health[node_id].verdicts += 1

    # ------------------------------------------------------------------
    # phase 1: promote
    # ------------------------------------------------------------------
    def promote(self, node_id: int, clock: Optional[SimClock] = None) -> int:
        """Mark the node down; its keys fail over to live replicas.

        Crash-retried around the ``cluster.promote`` site: marking down
        is a set-add, so a crash between the ring flag and the journal
        entry re-runs into the same state.  Returns crash retries.
        """
        journal = self.journal(node_id)
        if journal.done("promote"):
            return 0
        clock = clock or SimClock()

        def step() -> StepResult:
            self.cluster.ring.mark_down(node_id)
            faultinject.fire("cluster.promote")
            return StepResult(recovered=True)

        _, retries = with_crash_retries(
            step, self.cluster.nodes[node_id].pool, clock,
            self.max_crash_retries,
        )
        journal.complete("promote", crash_retries=retries)
        h = self.health[node_id]
        h.status = "down"
        h.crash_retries += retries
        return retries

    # ------------------------------------------------------------------
    # phase 2: mitigate (the sick node, off the serving path)
    # ------------------------------------------------------------------
    def mitigate(
        self,
        node_id: int,
        ctx,
        scenario,
        outcome,
        detector,
        monitor=None,
        snapshotter=None,
        inject_plan=None,
        gate=None,
        mclock: Optional[SimClock] = None,
    ) -> MitigationRun:
        """Run the supervised degradation ladder on the sick node.

        ``gate`` (a :class:`repro.reactor.server.WorkerGate`) chunks
        the ladder through a thread turnstile so a serving thread can
        interleave healthy-shard reads between mitigation chunks; the
        hook rides ``ctx.yield_fn`` + the VM step hook exactly like the
        live-traffic server's cooperative mitigation.
        """
        journal = self.journal(node_id)
        if journal.done("mitigate"):
            return journal.completed["mitigate"]["run"]
        adapter = ctx.adapter
        h = self.health[node_id]
        h.status = "mitigating"
        mclock = mclock or SimClock()
        delay = ReexecDelay(seed=self.seed * 13 + 5)
        reexec = _make_reexec(ctx, scenario, detector, monitor)

        installed = gate is not None
        if installed:
            ctx.yield_fn = gate.checkpoint
            adapter.step_hook = gate.checkpoint
            adapter.step_hook_every = 4000
            if adapter.machine is not None:
                adapter.machine.step_hook = gate.checkpoint
                adapter.machine.step_hook_every = 4000
        try:
            run = _mitigate_supervised(
                ctx, scenario, outcome, reexec, mclock, delay,
                solution=self.solution, batch_size=1,
                snapshotter=snapshotter, inject_plan=inject_plan,
                max_crash_retries=self.max_crash_retries,
            )
        finally:
            if installed:
                ctx.yield_fn = None
                adapter.step_hook = None
                adapter.step_hook_every = 0
                if adapter.machine is not None:
                    adapter.machine.step_hook = None
                    adapter.machine.step_hook_every = 0

        h.mitigations += 1
        h.attempts += run.attempts
        h.leaked_blocks += run.leaked_blocks
        if run.ladder is not None:
            h.crash_retries += run.ladder.get("crash_retries", 0)
        journal.complete("mitigate", run=run)
        h.status = "mitigating" if not run.recovered else "resyncing"
        return run

    # ------------------------------------------------------------------
    # phase 2b: rebuild (re-replication, the rung below the ladder)
    # ------------------------------------------------------------------
    def rebuild(self, node_id: int) -> bool:
        """When the ladder cannot repair the pool, re-replicate instead.

        The damaged pool is abandoned (:meth:`Cluster.rebuild_node`) and
        resync later replays the node's whole oplog share from the
        surviving replicas — the cluster analogue of the single-node
        snapshot rung, except the "snapshot" is the replicas and is
        always current.  No cluster op is lost; the node-local state the
        pool held outside the oplog is the fault's blast radius.  A
        no-op (journaled ``rebuilt=False``) when mitigation succeeded.
        """
        journal = self.journal(node_id)
        if journal.done("rebuild"):
            return bool(journal.completed["rebuild"]["rebuilt"])
        entry = journal.completed.get("mitigate")
        run = entry["run"] if entry is not None else None
        rebuilt = run is not None and not run.recovered
        if rebuilt:
            self.cluster.rebuild_node(node_id)
            self.health[node_id].status = "resyncing"
        journal.complete("rebuild", rebuilt=rebuilt)
        return rebuilt

    # ------------------------------------------------------------------
    # phase 3: cascade
    # ------------------------------------------------------------------
    def cascade(self, node_id: int, run: MitigationRun):
        """Damage assessment + promotion-aware causal cascade.

        Uses the ladder's reverted seqs; a coarse (snapshot) restore
        falls back to diffing the node's pool against the oplog's last
        surviving write per key.  Idempotent: re-entry after a crash
        returns the journaled result (ops already reverted stay
        reverted — reverts are pure functions of the log).
        """
        journal = self.journal(node_id)
        if journal.done("cascade"):
            info = journal.completed["cascade"]
            return info["discarded"], info["cascaded"], info["rounds"]
        seqs: Set[int] = set(run.reverted_seqs)
        if run.coarse_restore:
            seqs |= self._coarse_reverted_seqs(node_id)
        discarded, cascaded, rounds = self.reactor.cascade_from(node_id, seqs)
        # peers whose pools lost reverted state re-run local recovery
        touched = {
            nid
            for op in discarded + cascaded
            for nid in op.reverted_on
            if nid != node_id and not self.cluster.is_down(nid)
        }
        for nid in sorted(touched):
            peer = self.cluster.nodes[nid]
            peer.restart()
            peer.recover()
        if discarded or cascaded or touched:
            # reverts and peer recoveries mutate guests outside the
            # delta stream: the cached compaction base is stale
            self.cluster.note_out_of_band()
        self.health[node_id].discarded_ops += len(discarded)
        journal.complete(
            "cascade", discarded=discarded, cascaded=cascaded, rounds=rounds
        )
        return discarded, cascaded, rounds

    def _coarse_reverted_seqs(self, node_id: int) -> Set[int]:
        """Snapshot-restore damage: seqs of ops whose last surviving
        write no longer matches the node's pool."""
        node = self.cluster.nodes[node_id]
        latest: Dict[int, OpRecord] = {}
        for op in self.cluster.ops_on_node(node_id):
            if not op.discarded:
                latest[op.key] = op
        seqs: Set[int] = set()
        for key, op in latest.items():
            actual = node.lookup(key)
            stale = (
                actual != ABSENT if op.kind == "delete" else actual != op.value
            )
            if not stale:
                continue
            span = op.spans.get(node_id)
            if span is not None and span[0] <= span[1]:
                seqs.update(range(span[0], span[1] + 1))
        return seqs

    # ------------------------------------------------------------------
    # phase 4: resync + handoff
    # ------------------------------------------------------------------
    def resync(self, node_id: int, clock: Optional[SimClock] = None) -> HealReport:
        """Catch the healed node up, then hand it back as a replica.

        Two crash-retried steps around the ``cluster.resync`` /
        ``cluster.handoff`` sites:

        * catch-up — revert the discards the cascade owed this node,
          then replay the non-discarded oplog tail it missed (spans
          recorded only after an apply completes, so a mid-replay crash
          re-applies idempotently);
        * handoff — demote (sticky) + mark up, in that order, so the
          node never fronts reads between the two flags.
        """
        journal = self.journal(node_id)
        h = self.health[node_id]
        clock = clock or SimClock()
        report = HealReport(node_id=node_id)
        if not journal.done("resync"):
            h.status = "resyncing"

            def catchup() -> StepResult:
                faultinject.fire("cluster.resync")
                if self.cluster.replication_engine == "delta":
                    # physical heal: install base image + delta tail;
                    # the tick keeps the cluster.resync cadence (one
                    # firing per credited op) of the re-execution path
                    replayed, reverted = self.cluster.rebase_node(
                        node_id,
                        tick=lambda: faultinject.fire("cluster.resync"),
                    )
                else:
                    reverted = self.reactor.catchup_reverts(node_id)
                    replayed = self.cluster.replay_missed(
                        node_id, tick=lambda: faultinject.fire("cluster.resync")
                    )
                return StepResult(
                    recovered=True, notes=f"reverted={reverted} replayed={replayed}",
                    attempts=replayed,
                )
            res, retries = with_crash_retries(
                catchup, self.cluster.nodes[node_id].pool, clock,
                self.max_crash_retries,
            )
            journal.complete(
                "resync", notes=res.notes, replayed=res.attempts,
                crash_retries=retries,
            )
            h.crash_retries += retries
            h.resync_lag = res.attempts
        report.resync_replayed = journal.completed["resync"]["replayed"]
        report.crash_retries += journal.completed["resync"]["crash_retries"]

        if not journal.done("handoff"):
            def handoff() -> StepResult:
                self.cluster.ring.demote(node_id)
                self.cluster.ring.mark_up(node_id)
                # fold the fully-acked delta prefix now that every node
                # is live and aligned; a crash at the cluster.compact
                # site retries into a fresh capture (idempotent)
                folded = self.cluster.compact()
                faultinject.fire("cluster.handoff")
                return StepResult(recovered=True, notes=f"compacted={folded}")
            _, retries = with_crash_retries(
                handoff, self.cluster.nodes[node_id].pool, clock,
                self.max_crash_retries,
            )
            journal.complete("handoff", crash_retries=retries)
            h.crash_retries += retries
        report.crash_retries += journal.completed["handoff"]["crash_retries"]
        h.status = "demoted"
        report.demoted = True
        report.phases = journal.phases_done()
        return report

    # ------------------------------------------------------------------
    # the whole protocol
    # ------------------------------------------------------------------
    def heal(
        self,
        node_id: int,
        ctx,
        scenario,
        outcome,
        detector,
        monitor=None,
        snapshotter=None,
        inject_plan=None,
        gate=None,
        serve_between=None,
        mclock: Optional[SimClock] = None,
    ) -> HealReport:
        """promote → [serve] → mitigate → cascade → resync/handoff.

        ``serve_between()`` (if given) runs after promotion, before the
        mitigation — the harness serves its during-mitigation window
        there.  ``inject_plan`` is armed across all phases so the
        ``cluster.*`` second-fault sites can fire.
        """
        mclock = mclock or SimClock()
        report = HealReport(node_id=node_id)
        cm = (
            faultinject.activate(inject_plan)
            if inject_plan is not None else nullcontext()
        )
        with cm:
            report.crash_retries += self.promote(node_id, clock=mclock)
            report.promoted = True
            if serve_between is not None:
                serve_between()
            run = self.mitigate(
                node_id, ctx, scenario, outcome, detector,
                monitor=monitor, snapshotter=snapshotter,
                inject_plan=inject_plan, gate=gate, mclock=mclock,
            )
            report.run = run
            report.recovered = run.recovered
            if run.ladder is not None:
                report.recovered_by = run.ladder.get("recovered_by", "") or ""
            if self.rebuild(node_id):
                report.recovered = True
                report.recovered_by = "rebuild"
            if not report.recovered:
                report.phases = self.journal(node_id).phases_done()
                return report
            discarded, cascaded, rounds = self.cascade(node_id, run)
            report.discarded_ops = discarded
            report.cascaded_ops = cascaded
            report.cascade_rounds = rounds
            sub = self.resync(node_id, clock=mclock)
            report.resync_replayed = sub.resync_replayed
            report.crash_retries += sub.crash_retries
            report.demoted = sub.demoted
        report.phases = self.journal(node_id).phases_done()
        return report

    # ------------------------------------------------------------------
    def health_table(self) -> List[Dict[str, object]]:
        return [self.health[i].to_json() for i in range(self.cluster.n_nodes)]
