"""Distributed hard-fault recovery (paper Section 7, future work).

The paper sketches how Arthas could extend beyond a single component:

  "We could have each component checkpoint PM states locally, and add a
   global coordinator that runs a special rollback-recovery protocol.
   We can expose the Arthas metadata in each component to the
   coordinator for determining an effective recovery plan.  For external
   dependencies created by clients ... the PM system and client can
   maintain vector clocks; after the PM system successfully rollbacks to
   a particular point, the client will then be notified to rollback its
   events with vector clocks after that point."

This package implements that sketch at laptop scale:

* :mod:`repro.distributed.cluster` — a cluster of independent PM nodes
  (each with its own pool, checkpoint log, trace and analyzer metadata),
  a client layer that stamps every request with a vector clock, and an
  operation log mapping requests to checkpoint sequence ranges.
* :mod:`repro.distributed.recovery` — the coordinator: mitigate the
  failing node with the local Arthas reactor, map its reverted sequence
  numbers back to client requests, and cascade-revert every request that
  causally follows a discarded one (Fidge/Mattern happens-before over
  the vector clocks), node by node, until the closure is empty.

Beyond the sketch, the package now serves *through* failures:

* :mod:`repro.distributed.ring` — consistent-hash placement with
  virtual nodes; replica promotion is a ring status flag, so failover
  moves no data.
* :mod:`repro.distributed.shardmgr` — the shard supervisor: journaled
  promote → mitigate → cascade → resync/handoff phases, each
  crash-retried and idempotent, with per-shard health scores.
"""

from repro.distributed.cluster import (
    Cluster,
    ClusterClient,
    OpRecord,
    ShardUnavailable,
)
from repro.distributed.recovery import DistributedReactor, DistributedRecoveryReport
from repro.distributed.ring import HashRing
from repro.distributed.shardmgr import HealReport, NodeHealth, ShardManager

__all__ = [
    "Cluster",
    "ClusterClient",
    "OpRecord",
    "ShardUnavailable",
    "DistributedReactor",
    "DistributedRecoveryReport",
    "HashRing",
    "HealReport",
    "NodeHealth",
    "ShardManager",
]
