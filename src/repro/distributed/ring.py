"""Consistent-hash ring with virtual nodes (Dynamo-style placement).

Replaces the seed cluster's ``key % n_nodes`` routing: each physical
node owns ``vnodes`` points on a 64-bit ring, a key is served by the
first points clockwise from its hash.  Adding or removing one node
remaps only the ~1/N arc it owns instead of reshuffling every key.

Placement is *deterministic*: the ring hashes with a seed-keyed
blake2b, so two processes building the same (nodes, vnodes, seed)
ring route identically — the property every replay-based check in the
cluster sweep rests on.

Two status flags shape routing without moving ring points:

* ``down``     — the node is unreachable (crashed or in mitigation).
  It is skipped entirely; the next live preference-list node serves
  as primary, which is how replica *promotion* happens: marking the
  sick node down IS the promotion, per key, with no remapping.
* ``demoted``  — sticky flag set when a healed node rejoins.  A
  demoted node serves as replica but is passed over for primary duty
  (unless every live candidate is demoted), so a freshly re-synced
  pool is not immediately fronting reads.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from typing import Iterable, List, Optional, Set, Tuple


def _hash64(data: bytes, seed: int) -> int:
    h = hashlib.blake2b(
        data, digest_size=8, key=seed.to_bytes(8, "little", signed=True)
    )
    return int.from_bytes(h.digest(), "big")


class HashRing:
    """Seeded consistent-hash ring over integer node ids."""

    def __init__(self, node_ids: Iterable[int], vnodes: int = 64, seed: int = 0):
        self.vnodes = vnodes
        self.seed = seed
        #: sorted (point, node_id) pairs — the ring
        self._points: List[Tuple[int, int]] = []
        self._nodes: Set[int] = set()
        self.down: Set[int] = set()
        self.demoted: Set[int] = set()
        for nid in node_ids:
            self.add_node(nid)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> None:
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        for v in range(self.vnodes):
            point = _hash64(b"node:%d:%d" % (node_id, v), self.seed)
            insort(self._points, (point, node_id))

    def remove_node(self, node_id: int) -> None:
        self._nodes.discard(node_id)
        self.down.discard(node_id)
        self.demoted.discard(node_id)
        self._points = [(p, n) for (p, n) in self._points if n != node_id]

    @property
    def nodes(self) -> Set[int]:
        return set(self._nodes)

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def mark_down(self, node_id: int) -> None:
        self.down.add(node_id)

    def mark_up(self, node_id: int) -> None:
        self.down.discard(node_id)

    def demote(self, node_id: int) -> None:
        self.demoted.add(node_id)

    def undemote(self, node_id: int) -> None:
        self.demoted.discard(node_id)

    def is_down(self, node_id: int) -> bool:
        return node_id in self.down

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def key_point(self, key: int) -> int:
        return _hash64(b"key:%d" % key, self.seed)

    def preference_list(self, key: int) -> List[int]:
        """Every node, in ring-walk order from the key's point.

        Status-blind: this is the *placement* order.  ``primary_for``
        and ``replica_set`` overlay the down/demoted flags on it.
        """
        if not self._points:
            return []
        i = bisect_left(self._points, (self.key_point(key), -1))
        seen: Set[int] = set()
        out: List[int] = []
        n = len(self._points)
        for j in range(n):
            _, nid = self._points[(i + j) % n]
            if nid not in seen:
                seen.add(nid)
                out.append(nid)
                if len(out) == len(self._nodes):
                    break
        return out

    def primary_for(self, key: int, down: Optional[Set[int]] = None) -> Optional[int]:
        """First live, non-demoted preference node (demoted nodes only
        front reads when every live candidate is demoted).  ``None``
        when the whole replica chain is down.  ``down`` overrides the
        ring's own down set — the re-sync path asks "who will serve
        this key once the healing node is back up" without flipping the
        real flag mid-phase (a crash there would leave a half-recovered
        node fronting reads)."""
        down = self.down if down is None else down
        live = [n for n in self.preference_list(key) if n not in down]
        if not live:
            return None
        for nid in live:
            if nid not in self.demoted:
                return nid
        return live[0]

    def replica_set(
        self, key: int, r: int, down: Optional[Set[int]] = None
    ) -> List[int]:
        """The primary plus the next live preference nodes, ≤ r total.

        Demoted nodes are replica-eligible — a healed node resumes
        replica duty for its old arc the moment it is marked up.
        ``down`` overrides the ring's down set, as in ``primary_for``.
        """
        down = self.down if down is None else down
        primary = self.primary_for(key, down=down)
        if primary is None:
            return []
        out = [primary]
        for nid in self.preference_list(key):
            if len(out) >= r:
                break
            if nid in down or nid == primary:
                continue
            out.append(nid)
        return out
