"""A cluster of single-node PM systems with vector-clock-stamped clients.

Each node is one fully-equipped system deployment (its own pool,
allocator, checkpoint log and PM-address trace).  Requests are routed by
key; every mutation is recorded in a cluster-wide operation log carrying:

* the issuing client and its vector clock at send time, and
* the span of checkpoint-log sequence numbers the operation produced on
  its node.

The sequence spans let the coordinator translate "node i reverted
sequence numbers S" into "these client operations were discarded"; the
vector clocks define which other operations causally depend on them.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Tuple, Type

from repro.systems.common import SystemAdapter
from repro.systems.memcached import MemcachedAdapter

VectorClock = Tuple[int, ...]


def _check_dims(a: VectorClock, b: VectorClock) -> None:
    # zip() would silently truncate the longer clock, turning a
    # mixed-topology comparison into a wrong causality verdict
    if len(a) != len(b):
        raise ValueError(
            f"vector clock dimension mismatch: {len(a)} vs {len(b)}"
        )


def vc_leq(a: VectorClock, b: VectorClock) -> bool:
    """Component-wise <= : a happened-before-or-equal b."""
    _check_dims(a, b)
    return all(x <= y for x, y in zip(a, b))


def vc_less(a: VectorClock, b: VectorClock) -> bool:
    """Strict happens-before."""
    return vc_leq(a, b) and a != b


def vc_merge(a: VectorClock, b: VectorClock) -> VectorClock:
    _check_dims(a, b)
    return tuple(max(x, y) for x, y in zip(a, b))


@dataclass
class OpRecord:
    """One mutating client request in the cluster operation log."""

    op_id: int
    client: int
    node: int
    kind: str  # "insert" | "delete"
    key: int
    value: int
    vc: VectorClock
    first_seq: int
    last_seq: int
    #: set by the coordinator when the operation is discarded by recovery
    discarded: bool = False


class Cluster:
    """N independent PM nodes plus the operation log."""

    def __init__(
        self,
        n_nodes: int = 3,
        n_clients: int = 2,
        adapter_cls: Type[SystemAdapter] = MemcachedAdapter,
        seed: int = 0,
    ):
        self.nodes: List[SystemAdapter] = []
        for i in range(n_nodes):
            node = adapter_cls(seed=seed + i)
            node.start()
            self.nodes.append(node)
        self.n_clients = n_clients
        self.n_nodes = n_nodes
        #: per-client vector clocks over (clients + nodes) dimensions
        self._dims = n_clients + n_nodes
        self._client_vc: List[List[int]] = [
            [0] * self._dims for _ in range(n_clients)
        ]
        self._node_vc: List[List[int]] = [
            [0] * self._dims for _ in range(n_nodes)
        ]
        self.oplog: List[OpRecord] = []
        self._next_op_id = 1

    # ------------------------------------------------------------------
    def node_for(self, key: int) -> int:
        return key % self.n_nodes

    def _stamp(self, client: int, node: int) -> VectorClock:
        """Advance and exchange clocks for one client->node request."""
        cvc = self._client_vc[client]
        cvc[client] += 1
        nvc = self._node_vc[node]
        _check_dims(tuple(cvc), tuple(nvc))
        merged = [max(a, b) for a, b in zip(cvc, nvc)]
        merged[self.n_clients + node] += 1
        self._node_vc[node] = list(merged)
        self._client_vc[client] = list(merged)
        return tuple(merged)

    # ------------------------------------------------------------------
    def insert(self, client: int, key: int, value: int) -> OpRecord:
        node_id = self.node_for(key)
        node = self.nodes[node_id]
        first = node.ckpt.log.max_seq() + 1
        node.insert(key, value)
        last = node.ckpt.log.max_seq()
        record = OpRecord(
            op_id=self._next_op_id,
            client=client,
            node=node_id,
            kind="insert",
            key=key,
            value=value,
            vc=self._stamp(client, node_id),
            first_seq=first,
            last_seq=last,
        )
        self._next_op_id += 1
        self.oplog.append(record)
        return record

    def delete(self, client: int, key: int) -> OpRecord:
        node_id = self.node_for(key)
        node = self.nodes[node_id]
        first = node.ckpt.log.max_seq() + 1
        node.delete(key)
        last = node.ckpt.log.max_seq()
        record = OpRecord(
            op_id=self._next_op_id,
            client=client,
            node=node_id,
            kind="delete",
            key=key,
            value=0,
            vc=self._stamp(client, node_id),
            first_seq=first,
            last_seq=last,
        )
        self._next_op_id += 1
        self.oplog.append(record)
        return record

    def lookup(self, client: int, key: int) -> int:
        """Reads exchange clocks too (they create causal edges)."""
        node_id = self.node_for(key)
        value = self.nodes[node_id].lookup(key)
        self._stamp(client, node_id)
        return value

    # ------------------------------------------------------------------
    def ops_on_node(self, node_id: int) -> List[OpRecord]:
        return [op for op in self.oplog if op.node == node_id]

    def ops_overlapping_seqs(self, node_id: int, seqs) -> List[OpRecord]:
        """Operations on a node whose sequence span intersects ``seqs``.

        O((|ops| + |seqs|) log |seqs|): one sorted copy of ``seqs``,
        then a bisect per op for the smallest reverted seq >= its span
        start — instead of scanning every seq for every op.
        """
        ordered = sorted(set(seqs))
        if not ordered:
            return []
        out = []
        for op in self.ops_on_node(node_id):
            if op.first_seq > op.last_seq:
                # empty span: the operation wrote no checkpoint records
                # (e.g. a delete of an absent key), so no reverted seq
                # can discard it
                continue
            i = bisect_left(ordered, op.first_seq)
            if i < len(ordered) and ordered[i] <= op.last_seq:
                out.append(op)
        return out


class ClusterClient:
    """Convenience wrapper binding a client id to a cluster."""

    def __init__(self, cluster: Cluster, client_id: int):
        self.cluster = cluster
        self.client_id = client_id

    def insert(self, key: int, value: int) -> OpRecord:
        return self.cluster.insert(self.client_id, key, value)

    def delete(self, key: int) -> OpRecord:
        return self.cluster.delete(self.client_id, key)

    def lookup(self, key: int) -> int:
        return self.cluster.lookup(self.client_id, key)

    def derived_insert(self, src_key: int, dst_key: int, f=lambda v: v + 1) -> Optional[OpRecord]:
        """Read ``src_key`` and write a value derived from it — the
        cross-node dependency pattern of the paper's Section 7 example
        (request r2 is computed from request r1's result)."""
        value = self.lookup(src_key)
        if value == -1:
            return None
        return self.insert(dst_key, f(value))
