"""A sharded, replicated cluster of PM systems with vector-clock clients.

Each node is one fully-equipped system deployment (its own pool,
allocator, checkpoint log and PM-address trace).  Requests are routed
by a consistent-hash ring (:mod:`repro.distributed.ring`); every
mutation is applied primary-then-replica across a replica set of size
``replication`` and recorded in a cluster-wide operation log carrying:

* the issuing client and its vector clock at send time, and
* for *every node that applied it*, the span of checkpoint-log
  sequence numbers the operation produced there.

The per-node sequence spans let the coordinator translate "node i
reverted sequence numbers S" into "these client operations were
discarded" — and, because an op's replica spans are recorded too, the
cascade can revert an orphan on a demoted node's *replicas* even while
the demoted node itself is down.  The vector clocks define which other
operations causally depend on the discarded ones.

Routing during a failure: marking a node down on the ring makes the
next live preference node the primary for its keys — replica
promotion is a ring flag, not a data migration.  A healed node is
re-synced from the oplog tail (:meth:`Cluster.replay_missed`) and
rejoins demoted: replica duty first, primary duty only when the ring
has no better candidate.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Type

from repro.distributed.ring import HashRing
from repro.systems.common import ABSENT, SystemAdapter
from repro.systems.memcached import MemcachedAdapter

VectorClock = Tuple[int, ...]


class ShardUnavailable(RuntimeError):
    """Every node in a key's replica chain is down."""

    def __init__(self, key: int):
        super().__init__(f"no live replica for key {key}")
        self.key = key


def _check_dims(a: VectorClock, b: VectorClock) -> None:
    # zip() would silently truncate the longer clock, turning a
    # mixed-topology comparison into a wrong causality verdict
    if len(a) != len(b):
        raise ValueError(
            f"vector clock dimension mismatch: {len(a)} vs {len(b)}"
        )


def vc_leq(a: VectorClock, b: VectorClock) -> bool:
    """Component-wise <= : a happened-before-or-equal b."""
    _check_dims(a, b)
    return all(x <= y for x, y in zip(a, b))


def vc_less(a: VectorClock, b: VectorClock) -> bool:
    """Strict happens-before."""
    return vc_leq(a, b) and a != b


def vc_merge(a: VectorClock, b: VectorClock) -> VectorClock:
    _check_dims(a, b)
    return tuple(max(x, y) for x, y in zip(a, b))


@dataclass
class OpRecord:
    """One mutating client request in the cluster operation log."""

    op_id: int
    client: int
    #: primary node at apply time (first entry of the replica set)
    node: int
    kind: str  # "insert" | "delete"
    key: int
    #: stored value for inserts; ``None`` for deletes (a delete stores
    #: nothing — the old ``0`` sentinel made a real stored 0 ambiguous)
    value: Optional[int]
    vc: VectorClock
    #: primary-node span, kept as plain fields for single-node callers
    first_seq: int
    last_seq: int
    #: node id -> (first_seq, last_seq) on *every* node that applied
    #: the op (primary and replicas; grown again when a healed node
    #: replays it during re-sync)
    spans: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: set by the coordinator when the operation is discarded by recovery
    discarded: bool = False
    #: nodes where the discard has been physically reverted; lets the
    #: cascade skip nodes that already reverted and lets re-sync revert
    #: a span the node missed while it was down
    reverted_on: Set[int] = field(default_factory=set)

    def span_on(self, node_id: int) -> Optional[Tuple[int, int]]:
        return self.spans.get(node_id)


class Cluster:
    """N independent PM nodes behind a consistent-hash ring."""

    def __init__(
        self,
        n_nodes: int = 3,
        n_clients: int = 2,
        adapter_cls: Type[SystemAdapter] = MemcachedAdapter,
        seed: int = 0,
        replication: Optional[int] = None,
        vnodes: int = 64,
    ):
        self.seed = seed
        self.nodes: List[SystemAdapter] = []
        for i in range(n_nodes):
            node = adapter_cls(seed=seed + i)
            node.start()
            self.nodes.append(node)
        self.n_clients = n_clients
        self.n_nodes = n_nodes
        self.replication = (
            min(2, n_nodes) if replication is None else min(replication, n_nodes)
        )
        self.ring = HashRing(range(n_nodes), vnodes=vnodes, seed=seed)
        #: per-client vector clocks over (clients + nodes) dimensions
        self._dims = n_clients + n_nodes
        self._client_vc: List[List[int]] = [
            [0] * self._dims for _ in range(n_clients)
        ]
        self._node_vc: List[List[int]] = [
            [0] * self._dims for _ in range(n_nodes)
        ]
        self.oplog: List[OpRecord] = []
        #: per-node op index, appended at record time — ops_on_node was
        #: an O(|oplog|) scan per call, which made the cascade's
        #: ops_overlapping_seqs quadratic in ops
        self._ops_by_node: Dict[int, List[OpRecord]] = {}
        #: per-node logical key/value truth (what the node should hold
        #: from *cluster* traffic; node-local trigger traffic maintains
        #: the same dicts through the experiment context alias)
        self.oracles: List[Dict[int, int]] = [{} for _ in range(n_nodes)]
        self._next_op_id = 1

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def node_for(self, key: int) -> Optional[int]:
        """The key's current primary (``None`` if its chain is down)."""
        return self.ring.primary_for(key)

    def replica_nodes_for(self, key: int) -> List[int]:
        return self.ring.replica_set(key, self.replication)

    def is_down(self, node_id: int) -> bool:
        return self.ring.is_down(node_id)

    def keys_for_node(
        self, node_id: int, count: int = 1, start: int = 0, stride: int = 1
    ) -> List[int]:
        """The first ``count`` integer keys ≥ ``start`` whose primary is
        ``node_id`` — how tests and the sweep aim traffic at one shard
        now that routing is ring-hashed rather than ``key % n``."""
        out: List[int] = []
        key = start
        limit = start + stride * max(1_000_000, count * 1000)
        while len(out) < count:
            if key > limit:
                raise ValueError(f"node {node_id} owns no keys in range")
            if self.ring.primary_for(key) == node_id:
                out.append(key)
            key += stride
        return out

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------
    def _stamp(self, client: int, node_ids: List[int]) -> VectorClock:
        """Advance and exchange clocks for one client request applied on
        ``node_ids`` (primary first, then replicas).

        Per-shard stamping: the op is an event of its *primary* — the
        client's clock merges with the primary's and the primary's
        component ticks.  Replicas learn the stamp one-way (their clock
        absorbs it without contributing or ticking): they store
        causally-tagged data without serializing against it, so two ops
        on different primaries stay concurrent even when their replica
        sets overlap — yet after a promotion, reads served by the
        replica still inherit the causal history of everything it
        stored, which keeps the orphan cascade sound.
        """
        cvc = self._client_vc[client]
        cvc[client] += 1
        primary = node_ids[0]
        merged = vc_merge(tuple(cvc), tuple(self._node_vc[primary]))
        stamped = list(merged)
        stamped[self.n_clients + primary] += 1
        self._client_vc[client] = list(stamped)
        self._node_vc[primary] = list(stamped)
        for nid in node_ids[1:]:
            self._node_vc[nid] = list(
                vc_merge(tuple(self._node_vc[nid]), tuple(stamped))
            )
        return tuple(stamped)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _apply(
        self, client: int, kind: str, key: int, value: Optional[int]
    ) -> OpRecord:
        node_ids = self.replica_nodes_for(key)
        if not node_ids:
            raise ShardUnavailable(key)
        spans: Dict[int, Tuple[int, int]] = {}
        for nid in node_ids:
            spans[nid] = self._apply_on(nid, kind, key, value)
        record = OpRecord(
            op_id=self._next_op_id,
            client=client,
            node=node_ids[0],
            kind=kind,
            key=key,
            value=value,
            vc=self._stamp(client, node_ids),
            first_seq=spans[node_ids[0]][0],
            last_seq=spans[node_ids[0]][1],
            spans=spans,
        )
        self._next_op_id += 1
        self.oplog.append(record)
        for nid in spans:
            self._ops_by_node.setdefault(nid, []).append(record)
        return record

    def _apply_on(
        self, node_id: int, kind: str, key: int, value: Optional[int]
    ) -> Tuple[int, int]:
        """Apply one mutation on one node, returning its seq span."""
        node = self.nodes[node_id]
        first = node.ckpt.log.max_seq() + 1
        if kind == "insert":
            node.insert(key, value)
            self.oracles[node_id][key] = value
        else:
            node.delete(key)
            self.oracles[node_id].pop(key, None)
        last = node.ckpt.log.max_seq()
        return (first, last)

    def insert(self, client: int, key: int, value: int) -> OpRecord:
        if value == ABSENT:
            raise ValueError(
                f"refusing to store the ABSENT sentinel ({ABSENT}): a "
                "stored -1 would be indistinguishable from a miss"
            )
        return self._apply(client, "insert", key, value)

    def delete(self, client: int, key: int) -> OpRecord:
        return self._apply(client, "delete", key, None)

    def lookup(self, client: int, key: int) -> int:
        """Reads exchange clocks too (they create causal edges)."""
        node_id = self.node_for(key)
        if node_id is None:
            raise ShardUnavailable(key)
        value = self.nodes[node_id].lookup(key)
        self._stamp(client, [node_id])
        return value

    # ------------------------------------------------------------------
    # damage assessment
    # ------------------------------------------------------------------
    def ops_on_node(self, node_id: int) -> List[OpRecord]:
        """Ops that produced checkpoint records on ``node_id`` (as
        primary or replica), in op_id order — served from the per-node
        index, not an oplog scan."""
        return list(self._ops_by_node.get(node_id, ()))

    def ops_overlapping_seqs(self, node_id: int, seqs) -> List[OpRecord]:
        """Operations whose span *on that node* intersects ``seqs``.

        O((|node ops| + |seqs|) log |seqs|): one sorted copy of
        ``seqs``, then a bisect per op for the smallest reverted seq >=
        its span start — and only the node's own ops are visited.
        """
        ordered = sorted(set(seqs))
        if not ordered:
            return []
        out = []
        for op in self._ops_by_node.get(node_id, ()):
            span = op.spans.get(node_id)
            if span is None:
                continue
            first, last = span
            if first > last:
                # empty span: the operation wrote no checkpoint records
                # (e.g. a delete of an absent key), so no reverted seq
                # can discard it
                continue
            i = bisect_left(ordered, first)
            if i < len(ordered) and ordered[i] <= last:
                out.append(op)
        return out

    # ------------------------------------------------------------------
    # re-sync
    # ------------------------------------------------------------------
    def replay_missed(self, node_id: int, tick=None) -> int:
        """Replay oplog-tail ops a healed node missed while down.

        An op is replayed iff the node belongs to the key's replica set
        *as it will stand once the node is marked up* (catch-up runs
        before the handoff flips the ring flag, so eligibility is
        computed against a what-if down set rather than by mutating the
        ring mid-phase), the op is not discarded, and the node has no
        span for it yet.  Replays run in op_id order; each records its
        span only after the apply completes, so a crash-and-retry
        re-applies the op (idempotently) instead of losing it.  ``tick``
        is called before each replay — the shard supervisor threads the
        ``cluster.resync`` injection site through it.  Returns the
        number of ops replayed (the node's resync lag).
        """
        replayed = 0
        down = self.ring.down - {node_id}
        for op in self.oplog:
            if op.discarded or node_id in op.spans:
                continue
            members = self.ring.replica_set(op.key, self.replication, down=down)
            if node_id not in members:
                continue
            if tick is not None:
                tick()
            span = self._apply_on(node_id, op.kind, op.key, op.value)
            op.spans[node_id] = span
            self._ops_by_node.setdefault(node_id, []).append(op)
            replayed += 1
        return replayed

    def rebuild_node(self, node_id: int) -> None:
        """Replace a node's deployment with a fresh pool (re-replication).

        Local mitigation's last resort: the damaged pool is abandoned
        and the node's durable state is re-derived from the cluster —
        once the spans recorded against the old pool are forgotten,
        :meth:`replay_missed` replays every eligible oplog op from the
        surviving replicas (R >= 2 keeps each op on a live pool, so no
        cluster op is lost).  Node-local state that never entered the
        oplog is the fault's blast radius and dies with the pool.
        """
        adapter = type(self.nodes[node_id])(seed=self.seed + node_id)
        adapter.start()
        self.nodes[node_id] = adapter
        self.oracles[node_id].clear()
        for op in self._ops_by_node.pop(node_id, []):
            op.spans.pop(node_id, None)
            op.reverted_on.discard(node_id)


class ClusterClient:
    """Convenience wrapper binding a client id to a cluster."""

    def __init__(self, cluster: Cluster, client_id: int):
        self.cluster = cluster
        self.client_id = client_id

    def insert(self, key: int, value: int) -> OpRecord:
        return self.cluster.insert(self.client_id, key, value)

    def delete(self, key: int) -> OpRecord:
        return self.cluster.delete(self.client_id, key)

    def lookup(self, key: int) -> int:
        return self.cluster.lookup(self.client_id, key)

    def derived_insert(self, src_key: int, dst_key: int, f=lambda v: v + 1) -> Optional[OpRecord]:
        """Read ``src_key`` and write a value derived from it — the
        cross-node dependency pattern of the paper's Section 7 example
        (request r2 is computed from request r1's result)."""
        value = self.lookup(src_key)
        if value == ABSENT:
            return None
        return self.insert(dst_key, f(value))
