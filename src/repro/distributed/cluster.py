"""A sharded, replicated cluster of PM systems with vector-clock clients.

Each node is one fully-equipped system deployment (its own pool,
allocator, checkpoint log and PM-address trace).  Requests are routed
by a consistent-hash ring (:mod:`repro.distributed.ring`); every
mutation is applied primary-then-replica across a replica set of size
``replication`` and recorded in a cluster-wide operation log carrying:

* the issuing client and its vector clock at send time, and
* for *every node that applied it*, the span of checkpoint-log
  sequence numbers the operation produced there.

The per-node sequence spans let the coordinator translate "node i
reverted sequence numbers S" into "these client operations were
discarded" — and, because an op's replica spans are recorded too, the
cascade can revert an orphan on a demoted node's *replicas* even while
the demoted node itself is down.  The vector clocks define which other
operations causally depend on the discarded ones.

Routing during a failure: marking a node down on the ring makes the
next live preference node the primary for its keys — replica
promotion is a ring flag, not a data migration.  A healed node is
re-synced from the oplog tail (:meth:`Cluster.replay_missed`) and
rejoins demoted: replica duty first, primary duty only when the ring
has no better candidate.

Two replication engines
-----------------------

``replication_engine`` selects how a mutation reaches the other nodes
(mirroring ``vm_engine``/``PROBE_ENGINES``: the slow engine stays as the
oracle):

* ``"reexec"`` — the original engine: the guest program runs through
  the VM on the primary *and every replica-set member* (R× VM work per
  op); a healed node replays its oplog share the same way.
* ``"delta"`` — physical replication: the primary wraps the op in a
  dirty-word pool epoch, captures the op's word delta + allocator
  metadata ops + checkpoint record stream + trace slice as a
  :class:`ReplicaDelta`, and the other nodes apply it as raw pool
  writes plus a record batch — no guest re-execution.  Deltas are
  group-committed (``replication_batch`` deltas per replica round,
  drained early whenever a node must serve a read or execute as
  primary), and the acked prefix is periodically folded into a
  :class:`BaseImage` (:meth:`Cluster.compact`) so a healed node
  installs ``base + delta tail`` instead of replaying its whole share.

A physical word delta is only byte-exact between nodes whose op
histories are *aligned* — per-node counters (``m_time``), first-fit
allocator layout and checkpoint seqs are all history-dependent — so
under the delta engine every live node mirrors every oplog op in oplog
order (``replication`` keeps its routing/ack/vector-clock meaning on
the ring, and routed lookups still touch only their primary).  At
``replication == n_nodes`` the two engines are byte-identical per node;
diverged or rebuilt nodes are never patched in place but *re-based*
from a base image captured off a live aligned mirror.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Type

from repro import faultinject
from repro.distributed.ring import HashRing
from repro.systems.common import ABSENT, SystemAdapter
from repro.systems.memcached import MemcachedAdapter

VectorClock = Tuple[int, ...]

#: selectable replication engines; "reexec" is the oracle
REPLICATION_ENGINES = ("reexec", "delta")

#: module default, applied when ``Cluster(replication_engine=None)``
DEFAULT_REPLICATION_ENGINE = "delta"

#: deltas per group-commit round when ``replication_batch`` is unset
DEFAULT_REPLICATION_BATCH = 8


class ShardUnavailable(RuntimeError):
    """Every node in a key's replica chain is down."""

    def __init__(self, key: int):
        super().__init__(f"no live replica for key {key}")
        self.key = key


def _check_dims(a: VectorClock, b: VectorClock) -> None:
    # zip() would silently truncate the longer clock, turning a
    # mixed-topology comparison into a wrong causality verdict
    if len(a) != len(b):
        raise ValueError(
            f"vector clock dimension mismatch: {len(a)} vs {len(b)}"
        )


def vc_leq(a: VectorClock, b: VectorClock) -> bool:
    """Component-wise <= : a happened-before-or-equal b."""
    _check_dims(a, b)
    return all(x <= y for x, y in zip(a, b))


def vc_less(a: VectorClock, b: VectorClock) -> bool:
    """Strict happens-before."""
    return vc_leq(a, b) and a != b


def vc_merge(a: VectorClock, b: VectorClock) -> VectorClock:
    _check_dims(a, b)
    return tuple(max(x, y) for x, y in zip(a, b))


@dataclass
class OpRecord:
    """One mutating client request in the cluster operation log."""

    op_id: int
    client: int
    #: primary node at apply time (first entry of the replica set)
    node: int
    kind: str  # "insert" | "delete"
    key: int
    #: stored value for inserts; ``None`` for deletes (a delete stores
    #: nothing — the old ``0`` sentinel made a real stored 0 ambiguous)
    value: Optional[int]
    vc: VectorClock
    #: primary-node span, kept as plain fields for single-node callers
    first_seq: int
    last_seq: int
    #: node id -> (first_seq, last_seq) on *every* node that applied
    #: the op (primary and replicas; grown again when a healed node
    #: replays it during re-sync)
    spans: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: set by the coordinator when the operation is discarded by recovery
    discarded: bool = False
    #: nodes where the discard has been physically reverted; lets the
    #: cascade skip nodes that already reverted and lets re-sync revert
    #: a span the node missed while it was down
    reverted_on: Set[int] = field(default_factory=set)

    def span_on(self, node_id: int) -> Optional[Tuple[int, int]]:
        return self.spans.get(node_id)


@dataclass
class ReplicaDelta:
    """The physical effect of one op, captured on its primary.

    Applying the pieces to an aligned replica — words as raw durable
    writes, metadata ops via ``replay_alloc``/``replay_free``, records
    via :meth:`CheckpointLog.replay_record` (replica-issued seqs), the
    trace slice in bulk — reproduces the primary's post-state without
    running the guest.
    """

    op_id: int
    kind: str  # "insert" | "delete"
    key: int
    value: Optional[int]
    #: dirty-word delta: addr -> durable post-value (0 = entry absent)
    words: Dict[int, int]
    #: allocator metadata ops, in mutation order (see ``OpTap``)
    meta_ops: List[tuple]
    #: checkpoint records: (kind, addr, size, tx_id, values-or-None)
    records: List[tuple]
    #: PM-address trace slice the op emitted
    trace: List[Tuple[str, int]]
    #: transaction-counter post-value
    tx_next: int


@dataclass
class ShippedDelta:
    """One :class:`ReplicaDelta` in the cluster's delta stream."""

    pos: int  #: global stream position (survives compaction)
    delta: ReplicaDelta
    op: OpRecord


@dataclass
class BaseImage:
    """An incremental compaction base: one mirror's state at ``pos``.

    Everything is a deep copy — installing the image on another node
    (plus the delta tail past ``pos``) re-bases that node onto the
    mirror's aligned history without replaying the whole oplog share.
    """

    pos: int  #: stream position the image folds in (deltas < pos)
    source: int  #: node the image was captured from
    items: Dict[int, int]  #: durable pool words
    meta: dict  #: allocator metadata (export_meta shape)
    log: object  #: CheckpointLog clone (cloned again per install)
    structural: int  #: the clone's structural digest at capture
    tx_next: int
    trace: List[Tuple[str, int]]
    oracle: Dict[int, int]
    #: op_id -> seq span on the source at capture time
    spans: Dict[int, Tuple[int, int]]
    #: op_ids already reverted on the source at capture time
    reverted: Set[int]


class Cluster:
    """N independent PM nodes behind a consistent-hash ring."""

    def __init__(
        self,
        n_nodes: int = 3,
        n_clients: int = 2,
        adapter_cls: Type[SystemAdapter] = MemcachedAdapter,
        seed: int = 0,
        replication: Optional[int] = None,
        vnodes: int = 64,
        replication_engine: Optional[str] = None,
        replication_batch: Optional[int] = None,
    ):
        if replication_engine is None:
            replication_engine = DEFAULT_REPLICATION_ENGINE
        if replication_engine not in REPLICATION_ENGINES:
            raise ValueError(
                f"unknown replication engine {replication_engine!r}; "
                f"pick from {REPLICATION_ENGINES}"
            )
        self.replication_engine = replication_engine
        self.replication_batch = (
            DEFAULT_REPLICATION_BATCH
            if replication_batch is None
            else max(1, replication_batch)
        )
        self.seed = seed
        self.nodes: List[SystemAdapter] = []
        for i in range(n_nodes):
            node = adapter_cls(seed=seed + i)
            node.start()
            self.nodes.append(node)
        self.n_clients = n_clients
        self.n_nodes = n_nodes
        self.replication = (
            min(2, n_nodes) if replication is None else min(replication, n_nodes)
        )
        self.ring = HashRing(range(n_nodes), vnodes=vnodes, seed=seed)
        #: per-client vector clocks over (clients + nodes) dimensions
        self._dims = n_clients + n_nodes
        self._client_vc: List[List[int]] = [
            [0] * self._dims for _ in range(n_clients)
        ]
        self._node_vc: List[List[int]] = [
            [0] * self._dims for _ in range(n_nodes)
        ]
        self.oplog: List[OpRecord] = []
        #: per-node op index, appended at record time — ops_on_node was
        #: an O(|oplog|) scan per call, which made the cascade's
        #: ops_overlapping_seqs quadratic in ops
        self._ops_by_node: Dict[int, List[OpRecord]] = {}
        #: per-node logical key/value truth (what the node should hold
        #: from *cluster* traffic; node-local trigger traffic maintains
        #: the same dicts through the experiment context alias)
        self.oracles: List[Dict[int, int]] = [{} for _ in range(n_nodes)]
        self._next_op_id = 1
        # ---- delta-replication stream state ----
        #: shipped-but-not-compacted deltas, ascending by ``pos``
        self._delta_log: List[ShippedDelta] = []
        #: next stream position to assign
        self._log_pos = 0
        #: compaction horizon: positions < horizon are folded into
        #: ``_base`` and no longer in ``_delta_log``
        self._horizon = 0
        #: per-node next stream position to apply
        self._applied: Dict[int, int] = {i: 0 for i in range(n_nodes)}
        #: current compaction base (None until the first compact, and
        #: invalidated by out-of-band guest mutations)
        self._base: Optional[BaseImage] = None
        #: nodes whose pool was rebuilt/diverged and must be re-based
        #: before they may receive deltas again
        self._needs_rebase: Set[int] = set()
        #: enqueues since the last full replica round (group commit)
        self._since_drain = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def node_for(self, key: int) -> Optional[int]:
        """The key's current primary (``None`` if its chain is down)."""
        return self.ring.primary_for(key)

    def replica_nodes_for(self, key: int) -> List[int]:
        return self.ring.replica_set(key, self.replication)

    def is_down(self, node_id: int) -> bool:
        return self.ring.is_down(node_id)

    def keys_for_node(
        self, node_id: int, count: int = 1, start: int = 0, stride: int = 1
    ) -> List[int]:
        """The first ``count`` integer keys ≥ ``start`` whose primary is
        ``node_id`` — how tests and the sweep aim traffic at one shard
        now that routing is ring-hashed rather than ``key % n``."""
        out: List[int] = []
        key = start
        limit = start + stride * max(1_000_000, count * 1000)
        while len(out) < count:
            if key > limit:
                raise ValueError(f"node {node_id} owns no keys in range")
            if self.ring.primary_for(key) == node_id:
                out.append(key)
            key += stride
        return out

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------
    def _stamp(self, client: int, node_ids: List[int]) -> VectorClock:
        """Advance and exchange clocks for one client request applied on
        ``node_ids`` (primary first, then replicas).

        Per-shard stamping: the op is an event of its *primary* — the
        client's clock merges with the primary's and the primary's
        component ticks.  Replicas learn the stamp one-way (their clock
        absorbs it without contributing or ticking): they store
        causally-tagged data without serializing against it, so two ops
        on different primaries stay concurrent even when their replica
        sets overlap — yet after a promotion, reads served by the
        replica still inherit the causal history of everything it
        stored, which keeps the orphan cascade sound.
        """
        cvc = self._client_vc[client]
        cvc[client] += 1
        primary = node_ids[0]
        merged = vc_merge(tuple(cvc), tuple(self._node_vc[primary]))
        stamped = list(merged)
        stamped[self.n_clients + primary] += 1
        self._client_vc[client] = list(stamped)
        self._node_vc[primary] = list(stamped)
        for nid in node_ids[1:]:
            self._node_vc[nid] = list(
                vc_merge(tuple(self._node_vc[nid]), tuple(stamped))
            )
        return tuple(stamped)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _apply(
        self, client: int, kind: str, key: int, value: Optional[int]
    ) -> OpRecord:
        node_ids = self.replica_nodes_for(key)
        if not node_ids:
            raise ShardUnavailable(key)
        if self.replication_engine == "delta":
            return self._apply_delta(client, kind, key, value, node_ids)
        spans: Dict[int, Tuple[int, int]] = {}
        try:
            for nid in node_ids:
                first = self.nodes[nid].ckpt.log.max_seq() + 1
                try:
                    spans[nid] = self._apply_on(nid, kind, key, value)
                except BaseException:
                    # the op wedged mid-apply on this node: whatever it
                    # already recorded is durable damage — keep the
                    # partial span so assessment can find it
                    last = self.nodes[nid].ckpt.log.max_seq()
                    if last >= first:
                        spans[nid] = (first, last)
                    raise
        except BaseException:
            # partial-failure atomicity: nodes earlier in the chain have
            # already applied the op.  Roll it forward into the oplog
            # with the spans it actually produced, so damage assessment
            # never loses an applied op.
            if spans:
                self._log_op(client, kind, key, value, node_ids, spans)
            raise
        return self._log_op(client, kind, key, value, node_ids, spans)

    def _log_op(
        self,
        client: int,
        kind: str,
        key: int,
        value: Optional[int],
        node_ids: List[int],
        spans: Dict[int, Tuple[int, int]],
    ) -> OpRecord:
        """Stamp clocks and append one (possibly partial) op record."""
        anchor = node_ids[0] if node_ids[0] in spans else next(iter(spans))
        record = OpRecord(
            op_id=self._next_op_id,
            client=client,
            node=node_ids[0],
            kind=kind,
            key=key,
            value=value,
            vc=self._stamp(client, node_ids),
            first_seq=spans[anchor][0],
            last_seq=spans[anchor][1],
            spans=spans,
        )
        self._next_op_id += 1
        self.oplog.append(record)
        for nid in spans:
            self._ops_by_node.setdefault(nid, []).append(record)
        return record

    def _apply_on(
        self, node_id: int, kind: str, key: int, value: Optional[int]
    ) -> Tuple[int, int]:
        """Apply one mutation on one node, returning its seq span."""
        node = self.nodes[node_id]
        first = node.ckpt.log.max_seq() + 1
        if kind == "insert":
            node.insert(key, value)
            self.oracles[node_id][key] = value
        else:
            node.delete(key)
            self.oracles[node_id].pop(key, None)
        last = node.ckpt.log.max_seq()
        return (first, last)

    # ------------------------------------------------------------------
    # delta replication engine
    # ------------------------------------------------------------------
    def _apply_delta(
        self,
        client: int,
        kind: str,
        key: int,
        value: Optional[int],
        node_ids: List[int],
    ) -> OpRecord:
        """Execute once on the primary, capture the physical delta, enqueue.

        The primary must hold the oplog-prefix state before executing
        (it can lag when other primaries enqueued since its last round),
        so its own pending deltas are drained first.  The guest then
        runs inside a dirty-word epoch with the checkpoint-record tap
        and allocator op tap attached; whatever the op persisted —
        complete or torn — is captured and shipped, so the mirrors stay
        aligned with the primary even through a mid-op fault.
        """
        primary = node_ids[0]
        if primary in self._needs_rebase:
            raise RuntimeError(
                f"node {primary} routed as primary while awaiting rebase"
            )
        self._drain_node(primary)
        node = self.nodes[primary]
        log = node.ckpt.log
        records: List[tuple] = []
        meta_ops: List[tuple] = []
        tap = meta_ops.append
        trace = node.trace
        if trace is not None:
            trace.flush()
            t0 = len(trace.records)
        token = node.pool.open_epoch()
        first = log.max_seq() + 1
        log.record_tap = records.append
        node.allocator.add_op_tap(tap)
        failure: Optional[BaseException] = None
        try:
            try:
                if kind == "insert":
                    node.insert(key, value)
                    self.oracles[primary][key] = value
                else:
                    node.delete(key)
                    self.oracles[primary].pop(key, None)
            finally:
                log.record_tap = None
                node.allocator.remove_op_tap(tap)
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            failure = exc
        last = log.max_seq()
        words = node.pool.capture_epoch_delta(token)
        if trace is not None and failure is None:
            trace.flush()
        trace_slice = list(trace.records[t0:]) if trace is not None else []
        delta = ReplicaDelta(
            op_id=self._next_op_id,
            kind=kind,
            key=key,
            value=value,
            words=words,
            meta_ops=meta_ops,
            records=records,
            trace=trace_slice,
            tx_next=node.txman._next_tx_id,
        )
        if failure is not None:
            # torn op: the primary's partial effect is durable damage.
            # Log and ship it anyway so damage assessment sees the op
            # and the mirrors align with the torn state, then re-raise.
            if last >= first or words or meta_ops:
                op = self._log_op(
                    client, kind, key, value, node_ids,
                    {primary: (first, last)},
                )
                self._enqueue(op, delta)
            raise failure
        op = self._log_op(
            client, kind, key, value, node_ids, {primary: (first, last)}
        )
        self._enqueue(op, delta)
        return op

    def _enqueue(self, op: OpRecord, delta: ReplicaDelta) -> None:
        """Append one delta to the stream and group-commit if due."""
        pos = self._log_pos
        self._delta_log.append(ShippedDelta(pos=pos, delta=delta, op=op))
        self._log_pos = pos + 1
        # the primary already holds this delta's effect; it was drained
        # before executing, so its pointer sat exactly at ``pos``
        if self._applied[op.node] == pos:
            self._applied[op.node] = pos + 1
        self._since_drain += 1
        if self._since_drain >= self.replication_batch:
            self.drain()

    def drain(self, node_id: Optional[int] = None) -> int:
        """Apply queued deltas — to one live node, or a full replica round.

        Called automatically every ``replication_batch`` enqueues (group
        commit) and eagerly whenever a node must be current: before it
        serves a routed read, before it executes as primary, and before
        damage assessment walks its spans.  Returns the number of
        (node, delta) applications performed; no-op under ``reexec``.
        """
        if self.replication_engine != "delta":
            return 0
        if node_id is not None:
            if self.ring.is_down(node_id):
                return 0
            return self._drain_node(node_id)
        applied = 0
        for nid in range(self.n_nodes):
            if not self.ring.is_down(nid):
                applied += self._drain_node(nid)
        self._since_drain = 0
        return applied

    def _drain_node(self, node_id: int) -> int:
        """Apply every queued delta the node has not yet acked.

        Fires the ``cluster.ship_delta`` injection site once per round
        that has work, *before* any delta lands — a crash there leaves
        the node's pointer unadvanced, and the retried round re-applies
        from the same position (idempotently: a delta whose span is
        already recorded for the node is skipped).  A node that tears
        mid-delta is diverged and is flagged for rebase instead of
        being patched further.
        """
        if self.replication_engine != "delta" or node_id in self._needs_rebase:
            return 0
        start = self._applied[node_id]
        if start < self._horizon:
            raise RuntimeError(
                f"node {node_id} pointer {start} fell behind compaction "
                f"horizon {self._horizon}; it must be re-based, not drained"
            )
        entries = self._delta_log[start - self._horizon:]
        if not entries:
            return 0
        faultinject.fire("cluster.ship_delta")
        for shipped in entries:
            try:
                self._apply_shipped(node_id, shipped)
            except BaseException:
                self._needs_rebase.add(node_id)
                raise
            self._applied[node_id] = shipped.pos + 1
        return len(entries)

    def _apply_shipped(self, node_id: int, shipped: ShippedDelta) -> None:
        """Install one delta on one aligned mirror — no guest execution."""
        op = shipped.op
        if node_id in op.spans:
            return  # crash-retried round: this delta already landed here
        delta = shipped.delta
        node = self.nodes[node_id]
        node.pool.apply_words(delta.words)
        links: List[Tuple[int, int]] = []
        for mop in delta.meta_ops:
            if mop[0] == "alloc":
                _, addr, nwords, site = mop
                node.allocator.replay_alloc(addr, nwords, site=site)
            elif mop[0] == "free":
                node.allocator.replay_free(mop[1])
            else:  # ("realloc", old_addr, new_addr, nwords)
                links.append((mop[1], mop[2]))
        log = node.ckpt.log
        first = log.max_seq() + 1
        for rec in delta.records:
            log.replay_record(*rec)
        last = log.max_seq()
        for old_addr, new_addr in links:
            log.link_realloc(old_addr, new_addr)
        node.txman._next_tx_id = max(node.txman._next_tx_id, delta.tx_next)
        if node.trace is not None:
            node.trace.extend(delta.trace)
        if delta.kind == "insert":
            self.oracles[node_id][delta.key] = delta.value
        else:
            self.oracles[node_id].pop(delta.key, None)
        op.spans[node_id] = (first, last)
        self._ops_by_node.setdefault(node_id, []).append(op)

    def insert(self, client: int, key: int, value: int) -> OpRecord:
        if value == ABSENT:
            raise ValueError(
                f"refusing to store the ABSENT sentinel ({ABSENT}): a "
                "stored -1 would be indistinguishable from a miss"
            )
        return self._apply(client, "insert", key, value)

    def delete(self, client: int, key: int) -> OpRecord:
        return self._apply(client, "delete", key, None)

    def lookup(self, client: int, key: int) -> int:
        """Reads exchange clocks too (they create causal edges)."""
        node_id = self.node_for(key)
        if node_id is None:
            raise ShardUnavailable(key)
        # a delta mirror must be current before it serves a read —
        # group commit may still hold its tail of the stream
        self.drain(node_id)
        value = self.nodes[node_id].lookup(key)
        self._stamp(client, [node_id])
        return value

    # ------------------------------------------------------------------
    # damage assessment
    # ------------------------------------------------------------------
    def ops_on_node(self, node_id: int) -> List[OpRecord]:
        """Ops that produced checkpoint records on ``node_id`` (as
        primary or replica), in op_id order — served from the per-node
        index, not an oplog scan.  Under the delta engine the node is
        drained first so queued deltas are credited before assessment
        reads the spans."""
        self.drain(node_id)
        return list(self._ops_by_node.get(node_id, ()))

    def ops_overlapping_seqs(self, node_id: int, seqs) -> List[OpRecord]:
        """Operations whose span *on that node* intersects ``seqs``.

        O((|node ops| + |seqs|) log |seqs|): one sorted copy of
        ``seqs``, then a bisect per op for the smallest reverted seq >=
        its span start — and only the node's own ops are visited.
        """
        self.drain(node_id)
        ordered = sorted(set(seqs))
        if not ordered:
            return []
        out = []
        for op in self._ops_by_node.get(node_id, ()):
            span = op.spans.get(node_id)
            if span is None:
                continue
            first, last = span
            if first > last:
                # empty span: the operation wrote no checkpoint records
                # (e.g. a delete of an absent key), so no reverted seq
                # can discard it
                continue
            i = bisect_left(ordered, first)
            if i < len(ordered) and ordered[i] <= last:
                out.append(op)
        return out

    # ------------------------------------------------------------------
    # re-sync
    # ------------------------------------------------------------------
    def replay_missed(self, node_id: int, tick=None) -> int:
        """Replay oplog-tail ops a healed node missed while down.

        An op is replayed iff the node belongs to the key's replica set
        *as it will stand once the node is marked up* (catch-up runs
        before the handoff flips the ring flag, so eligibility is
        computed against a what-if down set rather than by mutating the
        ring mid-phase), the op is not discarded, and the node has no
        span for it yet.  Replays run in op_id order; each records its
        span only after the apply completes, so a crash-and-retry
        re-applies the op (idempotently) instead of losing it.  ``tick``
        is called before each replay — the shard supervisor threads the
        ``cluster.resync`` injection site through it.  Returns the
        number of ops replayed (the node's resync lag).
        """
        if self.replication_engine == "delta":
            raise RuntimeError(
                "replay_missed re-executes the guest per op; the delta "
                "engine heals via rebase_node (base image + delta tail)"
            )
        replayed = 0
        down = self.ring.down - {node_id}
        for op in self.oplog:
            if op.discarded or node_id in op.spans:
                continue
            members = self.ring.replica_set(op.key, self.replication, down=down)
            if node_id not in members:
                continue
            if tick is not None:
                tick()
            span = self._apply_on(node_id, op.kind, op.key, op.value)
            op.spans[node_id] = span
            self._ops_by_node.setdefault(node_id, []).append(op)
            replayed += 1
        return replayed

    def rebuild_node(self, node_id: int) -> None:
        """Replace a node's deployment with a fresh pool (re-replication).

        Local mitigation's last resort: the damaged pool is abandoned
        and the node's durable state is re-derived from the cluster —
        once the spans recorded against the old pool are forgotten,
        :meth:`replay_missed` replays every eligible oplog op from the
        surviving replicas (R >= 2 keeps each op on a live pool, so no
        cluster op is lost).  Node-local state that never entered the
        oplog is the fault's blast radius and dies with the pool.
        """
        adapter = type(self.nodes[node_id])(seed=self.seed + node_id)
        adapter.start()
        self.nodes[node_id] = adapter
        self.oracles[node_id].clear()
        for op in self._ops_by_node.pop(node_id, []):
            op.spans.pop(node_id, None)
            op.reverted_on.discard(node_id)
        if self.replication_engine == "delta":
            # a fresh pool shares no history with the stream: flag the
            # node so no delta lands until rebase_node re-aligns it
            self._needs_rebase.add(node_id)

    # ------------------------------------------------------------------
    # oplog compaction & rebase (delta engine)
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Fold the fully-acked delta prefix into a new base image.

        Drains a full replica round, captures a :class:`BaseImage` off
        one aligned live mirror, fires the ``cluster.compact`` injection
        site (after capture, before truncation — a crash there retries
        into a fresh capture, so the step is idempotent), then advances
        the horizon and truncates the stream.  Nodes whose pointer fell
        behind the new horizon (down at compaction time) are flagged for
        rebase.  Returns the number of deltas folded; 0 under ``reexec``
        or when no aligned live source exists.
        """
        if self.replication_engine != "delta":
            return 0
        self.drain()
        if not self._delta_log:
            return 0
        source = self._capture_base_source()
        if source is None:
            return 0
        base = self._capture_base(source)
        faultinject.fire("cluster.compact")
        self._base = base
        self._horizon = self._log_pos
        folded = len(self._delta_log)
        self._delta_log.clear()
        for nid, pointer in self._applied.items():
            if pointer < self._horizon:
                self._needs_rebase.add(nid)
        return folded

    def _capture_base_source(self, exclude: Optional[int] = None) -> Optional[int]:
        """First live node whose pointer acks the whole stream."""
        for nid in range(self.n_nodes):
            if nid == exclude or nid in self._needs_rebase:
                continue
            if self.ring.is_down(nid):
                continue
            if self._applied[nid] == self._log_pos:
                return nid
        return None

    def _capture_base(self, source: int) -> BaseImage:
        """Deep-copy one aligned mirror's state at the current position."""
        node = self.nodes[source]
        log_clone = node.ckpt.log.clone()
        if node.trace is not None:
            node.trace.flush()
            trace = list(node.trace.records)
        else:
            trace = []
        spans: Dict[int, Tuple[int, int]] = {}
        for op in self._ops_by_node.get(source, ()):
            span = op.spans.get(source)
            if span is not None:
                spans[op.op_id] = span
        return BaseImage(
            pos=self._log_pos,
            source=source,
            items=node.pool.durable_items(),
            meta=node.allocator.export_meta(),
            log=log_clone,
            structural=log_clone.structural_digest(),
            tx_next=node.txman._next_tx_id,
            trace=trace,
            oracle=dict(self.oracles[source]),
            spans=spans,
            reverted={
                op.op_id for op in self.oplog if source in op.reverted_on
            },
        )

    def rebase_node(self, node_id: int, tick=None) -> Tuple[int, int]:
        """Re-align a healed/rebuilt node: install ``base + delta tail``.

        The delta-engine replacement for :meth:`replay_missed` +
        catch-up reverts: instead of re-executing the node's oplog
        share, the current base image (captured fresh off a live mirror
        when none is cached) is installed wholesale — pool words,
        allocator metadata, checkpoint-log clone, transaction counter,
        trace — and the delta tail past the base is drained on top.
        ``tick`` is called once per op credited from the base, which
        threads the supervisor's ``cluster.resync`` injection site
        through the same cadence the re-execution engine had; a crash
        mid-rebase retries from scratch (every step reinstalls).
        Returns ``(credited, reverted)``: ops credited to the node and
        how many of those carry an inherited revert.
        """
        if self.replication_engine != "delta":
            raise RuntimeError("rebase_node requires the delta engine")
        base = self._base
        if base is None:
            self.drain()
            source = self._capture_base_source(exclude=node_id)
            if source is None:
                raise RuntimeError(
                    f"no aligned live mirror to rebase node {node_id} from"
                )
            base = self._base = self._capture_base(source)
        node = self.nodes[node_id]
        node.pool.load_durable(base.items)
        node.allocator.import_meta(base.meta)
        node.ckpt.log = base.log.clone()
        node.txman.reset()
        node.txman._next_tx_id = base.tx_next
        if node.trace is not None:
            node.trace.load(base.trace)
        # fresh machine over the installed image; init re-finds the root
        node.restart()
        oracle = self.oracles[node_id]
        oracle.clear()
        oracle.update(base.oracle)
        for op in self._ops_by_node.pop(node_id, []):
            op.spans.pop(node_id, None)
            op.reverted_on.discard(node_id)
        credited = 0
        reverted = 0
        index = self._ops_by_node.setdefault(node_id, [])
        for op in self.oplog:
            span = base.spans.get(op.op_id)
            if span is None:
                continue
            if tick is not None:
                tick()
            op.spans[node_id] = span
            if op.op_id in base.reverted:
                op.reverted_on.add(node_id)
                reverted += 1
            index.append(op)
            credited += 1
        self._applied[node_id] = base.pos
        self._needs_rebase.discard(node_id)
        credited += self._drain_node(node_id)
        return (credited, reverted)

    def note_out_of_band(self) -> None:
        """An out-of-band guest mutation happened (revert cascade, peer
        recovery run): live mirrors stayed mutually aligned — the same
        reverts run on every span holder in the same order — but the
        cached base image no longer matches them, so drop it.  The next
        compaction or rebase captures a fresh one."""
        self._base = None


class ClusterClient:
    """Convenience wrapper binding a client id to a cluster."""

    def __init__(self, cluster: Cluster, client_id: int):
        self.cluster = cluster
        self.client_id = client_id

    def insert(self, key: int, value: int) -> OpRecord:
        return self.cluster.insert(self.client_id, key, value)

    def delete(self, key: int) -> OpRecord:
        return self.cluster.delete(self.client_id, key)

    def lookup(self, key: int) -> int:
        return self.cluster.lookup(self.client_id, key)

    def derived_insert(self, src_key: int, dst_key: int, f=lambda v: v + 1) -> Optional[OpRecord]:
        """Read ``src_key`` and write a value derived from it — the
        cross-node dependency pattern of the paper's Section 7 example
        (request r2 is computed from request r1's result)."""
        value = self.lookup(src_key)
        if value == ABSENT:
            return None
        return self.insert(dst_key, f(value))
