"""Instrumentation: trace GUIDs and the runtime PM-address tracer.

Reproduces step ❶ of the paper's workflow: the analyzer assigns a
Globally Unique Identifier to every PM instruction, emits a metadata file
mapping ``GUID -> (source location, instruction)``, and instruments the
program so executions emit a ``<GUID, pmem_address>`` trace with buffered,
asynchronously flushed records.
"""

from repro.instrument.guids import GuidMap
from repro.instrument.passes import instrument_module
from repro.instrument.tracer import PMTrace

__all__ = ["GuidMap", "instrument_module", "PMTrace"]
