"""The tracing-instrumentation pass.

Marks every PM instruction (as classified by
:mod:`repro.analysis.pmvars`) with a GUID.  The interpreter treats a
non-None ``Instr.guid`` as "a tracing call was inlined before this
instruction" and reports the instruction's runtime PM address to the
attached tracer — the lightweight scheme the paper uses instead of full
dynamic taint tracking.
"""

from __future__ import annotations

import time
from typing import Tuple

from repro.analysis.pmvars import PMClassification
from repro.instrument.guids import GuidMap
from repro.lang.fuse import invalidate as _invalidate_fused
from repro.lang.ir import Module


def instrument_module(
    module: Module, pm: PMClassification
) -> Tuple[GuidMap, float]:
    """Assign GUIDs to all PM instructions; returns (map, seconds taken).

    The duration feeds Table 9's "Instrumentation" row.
    """
    start = time.perf_counter()
    guid_map = GuidMap(module.name)
    for instr in module.instructions():
        if pm.is_pm_instr(instr.iid):
            instr.guid = guid_map.add(instr)
    _invalidate_fused(module)  # GUIDs changed: compiled trace hooks are stale
    return guid_map, time.perf_counter() - start


def uninstrument_module(module: Module) -> None:
    """Strip GUIDs (used to measure vanilla-vs-instrumented overhead)."""
    for instr in module.instructions():
        instr.guid = None
    _invalidate_fused(module)
