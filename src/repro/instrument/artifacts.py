"""On-disk persistence of Arthas's runtime artifacts.

The paper's workflow runs across processes: the analyzer writes *metadata
files* (the static PDG and GUID mappings), the instrumented system
asynchronously flushes the *PM trace file*, the checkpoint library keeps
its log in a *persistent checkpoint region*, and the reactor server reads
all three after a failure (Figure 4's ❶-❼).  This module provides those
file formats so the reactor can run against a dead process's artifacts:

* :func:`save_trace` / :func:`load_trace` — the ``<GUID, address>`` trace.
* :func:`save_checkpoint_log` / :func:`load_checkpoint_log` — the full
  versioned log (entries, versions, events, transaction marks, links).
* (GUID metadata already round-trips via
  :meth:`repro.instrument.guids.GuidMap.save`/``load``.)

JSON is used throughout: these are laptop-scale artifacts and diffable
files beat binary blobs in a reproduction.
"""

from __future__ import annotations

import json

from repro.checkpoint.log import CheckpointEntry, CheckpointLog, LogEvent, Version
from repro.instrument.tracer import PMTrace


# ----------------------------------------------------------------------
# trace files
# ----------------------------------------------------------------------
def save_trace(trace: PMTrace, path: str) -> int:
    """Flush and write the trace; returns the number of records saved."""
    trace.flush()
    with open(path, "w") as f:
        json.dump({"records": [[g, a] for g, a in trace.records]}, f)
    return len(trace.records)


def load_trace(path: str, flush_threshold: int = 256) -> PMTrace:
    with open(path) as f:
        data = json.load(f)
    trace = PMTrace(flush_threshold=flush_threshold)
    for guid, addr in data["records"]:
        trace.record(guid, addr)
    trace.flush()
    return trace


# ----------------------------------------------------------------------
# checkpoint region
# ----------------------------------------------------------------------
def _version_to_json(v: Version) -> dict:
    return {"seq": v.seq, "data": list(v.data), "size": v.size, "tx": v.tx_id}


def _entry_to_json(e: CheckpointEntry) -> dict:
    return {
        "address": e.address,
        "max_versions": e.max_versions,
        "total_versions": e.total_versions,
        "old_entry": e.old_entry,
        "new_entry": e.new_entry,
        "versions": [_version_to_json(v) for v in e.versions],
    }


def save_checkpoint_log(log: CheckpointLog, path: str) -> None:
    payload = {
        "max_versions": log.max_versions,
        "next_seq": log._next_seq,
        "total_updates": log.total_updates,
        "entries": [_entry_to_json(e) for e in log.entries.values()],
        "events": [
            {"seq": ev.seq, "kind": ev.kind, "addr": ev.addr,
             "nwords": ev.nwords, "tx": ev.tx_id}
            for ev in log.events
        ],
        "tx_members": {str(k): v for k, v in log.tx_members.items()},
    }
    with open(path, "w") as f:
        json.dump(payload, f)


def load_checkpoint_log(path: str) -> CheckpointLog:
    with open(path) as f:
        payload = json.load(f)
    log = CheckpointLog(max_versions=payload["max_versions"])
    log._next_seq = payload["next_seq"]
    log.total_updates = payload["total_updates"]
    for ej in payload["entries"]:
        entry = CheckpointEntry(ej["address"], ej["max_versions"])
        for vj in ej["versions"]:
            entry.versions.append(
                Version(vj["seq"], tuple(vj["data"]), vj["size"], vj["tx"])
            )
        entry.total_versions = ej["total_versions"]
        entry.old_entry = ej["old_entry"]
        entry.new_entry = ej["new_entry"]
        log.entries[entry.address] = entry
    for evj in payload["events"]:
        event = LogEvent(evj["seq"], evj["kind"], evj["addr"],
                         evj["nwords"], evj["tx"])
        log.events.append(event)
        log._event_by_seq[event.seq] = event
    log.tx_members = {int(k): list(v) for k, v in payload["tx_members"].items()}
    log.rebuild_indexes()  # the raw state above bypassed the record_* hooks
    return log
