"""On-disk persistence of Arthas's runtime artifacts.

The paper's workflow runs across processes: the analyzer writes *metadata
files* (the static PDG and GUID mappings), the instrumented system
asynchronously flushes the *PM trace file*, the checkpoint library keeps
its log in a *persistent checkpoint region*, and the reactor server reads
all three after a failure (Figure 4's ❶-❼).  This module provides those
file formats so the reactor can run against a dead process's artifacts:

* :func:`save_trace` / :func:`load_trace` — the ``<GUID, address>`` trace.
* :func:`save_checkpoint_log` / :func:`load_checkpoint_log` — the full
  versioned log (entries, versions, events, transaction marks, links).
* :func:`open_and_verify` — the *recovery-time* loader: verifies every
  record, truncates torn tails, quarantines corrupt entries, and always
  returns a usable log plus a report of what it had to discard.
* (GUID metadata already round-trips via
  :meth:`repro.instrument.guids.GuidMap.save`/``load``.)

Checkpoint-region format (v2) — the writer process can die at any byte,
so the region is self-verifying:

* JSON-lines: a header line, one line per entry/event/tx record, then a
  **commit record** carrying the record count, the newest (monotonic)
  sequence number, and a running CRC over every preceding line;
* every line is ``{"crc": <crc32 of the record's canonical JSON>,
  "rec": {...}}`` — a flipped bit in any record is detected without
  trusting any other line;
* a torn tail (the writer died mid-line, or before the commit record)
  leaves a prefix of intact lines — exactly what
  :func:`open_and_verify` keeps.

:func:`load_checkpoint_log` is the *strict* loader: any corruption
raises :class:`~repro.errors.CorruptLogError`.  The v1 format (one JSON
dict, no checksums) is still read for old artifacts.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checkpoint.log import CheckpointEntry, CheckpointLog, LogEvent, Version
from repro.errors import CorruptLogError
from repro.instrument.tracer import PMTrace

#: magic tag of the self-verifying checkpoint-region format
CKPT_FORMAT = "arthas-ckpt-v2"


# ----------------------------------------------------------------------
# trace files
# ----------------------------------------------------------------------
def save_trace(trace: PMTrace, path: str) -> int:
    """Flush and write the trace; returns the number of records saved."""
    trace.flush()
    with open(path, "w") as f:
        json.dump({"records": [[g, a] for g, a in trace.records]}, f)
    return len(trace.records)


def load_trace(path: str, flush_threshold: int = 256) -> PMTrace:
    with open(path) as f:
        data = json.load(f)
    trace = PMTrace(flush_threshold=flush_threshold)
    for guid, addr in data["records"]:
        trace.record(guid, addr)
    trace.flush()
    return trace


# ----------------------------------------------------------------------
# checkpoint region: record codecs
# ----------------------------------------------------------------------
def _version_to_json(v: Version) -> dict:
    return {"seq": v.seq, "data": list(v.data), "size": v.size, "tx": v.tx_id,
            "crc": v.crc}


def _entry_to_json(e: CheckpointEntry) -> dict:
    return {
        "t": "entry",
        "address": e.address,
        "max_versions": e.max_versions,
        "total_versions": e.total_versions,
        "old_entry": e.old_entry,
        "new_entry": e.new_entry,
        "versions": [_version_to_json(v) for v in e.versions],
    }


def _entry_from_json(ej: dict) -> CheckpointEntry:
    entry = CheckpointEntry(ej["address"], ej["max_versions"])
    for vj in ej["versions"]:
        entry.versions.append(
            Version(vj["seq"], tuple(vj["data"]), vj["size"], vj["tx"],
                    crc=vj.get("crc", -1))
        )
    entry.total_versions = ej["total_versions"]
    entry.old_entry = ej["old_entry"]
    entry.new_entry = ej["new_entry"]
    return entry


def _event_to_json(ev: LogEvent) -> dict:
    return {"t": "event", "seq": ev.seq, "kind": ev.kind, "addr": ev.addr,
            "nwords": ev.nwords, "tx": ev.tx_id}


def _canonical(rec: dict) -> bytes:
    return json.dumps(rec, sort_keys=True, separators=(",", ":")).encode()


def _record_crc(rec: dict) -> int:
    return zlib.crc32(_canonical(rec)) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def save_checkpoint_log(log: CheckpointLog, path: str) -> None:
    records: List[dict] = [
        {
            "t": "header",
            "format": CKPT_FORMAT,
            "max_versions": log.max_versions,
            "next_seq": log._next_seq,
            "total_updates": log.total_updates,
        }
    ]
    records.extend(_entry_to_json(e) for e in log.entries.values())
    records.extend(_event_to_json(ev) for ev in log.events)
    if log.tx_members:
        records.append({
            "t": "tx-members",
            "members": {str(k): v for k, v in log.tx_members.items()},
        })
    lines: List[str] = []
    running = 0
    for rec in records:
        body = _canonical(rec)
        running = zlib.crc32(body, running) & 0xFFFFFFFF
        lines.append(json.dumps(
            {"crc": _record_crc(rec), "rec": rec}, sort_keys=True
        ))
    commit = {
        "t": "commit",
        "n_records": len(records),
        "last_seq": log.max_seq(),
        "file_crc": running,
    }
    lines.append(json.dumps({"crc": _record_crc(commit), "rec": commit},
                            sort_keys=True))
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
@dataclass
class LogVerifyReport:
    """What :func:`open_and_verify` found (and discarded) in a region."""

    #: records dropped from a torn tail (unparseable / past the commit)
    truncated_records: int = 0
    #: mid-file records dropped for a per-line CRC or JSON failure
    quarantined_records: int = 0
    #: (address, seq) versions quarantined by the in-log checksum scan
    quarantined_versions: List[Tuple[int, int]] = field(default_factory=list)
    #: True when the commit record was missing or itself corrupt
    missing_commit: bool = False
    #: human-readable notes, one per finding
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            not self.truncated_records
            and not self.quarantined_records
            and not self.quarantined_versions
            and not self.missing_commit
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "clean": self.clean,
            "truncated_records": self.truncated_records,
            "quarantined_records": self.quarantined_records,
            "quarantined_versions": [list(p) for p in self.quarantined_versions],
            "missing_commit": self.missing_commit,
            "notes": list(self.notes),
        }


def _parse_lines(
    raw_lines: List[str], report: LogVerifyReport
) -> List[dict]:
    """Decode and CRC-check every line; drop what fails (with notes)."""
    records: List[dict] = []
    n = len(raw_lines)
    for i, line in enumerate(raw_lines):
        line = line.strip()
        if not line:
            continue
        try:
            wrapper = json.loads(line)
            rec = wrapper["rec"]
            crc = wrapper["crc"]
        except (ValueError, KeyError, TypeError):
            if i >= n - 1:
                report.truncated_records += 1
                report.notes.append(f"torn tail: line {i + 1} unparseable")
            else:
                report.quarantined_records += 1
                report.notes.append(f"line {i + 1} unparseable; quarantined")
            continue
        if _record_crc(rec) != crc:
            report.quarantined_records += 1
            report.notes.append(
                f"line {i + 1} ({rec.get('t', '?')}) failed its CRC; "
                f"quarantined"
            )
            continue
        records.append(rec)
    return records


def _build_log(
    records: List[dict], report: LogVerifyReport
) -> CheckpointLog:
    """Assemble a log from verified records, repairing as needed."""
    header = records[0]
    log = CheckpointLog(max_versions=header["max_versions"])
    log.total_updates = header["total_updates"]

    commit: Optional[dict] = None
    for rec in records:
        if rec.get("t") == "commit":
            commit = rec
    if commit is None:
        report.missing_commit = True
        report.notes.append("commit record missing: writer died mid-save")

    last_committed = commit["last_seq"] if commit is not None else None
    max_seq_seen = 0
    seen_seqs: set = set()
    for rec in records[1:]:
        kind = rec.get("t")
        if kind == "entry":
            entry = _entry_from_json(rec)
            if last_committed is not None:
                kept = [v for v in entry.versions if v.seq <= last_committed]
                if len(kept) != len(entry.versions):
                    report.truncated_records += 1
                    report.notes.append(
                        f"entry {entry.address:#x}: dropped "
                        f"{len(entry.versions) - len(kept)} uncommitted "
                        f"version(s)"
                    )
                    entry.versions = kept
            log.entries[entry.address] = entry
        elif kind == "event":
            ev = LogEvent(rec["seq"], rec["kind"], rec["addr"],
                          rec["nwords"], rec["tx"])
            if last_committed is not None and ev.seq > last_committed:
                report.truncated_records += 1
                report.notes.append(
                    f"event seq {ev.seq} past committed {last_committed}; "
                    f"truncated"
                )
                continue
            if ev.seq in seen_seqs:
                report.quarantined_records += 1
                report.notes.append(f"duplicate event seq {ev.seq}; dropped")
                continue
            seen_seqs.add(ev.seq)
            log.events.append(ev)
            max_seq_seen = max(max_seq_seen, ev.seq)
        elif kind == "tx-members":
            log.tx_members = {
                int(k): list(v) for k, v in rec["members"].items()
            }
    log.events.sort(key=lambda ev: ev.seq)
    log._next_seq = max(header["next_seq"], max_seq_seen + 1)

    # clear realloc links into entries that did not survive verification
    for entry in log.entries.values():
        if entry.new_entry is not None and entry.new_entry not in log.entries:
            report.notes.append(
                f"entry {entry.address:#x}: cleared realloc link to "
                f"quarantined entry {entry.new_entry:#x}"
            )
            entry.new_entry = None
        target = (
            log.entries.get(entry.new_entry)
            if entry.new_entry is not None else None
        )
        if target is not None and target.old_entry != entry.address:
            target.old_entry = entry.address
    return log


def open_and_verify(path: str) -> Tuple[CheckpointLog, LogVerifyReport]:
    """Recovery-time open: verify, repair, and load a checkpoint region.

    Unlike :func:`load_checkpoint_log`, this never deserializes garbage
    and never gives up on a salvageable region: torn tails are truncated
    to the last committed record, records failing their CRC are
    quarantined, checksum-failing versions are quarantined inside the
    log, and what remains is revalidated before the indexes are rebuilt.
    Raises :class:`CorruptLogError` only when even the header is gone.
    """
    report = LogVerifyReport()
    with open(path) as f:
        raw_lines = f.read().splitlines()
    records = _parse_lines(raw_lines, report)
    if not records or records[0].get("t") != "header" \
            or records[0].get("format") != CKPT_FORMAT:
        raise CorruptLogError(
            f"{path}: checkpoint region header missing or corrupt"
        )
    log = _build_log(records, report)
    report.quarantined_versions = [
        (addr, v.seq) for addr, v in log.quarantine_corrupt()
    ]
    for addr, seq in report.quarantined_versions:
        report.notes.append(
            f"entry {addr:#x}: version {seq} failed its data checksum; "
            f"quarantined"
        )
    log.rebuild_indexes()  # validate what survived; raises only on bugs
    return log, report


def load_checkpoint_log(path: str) -> CheckpointLog:
    """Strict loader: raise :class:`CorruptLogError` on any damage.

    Reads both the v2 JSONL region and the legacy v1 single-dict format.
    Mitigation paths that must make progress on a damaged region use
    :func:`open_and_verify` instead.
    """
    with open(path) as f:
        head = f.read(1)
    if head == "":
        raise CorruptLogError(f"{path}: empty checkpoint region")
    with open(path) as f:
        first_line = f.readline()
    try:
        is_v2 = "\"rec\"" in first_line and CKPT_FORMAT in first_line
    except Exception:  # pragma: no cover - defensive
        is_v2 = False
    if not is_v2:
        return _load_v1(path)
    report = LogVerifyReport()
    with open(path) as f:
        raw_lines = f.read().splitlines()
    records = _parse_lines(raw_lines, report)
    if not report.clean or not records \
            or records[0].get("t") != "header":
        raise CorruptLogError(
            f"{path}: corrupt checkpoint region: "
            + ("; ".join(report.notes) or "no records")
        )
    commit = records[-1]
    if commit.get("t") != "commit":
        raise CorruptLogError(f"{path}: commit record missing")
    running = 0
    for rec in records[:-1]:
        running = zlib.crc32(_canonical(rec), running) & 0xFFFFFFFF
    if commit["file_crc"] != running or commit["n_records"] != len(records) - 1:
        raise CorruptLogError(f"{path}: commit record does not match region")
    log = _build_log(records, report)
    bad = log.verify_checksums()
    if bad:
        raise CorruptLogError(
            f"{path}: {len(bad)} version(s) failed their data checksum"
        )
    log.rebuild_indexes()  # raises CorruptLogError on structural damage
    return log


def _load_v1(path: str) -> CheckpointLog:
    """The legacy (seed-era) single-dict format, kept for old artifacts."""
    with open(path) as f:
        try:
            payload = json.load(f)
        except ValueError as exc:
            raise CorruptLogError(f"{path}: not a checkpoint region: {exc}")
    log = CheckpointLog(max_versions=payload["max_versions"])
    log._next_seq = payload["next_seq"]
    log.total_updates = payload["total_updates"]
    for ej in payload["entries"]:
        entry = CheckpointEntry(ej["address"], ej["max_versions"])
        for vj in ej["versions"]:
            entry.versions.append(
                Version(vj["seq"], tuple(vj["data"]), vj["size"], vj["tx"],
                        crc=vj.get("crc", -1))
            )
        entry.total_versions = ej["total_versions"]
        entry.old_entry = ej["old_entry"]
        entry.new_entry = ej["new_entry"]
        log.entries[entry.address] = entry
    for evj in payload["events"]:
        event = LogEvent(evj["seq"], evj["kind"], evj["addr"],
                         evj["nwords"], evj["tx"])
        log.events.append(event)
    log.tx_members = {int(k): list(v) for k, v in payload["tx_members"].items()}
    log.rebuild_indexes()  # the raw state above bypassed the record_* hooks
    return log
