"""GUID assignment and the static metadata file (paper Section 4.1).

A GUID names one PM instruction stably across runs:
``<module>!<function>!<block>!<index>``.  The metadata file records the
``<GUID, source_location, instruction>`` mapping; as long as the target
program code does not change, the mapping stays consistent with the
binary — the property the paper relies on to reuse metadata in production.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.lang.ir import Instr


def guid_for(module_name: str, instr: Instr) -> str:
    """The stable GUID of one instruction: module!function!block!index."""
    return f"{module_name}!{instr.func}!{instr.block}!{instr.index}"


@dataclass
class GuidEntry:
    """One metadata record: where the instruction lives and what it is."""

    guid: str
    iid: int
    location: str
    op: str
    src_line: int


class GuidMap:
    """Bidirectional GUID <-> instruction mapping with (de)serialisation."""

    def __init__(self, module_name: str):
        self.module_name = module_name
        self._by_guid: Dict[str, GuidEntry] = {}
        self._by_iid: Dict[int, str] = {}

    def add(self, instr: Instr) -> str:
        """Assign a GUID to an instruction and record its metadata."""
        guid = guid_for(self.module_name, instr)
        self._by_guid[guid] = GuidEntry(
            guid=guid,
            iid=instr.iid,
            location=instr.location(),
            op=instr.op,
            src_line=instr.src_line,
        )
        self._by_iid[instr.iid] = guid
        return guid

    def guid_of(self, iid: int) -> Optional[str]:
        """GUID assigned to an instruction id (None if not instrumented)."""
        return self._by_iid.get(iid)

    def iid_of(self, guid: str) -> Optional[int]:
        """Instruction id a GUID names (None for unknown GUIDs)."""
        entry = self._by_guid.get(guid)
        return entry.iid if entry else None

    def entry(self, guid: str) -> Optional[GuidEntry]:
        """Full metadata record for a GUID."""
        return self._by_guid.get(guid)

    def __len__(self) -> int:
        return len(self._by_guid)

    def __contains__(self, guid: str) -> bool:
        return guid in self._by_guid

    # ------------------------------------------------------------------
    # metadata file
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the metadata mapping to a JSON document."""
        return json.dumps(
            {
                "module": self.module_name,
                "entries": [
                    {
                        "guid": e.guid,
                        "iid": e.iid,
                        "location": e.location,
                        "op": e.op,
                        "src_line": e.src_line,
                    }
                    for e in self._by_guid.values()
                ],
            },
            indent=2,
        )

    def save(self, path: str) -> None:
        """Write the metadata file to disk."""
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "GuidMap":
        data = json.loads(text)
        gm = cls(data["module"])
        for e in data["entries"]:
            entry = GuidEntry(
                guid=e["guid"],
                iid=e["iid"],
                location=e["location"],
                op=e["op"],
                src_line=e["src_line"],
            )
            gm._by_guid[entry.guid] = entry
            gm._by_iid[entry.iid] = entry.guid
        return gm

    @classmethod
    def load(cls, path: str) -> "GuidMap":
        with open(path) as f:
            return cls.from_json(f.read())
