"""Runtime PM-address trace (paper Section 4.1, ❹).

Records ``<GUID, pmem_address>`` pairs as the instrumented program runs.
Like the paper's implementation, records are buffered in memory and
flushed to the durable trace asynchronously; whatever is still buffered
when the process crashes is lost (``crash()``).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple


class PMTrace:
    """Buffered trace of (guid, address) records."""

    def __init__(self, flush_threshold: int = 256):
        self.flush_threshold = flush_threshold
        #: durable (flushed) records, in emission order
        self.records: List[Tuple[str, int]] = []
        self._buffer: List[Tuple[str, int]] = []
        # indexes over *flushed* records
        self._addrs_by_guid: Dict[str, Set[int]] = {}
        self._guids_by_addr: Dict[int, Set[str]] = {}

    # ------------------------------------------------------------------
    def record(self, guid: str, addr: int) -> None:
        """Append one record; flushes automatically past the threshold."""
        self._buffer.append((guid, addr))
        if len(self._buffer) >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        """Write buffered records to the durable trace."""
        for guid, addr in self._buffer:
            self.records.append((guid, addr))
            self._addrs_by_guid.setdefault(guid, set()).add(addr)
            self._guids_by_addr.setdefault(addr, set()).add(guid)
        self._buffer.clear()

    def extend(self, pairs: List[Tuple[str, int]]) -> None:
        """Append already-durable records in bulk, keeping indexes hot.

        Used when a shipped :class:`ReplicaDelta` installs the primary's
        trace slice on a replica — the records were flushed on the
        primary, so they land directly in the durable trace here.  This
        runs once per (delta, mirror): bulk-append and locally-bound
        index updates, not the per-record ``record``/``flush`` path.
        """
        self.records.extend(pairs)
        by_guid = self._addrs_by_guid
        by_addr = self._guids_by_addr
        for guid, addr in pairs:
            addrs = by_guid.get(guid)
            if addrs is None:
                addrs = by_guid[guid] = set()
            addrs.add(addr)
            guids = by_addr.get(addr)
            if guids is None:
                guids = by_addr[addr] = set()
            guids.add(guid)

    def load(self, records: List[Tuple[str, int]]) -> None:
        """Replace the durable trace wholesale (node rebase).

        Drops the buffer and both indexes, then re-installs ``records``
        as the flushed stream — the trace-level analogue of
        :meth:`PMPool.load_durable`.
        """
        self.records = []
        self._buffer = []
        self._addrs_by_guid = {}
        self._guids_by_addr = {}
        self.extend(records)

    def crash(self) -> None:
        """Drop un-flushed records, as a real crash would."""
        self._buffer.clear()

    # ------------------------------------------------------------------
    def addresses_for_guid(self, guid: str) -> Set[int]:
        """PM addresses the instruction with ``guid`` touched (flushed records)."""
        return self._addrs_by_guid.get(guid, set())

    def guids_for_address(self, addr: int) -> Set[str]:
        """GUIDs of instructions observed touching ``addr``."""
        return self._guids_by_addr.get(addr, set())

    def addresses_for_guids(self, guids) -> Set[int]:
        """Union of traced addresses over several GUIDs."""
        out: Set[int] = set()
        for guid in guids:
            out |= self.addresses_for_guid(guid)
        return out

    def __len__(self) -> int:
        return len(self.records) + len(self._buffer)
