"""Exception taxonomy for the repro package.

Two families of errors exist:

* Host errors (`ReproError` subclasses other than `Trap`): misuse of the
  library by host Python code — e.g. mapping a pool twice, freeing an
  address that was never allocated, compiling invalid PMLang.
* Traps (`Trap` subclasses): failures *of the simulated program* — the
  interpreter raises these when the guest program segfaults, panics, runs
  past its step budget, or fails an assertion.  The detector catches traps
  and turns them into failure signatures; they are data, not bugs in the
  host.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class PoolError(ReproError):
    """Misuse of a persistent memory pool (bad address, double map, ...)."""


class AllocationError(PoolError):
    """The PM allocator could not satisfy or validate a request."""


class OutOfSpaceError(AllocationError):
    """The PM pool has no free region large enough for the request."""


class TransactionError(PoolError):
    """Invalid transaction usage (commit without begin, nested abort, ...)."""


class CompileError(ReproError):
    """PMLang source could not be compiled to IR."""


class AnalysisError(ReproError):
    """A static analysis was asked something it cannot answer."""


class CheckpointError(ReproError):
    """Checkpoint log misuse or corruption."""


class CorruptLogError(CheckpointError):
    """A checkpoint log failed structural validation.

    Raised instead of silently accepting out-of-order sequence numbers,
    dangling realloc links, checksum mismatches, or a torn/garbled
    serialized log.  Recovery code that can *repair* (truncate a torn
    tail, quarantine bad entries) catches this and falls back to
    :func:`repro.instrument.artifacts.open_and_verify`.
    """


class ReactorError(ReproError):
    """The reactor could not construct or execute a reversion plan."""


class Trap(ReproError):
    """Base class for simulated-program failures (guest faults)."""

    #: short machine-readable kind, used in failure signatures
    kind = "trap"

    def __init__(self, message: str, *, location: str | None = None):
        super().__init__(message)
        self.location = location


class SegfaultTrap(Trap):
    """The guest program accessed an unmapped or null address."""

    kind = "segfault"


class PanicTrap(Trap):
    """The guest program called panic() (server panic / abort)."""

    kind = "panic"


class AssertTrap(Trap):
    """A guest assert_true() failed."""

    kind = "assert"


class HangTrap(Trap):
    """The guest exceeded its step budget (infinite loop / deadlock)."""

    kind = "hang"


class ArithmeticTrap(Trap):
    """Division by zero or similar arithmetic fault in the guest."""

    kind = "arith"


class OutOfPMTrap(Trap):
    """The guest exhausted persistent memory (e.g. due to a leak)."""

    kind = "oom-pm"


class InjectedCrash(Trap):
    """A crash injected by the fault harness at a chosen program point."""

    kind = "injected-crash"
