"""End-to-end experiment orchestration (paper Section 6.1 methodology).

``run_experiment(fid, solution, seed)`` reproduces one cell of the
evaluation matrix: run the target system for the simulated 5 minutes,
fire the bug trigger half-way (or wherever the scenario's seeded timing
puts it), detect the failure, confirm it recurs across a restart (the
hard-fault heuristic), mitigate with the chosen solution, and measure
recoverability, consistency, attempts, time and discarded data.

Solutions:

* ``arthas``     — Arthas in purge mode (the default in the paper)
* ``arthas-rb``  — Arthas in conservative rollback mode
* ``arthas-bi``  — Arthas in binary-search (bisect) mode, riding the
  incremental probe engine; falls back to rollback.  First-class matrix
  column since the fault study grew past f1–f12
* ``pmcriu``     — CRIU + PM pool dumps, 1-minute snapshot interval
* ``arckpt``     — the checkpoint log without the analyzer
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro import faultinject
from repro.baselines.arckpt import ArCkpt
from repro.baselines.pmcriu import PmCRIU
from repro.detector.monitor import Detector, LeakMonitor, RunOutcome
from repro.detector.signature import FailureSignature
from repro.errors import InjectedCrash, Trap
from repro.faults.registry import FaultScenario, scenario_by_id
from repro.harness.simclock import OP_PERIOD, ReexecDelay, SimClock
from repro.harness.supervisor import (
    StepResult,
    ladder_run,
    pool_digest,
    with_crash_retries,
)
from repro.lang.interp import FaultInfo
from repro.pmem.poolcheck import check_pool
from repro.reactor.leakfix import find_leaked_objects, mitigate_leak
from repro.reactor.plan import Candidate, distance_policy
from repro.reactor.revert import IntentJournal, MitigationResult, Reverter
from repro.reactor.server import ReactorServer
from repro.workloads.generators import MixedWorkload

SOLUTIONS = ("arthas", "arthas-rb", "arthas-bi", "pmcriu", "arckpt")

#: kept for extension points; every known solution is first-class today
EXTRA_SOLUTIONS = ()

#: Arthas solution name -> primary Reverter strategy
_ARTHAS_MODES = {"arthas": "purge", "arthas-rb": "rollback", "arthas-bi": "bisect"}

#: snapshot interval for pmCRIU in simulated seconds (paper: 1 minute)
SNAPSHOT_INTERVAL = 60.0

#: mitigation gives up after this much simulated time (paper: 10 minutes)
MITIGATION_TIMEOUT = 600.0


class ExperimentContext:
    """Mutable state shared between the runner and the scenario."""

    def __init__(self, adapter, scenario: FaultScenario, seed: int):
        self.adapter = adapter
        self.scenario = scenario
        self.seed = seed
        self.clock = SimClock()
        self.oracle: Dict[int, int] = {}
        self.state: Dict[str, object] = {}
        self.op_index = 0
        #: cooperative yield point threaded to host-side mitigation
        #: loops (probe engines, plan joins); the live-traffic server
        #: installs a throttled gate checkpoint here for the duration
        #: of a mitigation window
        self.yield_fn: Optional[Callable[[], None]] = None

    def sample_keys(
        self, n: int, exclude: Optional[Callable[[int], bool]] = None
    ) -> List[int]:
        """The earliest still-live oracle keys, skipping excluded ones.

        Early keys are the most durable reference points: they predate
        the trigger and (for pmCRIU) the first snapshot, so their absence
        after a recovery genuinely indicates an unrecovered failure.
        """
        out: List[int] = []
        for key in sorted(self.oracle):
            if self.scenario.exclude_key(self, key):
                continue
            if exclude is not None and exclude(key):
                continue
            out.append(key)
            if len(out) >= n:
                break
        return out


@dataclass
class MitigationRun:
    """Measured outcome of one mitigation."""

    solution: str
    recovered: bool
    attempts: int = 0
    duration_seconds: float = 0.0
    reverted_updates: int = 0
    total_updates: int = 0
    items_before: int = 0
    items_after: int = 0
    consistent: Optional[bool] = None
    violations: List[str] = field(default_factory=list)
    plan_candidates: int = 0
    slice_size: int = 0
    pm_slice_size: int = 0
    slicing_seconds: float = 0.0
    leaked_blocks: int = 0
    timed_out: bool = False
    notes: str = ""
    #: CRC32 fingerprint of the post-mitigation durable state (pool
    #: image + allocator metadata); lets equivalence suites compare two
    #: runs' final states without holding both pools
    pool_digest: str = ""
    #: supervised-mode only: the degradation-ladder account (rungs,
    #: crash retries, post-recovery verification); None for legacy runs
    ladder: Optional[dict] = None
    #: reactor-server accounting: background PDG precompute cost and
    #: plan requests served — the paper accounts analysis time outside
    #: mitigation latency, so it is surfaced next to slicing_seconds
    #: instead of being folded into duration_seconds
    analysis_seconds: float = 0.0
    reactor_requests: int = 0
    #: checkpoint sequence numbers the reverter-based rungs reverted —
    #: the distributed coordinator's damage-assessment input (it maps
    #: them through the cluster oplog to discarded client ops)
    reverted_seqs: List[int] = field(default_factory=list)
    #: True when recovery came from a whole-pool snapshot restore: the
    #: revert set is then not seq-addressable and damage assessment
    #: must fall back to state diffing
    coarse_restore: bool = False

    @property
    def discarded_pct(self) -> float:
        """Fraction of state updates discarded by the recovery (Fig. 9)."""
        if self.solution == "pmcriu":
            if self.items_before <= 0:
                return 0.0
            lost = max(0, self.items_before - self.items_after)
            return 100.0 * lost / self.items_before
        if self.total_updates <= 0:
            return 0.0
        return 100.0 * self.reverted_updates / self.total_updates


@dataclass
class ExperimentResult:
    """One cell of the evaluation matrix."""

    fid: str
    solution: str
    seed: int
    manifested: bool
    confirmed_hard: bool = False
    detection_fault: Optional[FaultInfo] = None
    detection_violation: Optional[str] = None
    invariant_violations: List[str] = field(default_factory=list)
    checksum_hits: int = 0
    mitigation: Optional[MitigationRun] = None


# ----------------------------------------------------------------------
def run_experiment(
    fid,
    solution: str,
    seed: int = 0,
    batch_size: int = 1,
    pre_ops: Optional[int] = None,
    post_ops: Optional[int] = None,
    with_checksum: bool = False,
    consistency_probe: bool = True,
    detect_only: bool = False,
    supervised: bool = False,
    inject_plan: Optional[faultinject.InjectionPlan] = None,
    max_crash_retries: int = 6,
    bisect_engine: str = "incremental",
    vm_engine: str = "fused",
) -> ExperimentResult:
    """Run one (fault, solution) experiment end to end.

    ``supervised=True`` replaces the bare mitigation call with the
    crash-safe supervisor: periodic snapshots are taken during the run
    (so the ladder always has a last-resort rung), mitigation runs under
    crash-retry-with-backoff, degrades purge → rollback → snapshot
    restore, and the result carries a ladder report with post-recovery
    verification (poolcheck, checksum scan, pool digest).  An
    ``inject_plan`` is armed *only* around the mitigation phase — the
    sweep probes recovery's own crash-safety, not the workload's.

    ``fid`` may be a registered fault id *or* a :class:`FaultScenario`
    instance — the fuzzer probes candidate scenarios through the exact
    pipeline they will face once registered.
    """
    if solution not in SOLUTIONS and solution not in EXTRA_SOLUTIONS:
        raise ValueError(
            f"unknown solution {solution!r}; pick from "
            f"{SOLUTIONS + EXTRA_SOLUTIONS}"
        )
    if isinstance(fid, FaultScenario):
        scenario = fid
        fid = scenario.fid
    else:
        scenario = scenario_by_id(fid)
    arthas_like = solution in _ARTHAS_MODES
    adapter = scenario.adapter_cls()(
        seed=seed,
        with_tracing=arthas_like,
        with_checkpoint=arthas_like or solution == "arckpt",
        vm_engine=vm_engine,
    )
    adapter.start()
    ctx = ExperimentContext(adapter, scenario, seed)
    result = ExperimentResult(fid=fid, solution=solution, seed=seed, manifested=False)

    checksum = None
    if with_checksum:
        from repro.detector.checksum import ChecksumMonitor

        checksum = ChecksumMonitor(adapter.pool)
        checksum.attach()

    detector = Detector()
    monitor: Optional[LeakMonitor] = None
    if scenario.kind == "leak":
        monitor = LeakMonitor(
            adapter.allocator,
            adapter.expected_item_words,
            threshold_ratio=scenario.leak_ratio,
        )
        detector.set_leak_monitor(monitor)

    pmcriu: Optional[PmCRIU] = None
    if solution == "pmcriu" or supervised:
        # supervised runs snapshot regardless of solution: the ladder's
        # last rung restores the newest consistent whole-pool image
        pmcriu = PmCRIU(adapter.pool, adapter.allocator, SNAPSHOT_INTERVAL)

    # ------------------------------------------------------------------
    # phase A + trigger + phase B
    # ------------------------------------------------------------------
    n_pre = pre_ops if pre_ops is not None else scenario.pre_ops
    n_post = post_ops if post_ops is not None else scenario.post_ops
    trigger_at = min(scenario.trigger_op_index(seed), n_pre + n_post - 1)
    workload = MixedWorkload(
        seed=seed * 31 + 7,
        insert_ratio=scenario.pre_mix[0],
        get_ratio=scenario.pre_mix[1],
        exclude=lambda key: scenario.exclude_key(ctx, key),
    )

    inflight_fault: Optional[FaultInfo] = None
    for i in range(n_pre + n_post):
        ctx.op_index = i
        ctx.clock.advance(OP_PERIOD)
        if pmcriu is not None:
            pmcriu.maybe_snapshot(ctx.clock.now)
        if i == trigger_at:
            scenario.trigger(ctx)
            workload.insert_ratio, workload.get_ratio = scenario.post_mix
        try:
            scenario.apply_op(ctx, workload.next_op())
        except Trap:
            # the failure surfaced during regular traffic
            inflight_fault = adapter.machine.last_fault
            break

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    if inflight_fault is not None:
        signature = FailureSignature.from_fault(inflight_fault)
        detector.history.append(signature)
        outcome = RunOutcome(ok=False, fault=inflight_fault, signature=signature)
    else:
        outcome = detector.observe(adapter.machine, lambda: scenario.manifest(ctx))
        if outcome.ok and monitor is not None:
            violation = monitor.check()
            if violation is not None:
                outcome = RunOutcome(ok=False, violation=violation)
    if outcome.ok:
        return result  # the fault did not manifest with this seed
    result.manifested = True
    result.detection_fault = outcome.fault
    result.detection_violation = outcome.violation

    # invariant / checksum detectability at failure time (Table 7, §6.6)
    try:
        result.invariant_violations = list(adapter.consistency_violations())
    except Trap:
        result.invariant_violations = ["invariant check crashed on corrupt state"]
    if checksum is not None:
        result.checksum_hits = len(checksum.verify())
        checksum.detach()

    items_before = _safe_count(adapter)
    if detect_only:
        return result

    # ------------------------------------------------------------------
    # hard-fault confirmation: restart and watch it recur
    # ------------------------------------------------------------------
    adapter.restart()
    confirm = detector.observe(
        adapter.machine, lambda: (adapter.recover(), scenario.manifest(ctx))
    )
    if confirm.ok and monitor is not None:
        violation = monitor.check()
        confirm = (
            RunOutcome(ok=False, violation=violation)
            if violation is not None
            else confirm
        )
    recurs = not confirm.ok
    if confirm.signature is not None and outcome.signature is not None:
        result.confirmed_hard = detector.is_potential_hard_failure(confirm.signature)
    else:
        result.confirmed_hard = recurs

    # ------------------------------------------------------------------
    # mitigation
    # ------------------------------------------------------------------
    mclock = SimClock()
    delay = ReexecDelay(seed=seed * 13 + 5)
    reexec = _make_reexec(ctx, scenario, detector, monitor)

    # the injection plan is armed around mitigation only: the probe and
    # verification phases below must observe recovery's real outcome
    inject_cm = (
        faultinject.activate(inject_plan)
        if inject_plan is not None else nullcontext()
    )
    with inject_cm:
        if supervised:
            run = _mitigate_supervised(
                ctx, scenario, outcome, reexec, mclock, delay,
                solution=solution, batch_size=batch_size,
                snapshotter=pmcriu, inject_plan=inject_plan,
                max_crash_retries=max_crash_retries,
            )
        elif arthas_like:
            run = _mitigate_arthas(
                ctx, scenario, outcome, reexec, mclock, delay,
                mode=_ARTHAS_MODES[solution], batch_size=batch_size,
                bisect_engine=bisect_engine,
            )
        elif solution == "pmcriu":
            assert pmcriu is not None
            mres = pmcriu.mitigate(
                reexec, clock=mclock, reexec_delay=delay,
                timeout_seconds=MITIGATION_TIMEOUT,
            )
            run = _to_run(solution, mres, adapter)
        else:  # arckpt
            arckpt = ArCkpt(adapter.ckpt.log, adapter.pool, adapter.allocator)
            mres = arckpt.mitigate(
                reexec, clock=mclock, reexec_delay=delay,
                timeout_seconds=MITIGATION_TIMEOUT,
            )
            run = _to_run(solution, mres, adapter)

    run.items_before = items_before
    run.items_after = _safe_count(adapter)
    run.pool_digest = pool_digest(adapter.pool, adapter.allocator)

    # ------------------------------------------------------------------
    # post-recovery consistency (Table 4)
    # ------------------------------------------------------------------
    if run.recovered and consistency_probe:
        violations = _consistency_suite(ctx, scenario, seed)
        run.violations = violations
        run.consistent = not violations
    result.mitigation = run
    return result


# ----------------------------------------------------------------------
def _safe_count(adapter) -> int:
    try:
        return adapter.count_items()
    except Trap:  # pragma: no cover - count is a plain field read
        return 0


def _make_reexec(ctx, scenario, detector, monitor) -> Callable[[], RunOutcome]:
    adapter = ctx.adapter

    def reexec() -> RunOutcome:
        adapter.restart()

        def action() -> None:
            adapter.recover()
            scenario.verify(ctx)

        try:
            out = detector.observe(adapter.machine, action)
        except AssertionError as exc:
            # host-side symptom checks (wrong value, unexpected result)
            # fail the re-execution without a guest fault instruction
            return RunOutcome(ok=False, violation=str(exc) or "symptom check failed")
        if not out.ok:
            return out
        if monitor is not None:
            violation = monitor.check()
            if violation is not None:
                return RunOutcome(ok=False, violation=violation)
        return out

    return reexec


def _make_rounds_runner(
    ctx, reexec, mclock: SimClock, delay, batch_size: int,
    bisect_engine: str = "incremental",
    server: Optional[ReactorServer] = None,
):
    """Build the detector/reactor rounds driver shared by the legacy and
    supervised mitigation paths.

    The returned ``rounds(run, seen_faults, start_iid, mode,
    max_attempts, intents=None)`` may run several rounds: mitigating one
    bad state can expose a different failure (e.g. restoring wrongly
    deleted items exposes the bad flush timestamp that deleted them),
    which the detector reports and the reactor re-slices from.  ``mode``
    picks the Reverter strategy: ``"purge"``, ``"rollback"`` or
    ``"bisect"`` (the latter running on ``bisect_engine``).
    """
    adapter = ctx.adapter
    log = adapter.ckpt.log
    if server is None:
        server = ReactorServer(adapter.module, analysis=adapter.analysis)

    def forward_seqs(cand: Candidate) -> Set[int]:
        if cand.slice_iid < 0:
            return set()
        seqs: Set[int] = set()
        for dep_iid, _kind in adapter.analysis.pdg.dependents_of(cand.slice_iid):
            if not adapter.analysis.pm.is_pm_instr(dep_iid):
                continue
            guid = adapter.guid_map.guid_of(dep_iid)
            if guid is None:
                continue
            for addr in adapter.trace.addresses_for_guid(guid):
                seqs.update(log.update_seqs_for_address(addr))
        return seqs

    def rounds(
        run: MitigationRun,
        seen_faults: Set[int],
        start_iid: int,
        mode: str,
        max_attempts: int,
        intents: Optional[IntentJournal] = None,
    ) -> None:
        fault_iid = start_iid
        first_round = run.attempts == 0
        for _round in range(4):
            # order candidates by slice distance from the fault (the
            # paper's "more complex policy function"), capped to bound
            # collateral reverts
            plan = server.compute_plan(
                adapter.guid_map, adapter.trace, log, fault_iid,
                policy=distance_policy(max_distance=8),
                yield_fn=getattr(ctx, "yield_fn", None),
            )
            reverter = Reverter(
                log,
                adapter.pool,
                adapter.allocator,
                reexec=reexec,
                clock=mclock,
                reexec_delay=delay,
                timeout_seconds=MITIGATION_TIMEOUT,
                forward_seqs_fn=forward_seqs,
                max_attempts=max(1, max_attempts - run.attempts),
                known_faults=seen_faults,
                enable_divergence_repair=first_round and _round == 0,
                intents=intents,
                yield_fn=getattr(ctx, "yield_fn", None),
            )
            if mode == "rollback":
                mres = reverter.mitigate_rollback(plan)
            elif mode == "bisect":
                mres = reverter.mitigate_bisect(plan, engine=bisect_engine)
            else:
                mres = reverter.mitigate_purge(plan, batch_size=batch_size)
            run.attempts += mres.attempts
            run.reverted_updates += mres.discarded_updates
            run.reverted_seqs.extend(mres.reverted_seqs)
            run.plan_candidates = max(run.plan_candidates, len(plan.candidates))
            run.slice_size = max(run.slice_size, plan.slice_size)
            run.pm_slice_size = max(run.pm_slice_size, plan.pm_slice_size)
            run.slicing_seconds += plan.slicing_seconds
            run.analysis_seconds = server.analysis_seconds
            run.reactor_requests = server.requests_served
            run.timed_out = mres.timed_out
            run.notes = mres.notes
            if mres.recovered:
                run.recovered = True
                return
            if mclock.now > MITIGATION_TIMEOUT or run.attempts >= max_attempts:
                return
            last = mres.last_outcome
            if last is None or last.fault is None or last.fault.iid in seen_faults:
                return  # same failure keeps recurring in this mode
            fault_iid = last.fault.iid
            seen_faults.add(fault_iid)

    return rounds


def _mitigate_arthas(
    ctx,
    scenario,
    outcome: RunOutcome,
    reexec,
    mclock: SimClock,
    delay,
    mode: str,
    batch_size: int,
    bisect_engine: str = "incremental",
) -> MitigationRun:
    adapter = ctx.adapter
    solution = {v: k for k, v in _ARTHAS_MODES.items()}[mode]
    log = adapter.ckpt.log

    if scenario.kind == "leak":
        return _mitigate_leak_arthas(ctx, scenario, reexec, mclock, delay, solution)

    assert outcome.fault is not None, "trap/dataloss faults carry a fault instr"
    run = MitigationRun(solution=solution, recovered=False)
    seen_faults = {outcome.fault.iid}
    #: per-mode attempt budget; exhausting it in purge or bisect mode
    #: triggers the paper's fallback to conservative rollback (§4.5)
    primary_max_attempts = 60 if mode != "rollback" else 200
    rounds = _make_rounds_runner(
        ctx, reexec, mclock, delay, batch_size, bisect_engine=bisect_engine
    )

    rounds(run, seen_faults, outcome.fault.iid, mode, primary_max_attempts)
    if not run.recovered and mode != "rollback" and mclock.now < MITIGATION_TIMEOUT:
        # paper Section 4.5: the primary mode exhausted its tries (or, for
        # bisect, even the full reversion did not recover); switch to the
        # conservative time-ordered rollback
        run.notes = (run.notes + "; " if run.notes else "") + "fell back to rollback"
        rounds(run, seen_faults, outcome.fault.iid, "rollback", 200)
    run.duration_seconds = mclock.now
    run.total_updates = log.total_updates
    return run


def _mitigate_supervised(
    ctx,
    scenario,
    outcome: RunOutcome,
    reexec,
    mclock: SimClock,
    delay,
    solution: str,
    batch_size: int,
    snapshotter: Optional[PmCRIU],
    inject_plan: Optional[faultinject.InjectionPlan],
    max_crash_retries: int,
    reactor_server: Optional[ReactorServer] = None,
) -> MitigationRun:
    """Crash-safe mitigation: retry with backoff, degrade down the ladder.

    Rungs, by solution (each wrapped in crash-retries, each idempotent):

    * ``arthas``     — purge → rollback (intent-journaled) → snapshot
    * ``arthas-rb``  — rollback (intent-journaled) → snapshot
    * ``arthas-bi``  — bisect → rollback (intent-journaled) → snapshot
    * leak faults    — leak-fix → snapshot
    * ``arckpt``     — arckpt reversion → snapshot
    * ``pmcriu``     — snapshot only

    An injected crash *inside a re-execution* surfaces as a guest fault
    of kind ``injected-crash``; the strict reexec wrapper re-raises it so
    the supervisor treats it as the process death it models.  Finishes
    with verification — poolcheck, a checkpoint-checksum scan (corrupt
    versions are quarantined, never deserialized into reversion plans),
    and a durable-state digest — and, when every rung fails, a
    structured unrecoverable report instead of an exception.
    """
    adapter = ctx.adapter
    log = adapter.ckpt.log if adapter.ckpt is not None else None
    run = MitigationRun(solution=solution, recovered=False)
    intents = IntentJournal()
    quarantined_total = 0

    def strict_reexec() -> RunOutcome:
        out = reexec()
        if out.fault is not None and \
                getattr(out.fault, "kind", "") == "injected-crash":
            raise InjectedCrash(
                getattr(out.fault, "message", "") or "crash during re-execution",
                location="reexec",
            )
        return out

    def scan_log() -> int:
        """Detect + quarantine media-corrupted checkpoint versions."""
        nonlocal quarantined_total
        if log is None:
            return 0
        bad = log.verify_checksums()
        if bad:
            log.quarantine_corrupt()
        quarantined_total += len(bad)
        return len(bad)

    # never let a corrupt version seed a reversion plan; the scan's
    # checksum pass can itself trigger a staged index merge, which is a
    # crash site (ckpt.index_merge) — treat a crash there like any
    # mitigation-step death: model the restart and retry (the staged
    # tail survives a failed merge untouched, so the retry converges)
    def initial_scan() -> StepResult:
        scan_log()
        return StepResult(recovered=True)

    with_crash_retries(initial_scan, adapter.pool, mclock, max_crash_retries)

    rungs: List = []
    if solution in _ARTHAS_MODES and scenario.kind != "leak" \
            and outcome.fault is not None:
        rounds = _make_rounds_runner(
            ctx, strict_reexec, mclock, delay, batch_size,
            server=reactor_server,
        )
        seen_faults = {outcome.fault.iid}

        def arthas_step(mode: str, budget: int, with_intents: bool):
            def step() -> StepResult:
                scan_log()
                before = run.attempts
                run.recovered = False
                rounds(
                    run, seen_faults, outcome.fault.iid, mode,
                    before + budget,
                    intents=intents if with_intents else None,
                )
                return StepResult(
                    recovered=run.recovered, attempts=run.attempts - before,
                    timed_out=run.timed_out, notes=run.notes,
                )
            return step

        primary = _ARTHAS_MODES[solution]
        if primary != "rollback":
            rungs.append((primary, arthas_step(primary, 60, False)))
        rungs.append(("rollback", arthas_step("rollback", 200, True)))
    elif solution in _ARTHAS_MODES and scenario.kind == "leak":
        def leak_step() -> StepResult:
            sub = _mitigate_leak_arthas(
                ctx, scenario, strict_reexec, mclock, delay, solution
            )
            run.attempts += sub.attempts
            run.leaked_blocks = sub.leaked_blocks
            run.notes = sub.notes
            return StepResult(recovered=sub.recovered, attempts=sub.attempts,
                              notes=sub.notes)
        rungs.append(("leak-fix", leak_step))
    elif solution == "arckpt" and log is not None:
        def arckpt_step() -> StepResult:
            scan_log()
            mres = ArCkpt(log, adapter.pool, adapter.allocator).mitigate(
                strict_reexec, clock=mclock, reexec_delay=delay,
                timeout_seconds=MITIGATION_TIMEOUT,
            )
            run.attempts += mres.attempts
            run.reverted_updates += mres.discarded_updates
            run.reverted_seqs.extend(mres.reverted_seqs)
            run.notes = mres.notes
            return StepResult(recovered=mres.recovered, attempts=mres.attempts,
                              timed_out=mres.timed_out, notes=mres.notes)
        rungs.append(("arckpt", arckpt_step))

    if snapshotter is not None:
        def snapshot_step() -> StepResult:
            mres = snapshotter.mitigate(
                strict_reexec, clock=mclock, reexec_delay=delay,
                timeout_seconds=MITIGATION_TIMEOUT,
            )
            run.attempts += mres.attempts
            if mres.recovered:
                run.coarse_restore = True
            note = mres.notes or "restored from periodic snapshot"
            run.notes = (run.notes + "; " if run.notes else "") + note
            return StepResult(recovered=mres.recovered, attempts=mres.attempts,
                              timed_out=mres.timed_out, notes=note)
        rungs.append(("snapshot", snapshot_step))

    report = ladder_run(
        rungs, adapter.pool, mclock, max_crash_retries=max_crash_retries
    )
    run.recovered = report.recovered
    run.timed_out = any(r.timed_out for r in report.rungs)
    run.duration_seconds = mclock.now
    if log is not None:
        run.total_updates = log.total_updates

    # ------------------------------------------------------------------
    # verification: is the pool provably consistent after recovery?
    # ------------------------------------------------------------------
    # like the initial scan, the verification scan can trigger a staged
    # index merge (a ckpt.index_merge crash site) — survive it the same
    # way: model the restart and retry over the intact staging tail
    def final_scan() -> StepResult:
        scan_log()
        return StepResult(recovered=True)

    with_crash_retries(final_scan, adapter.pool, mclock, max_crash_retries)
    pc = check_pool(adapter.pool, adapter.allocator)
    verification: Dict[str, object] = {
        "pool_ok": pc.ok,
        "pool_summary": pc.summary(),
        "checksum_quarantined": quarantined_total,
        "pool_digest": pool_digest(adapter.pool, adapter.allocator),
        "intent_cuts_done": intents.done_cuts(),
    }
    if inject_plan is not None and not inject_plan.record:
        verification["injected"] = [s.label() for s in inject_plan.fired]
        verification["all_injections_fired"] = inject_plan.all_fired
    ladder = report.to_json()
    ladder["verification"] = verification
    if not report.recovered:
        ladder["unrecoverable"] = {
            "fid": getattr(scenario, "fid", "?"),
            "solution": solution,
            "seed": ctx.seed,
            "reason": "all ladder rungs exhausted without recovery",
            "rungs_tried": [r.rung for r in report.rungs],
            "crash_retries": report.crash_retries,
            "poolcheck": pc.summary(),
            "checksum_quarantined": quarantined_total,
        }
    run.ladder = ladder
    return run


def _mitigate_leak_arthas(
    ctx, scenario, reexec, mclock: SimClock, delay, solution: str
) -> MitigationRun:
    """Section 4.7: diff checkpoint-log liveness against recovery accesses."""
    adapter = ctx.adapter
    log = adapter.ckpt.log
    adapter.restart()
    recovery_addresses = adapter.recover()
    leaked = find_leaked_objects(
        log, adapter.allocator, recovery_addresses, protect={adapter.root}
    )
    freed = mitigate_leak(adapter.allocator, leaked, confirm=True)
    mclock.advance(delay())
    out = reexec()
    run = MitigationRun(
        solution=solution,
        recovered=out.ok,
        attempts=1,
        duration_seconds=mclock.now,
        reverted_updates=0,  # only leaked objects are discarded
        total_updates=log.total_updates,
        leaked_blocks=len(leaked),
        notes=f"freed {freed} leaked words in {len(leaked)} blocks",
    )
    return run


def _to_run(solution: str, mres: MitigationResult, adapter) -> MitigationRun:
    total = adapter.ckpt.log.total_updates if adapter.ckpt is not None else 0
    return MitigationRun(
        solution=solution,
        recovered=mres.recovered,
        attempts=mres.attempts,
        duration_seconds=mres.duration_seconds,
        reverted_updates=mres.discarded_updates,
        total_updates=total,
        timed_out=mres.timed_out,
        notes=mres.notes,
        reverted_seqs=list(mres.reverted_seqs),
    )


def _consistency_suite(ctx, scenario, seed: int) -> List[str]:
    """Post-recovery semantic checks: probe traffic + domain invariants."""
    adapter = ctx.adapter
    violations: List[str] = []
    probe = MixedWorkload(
        seed=seed * 97 + 3,
        insert_ratio=0.5,
        get_ratio=0.3,
        exclude=lambda key: scenario.exclude_key(ctx, key),
    )
    probe._next_key = 9_000_000  # fresh keyspace, away from poisoned buckets
    try:
        for op in probe.ops(40):
            scenario.apply_op(ctx, op)
    except Trap:
        fault = adapter.machine.last_fault
        violations.append(f"probe traffic crashed: {fault.kind} ({fault.message})")
        return violations
    try:
        violations.extend(adapter.consistency_violations())
        violations.extend(scenario.extra_consistency(ctx))
    except Trap:
        fault = adapter.machine.last_fault
        violations.append(f"consistency check crashed: {fault.kind}")
    return violations
