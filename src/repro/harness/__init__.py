"""Experiment harness: clocks, experiments, metrics, report rendering.

Orchestrates the paper's evaluation (Section 6): run a target system
under a workload on a simulated clock, trigger a fault half-way, detect
the failure, mitigate with Arthas (purge or rollback), pmCRIU or ArCkpt,
and measure recoverability, consistency, mitigation time, attempts and
discarded data.
"""

from repro.harness.experiment import (
    ExperimentResult,
    MitigationRun,
    run_experiment,
    SOLUTIONS,
)
from repro.harness.simclock import SimClock

__all__ = [
    "SimClock",
    "run_experiment",
    "ExperimentResult",
    "MitigationRun",
    "SOLUTIONS",
]
