"""Deterministic crash-consistency fuzzer over the guest persistence layer.

The seeded f1–f12 scenarios reproduce *known* bugs; this module grows
the study by *discovering* new ones.  It perturbs the guest-visible
persistence boundaries (``pmem.flush`` / ``pmem.fence`` — chosen because
their firing counts are identical whatever recovery solution is
attached, so a discovered reproducer behaves the same in every matrix
column) with randomized site x kind x occurrence plans:

1. **count** — run a record-mode :class:`FuzzedScenario` through
   ``run_experiment(detect_only=True)`` per system: site firing counts
   for the fuzz window (split into the steady insert burst and the
   reboot-cycle init region) plus the window's *baseline* losses (keys a
   clean run already fails to serve, e.g. level-hash bucket evictions);
2. **fuzz** — deterministic trials (seeded per ``(sweep_seed, system,
   trial)``, so a ``--quick`` sweep is a strict prefix of the full one)
   draw 1–3 specs biased toward the window tail and probe them through
   the same detect-only pipeline; a candidate counts when the failure
   manifests in-guest (the detector needs a fault instruction);
3. **minimize** — symptom-preserving delta debugging: the smallest spec
   subset (singles, then pairs) reproducing the *same* victim set and
   recovery-trap signature becomes the reproducer;
4. **register** — deduplicated discoveries (per-system cap) become
   ``FUZZED_FAULT_SPECS`` entries (``--emit-registry`` rewrites the
   generated block in :mod:`repro.faults.fuzzed`), classified into the
   two new families:

   * ``crash-consistency`` — ``skip-flush`` / ``skip-fence`` in the
     steady region (WITCHER's missing-flush / persist-ordering classes,
     corroborated by the quiescence invariant probe);
   * ``kernel-pm`` — ``torn`` fences (torn/alignment updates) and any
     spec landing in the init region (initialization races).

``python -m repro fuzz-sweep`` drives this; ``--check`` verifies a fresh
quick sweep against the committed report (CI drift contract).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faultinject import FUZZ_KINDS, FUZZ_SITES, kind_applies
from repro.faults.fuzzed import (
    FAMILY_CRASH_CONSISTENCY,
    FAMILY_KERNEL_PM,
    FuzzedScenario,
)
from repro.faults.registry import TABLE2_SCENARIOS
from repro.harness.experiment import run_experiment
from repro.systems import ALL_ADAPTERS

#: first fid the fuzzer may assign (right after the seeded scenarios)
FIRST_FUZZ_FID = len(TABLE2_SCENARIOS) + 1

DEFAULT_SWEEP_SEED = 2026
DEFAULT_TRIALS = 40
QUICK_TRIALS = 10
DEFAULT_MAX_PER_SYSTEM = 2

#: probe solution: tracing + checkpointing attached, like any arthas run
PROBE_SOLUTION = "arthas"

Spec = Tuple[str, int, str, int]


# ----------------------------------------------------------------------
@dataclass
class Discovery:
    """One registered fuzzer discovery."""

    fid: str
    system: str
    family: str
    phase: str
    kind: str
    fault: str
    consequence: str
    specs: List[Spec]
    baseline: List[int]
    trial: int
    minimized_from: int
    victims: Dict[int, str] = field(default_factory=dict)
    recover_trap: Optional[str] = None
    invariant: Dict[str, object] = field(default_factory=dict)

    @property
    def signature(self) -> str:
        """Registry dedup / drift-check identity (fid-independent).

        Deliberately occurrence-free: two torn fences at different
        offsets of the same window are the *same* failure shape, and
        deduping them keeps the per-system cap buying family diversity
        instead of near-duplicates.
        """
        parts = "+".join(
            sorted(f"{site}:{kind}" for site, _occ, kind, _ in self.specs)
        )
        return f"{self.system}|{self.phase}|{parts}"

    def to_json(self) -> dict:
        return {
            "fid": self.fid,
            "system": self.system,
            "family": self.family,
            "phase": self.phase,
            "kind": self.kind,
            "fault": self.fault,
            "consequence": self.consequence,
            "specs": [list(s) for s in self.specs],
            "baseline": list(self.baseline),
            "trial": self.trial,
            "minimized_from": self.minimized_from,
            "victims": {str(k): v for k, v in sorted(self.victims.items())},
            "recover_trap": self.recover_trap,
            "invariant": dict(self.invariant),
            "signature": self.signature,
        }


@dataclass
class FuzzReport:
    """Outcome of one sweep."""

    sweep_seed: int
    trials_per_system: int
    max_per_system: int
    systems: Dict[str, Dict[str, object]] = field(default_factory=dict)
    discoveries: List[Discovery] = field(default_factory=list)
    probes: int = 0
    wall_seconds: float = 0.0

    def quick_signatures(self, quick_trials: int = QUICK_TRIALS) -> List[str]:
        """Signatures discoverable within the first ``quick_trials``
        trials — what a ``--quick`` sweep must reproduce exactly."""
        return [d.signature for d in self.discoveries if d.trial < quick_trials]

    def to_json(self) -> dict:
        by_family: Dict[str, int] = {}
        for d in self.discoveries:
            by_family[d.family] = by_family.get(d.family, 0) + 1
        return {
            "sweep_seed": self.sweep_seed,
            "trials_per_system": self.trials_per_system,
            "max_per_system": self.max_per_system,
            "probes": self.probes,
            "wall_seconds": round(self.wall_seconds, 2),
            "systems": {k: self.systems[k] for k in sorted(self.systems)},
            "discovered": len(self.discoveries),
            "by_family": {k: by_family[k] for k in sorted(by_family)},
            "quick_trials": QUICK_TRIALS,
            "quick_signatures": self.quick_signatures(),
            "entries": [d.to_json() for d in self.discoveries],
        }

    def summary(self) -> str:
        lines = [
            f"fuzz-sweep: {len(self.discoveries)} reproducers registered "
            f"from {self.probes} probes over {len(self.systems)} systems "
            f"({self.wall_seconds:.1f}s wall)"
        ]
        for d in self.discoveries:
            lines.append(
                f"  {d.fid} [{d.family}/{d.phase}] {d.system}: {d.fault}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# probing
# ----------------------------------------------------------------------
def probe_scenario(scenario: FuzzedScenario) -> bool:
    """Run the candidate through the real experiment pipeline (phase A +
    trigger + detection); True when the failure manifests *in-guest*."""
    result = run_experiment(scenario, PROBE_SOLUTION, detect_only=True)
    if not result.manifested or result.detection_fault is None:
        return False
    # the detector needs missing/trap victims (or a trapping recovery) —
    # wrong-value-only candidates cannot hand it a fault instruction
    return bool(
        scenario.last_recover_trap
        or any(h in ("missing", "trap") for h in scenario.last_victims.values())
    )


def _symptom(scenario: FuzzedScenario) -> Tuple:
    return (
        scenario.last_recover_trap,
        tuple(sorted(scenario.last_victims.items())),
    )


def record_window(system: str) -> FuzzedScenario:
    """Record-mode probe: window site counts + baseline losses."""
    scenario = FuzzedScenario("fx", system, [], record=True)
    run_experiment(scenario, PROBE_SOLUTION, detect_only=True)
    return scenario


# ----------------------------------------------------------------------
# trial generation
# ----------------------------------------------------------------------
def _draw_specs(rng: random.Random, counts: Dict[str, int]) -> List[Spec]:
    """1–3 distinct (site, occurrence) specs, biased toward the window
    tail (where unrepaired skips survive to the power loss)."""
    r = rng.random()
    n = 1 if r < 0.55 else (2 if r < 0.85 else 3)
    specs: List[Spec] = []
    used = set()
    for _ in range(n * 4):
        if len(specs) >= n:
            break
        site = rng.choice([s for s in FUZZ_SITES if counts.get(s, 0) > 0])
        count = counts[site]
        if rng.random() < 0.5:
            occ = rng.randint(1, count)
        else:
            occ = max(1, count - rng.randint(0, 4))
        if (site, occ) in used:
            continue
        used.add((site, occ))
        kinds = [k for k in FUZZ_KINDS if kind_applies(site, k)]
        kind = rng.choice(kinds)
        specs.append((site, occ, kind, rng.randint(0, 999)))
    return specs


def minimize_specs(
    system: str,
    specs: List[Spec],
    baseline: Sequence[int],
    symptom: Tuple,
) -> Tuple[List[Spec], FuzzedScenario, int]:
    """Symptom-preserving delta debugging over the spec list.

    Returns the smallest subset (singles first, then pairs) whose probe
    reproduces exactly ``symptom``, the probed scenario carrying its
    telemetry, and the number of probes spent.
    """
    probes = 0
    if len(specs) > 1:
        for size in (1, 2):
            if size >= len(specs):
                break
            for subset in combinations(specs, size):
                scenario = FuzzedScenario(
                    "fx", system, list(subset), baseline=baseline
                )
                probes += 1
                if probe_scenario(scenario) and _symptom(scenario) == symptom:
                    return list(subset), scenario, probes
    scenario = FuzzedScenario("fx", system, list(specs), baseline=baseline)
    probes += 1
    probe_scenario(scenario)
    return list(specs), scenario, probes


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
def classify(
    specs: Sequence[Spec],
    steady_counts: Dict[str, int],
    scenario: FuzzedScenario,
) -> Tuple[str, str, str, str, str]:
    """(family, phase, kind, fault label, consequence) of a reproducer."""
    regions = [
        "init" if occ > steady_counts.get(site, 0) else "steady"
        for site, occ, _kind, _seed in specs
    ]
    if all(r == "init" for r in regions):
        phase = "init"
    elif any(r == "init" for r in regions):
        phase = "mixed"
    else:
        phase = "steady"
    torn = any(kind == "torn" for _s, _o, kind, _x in specs)
    if phase != "steady" or torn:
        family = FAMILY_KERNEL_PM
    else:
        family = FAMILY_CRASH_CONSISTENCY

    if scenario.last_recover_trap:
        kind_ = "trap"
        consequence = "Repeated crash at recovery"
    elif any(h == "trap" for h in scenario.last_victims.values()):
        kind_ = "trap"
        consequence = "Lookup crash"
    else:
        kind_ = "dataloss"
        consequence = "Data loss"

    _DESCR = {
        "skip-flush": "missing flush at {w}",
        "skip-fence": "elided fence at {w}",
        "torn": "torn fence at {w}",
        "crash": "untimely crash at {w}",
    }
    parts = []
    for (site, occ, kind, _seed), region in zip(specs, regions):
        where = f"{site}#{occ}"
        if region == "init":
            where += " (recovery path)"
        parts.append(_DESCR[kind].format(w=where))
    fault = " + ".join(parts)
    inv = scenario.last_probe
    if inv and not inv.get("consistent", True):
        fault += (
            f"; invariant: {inv.get('at_risk_words', 0)} word(s) at risk "
            f"in the write buffer at quiescence"
        )
    nv = len(scenario.last_victims)
    if scenario.last_recover_trap:
        fault += f"; recovery traps ({scenario.last_recover_trap})"
    elif nv:
        fault += f"; {nv} acked key(s) lost at power loss"
    return family, phase, kind_, fault, consequence


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def run_fuzz_sweep(
    systems: Optional[Sequence[str]] = None,
    trials: int = DEFAULT_TRIALS,
    sweep_seed: int = DEFAULT_SWEEP_SEED,
    max_per_system: int = DEFAULT_MAX_PER_SYSTEM,
    progress=None,
) -> FuzzReport:
    """Fuzz every system's persistence window; deterministic per seed.

    Trial RNG streams are seeded per ``(sweep_seed, system, trial)``, so
    a sweep with fewer trials discovers a strict prefix of a longer
    sweep's per-system discoveries — the property the CI quick/drift
    check relies on.
    """
    sys_list = sorted(systems if systems is not None else ALL_ADAPTERS)
    report = FuzzReport(
        sweep_seed=sweep_seed,
        trials_per_system=trials,
        max_per_system=max_per_system,
    )
    t0 = time.time()
    for sys_idx, system in enumerate(sorted(ALL_ADAPTERS)):
        if system not in sys_list:
            continue
        recorder = record_window(system)
        report.probes += 1
        counts = {
            s: recorder.last_counts.get(s, 0) for s in FUZZ_SITES
        }
        steady = dict(recorder.last_steady_counts)
        baseline = sorted(recorder.last_raw_victims)
        sys_row: Dict[str, object] = {
            "window_counts": counts,
            "steady_counts": {s: steady.get(s, 0) for s in FUZZ_SITES},
            "baseline_losses": baseline,
            "candidates": 0,
            "registered": [],
        }
        report.systems[system] = sys_row
        if not any(counts.values()):
            continue
        seen_signatures = {d.signature for d in report.discoveries}
        n_registered = 0
        for trial in range(trials):
            if n_registered >= max_per_system:
                break
            rng = random.Random(
                sweep_seed * 1_000_003 + sys_idx * 10_007 + trial
            )
            specs = _draw_specs(rng, counts)
            if not specs:
                continue
            candidate = FuzzedScenario("fx", system, specs, baseline=baseline)
            report.probes += 1
            if not probe_scenario(candidate):
                continue
            sys_row["candidates"] = int(sys_row["candidates"]) + 1
            symptom = _symptom(candidate)
            minimal, probed, spent = minimize_specs(
                system, specs, baseline, symptom
            )
            report.probes += spent
            family, phase, kind_, fault, consequence = classify(
                minimal, steady, probed
            )
            discovery = Discovery(
                fid="f?",  # assigned after the sweep, in discovery order
                system=system,
                family=family,
                phase=phase,
                kind=kind_,
                fault=fault,
                consequence=consequence,
                specs=[tuple(s) for s in minimal],
                baseline=list(baseline),
                trial=trial,
                minimized_from=len(specs),
                victims=dict(probed.last_victims),
                recover_trap=probed.last_recover_trap,
                invariant=dict(probed.last_probe),
            )
            if discovery.signature in seen_signatures:
                continue
            seen_signatures.add(discovery.signature)
            report.discoveries.append(discovery)
            n_registered += 1
            sys_row["registered"].append(discovery.signature)
            if progress is not None:
                progress(discovery)
    for i, d in enumerate(report.discoveries):
        d.fid = f"f{FIRST_FUZZ_FID + i}"
    report.wall_seconds = time.time() - t0
    return report


# ----------------------------------------------------------------------
# registry emission
# ----------------------------------------------------------------------
_BEGIN = ("# --- BEGIN FUZZED FAULT SPECS "
          "(generated by `repro fuzz-sweep --emit-registry`) ---")
_END = "# --- END FUZZED FAULT SPECS ---"


def render_registry_block(discoveries: Sequence[Discovery]) -> str:
    """The generated ``FUZZED_FAULT_SPECS`` block, byte-deterministic."""
    lines = [_BEGIN, "FUZZED_FAULT_SPECS: List[Dict[str, object]] = ["]
    for d in discoveries:
        lines.append("    {")
        lines.append(f'        "fid": {d.fid!r},')
        lines.append(f'        "system": {d.system!r},')
        lines.append(f'        "family": {d.family!r},')
        lines.append(f'        "phase": {d.phase!r},')
        lines.append(f'        "kind": {d.kind!r},')
        lines.append(f'        "fault": {d.fault!r},')
        lines.append(f'        "consequence": {d.consequence!r},')
        lines.append(
            '        "specs": ['
            + ", ".join(repr(list(s)) for s in d.specs)
            + "],"
        )
        lines.append(f'        "baseline": {sorted(d.baseline)!r},')
        lines.append("    },")
    lines.append("]")
    lines.append(_END)
    return "\n".join(lines)


def emit_registry(discoveries: Sequence[Discovery], path: str) -> None:
    """Rewrite the generated block of ``faults/fuzzed.py`` in place."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    start = text.index(_BEGIN)
    end = text.index(_END) + len(_END)
    new_text = text[:start] + render_registry_block(discoveries) + text[end:]
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(new_text)


def check_against(report: FuzzReport, committed: dict) -> List[str]:
    """Drift check: this (quick) sweep's discoveries must match the
    committed report's quick-reachable signatures exactly."""
    problems: List[str] = []
    if int(committed.get("sweep_seed", -1)) != report.sweep_seed:
        problems.append(
            f"sweep seed mismatch: committed "
            f"{committed.get('sweep_seed')} vs {report.sweep_seed}"
        )
        return problems
    expected = list(committed.get("quick_signatures", []))
    got = [d.signature for d in report.discoveries]
    if got != expected:
        problems.append(
            "quick discoveries drifted:\n"
            f"  expected: {expected}\n"
            f"  got:      {got}"
        )
    return problems
