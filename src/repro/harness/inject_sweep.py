"""Exhaustive fault-injection sweep over the recovery pipeline.

The robustness claim worth having is not "mitigation usually works" but
"mitigation survives its *own* crashes at every step".  This module
proves it by enumeration:

1. **discover** — run one supervised experiment with a record-mode
   :class:`~repro.faultinject.InjectionPlan`; every injection site that
   fires during mitigation is counted (sites are named: persist/flush
   boundaries, checkpoint ``record_*`` hooks, reversion cut/commit
   points);
2. **enumerate** — expand the counts into cells via
   :func:`~repro.faultinject.enumerate_cells`: one cell per (site,
   sampled occurrence, applicable fault kind);
3. **sweep** — re-run the experiment once per cell with exactly that
   fault injected, under the crash-retry supervisor, and demand the cell
   ends **verified-consistent**: mitigation recovered, poolcheck passes,
   the checkpoint-checksum scan quarantined anything corrupt, and the
   post-recovery consistency probe finds no violations.

``python -m repro inject-sweep`` drives this and exits non-zero unless
every cell verifies — the CI contract for the recovery pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faultinject import InjectionPlan, InjectionSpec, enumerate_cells
from repro.harness.experiment import ExperimentResult, run_experiment

#: the recovery-pipeline sweep's kinds — the guest-persistence skip
#: kinds belong to the crash-consistency fuzzer (harness/fuzz_sweep.py),
#: not to this sweep, whose cell enumeration is pinned by CI
PIPELINE_KINDS = ("crash", "torn", "bitflip")

#: per-fault (pre_ops, post_ops) overrides keeping sweep cells tractable;
#: faults not listed run their scenario's default operation counts
DEFAULT_OPS: Dict[str, Tuple[int, int]] = {"f9": (80, 40)}

#: the sweep's default subjects: a hard trap fault (CCEH directory
#: doubling) and a leak fault — together they exercise the rollback,
#: leak-fix and snapshot rungs plus every pmem/ckpt site family
DEFAULT_FAULTS = ("f9", "f12")

DEFAULT_SOLUTION = "arthas-rb"


@dataclass
class SweepCell:
    """One (fault, site, occurrence, kind) injection outcome."""

    fid: str
    solution: str
    site: str
    occurrence: int
    kind: str
    fired: bool = False
    recovered: bool = False
    consistent: Optional[bool] = None
    pool_ok: bool = False
    checksum_quarantined: int = 0
    crash_retries: int = 0
    recovered_by: Optional[str] = None
    #: simulated seconds the supervised mitigation took
    recovery_seconds: float = 0.0
    pool_digest: int = 0
    notes: str = ""

    @property
    def label(self) -> str:
        return f"{self.fid}:{self.site}#{self.occurrence}:{self.kind}"

    @property
    def verified(self) -> bool:
        """Did the cell end in a provably consistent state?

        The injected fault must actually have fired (else the cell
        tested nothing), mitigation must have recovered, poolcheck must
        pass, and the consistency probe must not have found violations.
        """
        return (
            self.fired
            and self.recovered
            and self.pool_ok
            and self.consistent is not False
        )

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "fired": self.fired,
            "recovered": self.recovered,
            "recovered_by": self.recovered_by,
            "consistent": self.consistent,
            "pool_ok": self.pool_ok,
            "verified": self.verified,
            "checksum_quarantined": self.checksum_quarantined,
            "crash_retries": self.crash_retries,
            "recovery_seconds": round(self.recovery_seconds, 3),
            "pool_digest": self.pool_digest,
            "notes": self.notes,
        }


@dataclass
class SweepReport:
    """The full sweep: per-cell outcomes plus the headline numbers."""

    solution: str
    seed: int
    kinds: List[str]
    max_per_site: int
    #: fid -> {site: dynamic firing count} from the discovery runs
    sites: Dict[str, Dict[str, int]] = field(default_factory=dict)
    cells: List[SweepCell] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_verified(self) -> int:
        return sum(1 for c in self.cells if c.verified)

    @property
    def success_rate(self) -> float:
        return 100.0 * self.n_verified / self.n_cells if self.cells else 0.0

    @property
    def mean_recovery_seconds(self) -> float:
        if not self.cells:
            return 0.0
        return sum(c.recovery_seconds for c in self.cells) / len(self.cells)

    @property
    def all_verified(self) -> bool:
        return bool(self.cells) and self.n_verified == self.n_cells

    def failures(self) -> List[SweepCell]:
        return [c for c in self.cells if not c.verified]

    def to_json(self) -> dict:
        return {
            "solution": self.solution,
            "seed": self.seed,
            "kinds": list(self.kinds),
            "max_per_site": self.max_per_site,
            "sites_enumerated": {
                fid: dict(sorted(counts.items()))
                for fid, counts in sorted(self.sites.items())
            },
            "cells": self.n_cells,
            "verified_consistent": self.n_verified,
            "recovery_success_rate_pct": round(self.success_rate, 2),
            "mean_recovery_seconds": round(self.mean_recovery_seconds, 3),
            "wall_seconds": round(self.wall_seconds, 2),
            "failures": [c.to_json() for c in self.failures()],
        }

    def summary(self) -> str:
        lines = [
            f"inject-sweep: {self.n_verified}/{self.n_cells} cells "
            f"verified-consistent ({self.success_rate:.1f}%), "
            f"mean recovery {self.mean_recovery_seconds:.1f} sim-s, "
            f"{self.wall_seconds:.1f}s wall"
        ]
        for fid, counts in sorted(self.sites.items()):
            lines.append(
                f"  {fid}: {len(counts)} site families, "
                f"{sum(counts.values())} dynamic firings"
            )
        for cell in self.failures():
            lines.append(f"  FAIL {cell.label}: {cell.notes or 'unverified'}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _ops_for(fid: str, pre_ops: Optional[int], post_ops: Optional[int]):
    if pre_ops is not None or post_ops is not None:
        return pre_ops, post_ops
    return DEFAULT_OPS.get(fid, (None, None))


def discover_sites(
    fid: str,
    solution: str = DEFAULT_SOLUTION,
    seed: int = 0,
    pre_ops: Optional[int] = None,
    post_ops: Optional[int] = None,
) -> Tuple[Dict[str, int], ExperimentResult]:
    """Count every injection site the mitigation of ``fid`` reaches."""
    n_pre, n_post = _ops_for(fid, pre_ops, post_ops)
    plan = InjectionPlan(record=True)
    result = run_experiment(
        fid, solution, seed=seed, pre_ops=n_pre, post_ops=n_post,
        supervised=True, inject_plan=plan,
    )
    if not result.manifested or result.mitigation is None:
        raise RuntimeError(
            f"{fid}: fault did not manifest under seed {seed}; "
            f"nothing to sweep"
        )
    if not result.mitigation.recovered:
        raise RuntimeError(
            f"{fid}: baseline supervised mitigation did not recover; "
            f"fix that before sweeping injections"
        )
    return dict(plan.counts), result


def run_cell(
    fid: str,
    spec: InjectionSpec,
    solution: str = DEFAULT_SOLUTION,
    seed: int = 0,
    pre_ops: Optional[int] = None,
    post_ops: Optional[int] = None,
    max_crash_retries: int = 6,
) -> SweepCell:
    """Run one experiment with exactly ``spec`` injected."""
    n_pre, n_post = _ops_for(fid, pre_ops, post_ops)
    plan = InjectionPlan([spec])
    cell = SweepCell(
        fid=fid, solution=solution,
        site=spec.site, occurrence=spec.occurrence, kind=spec.kind,
    )
    result = run_experiment(
        fid, solution, seed=seed, pre_ops=n_pre, post_ops=n_post,
        supervised=True, inject_plan=plan,
        max_crash_retries=max_crash_retries,
    )
    run = result.mitigation
    if run is None:
        cell.notes = "experiment produced no mitigation"
        return cell
    cell.fired = bool(plan.fired)
    cell.recovered = run.recovered
    cell.consistent = run.consistent
    cell.recovery_seconds = run.duration_seconds
    if run.ladder is not None:
        v = run.ladder.get("verification", {})
        cell.pool_ok = bool(v.get("pool_ok"))
        cell.checksum_quarantined = int(v.get("checksum_quarantined", 0))
        cell.pool_digest = int(v.get("pool_digest", 0))
        cell.crash_retries = int(run.ladder.get("crash_retries", 0))
        cell.recovered_by = run.ladder.get("recovered_by")
        if "unrecoverable" in run.ladder:
            cell.notes = str(run.ladder["unrecoverable"]["reason"])
    if not cell.fired:
        cell.notes = "injection site never reached"
    return cell


def run_sweep(
    fids: Sequence[str] = DEFAULT_FAULTS,
    solution: str = DEFAULT_SOLUTION,
    kinds: Sequence[str] = PIPELINE_KINDS,
    seed: int = 0,
    max_per_site: int = 3,
    pre_ops: Optional[int] = None,
    post_ops: Optional[int] = None,
    progress: Optional[Callable[[SweepCell], None]] = None,
) -> SweepReport:
    """Discover sites for each fault, then run every enumerated cell."""
    report = SweepReport(
        solution=solution, seed=seed, kinds=list(kinds),
        max_per_site=max_per_site,
    )
    t0 = time.time()
    for fid in fids:
        counts, _baseline = discover_sites(
            fid, solution, seed=seed, pre_ops=pre_ops, post_ops=post_ops
        )
        report.sites[fid] = counts
        for spec in enumerate_cells(
            counts, kinds=kinds, max_per_site=max_per_site, seed=seed
        ):
            cell = run_cell(
                fid, spec, solution=solution, seed=seed,
                pre_ops=pre_ops, post_ops=post_ops,
            )
            report.cells.append(cell)
            if progress is not None:
                progress(cell)
    report.wall_seconds = time.time() - t0
    return report
