"""Hot-path micro-benchmarks: indexed reactor vs the seed linear scans.

Three measurements feed ``results/BENCH_hotpaths.json`` so later PRs have
a perf trajectory:

* **plan** — ``compute_plan`` (slice x trace x log join) over a large
  synthetic checkpoint log, repeated for the harness's up-to-4 planning
  rounds, against a reference path that joins through
  :mod:`repro.checkpoint.reference` and re-slices every round (the seed
  had no PDG memoization);
* **mitigation** — purge, rollback and bisect strategies executed by the
  production :class:`~repro.reactor.revert.Reverter` and by
  :class:`~repro.checkpoint.reference.LinearScanReverter` on *identical*
  synthetic states; the durable pool image and allocator metadata must
  come out byte-identical, otherwise the run aborts;
* **vm** — raw PMLang interpreter throughput (steps/second), recorded
  trajectory-only (no reference implementation is kept for the old
  if/elif dispatch chain).

The synthetic state is built directly against the pool/allocator/log —
no interpreter in the loop — so the log size is an exact parameter.  It
contains everything the hot paths branch on: multi-version entries with
evicted history, sub-range persists sharing a base address, transaction
groups, alloc/free churn (a populated free index), a realloc link, and
one reversion whose pre-image holds a pointer into freed memory (forcing
the dangling-pointer guard through ``newest_free_covering``).
"""

from __future__ import annotations

import gc
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import AnalysisResult, analyze_module
from repro.analysis.slicing import backward_slice
from repro.checkpoint import reference
from repro.checkpoint.log import MAX_VERSIONS, CheckpointLog
from repro.checkpoint.reference import LinearScanReverter
from repro.detector.monitor import Detector, RunOutcome
from repro.instrument.guids import GuidMap
from repro.instrument.passes import instrument_module
from repro.instrument.tracer import PMTrace
from repro.lang.compiler import compile_module
from repro.lang.interp import Machine
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.reactor.plan import (
    Candidate,
    PlanContext,
    ReversionPlan,
    compute_plan,
    distance_policy,
)
from repro.reactor.revert import Reverter

#: words per synthetic PM object
OBJ_WORDS = 4

#: non-victim candidates ahead of the real one in every plan; each costs
#: one failed reversion + re-execution before mitigation reaches the fix
N_DECOYS = 10


# ----------------------------------------------------------------------
# synthetic state
# ----------------------------------------------------------------------
@dataclass
class SynthState:
    """One reproducible pool + allocator + checkpoint-log instance."""

    pool: PMPool
    allocator: PMAllocator
    log: CheckpointLog
    objects: List[int]
    victim: int
    good: Tuple[int, ...]
    victim_seq: int
    candidates: List[Candidate] = field(default_factory=list)

    def reexec(self) -> Callable[[], RunOutcome]:
        """Re-execution check: the victim object holds its good image."""

        def fn() -> RunOutcome:
            ok = all(
                self.pool.durable_read(self.victim + i) == self.good[i]
                for i in range(OBJ_WORDS)
            )
            return RunOutcome(ok=ok)

        return fn

    def make_plan(self) -> ReversionPlan:
        """The fixed candidate list: decoys first, the real fix last."""
        return ReversionPlan(fault_iid=0, candidates=list(self.candidates))

    def durable_image(self) -> Tuple[Dict[int, int], dict]:
        """Everything a mitigation can change, for equality checks."""
        return self.pool.durable_items(), self.allocator.export_meta()


def build_synthetic_state(
    n_updates: int,
    seed: int = 0,
    n_objects: Optional[int] = None,
    max_versions: int = MAX_VERSIONS,
    n_decoys: int = N_DECOYS,
) -> SynthState:
    """Deterministically build a pool whose log holds ``n_updates`` updates.

    The same ``(n_updates, seed)`` always produces the same durable image
    and event stream, so two reverter implementations can be run on two
    fresh builds and their final states compared word-for-word.
    """
    rng = random.Random(seed)
    if n_objects is None:
        n_objects = max(64, n_updates // 4)
    n_churn = max(4, n_objects // 64)
    pool = PMPool(
        (n_objects + n_churn + 8) * OBJ_WORDS + 1024, name="hotpaths"
    )
    allocator = PMAllocator(pool)
    log = CheckpointLog(max_versions=max_versions)

    objects: List[int] = []
    for _ in range(n_objects):
        addr = allocator.zalloc(OBJ_WORDS, site="synth-obj")
        log.record_alloc(addr, OBJ_WORDS)
        objects.append(addr)

    # churn blocks freed again: populates the free-event index and leaves
    # blocks that old pointers may dangle into
    freed: List[int] = []
    for _ in range(n_churn):
        addr = allocator.zalloc(OBJ_WORDS, site="synth-churn")
        log.record_alloc(addr, OBJ_WORDS)
        allocator.free(addr)
        log.record_free(addr, OBJ_WORDS)
        freed.append(addr)

    # one realloc-linked pair, so the entry table carries incarnation links
    moved = allocator.zalloc(OBJ_WORDS, site="synth-realloc")
    log.record_alloc(moved, OBJ_WORDS)
    log.link_realloc(objects[0], moved)
    objects.append(moved)

    # the bulk update stream: mostly whole-object persists, some
    # field-granular sub-ranges (their own entries), occasional tx groups
    tx_id = 0
    in_tx = 0
    for _ in range(n_updates):
        base = objects[rng.randrange(len(objects))]
        if rng.random() < 0.15:
            off = rng.randrange(OBJ_WORDS)
            size = rng.randrange(1, OBJ_WORDS - off + 1)
        else:
            off, size = 0, OBJ_WORDS
        addr = base + off
        values = [rng.randrange(1, 1 << 20) for _ in range(size)]
        if in_tx == 0 and rng.random() < 0.02:
            tx_id += 1
            in_tx = rng.randrange(2, 5)
            log.record_tx_begin(tx_id)
        for j, v in enumerate(values):
            pool.durable_write(addr + j, v)
        log.record_update(addr, size, values, tx_id=tx_id if in_tx else 0)
        if in_tx:
            in_tx -= 1
            if in_tx == 0:
                log.record_tx_commit(tx_id)

    # the fault: a good image persisted, then a bad one on top — followed
    # by the decoy updates, so rollback cuts at the decoys do NOT reach
    # the bad update and mitigation needs several iterations
    picked = rng.sample(objects[:n_objects], n_decoys + 1)
    victim, decoy_objs = picked[0], picked[1:]
    good = tuple(rng.randrange(1, 1 << 20) for _ in range(OBJ_WORDS))
    for j, v in enumerate(good):
        pool.durable_write(victim + j, v)
    log.record_update(victim, OBJ_WORDS, list(good))
    bad = [v + 1 for v in good]
    for j, v in enumerate(bad):
        pool.durable_write(victim + j, v)
    victim_seq = log.record_update(victim, OBJ_WORDS, bad)

    candidates: List[Candidate] = []
    for k, base in enumerate(decoy_objs):
        if k == 0:
            # pre-image holding a pointer into a freed block: reverting
            # this decoy must take the dangling-pointer guard and revert
            # the covering free as well
            pre = [freed[0], 7, 7, 7]
        else:
            pre = [rng.randrange(1, 1 << 20) for _ in range(OBJ_WORDS)]
        for j, v in enumerate(pre):
            pool.durable_write(base + j, v)
        log.record_update(base, OBJ_WORDS, pre)
        cur = [rng.randrange(1, 1 << 20) for _ in range(OBJ_WORDS)]
        for j, v in enumerate(cur):
            pool.durable_write(base + j, v)
        seq = log.record_update(base, OBJ_WORDS, cur)
        candidates.append(
            Candidate(seq=seq, addr=base, guid=f"synth-{k}", slice_iid=k)
        )
    candidates.append(
        Candidate(
            seq=victim_seq, addr=victim, guid="synth-victim",
            slice_iid=n_decoys,
        )
    )

    return SynthState(
        pool=pool,
        allocator=allocator,
        log=log,
        objects=objects,
        victim=victim,
        good=good,
        victim_seq=victim_seq,
        candidates=candidates,
    )


# ----------------------------------------------------------------------
# mitigation benchmark
# ----------------------------------------------------------------------
def bench_mitigation(
    n_updates: int,
    seed: int = 0,
    modes: Tuple[str, ...] = ("purge", "rollback", "bisect"),
) -> Dict[str, Dict[str, object]]:
    """Time each strategy under both reverters on identical fresh states.

    Raises when a strategy fails to recover or when the two final durable
    images differ — the speedup numbers are only meaningful if the fast
    path is exact.
    """
    out: Dict[str, Dict[str, object]] = {}
    for mode in modes:
        row: Dict[str, object] = {}
        images = {}
        for name, cls in (("indexed", Reverter), ("reference", LinearScanReverter)):
            state = build_synthetic_state(n_updates, seed=seed)
            reverter = cls(state.log, state.pool, state.allocator, state.reexec())
            start = time.perf_counter()
            result = getattr(reverter, "mitigate_" + mode)(state.make_plan())
            row[name + "_seconds"] = time.perf_counter() - start
            if not result.recovered:
                raise RuntimeError(f"{name} {mode} did not recover")
            row[name + "_attempts"] = result.attempts
            images[name] = state.durable_image()
        if images["indexed"] != images["reference"]:
            raise RuntimeError(f"{mode}: divergent final pool state")
        row["pool_identical"] = True
        row["speedup"] = (
            row["reference_seconds"] / max(row["indexed_seconds"], 1e-9)
        )
        out[mode] = row
    return out


# ----------------------------------------------------------------------
# probe-engine benchmark
# ----------------------------------------------------------------------
def bench_probe_engine(n_updates: int, seed: int = 0) -> Dict[str, object]:
    """Incremental probe engine vs the snapshot-restore oracle.

    Runs the *same* production :class:`~repro.reactor.revert.Reverter`
    bisect twice on identical fresh states — once with the incremental
    delta engine (per-probe cost O(words dirtied)), once with the
    snapshot oracle (full-pool restore + prefix replay per probe) — and
    requires the final durable image, allocator metadata and every
    ``MitigationResult`` field to come out identical.  The two engines
    share the search and memoization logic, so any divergence is a state
    -movement bug, and the run aborts rather than report a speedup.
    """
    rows: Dict[str, object] = {}
    images = {}
    outcomes = {}
    for engine in ("incremental", "snapshot"):
        state = build_synthetic_state(n_updates, seed=seed)
        reverter = Reverter(
            state.log, state.pool, state.allocator, state.reexec()
        )
        start = time.perf_counter()
        result = reverter.mitigate_bisect(state.make_plan(), engine=engine)
        rows[engine + "_seconds"] = time.perf_counter() - start
        if not result.recovered:
            raise RuntimeError(f"bisect ({engine} engine) did not recover")
        images[engine] = state.durable_image()
        outcomes[engine] = (
            result.attempts,
            result.reverted_seqs,
            result.recovered,
            result.notes,
        )
    if images["incremental"] != images["snapshot"]:
        raise RuntimeError("probe engines left divergent pool state")
    if outcomes["incremental"] != outcomes["snapshot"]:
        raise RuntimeError("probe engines disagree on the MitigationResult")
    rows["pool_identical"] = True
    rows["attempts"] = outcomes["incremental"][0]
    rows["reverted_updates"] = len(outcomes["incremental"][1])
    rows["speedup"] = (
        rows["snapshot_seconds"] / max(rows["incremental_seconds"], 1e-9)
    )
    return rows


# ----------------------------------------------------------------------
# plan benchmark
# ----------------------------------------------------------------------
#: small program whose fault slice contains several PM instructions; its
#: GUIDs are then mapped (via a synthetic trace) onto the big log
_PLAN_SRC = '''
def init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("hdr"))
        root.hdr_flag = 0
        root.hdr_lo = 0
        root.hdr_hi = 0
        persist(root, sizeof("hdr"))
        set_root(root)
    return root


def poke(root, v):
    root.hdr_flag = v
    persist(addr(root.hdr_flag), 1)
    return v


def mix(root, v):
    root.hdr_lo = v
    root.hdr_hi = root.hdr_lo + root.hdr_flag
    persist(addr(root.hdr_lo), 2)
    return v


def check(root):
    assert_true(root.hdr_flag == 0, "bad flag")
    return root.hdr_hi


def __driver__():
    root = init()
    poke(root, 0)
    mix(root, 1)
    check(root)
    return 0
'''

_PLAN_STRUCTS = {"hdr": ["hdr_flag", "hdr_lo", "hdr_hi"]}


def _plan_fixture() -> Tuple[AnalysisResult, GuidMap, int]:
    """Compile/analyze the probe program and trigger its fault."""
    module = compile_module("hotpaths", _PLAN_SRC, structs=_PLAN_STRUCTS)
    analysis = analyze_module(module)
    guid_map, _ = instrument_module(module, analysis.pm)
    machine = Machine(module)
    root = machine.call("init")
    machine.call("mix", root, 1)
    machine.call("poke", root, 1)  # the bad persisted flag
    outcome = Detector().observe(machine, lambda: machine.call("check", root))
    if outcome.ok or outcome.fault is None:
        raise RuntimeError("plan fixture failed to fault")
    return analysis, guid_map, outcome.fault.iid


def _synthetic_trace(
    analysis: AnalysisResult,
    guid_map: GuidMap,
    fault_iid: int,
    log: CheckpointLog,
    rng: random.Random,
    addrs_per_guid: int,
) -> Tuple[PMTrace, int]:
    """Map every traced slice GUID onto random addresses of the big log."""
    pm_iids = sorted(
        iid
        for iid in backward_slice(analysis.pdg, fault_iid)
        if analysis.pm.is_pm_instr(iid) and guid_map.guid_of(iid) is not None
    )
    bases = [entry.address for entry in log.entries.values()]
    trace = PMTrace()
    for iid in pm_iids:
        guid = guid_map.guid_of(iid)
        for _ in range(addrs_per_guid):
            base = bases[rng.randrange(len(bases))]
            trace.record(guid, base + rng.randrange(OBJ_WORDS))
    trace.flush()
    return trace, len(pm_iids)


def _reference_compute_plan(
    analysis: AnalysisResult,
    guid_map: GuidMap,
    trace: PMTrace,
    log: CheckpointLog,
    fault_iid: int,
    policy,
) -> ReversionPlan:
    """The seed planning path: re-slice every round (no PDG memoization)
    and join each traced address through the full-entry-table scan."""
    analysis.pdg._slice_cache.clear()
    analysis.pdg._dist_cache.clear()
    trace.flush()
    full_slice = backward_slice(analysis.pdg, fault_iid)
    pm_nodes = {n for n in full_slice if analysis.pm.is_pm_instr(n)}
    candidates: List[Candidate] = []
    for iid in pm_nodes:
        guid = guid_map.guid_of(iid)
        if guid is None:
            continue
        for addr in trace.addresses_for_guid(guid):
            for seq in reference.update_seqs_for_address(log, addr):
                candidates.append(
                    Candidate(seq=seq, addr=addr, guid=guid, slice_iid=iid)
                )
    ctx = PlanContext(analysis=analysis, fault_iid=fault_iid)
    ordered = policy(candidates, ctx)
    return ReversionPlan(
        fault_iid=fault_iid,
        candidates=ordered,
        slice_size=len(full_slice),
        pm_slice_size=len(pm_nodes),
    )


def bench_plan(
    n_updates: int,
    seed: int = 0,
    rounds: int = 4,
    addrs_per_guid: Optional[int] = None,
) -> Dict[str, object]:
    """Time ``rounds`` planning requests, indexed vs reference.

    ``rounds`` models the harness's detector/reactor loop, which re-plans
    the same fault up to four times per mode.  The two paths must produce
    the same candidate sequence, or the run aborts.
    """
    state = build_synthetic_state(n_updates, seed=seed)
    analysis, guid_map, fault_iid = _plan_fixture()
    rng = random.Random(seed + 1)
    if addrs_per_guid is None:
        addrs_per_guid = max(8, min(32, n_updates // 3000))
    trace, n_guids = _synthetic_trace(
        analysis, guid_map, fault_iid, state.log, rng, addrs_per_guid
    )
    policy = distance_policy()

    analysis.pdg._slice_cache.clear()
    analysis.pdg._dist_cache.clear()
    start = time.perf_counter()
    for _ in range(rounds):
        plan = compute_plan(
            analysis, guid_map, trace, state.log, fault_iid, policy=policy
        )
    indexed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        ref_plan = _reference_compute_plan(
            analysis, guid_map, trace, state.log, fault_iid, policy
        )
    reference_seconds = time.perf_counter() - start

    if [c.seq for c in plan.candidates] != [c.seq for c in ref_plan.candidates]:
        raise RuntimeError("indexed and reference plans disagree")
    return {
        "rounds": rounds,
        "traced_guids": n_guids,
        "addrs_per_guid": addrs_per_guid,
        "candidates": len(plan.candidates),
        "indexed_seconds": indexed_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / max(indexed_seconds, 1e-9),
    }


# ----------------------------------------------------------------------
# checkpoint write-path benchmark
# ----------------------------------------------------------------------
def _replay_write_stream(log: CheckpointLog, n_updates: int, seed: int) -> float:
    """Drive one deterministic event stream into ``log``; returns seconds.

    The stream mirrors the synthetic-state mix: mostly whole-object
    persists over a shared address set, 15% field-granular sub-ranges,
    occasional transaction groups, plus alloc/free churn so every
    incrementally maintained index (entry addresses, free events, live
    allocations) sees traffic.
    """
    rng = random.Random(seed)
    n_objects = max(64, n_updates // 4)
    bases = [16 + i * OBJ_WORDS for i in range(n_objects)]
    churn_base = 16 + n_objects * OBJ_WORDS
    tx_id = 0
    in_tx = 0
    start = time.perf_counter()
    for i in range(n_updates):
        base = bases[rng.randrange(len(bases))]
        if rng.random() < 0.15:
            off = rng.randrange(OBJ_WORDS)
            size = rng.randrange(1, OBJ_WORDS - off + 1)
        else:
            off, size = 0, OBJ_WORDS
        values = [rng.randrange(1, 1 << 20) for _ in range(size)]
        if in_tx == 0 and rng.random() < 0.02:
            tx_id += 1
            in_tx = rng.randrange(2, 5)
            log.record_tx_begin(tx_id)
        log.record_update(base + off, size, values, tx_id=tx_id if in_tx else 0)
        if in_tx:
            in_tx -= 1
            if in_tx == 0:
                log.record_tx_commit(tx_id)
        if rng.random() < 0.01:
            addr = churn_base + (i % 256) * OBJ_WORDS
            log.record_alloc(addr, OBJ_WORDS)
            log.record_free(addr, OBJ_WORDS)
    return time.perf_counter() - start


def _persist_hook_throughput(log_factory, n_persists: int, seed: int) -> float:
    """Seconds for ``n_persists`` full write+persist cycles with the
    checkpoint manager attached (the Figure 12 runtime-overhead path)."""
    from repro.checkpoint.manager import CheckpointManager
    from repro.pmem.tx import TransactionManager

    n_objects = 256
    pool = PMPool((n_objects + 8) * OBJ_WORDS + 1024, name="writepath")
    allocator = PMAllocator(pool)
    txman = TransactionManager(pool)
    manager = CheckpointManager(pool, allocator, txman, log=log_factory())
    manager.attach()
    addrs = [allocator.zalloc(OBJ_WORDS, site="wp-obj") for _ in range(n_objects)]
    rng = random.Random(seed)
    start = time.perf_counter()
    for _ in range(n_persists):
        addr = addrs[rng.randrange(n_objects)]
        for j in range(OBJ_WORDS):
            pool.write(addr + j, rng.randrange(1, 1 << 20))
        pool.persist(addr, OBJ_WORDS)
    seconds = time.perf_counter() - start
    if manager.updates_recorded != n_persists:  # pragma: no cover - sanity
        raise RuntimeError("persist hook missed updates")
    return seconds


def _replay_ycsb_updates(log: CheckpointLog, ops) -> float:
    """Drive pre-generated (addr, values) updates into ``log``.

    The timed region is only a few milliseconds at quick scale, so one
    gen-2 collection over the heap the earlier bench sections leave
    behind would dwarf the measurement: collect up front and keep the
    collector out of the timed loop.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        for addr, values in ops:
            log.record_update(addr, OBJ_WORDS, values)
        return time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def _bench_write_path_ycsb(
    n_updates: int, seed: int, keyspace: int = 4096, theta: float = 0.99
) -> Dict[str, object]:
    """Skewed-key write path: YCSB zipfian keys instead of uniform bases.

    The uniform stream of :func:`_replay_write_stream` touches every
    entry about equally; real KV workloads hammer a hot set, which is
    exactly where per-entry state (version rings, pending slabs) either
    pays off or piles up.  Keys and values are pre-generated outside the
    timed region.
    """
    from repro.checkpoint.reference import SeedWriteLog
    from repro.workloads.ycsb import zipf_keys

    keys = zipf_keys(n_updates, keyspace, theta, seed)
    # micro-assert: the memoized zipf CDF must not change a single draw
    # relative to the from-scratch build (the serving stream relies on
    # identical key sequences for its digest-determinism guarantees)
    probe = min(n_updates, 2_000)
    if keys[:probe] != zipf_keys(probe, keyspace, theta, seed, use_cache=False):
        raise RuntimeError("cached zipf CDF diverged from uncached draws")
    rng = random.Random(seed + 7)
    ops = [
        (16 + k * OBJ_WORDS,
         [rng.randrange(1, 1 << 20) for _ in range(OBJ_WORDS)])
        for k in keys
    ]
    indexed = _replay_ycsb_updates(CheckpointLog(), ops)
    seed_s = _replay_ycsb_updates(SeedWriteLog(), ops)
    return {
        "keyspace": keyspace,
        "theta": theta,
        "n_updates": n_updates,
        "indexed_seconds": indexed,
        "seed_seconds": seed_s,
        "indexed_updates_per_second": n_updates / max(indexed, 1e-9),
        "seed_updates_per_second": n_updates / max(seed_s, 1e-9),
        "index_overhead_pct":
            100.0 * (indexed - seed_s) / max(seed_s, 1e-9),
    }


def _staged_eager_smoke(n_updates: int, seed: int) -> bool:
    """Equivalence smoke: the staged write path must leave the same
    logical log as the eager oracle (``staging_limit=1`` merges every
    record immediately).  Raises rather than report timings over a
    divergent log."""
    staged = CheckpointLog()
    eager = CheckpointLog(staging_limit=1)
    n = min(n_updates, 10_000)
    _replay_write_stream(staged, n, seed)
    _replay_write_stream(eager, n, seed)
    if staged.structural_digest() != eager.structural_digest():
        raise RuntimeError("staged write path diverged from the eager oracle")
    return True


def bench_write_path(n_updates: int, seed: int = 0) -> Dict[str, object]:
    """Checkpoint *write-path* cost: indexed log vs the seed record path.

    PR 1's reactor indexes are maintained incrementally inside
    ``record_update``/``record_alloc``/``record_free``; since the staged
    merge landed they are absorbed from a flat staging buffer at query
    time or every ``staging_limit`` records, so the hot write path only
    pays an array append.  This times the identical event stream against
    the production :class:`~repro.checkpoint.log.CheckpointLog` and
    against :class:`~repro.checkpoint.reference.SeedWriteLog` (the
    index-free seed path), as raw ``record_update`` calls (uniform and
    YCSB-zipfian key patterns) and end-to-end through the pool's persist
    hook — after a staged-vs-eager structural-digest smoke that aborts
    the bench if the deferred merge is not exact.
    """
    from repro.checkpoint.reference import SeedWriteLog

    staged_eager_identical = _staged_eager_smoke(n_updates, seed)
    indexed_rec = _replay_write_stream(CheckpointLog(), n_updates, seed)
    seed_rec = _replay_write_stream(SeedWriteLog(), n_updates, seed)
    n_persists = min(n_updates, 20_000)
    indexed_hook = _persist_hook_throughput(CheckpointLog, n_persists, seed)
    seed_hook = _persist_hook_throughput(SeedWriteLog, n_persists, seed)
    return {
        "n_updates": n_updates,
        "n_persists": n_persists,
        "staged_eager_identical": staged_eager_identical,
        "ycsb": _bench_write_path_ycsb(n_updates, seed),
        "record_update": {
            "indexed_seconds": indexed_rec,
            "seed_seconds": seed_rec,
            "indexed_updates_per_second": n_updates / max(indexed_rec, 1e-9),
            "seed_updates_per_second": n_updates / max(seed_rec, 1e-9),
            "index_overhead_pct":
                100.0 * (indexed_rec - seed_rec) / max(seed_rec, 1e-9),
        },
        "persist_hook": {
            "indexed_seconds": indexed_hook,
            "seed_seconds": seed_hook,
            "indexed_persists_per_second": n_persists / max(indexed_hook, 1e-9),
            "seed_persists_per_second": n_persists / max(seed_hook, 1e-9),
            "index_overhead_pct":
                100.0 * (indexed_hook - seed_hook) / max(seed_hook, 1e-9),
        },
    }


# ----------------------------------------------------------------------
# parallel-matrix benchmark
# ----------------------------------------------------------------------
def bench_matrix_sweep(
    jobs: Optional[int] = None,
    fids: Optional[List[str]] = None,
    solutions: Optional[List[str]] = None,
    seeds: Tuple[int, ...] = (0,),
) -> Dict[str, object]:
    """Wall-clock of the experiment matrix, serial loop vs process pool.

    Runs the same cell set twice — ``jobs=1`` (the exact serial path)
    and ``jobs=N`` (default: CPU count) — and *requires* the two sweeps
    to produce summary-identical cells; the timing is only meaningful if
    the fan-out is exact.  Speedup scales with available cores: on a
    single-CPU host the pool adds spawn overhead and the ratio sits
    near (or below) 1.
    """
    from repro.harness.matrix import (
        comparable_summary,
        expand_matrix,
        run_matrix,
    )

    n_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    specs = expand_matrix(fids=fids, solutions=solutions, seeds=seeds)
    serial = run_matrix(specs, jobs=1)
    parallel = run_matrix(specs, jobs=n_jobs)
    ser = {k: comparable_summary(v) for k, v in serial.summaries().items()}
    par = {k: comparable_summary(v) for k, v in parallel.summaries().items()}
    if ser != par:
        diverged = [k for k in ser if ser[k] != par.get(k)]
        raise RuntimeError(
            "parallel matrix diverged from the serial loop — fan-out bug: "
            + ", ".join("/".join(map(str, k)) for k in diverged[:8])
        )
    if serial.n_errors or parallel.n_errors:
        raise RuntimeError("matrix sweep had error cells; timings invalid")
    return {
        "cells": len(specs),
        "seeds": list(seeds),
        "jobs": n_jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial.wall_seconds,
        "parallel_seconds": parallel.wall_seconds,
        "speedup": serial.wall_seconds / max(parallel.wall_seconds, 1e-9),
        "summaries_identical": True,
    }


# ----------------------------------------------------------------------
# injection-sweep benchmark
# ----------------------------------------------------------------------
def bench_inject_sweep(
    fids: Optional[List[str]] = None,
    solution: str = "arthas-rb",
    seed: int = 0,
    max_per_site: int = 1,
) -> Dict[str, object]:
    """Robustness trajectory: the fault-injection sweep's headline row.

    Runs :func:`repro.harness.inject_sweep.run_sweep` (one occurrence
    per (site family, fault kind) by default — the CI ``--quick`` shape)
    and reports the sites enumerated, the recovery success rate and the
    mean simulated recovery time.  The bench *requires* 100%
    verification: a regression here is a correctness bug, not a
    slowdown, so it aborts the report rather than record a bad rate.
    """
    from repro.harness.inject_sweep import DEFAULT_FAULTS, run_sweep

    report = run_sweep(
        fids=list(fids) if fids is not None else list(DEFAULT_FAULTS),
        solution=solution, seed=seed, max_per_site=max_per_site,
    )
    if not report.all_verified:
        raise RuntimeError(
            "inject-sweep bench left unverified cells: "
            + ", ".join(c.label for c in report.failures()[:8])
        )
    return report.to_json()


# ----------------------------------------------------------------------
# VM throughput benchmark
# ----------------------------------------------------------------------
_VM_SRC = '''
def spin(n):
    s = 0
    for i in range(n):
        s = s + i * 3
        s = s ^ (i << 1)
        if s > 1000000:
            s = s % 65536
    return s
'''


def bench_vm(n_iters: int = 50_000) -> Dict[str, object]:
    """Interpreter steps/second on a pure-compute loop (dispatch cost).

    Runs the *same* module through both VM engines — the table-dispatch
    oracle and the fused superinstruction/segment compiler — and
    requires identical results and step counts; the fused engine is the
    headline number, the ratio is the dispatch-elimination payoff.
    """
    module = compile_module("vmspin", _VM_SRC)
    rows: Dict[str, Dict[str, float]] = {}
    outcomes = {}
    for engine in ("table", "fused"):
        machine = Machine(module, vm_engine=engine)
        start = time.perf_counter()
        result = machine.call("spin", n_iters, step_budget=100 * n_iters)
        seconds = time.perf_counter() - start
        outcomes[engine] = (result, machine.steps_executed)
        rows[engine] = {
            "steps": machine.steps_executed,
            "seconds": seconds,
            "steps_per_second": machine.steps_executed / max(seconds, 1e-9),
        }
    if outcomes["table"] != outcomes["fused"]:
        raise RuntimeError(
            f"vm engines diverged: table {outcomes['table']} vs "
            f"fused {outcomes['fused']}"
        )
    fused, table = rows["fused"], rows["table"]
    return {
        "steps": fused["steps"],
        "seconds": fused["seconds"],
        "steps_per_second": fused["steps_per_second"],
        "table_seconds": table["seconds"],
        "table_steps_per_second": table["steps_per_second"],
        "fused_speedup":
            fused["steps_per_second"] / max(table["steps_per_second"], 1e-9),
        "engines_identical": True,
    }


# ----------------------------------------------------------------------
# live-traffic serving benchmark
# ----------------------------------------------------------------------
def _live_traffic_side(report: Dict[str, object]) -> Dict[str, object]:
    """The per-mode slice of a serving report the bench keeps."""
    return {
        "wall_seconds": report["wall_seconds"],
        "latency": report["latency"],
        "during_mitigation": report["during_mitigation"],
        "detection_backlog": report["detection_backlog"],
        "steady": report["steady"],
        "error_budget": report["error_budget"],
        "quarantine": {
            "ranges": report["quarantine"]["ranges"],
            "locked_words": report["quarantine"]["locked_words"],
            "stream_keys": len(report["quarantine"]["stream_keys"]),
        },
        "mitigation_wall_seconds": report["mitigation"]["wall_seconds"],
        "analysis_seconds": report["mitigation"]["analysis_seconds"],
        "reactor_requests": report["mitigation"]["reactor_requests"],
    }


def bench_live_traffic(
    fid: str = "f1",
    solution: str = "arthas-bi",
    seed: int = 0,
    n_requests: int = 300,
    arrival_period_s: float = 0.003,
    keyspace: int = 192,
    detect_every: int = 8,
    release_after: int = 120,
) -> Dict[str, object]:
    """p50/p99/p999 under fire: quarantine-scoped vs stop-the-world.

    Runs the same YCSB stream against the live recovery server twice —
    once serving non-quarantined traffic through mitigation windows
    (range-scoped quarantine, cooperative chunking) and once stalling
    every request until mitigation finishes — and reports the latency
    split for requests that *arrived during an open mitigation window*.
    The two paths must leave byte-identical pool digests and both must
    recover; the bench aborts on a mismatch because the latency numbers
    would then compare different recoveries.
    """
    from repro.reactor.server import LiveRecoveryServer

    sides: Dict[str, Dict[str, object]] = {}
    for mode in ("quarantine", "stop-the-world"):
        server = LiveRecoveryServer(
            fid, solution=solution, seed=seed, mode=mode,
            keyspace=keyspace, detect_every=detect_every,
            release_after=release_after,
        )
        sides[mode] = server.run_sync(
            n_requests, arrival_period_s=arrival_period_s
        )
    scoped, stw = sides["quarantine"], sides["stop-the-world"]
    for label, rep in sides.items():
        if not rep["mitigation"]["recovered"] or rep["unavailable"]:
            raise RuntimeError(
                f"live-traffic bench: {label} serving did not recover"
            )
    if (
        scoped["digest_after_mitigation"] != stw["digest_after_mitigation"]
        or scoped["final_digest"] != stw["final_digest"]
    ):
        raise RuntimeError(
            "live-traffic bench: scoped and stop-the-world serving left "
            "different pool digests — the quarantine path corrupted state"
        )

    def ratio(which: str) -> float:
        denom = float(scoped["during_mitigation"][which])
        return float(stw["during_mitigation"][which]) / max(denom, 1e-9)

    return {
        "fid": fid,
        "solution": solution,
        "seed": seed,
        "n_requests": n_requests,
        "arrival_period_s": arrival_period_s,
        "keyspace": keyspace,
        "quarantine": _live_traffic_side(scoped),
        "stop_the_world": _live_traffic_side(stw),
        "stw_over_scoped_p50_ratio": ratio("p50"),
        "stw_over_scoped_p99_ratio": ratio("p99"),
        "stw_over_scoped_p999_ratio": ratio("p999"),
        "digests_identical": True,
        "recovered": True,
    }


# ----------------------------------------------------------------------
# cluster replication engines: physical delta shipping vs re-execution
# ----------------------------------------------------------------------
def bench_cluster(
    n_ops: int = 200,
    seed: int = 0,
    n_nodes: int = 3,
    rounds: int = 5,
) -> Dict[str, object]:
    """Cluster write path: delta shipping vs replica re-execution.

    Runs one deterministic mixed workload (inserts, deletes, lookups,
    derived inserts) through a fresh cluster per configuration —
    re-execution at replication 1 (the no-replication floor: one guest
    execution per op), re-execution and delta at replication 2 and 3 —
    and a heal comparison: rebuilding a node by full oplog re-execution
    versus installing the compacted base image plus delta tail.

    ``repl_speedup`` isolates what the engines actually differ on, the
    *replication* path: time above the replication-1 floor, reexec over
    delta.  ``client_speedup`` is the honest end-to-end ratio — bounded
    well under the replication-path number because the primary still
    executes the guest once per op under either engine.

    At replication 3 the two engines must leave byte-identical per-node
    pool digests and equal structural digests; the bench aborts on a
    mismatch because the throughput numbers would then compare diverged
    clusters.
    """
    from repro.distributed.cluster import Cluster, ClusterClient
    from repro.faults.registry import scenario_by_id
    from repro.harness.supervisor import pool_digest

    adapter_cls = scenario_by_id("f1").adapter_cls()

    def run(engine: str, replication: int) -> Tuple[Cluster, float]:
        cluster = Cluster(
            n_nodes=n_nodes, n_clients=2, adapter_cls=adapter_cls,
            seed=seed, replication=replication,
            replication_engine=engine,
        )
        clients = [ClusterClient(cluster, i) for i in range(2)]
        rng = random.Random(seed)
        keyspace = max(16, n_ops // 2)
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            for i in range(n_ops):
                key = rng.randrange(keyspace)
                roll = rng.random()
                if roll < 0.55:
                    clients[i % 2].insert(key, 700 + i)
                elif roll < 0.75:
                    clients[i % 2].lookup(key)
                elif roll < 0.90:
                    clients[1].derived_insert(key, key + keyspace)
                else:
                    clients[0].delete(key)
            cluster.drain()
            return cluster, time.perf_counter() - t0
        finally:
            gc.enable()

    def digests(cluster: Cluster) -> List[Tuple[int, int]]:
        cluster.drain()
        return [
            (pool_digest(node.pool, node.allocator),
             node.ckpt.log.structural_digest())
            for node in cluster.nodes
        ]

    configs = (
        ("reexec", 1),
        ("reexec", 2), ("delta", 2),
        ("reexec", 3), ("delta", 3),
    )
    # the replication-path ratio divides by the small gap between the
    # delta time and the replication-1 floor, so a single noisy round
    # would swing it wildly: time every configuration once per round
    # (paired — all five share the round's machine conditions), compute
    # the ratios per round, and report the median across rounds.  The
    # first round warms caches and is discarded.
    times: Dict[str, List[float]] = {}
    clusters: Dict[str, Cluster] = {}
    for round_no in range(rounds + 1):
        for engine, replication in configs:
            label = f"{engine}_r{replication}"
            cluster, took = run(engine, replication)
            if round_no == 0:
                continue
            clusters[label] = cluster
            times.setdefault(label, []).append(took)

    def median(values: List[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    throughput: Dict[str, Dict[str, float]] = {
        label: {
            "seconds": median(samples),
            "ops_per_second": n_ops / max(median(samples), 1e-9),
        }
        for label, samples in times.items()
    }
    if digests(clusters["reexec_r3"]) != digests(clusters["delta_r3"]):
        raise RuntimeError(
            "cluster bench: delta and re-execution engines left different "
            "per-node digests at replication 3 — the delta path diverged"
        )

    def repl_speedup(replication: int) -> float:
        ratios = [
            (reexec - floor) / max(delta - floor, 1e-9)
            for floor, reexec, delta in zip(
                times["reexec_r1"],
                times[f"reexec_r{replication}"],
                times[f"delta_r{replication}"],
            )
        ]
        return median(ratios)

    def client_speedup(replication: int) -> float:
        ratios = [
            reexec / max(delta, 1e-9)
            for reexec, delta in zip(
                times[f"reexec_r{replication}"],
                times[f"delta_r{replication}"],
            )
        ]
        return median(ratios)

    # heal: rebuild one node by full oplog re-execution vs installing
    # the compacted base + delta tail (both at full replication, so the
    # two heals re-derive the same op set); per-round timing, median
    # across rounds, same rationale as the throughput ratios
    full_samples: List[float] = []
    compacted_samples: List[float] = []
    for _ in range(max(rounds, 1)):
        reexec_cluster, _ = run("reexec", n_nodes)
        gc.collect()
        t0 = time.perf_counter()
        reexec_cluster.rebuild_node(1)
        replayed = reexec_cluster.replay_missed(1)
        full_samples.append(time.perf_counter() - t0)

        delta_cluster, _ = run("delta", n_nodes)
        folded = delta_cluster.compact()
        gc.collect()
        t0 = time.perf_counter()
        delta_cluster.rebuild_node(1)
        credited, _ = delta_cluster.rebase_node(1)
        compacted_samples.append(time.perf_counter() - t0)
        healed = [
            (pool_digest(node.pool, node.allocator),
             node.ckpt.log.structural_digest())
            for node in (delta_cluster.nodes[0], delta_cluster.nodes[1])
        ]
        if healed[0] != healed[1]:
            raise RuntimeError(
                "cluster bench: compacted rebase left the healed node "
                "diverged from its live mirror"
            )
    full_replay_s = median(full_samples)
    compacted_s = median(compacted_samples)

    return {
        "n_ops": n_ops,
        "n_nodes": n_nodes,
        "seed": seed,
        "throughput": throughput,
        "repl_speedup_r2": repl_speedup(2),
        "repl_speedup_r3": repl_speedup(3),
        "client_speedup_r2": client_speedup(2),
        "client_speedup_r3": client_speedup(3),
        "digests_identical": True,
        "heal": {
            "full_replay_s": full_replay_s,
            "compacted_s": compacted_s,
            "speedup": full_replay_s / max(compacted_s, 1e-9),
            "replayed_ops": replayed,
            "deltas_folded": folded,
            "credited_ops": credited,
        },
    }


# ----------------------------------------------------------------------
# top-level runner
# ----------------------------------------------------------------------
#: sections ``run_hotpaths(only=...)`` / ``bench-hotpaths --only`` accept
SECTIONS = (
    "plan", "mitigation", "probe_engine", "vm", "write_path",
    "live_traffic", "cluster",
)


def run_hotpaths(
    n_updates: int = 50_000,
    seed: int = 0,
    vm_iters: int = 50_000,
    rounds: int = 4,
    only: Optional[str] = None,
) -> Dict[str, object]:
    """Run the benchmarks; returns the JSON-ready report dict.

    ``only`` restricts the run to a single section (one of
    :data:`SECTIONS`) — the common iterate-on-one-hot-path loop.  A
    partial report omits the cross-section ``summary`` block, and
    :func:`write_report` merges it over the sections already on disk.
    """
    if only is not None and only not in SECTIONS:
        raise ValueError(f"unknown section {only!r}; pick from {SECTIONS}")

    def wanted(name: str) -> bool:
        return only is None or only == name

    report: Dict[str, object] = {
        "config": {
            "n_updates": n_updates,
            "seed": seed,
            "vm_iters": vm_iters,
            "plan_rounds": rounds,
            "decoys": N_DECOYS,
        },
    }
    if wanted("plan"):
        report["plan"] = bench_plan(n_updates, seed=seed, rounds=rounds)
    if wanted("mitigation"):
        report["mitigation"] = bench_mitigation(n_updates, seed=seed)
    if wanted("probe_engine"):
        report["probe_engine"] = bench_probe_engine(n_updates, seed=seed)
    if wanted("vm"):
        report["vm"] = bench_vm(vm_iters)
    if wanted("write_path"):
        report["write_path"] = bench_write_path(n_updates, seed=seed)
    if wanted("live_traffic"):
        report["live_traffic"] = bench_live_traffic(seed=seed)
    if wanted("cluster"):
        report["cluster"] = bench_cluster(
            n_ops=max(120, n_updates // 250), seed=seed
        )
    if only is not None:
        return report

    plan = report["plan"]
    mitigation = report["mitigation"]
    probe_engine = report["probe_engine"]
    vm = report["vm"]
    write_path = report["write_path"]
    indexed = float(plan["indexed_seconds"]) + sum(
        float(m["indexed_seconds"]) for m in mitigation.values()
    )
    ref = float(plan["reference_seconds"]) + sum(
        float(m["reference_seconds"]) for m in mitigation.values()
    )
    report["summary"] = {
        "indexed_plan_plus_mitigation_seconds": indexed,
        "reference_plan_plus_mitigation_seconds": ref,
        "plan_plus_mitigation_speedup": ref / max(indexed, 1e-9),
        "probe_engine_speedup": probe_engine["speedup"],
        "vm_steps_per_second": vm["steps_per_second"],
        "vm_fused_speedup": vm["fused_speedup"],
        "write_path_updates_per_second":
            write_path["record_update"]["indexed_updates_per_second"],
        "write_path_index_overhead_pct":
            write_path["record_update"]["index_overhead_pct"],
        "live_traffic_stw_over_scoped_p99_ratio":
            report["live_traffic"]["stw_over_scoped_p99_ratio"],
        "cluster_repl_speedup_r3": report["cluster"]["repl_speedup_r3"],
        "cluster_heal_speedup": report["cluster"]["heal"]["speedup"],
    }
    return report


def render_summary(report: Dict[str, object]) -> str:
    """Human-readable digest of one (possibly partial) report."""
    cfg = report["config"]
    lines = [
        f"hot-path benchmark ({cfg['n_updates']} log updates, "
        f"seed {cfg['seed']})",
    ]
    plan = report.get("plan")
    if plan is not None:
        lines.append(
            f"  plan ({plan['rounds']} rounds):  "
            f"indexed {plan['indexed_seconds']:.4f}s   "
            f"reference {plan['reference_seconds']:.4f}s   "
            f"({plan['speedup']:.1f}x)"
        )
    for mode, row in (report.get("mitigation") or {}).items():
        lines.append(
            f"  {mode:<8}:  indexed {row['indexed_seconds']:.4f}s   "
            f"reference {row['reference_seconds']:.4f}s   "
            f"({row['speedup']:.1f}x, pool identical)"
        )
    pe = report.get("probe_engine")
    if pe is not None:
        lines.append(
            f"  probes  :  incremental {pe['incremental_seconds']:.4f}s   "
            f"snapshot {pe['snapshot_seconds']:.4f}s   "
            f"({pe['speedup']:.1f}x, {pe['attempts']} attempts, "
            f"pool identical)"
        )
    vm = report.get("vm")
    if vm is not None:
        lines.append(
            f"  vm:        {vm['steps_per_second']:,.0f} steps/s fused "
            f"({vm['steps']} steps, {vm['fused_speedup']:.1f}x over table "
            f"at {vm['table_steps_per_second']:,.0f}/s, engines identical)"
        )
    wp = report.get("write_path")
    if wp is not None:
        rec, hook = wp["record_update"], wp["persist_hook"]
        lines.append(
            f"  write:     {rec['indexed_updates_per_second']:,.0f} "
            f"record_update/s (index overhead "
            f"{rec['index_overhead_pct']:+.1f}% vs seed path), "
            f"{hook['indexed_persists_per_second']:,.0f} persist-hook/s "
            f"({hook['index_overhead_pct']:+.1f}%)"
        )
        ycsb = wp.get("ycsb")
        if ycsb is not None:
            lines.append(
                f"  ycsb:      {ycsb['indexed_updates_per_second']:,.0f} "
                f"record_update/s zipfian(theta={ycsb['theta']}, "
                f"keyspace {ycsb['keyspace']}) "
                f"({ycsb['index_overhead_pct']:+.1f}% vs seed path)"
            )
    lt = report.get("live_traffic")
    if lt is not None:
        scoped = lt["quarantine"]["during_mitigation"]
        stw = lt["stop_the_world"]["during_mitigation"]
        lines.append(
            f"  serve:     during-mitigation p99 scoped "
            f"{scoped['p99'] * 1000:.1f}ms vs stop-the-world "
            f"{stw['p99'] * 1000:.1f}ms "
            f"({lt['stw_over_scoped_p99_ratio']:.1f}x, "
            f"{lt['quarantine']['quarantine']['stream_keys']} keys "
            f"quarantined, digests identical)"
        )
    cl = report.get("cluster")
    if cl is not None:
        r3_delta = cl["throughput"]["delta_r3"]
        r3_reexec = cl["throughput"]["reexec_r3"]
        lines.append(
            f"  cluster:   R=3 delta {r3_delta['ops_per_second']:,.0f} "
            f"ops/s vs reexec {r3_reexec['ops_per_second']:,.0f} ops/s "
            f"(replication path {cl['repl_speedup_r3']:.1f}x, end-to-end "
            f"{cl['client_speedup_r3']:.2f}x); heal compacted "
            f"{cl['heal']['compacted_s']:.3f}s vs full replay "
            f"{cl['heal']['full_replay_s']:.3f}s "
            f"({cl['heal']['speedup']:.1f}x, digests identical)"
        )
    mx = report.get("matrix")
    if mx is not None:
        lines.append(
            f"  matrix:    {mx['cells']} cells  serial "
            f"{mx['serial_seconds']:.1f}s  parallel({mx['jobs']} jobs) "
            f"{mx['parallel_seconds']:.1f}s  ({mx['speedup']:.2f}x on "
            f"{mx['cpu_count']} CPU(s), summaries identical)"
        )
    isw = report.get("inject_sweep")
    if isw is not None:
        lines.append(
            f"  inject:    {isw['verified_consistent']}/{isw['cells']} "
            f"cells verified-consistent "
            f"({isw['recovery_success_rate_pct']:.0f}%), mean recovery "
            f"{isw['mean_recovery_seconds']:.2f} sim-s, "
            f"{isw['wall_seconds']:.1f}s wall"
        )
    s = report.get("summary")
    if s is not None:
        lines.append(
            f"  plan+mitigation speedup: "
            f"{s['plan_plus_mitigation_speedup']:.1f}x "
            f"(indexed {s['indexed_plan_plus_mitigation_seconds']:.4f}s, "
            f"reference {s['reference_plan_plus_mitigation_seconds']:.4f}s)"
        )
    return "\n".join(lines)


def run_and_write(
    n_updates: int = 50_000,
    seed: int = 0,
    vm_iters: int = 50_000,
    rounds: int = 4,
    out_path: Optional[str] = None,
    only: Optional[str] = None,
) -> Dict[str, object]:
    """Run the benchmarks and persist the JSON report (shared by the
    ``bench-hotpaths`` CLI subcommand and ``bench_perf_hotpaths.py``)."""
    report = run_hotpaths(
        n_updates=n_updates, seed=seed, vm_iters=vm_iters, rounds=rounds,
        only=only,
    )
    if out_path is not None:
        write_report(report, out_path)
    return report


def write_report(report: Dict[str, object], out_path: str) -> None:
    """Persist one report dict as pretty-printed JSON.

    Top-level sections already on disk but absent from ``report`` (say,
    a ``matrix`` timing from a previous full run when only the micro
    benches were re-run) are carried over rather than clobbered, so the
    file stays a superset of every section ever benchmarked.
    """
    merged = dict(report)
    try:
        with open(out_path) as f:
            existing = json.load(f)
    except (OSError, ValueError):
        existing = {}
    if isinstance(existing, dict):
        for key, value in existing.items():
            merged.setdefault(key, value)
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
