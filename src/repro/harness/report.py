"""Plain-text table and bar-chart renderers for the benchmark harness.

Every benchmark prints the rows/series of its paper table or figure
through these helpers, so outputs are uniform and diffable.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Fixed-width table with a title rule, like the paper's tables."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_bars(
    title: str,
    series: Dict[str, float],
    unit: str = "",
    width: int = 40,
    log_floor: Optional[float] = None,
) -> str:
    """Horizontal ASCII bar chart (one bar per key), for the figures."""
    lines = [f"== {title} =="]
    if not series:
        return lines[0] + "\n(empty)"
    label_w = max(len(k) for k in series)
    peak = max(abs(v) for v in series.values()) or 1.0
    for key, value in series.items():
        frac = abs(value) / peak
        bar = "#" * max(1 if value else 0, int(round(frac * width)))
        lines.append(f"{key.ljust(label_w)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def render_grouped_bars(
    title: str,
    groups: Sequence[str],
    series: Dict[str, Dict[str, float]],
    unit: str = "",
    width: int = 30,
) -> str:
    """Grouped bars: for each group, one bar per series (figure style)."""
    lines = [f"== {title} =="]
    label_w = max(
        [len(f"{g} {s}") for g in groups for s in series] + [1]
    )
    peak = max(
        [abs(series[s].get(g, 0.0)) for g in groups for s in series] + [1e-12]
    )
    for group in groups:
        for name, values in series.items():
            value = values.get(group)
            if value is None:
                lines.append(f"{(group + ' ' + name).ljust(label_w)} | n/a")
                continue
            bar = "#" * int(round(abs(value) / peak * width))
            lines.append(
                f"{(group + ' ' + name).ljust(label_w)} | {bar} {value:.4g}{unit}"
            )
        lines.append("")
    return "\n".join(lines)
