"""Cluster-level fault sweep: node faults under replica promotion.

The single-node matrix proves each f1–f24 reproducer can be mitigated;
this sweep proves the *cluster* survives them.  Every cell injects one
scenario into one shard of a 3-node, replication-2 cluster and runs the
shard supervisor's promotion protocol (promote → mitigate → cascade →
resync/handoff).  The ISSUE's acceptance bar is checked per cell:

* **recovery** — the sick node's supervised ladder recovers (or, when
  every rung fails, the ``rebuild`` phase abandons the pool and resync
  re-replicates the node's whole oplog share from live replicas), the
  node rejoins demoted, and its oplog tail is replayed;
* **digest equality** — the cell is run twice with identical traffic:
  a *promoted* run that serves a read/write window between promotion
  and mitigation (online re-recovery), and a *quiesced* oracle run
  that serves the same window only after mitigation completes.  Both
  runs see the same oplog, the same vector clocks and the same replica
  sets (the window runs while the target is down either way), so after
  cascade + resync every node's pool digest must be byte-identical
  across the two runs — serving during mitigation changed *when* work
  happened, never *what* state converged;
* **causal cut** — no surviving oplog op causally depends on a
  discarded one (``vc_less`` over the cluster clocks);
* **serving** — after the heal, the last surviving write of every
  non-discarded, non-poisoned key is served by the current primary,
  and window writes aimed at the sick arc were answered by replicas
  (never by the down node).

A third, fault-free *control* run per cell walks the identical
promote/window/resync dance on a healthy cluster; keys it fails to
serve afterwards are the underlying system's own losses (level-hash
bucket evictions under window inserts, for instance) and are excluded
from the fault runs' serving bar — the sweep charges the cluster only
for losses the *fault* caused.  Cells whose scenario does not manifest
at cluster scale (the trigger's layout assumptions don't survive the
sharded keyspace; f13/f18 today) are recorded honestly as
``manifested: false`` and converge vacuously.

Six extra cells re-run f1 with a *second* fault crashed into the heal
itself (``cluster.promote`` / ``cluster.resync`` / ``cluster.handoff``
/ ``cluster.compact`` injection sites) or into the delta-replication
shipping path (``cluster.ship_delta``); the same bar applies — the
journaled phases must converge on retry in both runs, and a crashed
shipping round must re-apply idempotently when the serving client
retries it.

The sweep runs under the cluster's default replication engine
(physical delta shipping); ``engine=`` selects the re-execution oracle
instead, and the committed report records which engine produced it so
the drift check never compares across engines.

Digests are compared across the two in-process runs; the committed
report (``results/cluster_sweep.json``) records the stable per-cell
outcome contract, and ``python -m repro cluster-sweep --quick --check``
re-runs the quick subset and diffs it against the committed cells (the
CI drift job, mirroring ``fuzz-sweep``).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faultinject
from repro.detector.monitor import Detector, LeakMonitor, RunOutcome
from repro.detector.signature import FailureSignature
from repro.distributed.cluster import (
    DEFAULT_REPLICATION_ENGINE,
    Cluster,
    ClusterClient,
    vc_less,
)
from repro.distributed.shardmgr import ShardManager
from repro.errors import InjectedCrash, Trap
from repro.faultinject import InjectionPlan, InjectionSpec
from repro.faults.fuzzed import FuzzedScenario, build_fuzzed_scenarios
from repro.faults.registry import ALL_SCENARIOS, scenario_by_id
from repro.harness.experiment import ExperimentContext, MitigationRun
from repro.harness.simclock import SimClock
from repro.harness.supervisor import pool_digest
from repro.systems.common import ABSENT
from repro.workloads.generators import VALUE_BASE, MixedWorkload

DEFAULT_SWEEP_SEED = 11
N_NODES = 3
N_CLIENTS = 2
REPLICATION = 2
#: node-local post-trigger traffic on the sick shard (lets in-flight
#: faults surface the way the single-node harness sees them)
POST_TRIGGER_OPS = 30

#: second-fault cells: crash the heal itself at its injection sites
#: (all run against the f1 wedge, the scenario whose full ladder the
#: promotion tests exercise)
CRASH_FID = "f1"
CRASH_CELLS: Tuple[Tuple[str, int], ...] = (
    ("cluster.promote", 1),
    ("cluster.resync", 1),
    ("cluster.resync", 2),
    ("cluster.handoff", 1),
    # delta-engine sites: a crashed shipping round is retried by the
    # serving client (idempotent re-apply); a crashed compaction is
    # retried by the handoff journal step (fresh capture)
    ("cluster.ship_delta", 1),
    ("cluster.compact", 1),
)
CRASH_TARGET = 1

#: CI quick subset — a strict subset of the full sweep's cells
QUICK_FIDS = ("f1", "f5")
QUICK_CRASH_CELLS: Tuple[Tuple[str, int], ...] = (
    ("cluster.promote", 1),
    ("cluster.compact", 1),
)


def target_shard(fid: str) -> int:
    """Deterministic target rotation, stable under subsetting: derived
    from the fid number, not the position in the sweep's cell list."""
    return (int(fid[1:]) - 1) % N_NODES


# ----------------------------------------------------------------------
@dataclass
class ModeResult:
    """One run of a cell in one serving mode."""

    manifested: bool = False
    confirmed_hard: bool = False
    promoted: bool = False
    recovered: bool = False
    recovered_by: str = ""
    crash_retries: int = 0
    discarded_ops: int = 0
    cascaded_ops: int = 0
    cascade_rounds: int = 0
    resync_replayed: int = 0
    demoted: bool = False
    health_score: int = 0
    #: per-node pool digests after the heal settled
    digests: List[int] = field(default_factory=list)
    causal_cut_ok: bool = False
    serving_problems: List[str] = field(default_factory=list)
    #: window accounting
    window_reads: int = 0
    window_writes: int = 0
    window_routed_to_sick: int = 0
    injections_fired: bool = True
    #: control mode only: keys the fault-free cluster fails to serve
    #: after the identical promote/window/resync dance (the system's
    #: own losses, e.g. level-hash bucket evictions)
    lost_keys: set = field(default_factory=set)


@dataclass
class CellOutcome:
    """One (scenario, target shard[, crash site]) cell of the sweep."""

    fid: str
    system: str
    kind: str
    target: int
    site: str  # "" or e.g. "cluster.resync#2"
    seed: int
    manifested: bool = False
    confirmed_hard: bool = False
    promoted: bool = False
    recovered: bool = False
    recovered_by: str = ""
    crash_retries: int = 0
    discarded_ops: int = 0
    cascaded_ops: int = 0
    cascade_rounds: int = 0
    resync_replayed: int = 0
    demoted: bool = False
    health_score: int = 0
    digests: List[int] = field(default_factory=list)
    digests_match: bool = False
    causal_cut_ok: bool = False
    serving_ok: bool = False
    notes: str = ""

    @property
    def cell_key(self) -> str:
        key = f"{self.fid}@n{self.target}"
        return f"{key}+{self.site}" if self.site else key

    @property
    def converged(self) -> bool:
        """The ISSUE's per-cell bar (vacuously true when the fault
        never manifested — nothing to recover from)."""
        if not self.manifested:
            return True
        return (
            self.promoted
            and self.recovered
            and self.demoted
            and self.digests_match
            and self.causal_cut_ok
            and self.serving_ok
        )

    def contract(self) -> Dict[str, object]:
        """The drift-stable fields ``--check`` compares."""
        return {
            "manifested": self.manifested,
            "confirmed_hard": self.confirmed_hard,
            "promoted": self.promoted,
            "recovered": self.recovered,
            "recovered_by": self.recovered_by,
            "crash_retries": self.crash_retries,
            "discarded_ops": self.discarded_ops,
            "cascaded_ops": self.cascaded_ops,
            "resync_replayed": self.resync_replayed,
            "demoted": self.demoted,
            "digests_match": self.digests_match,
            "causal_cut_ok": self.causal_cut_ok,
            "serving_ok": self.serving_ok,
        }

    def to_json(self) -> Dict[str, object]:
        out = {
            "cell": self.cell_key,
            "fid": self.fid,
            "system": self.system,
            "kind": self.kind,
            "target": self.target,
            "site": self.site,
            "seed": self.seed,
            "cascade_rounds": self.cascade_rounds,
            "health_score": self.health_score,
            "digests": list(self.digests),
            "converged": self.converged,
        }
        out.update(self.contract())
        if self.notes:
            out["notes"] = self.notes
        return out


@dataclass
class ClusterSweepReport:
    """Outcome of one cluster fault sweep."""

    sweep_seed: int
    n_nodes: int = N_NODES
    replication: int = REPLICATION
    replication_engine: str = DEFAULT_REPLICATION_ENGINE
    cells: List[CellOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def all_converged(self) -> bool:
        return all(c.converged for c in self.cells)

    def to_json(self) -> Dict[str, object]:
        manifested = [c for c in self.cells if c.manifested]
        return {
            "sweep_seed": self.sweep_seed,
            "n_nodes": self.n_nodes,
            "replication": self.replication,
            "replication_engine": self.replication_engine,
            "wall_seconds": round(self.wall_seconds, 2),
            "cells_total": len(self.cells),
            "cells_manifested": len(manifested),
            "cells_recovered": sum(1 for c in manifested if c.recovered),
            "cells_converged": sum(1 for c in self.cells if c.converged),
            "all_converged": self.all_converged,
            "quick_fids": list(QUICK_FIDS),
            "quick_crash_cells": [list(c) for c in QUICK_CRASH_CELLS],
            "cells": [c.to_json() for c in self.cells],
        }

    def summary(self) -> str:
        manifested = [c for c in self.cells if c.manifested]
        lines = [
            f"cluster-sweep: {len(manifested)}/{len(self.cells)} cells "
            f"manifested, {sum(1 for c in manifested if c.recovered)} "
            f"recovered via promotion, "
            f"{sum(1 for c in self.cells if c.converged)}/{len(self.cells)} "
            f"converged ({self.wall_seconds:.1f}s wall)"
        ]
        for c in self.cells:
            flags = []
            if not c.manifested:
                flags.append("no-manifest")
            else:
                flags.append("recovered" if c.recovered else "UNRECOVERED")
                flags.append("digests=" + ("ok" if c.digests_match else "DIFF"))
                flags.append("cut=" + ("ok" if c.causal_cut_ok else "BROKEN"))
                flags.append("serve=" + ("ok" if c.serving_ok else "FAIL"))
            lines.append(
                f"  {c.cell_key:26s} {c.system:10s} {' '.join(flags)}"
                + (f"  [{c.notes}]" if c.notes else "")
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# one cell, one serving mode
# ----------------------------------------------------------------------
def _run_mode(
    scenario,
    target: int,
    seed: int,
    mode: str,
    crash_spec: Optional[Tuple[str, int]] = None,
    skip_keys: frozenset = frozenset(),
    engine: str = DEFAULT_REPLICATION_ENGINE,
) -> ModeResult:
    """Build a fresh cluster, wedge ``target`` with the scenario, heal.

    ``mode`` picks when the serving window runs:

    * ``"promoted"`` — between promotion and mitigation (online
      re-recovery, the mode under test);
    * ``"quiesced"`` — after mitigation completes (the oracle);
    * ``"control"``  — no fault at all: the same phase-A traffic,
      promotion, window and resync on a healthy cluster.  Its
      mis-served keys are the *system's* own losses (e.g. level-hash
      bucket evictions under window inserts) and are excluded from the
      fault runs' serving check via ``skip_keys``.

    Everything else — phase-A traffic, trigger, window keys, cascade,
    resync — is identical, which is what makes the cross-mode digest
    comparison a meaningful "serving changed nothing" proof.
    """
    res = ModeResult()
    cluster = Cluster(
        n_nodes=N_NODES,
        n_clients=N_CLIENTS,
        adapter_cls=scenario.adapter_cls(),
        seed=seed,
        replication=REPLICATION,
        replication_engine=engine,
    )
    clients = [ClusterClient(cluster, i) for i in range(N_CLIENTS)]
    node = cluster.nodes[target]
    ctx = ExperimentContext(node, scenario, seed)
    ctx.oracle = cluster.oracles[target]
    healthy = [n for n in range(N_NODES) if n != target]

    # ---- phase A: cluster traffic (leak triggers consume victims) ----
    n_target = 140 if scenario.kind == "leak" else 28
    target_keys = cluster.keys_for_node(target, n_target)
    bg = {n: cluster.keys_for_node(n, 8) for n in healthy}
    loaded = sorted(target_keys + [k for ks in bg.values() for k in ks])
    for j, key in enumerate(loaded):
        clients[j % N_CLIENTS].insert(key, VALUE_BASE + key)
    # one causal edge rooted on the sick shard (Section 7's r1 -> r2).
    # Table-2 scenarios only: the fuzzed reproducers' injection windows
    # are allocation-layout-sensitive, and the extra insert is enough to
    # shift which window write the spec occurrence perturbs
    if scenario.family == "table2":
        edge_dst = cluster.keys_for_node(healthy[0], 1, start=30_000)[0]
        clients[1].derived_insert(target_keys[0], edge_dst)

    # pre-fault serving baseline: keys the *clean* cluster already fails
    # to serve are the underlying system's own losses (e.g. level-hash
    # bucket evictions) — the fuzzer's ``baseline`` concept, applied to
    # the post-heal serving check
    baseline_lost = _misserved_keys(cluster)

    # window keys: ring-pure (no pool reads), so the control run and
    # both fault runs aim at exactly the same keys; computed before
    # promotion because keys_for_node wants the pre-fault primary
    w_writes = cluster.keys_for_node(target, 3, start=50_000)
    w_writes.append(cluster.keys_for_node(healthy[0], 1, start=50_000)[0])
    w_reads = [k for n in healthy for k in bg[n][:3]] + target_keys[:2]
    w_edge_src = bg[healthy[0]][0]
    w_edge_dst = cluster.keys_for_node(healthy[-1], 1, start=60_000)[0]

    mgr = ShardManager(cluster, solution="arthas", seed=seed)
    mclock = SimClock()
    skip_all = set(skip_keys) | baseline_lost

    def shipped(fn):
        """One client-level retry across a crashed replication round.

        A crash injected at ``cluster.ship_delta`` surfaces at the
        serving edge — group commit drains inside the client call —
        with no partial credit (a node's stream pointer advances only
        per fully-applied delta), so the retried call re-applies the
        queued deltas idempotently.  Inert for every other cell: the
        heal-phase sites never fire from client traffic.
        """
        try:
            return fn()
        except InjectedCrash:
            return fn()

    def serve_window() -> None:
        for k in w_reads:
            value = shipped(lambda: clients[0].lookup(k))
            res.window_reads += 1
            if value == ABSENT and mode != "control" and k not in skip_all:
                res.serving_problems.append(f"window read miss: key {k}")
        for k in w_writes:
            rec = shipped(lambda: clients[0].insert(k, VALUE_BASE + k + 1))
            res.window_writes += 1
            if rec.node == target:
                res.window_routed_to_sick += 1
        shipped(lambda: clients[1].derived_insert(w_edge_src, w_edge_dst))
        res.window_writes += 1

    if mode == "control":
        # same dance, no fault: promote, serve, rejoin
        mgr.promote(target, clock=mclock)
        serve_window()
        journal = mgr.journal(target)
        journal.complete(
            "mitigate", run=MitigationRun(solution="arthas", recovered=True)
        )
        journal.complete("rebuild", rebuilt=False)
        journal.complete("cascade", discarded=[], cascaded=[], rounds=0)
        mgr.resync(target, clock=mclock)
        res.lost_keys = _misserved_keys(cluster)
        return res

    # ---- trigger + node-local post-trigger traffic on the shard ----
    inflight = None
    scenario.trigger(ctx)
    burst = MixedWorkload(
        seed=seed * 31 + 7,
        insert_ratio=scenario.post_mix[0],
        get_ratio=scenario.post_mix[1],
        exclude=lambda k: scenario.exclude_key(ctx, k),
    )
    burst._next_key = 2_000_000  # node-local noise, out of the cluster keyspace
    try:
        for op in burst.ops(POST_TRIGGER_OPS):
            scenario.apply_op(ctx, op)
    except Trap:
        inflight = node.machine.last_fault

    # ---- detection ----
    detector = Detector()
    monitor = None
    if scenario.kind == "leak":
        monitor = LeakMonitor(
            node.allocator,
            node.expected_item_words,
            threshold_ratio=scenario.leak_ratio,
        )
        detector.set_leak_monitor(monitor)
    if inflight is not None:
        sig = FailureSignature.from_fault(inflight)
        detector.history.append(sig)
        outcome = RunOutcome(ok=False, fault=inflight, signature=sig)
    else:
        outcome = detector.observe(node.machine, lambda: scenario.manifest(ctx))
        if outcome.ok and monitor is not None:
            violation = monitor.check()
            if violation is not None:
                outcome = RunOutcome(ok=False, violation=violation)
    if outcome.ok:
        return res  # the fault did not manifest at cluster scale
    res.manifested = True

    # ---- hard-fault confirmation: restart the shard, watch it recur ----
    node.restart()
    confirm = detector.observe(
        node.machine, lambda: (node.recover(), scenario.manifest(ctx))
    )
    if confirm.ok and monitor is not None:
        violation = monitor.check()
        if violation is not None:
            confirm = RunOutcome(ok=False, violation=violation)
    res.confirmed_hard = not confirm.ok

    # ---- the promotion protocol, with the window at its mode's slot ----
    mgr.note_verdict(target)
    plan = (
        InjectionPlan([InjectionSpec(crash_spec[0], crash_spec[1], "crash")])
        if crash_spec is not None
        else None
    )
    cm = faultinject.activate(plan) if plan is not None else nullcontext()
    with cm:
        res.crash_retries += mgr.promote(target, clock=mclock)
        res.promoted = True
        if mode == "promoted":
            serve_window()
        run = mgr.mitigate(
            target, ctx, scenario, outcome, detector,
            monitor=monitor, inject_plan=plan, mclock=mclock,
        )
        if mode == "quiesced":
            serve_window()
        res.recovered = run.recovered
        if run.ladder is not None:
            res.recovered_by = run.ladder.get("recovered_by", "") or ""
            res.crash_retries += run.ladder.get("crash_retries", 0)
        if mgr.rebuild(target):
            # beyond local repair: re-replicated from the live replicas
            res.recovered = True
            res.recovered_by = "rebuild"
        if res.recovered:
            discarded, cascaded, rounds = mgr.cascade(target, run)
            res.discarded_ops = len(discarded)
            res.cascaded_ops = len(cascaded)
            res.cascade_rounds = rounds
            rep = mgr.resync(target, clock=mclock)
            res.resync_replayed = rep.resync_replayed
            res.crash_retries += rep.crash_retries
            res.demoted = rep.demoted
    if plan is not None:
        res.injections_fired = plan.all_fired
    res.health_score = int(mgr.health_table()[target]["score"])
    if not res.recovered:
        return res

    # ---- settle checks; digests first (lookups bump PM refcounts) ----
    res.digests = [
        pool_digest(n.pool, n.allocator) for n in cluster.nodes
    ]
    res.causal_cut_ok = _causal_cut_ok(cluster)
    res.serving_problems.extend(
        _serving_check(cluster, scenario, ctx, clients[0], skip_all)
    )
    return res


def _misserved_keys(cluster: Cluster) -> set:
    """Keys whose last acked write the cluster fails to serve right now.

    Direct node lookups (no client clock exchange); called before the
    trigger, so the result is the fault-free serving baseline.
    """
    lost = set()
    last = {}
    for op in cluster.oplog:
        last[op.key] = op
    for key in sorted(last):
        op = last[key]
        want = ABSENT if op.kind == "delete" else op.value
        if cluster.nodes[cluster.node_for(key)].lookup(key) != want:
            lost.add(key)
    return lost


def _causal_cut_ok(cluster: Cluster) -> bool:
    """No surviving op causally depends on a discarded one."""
    discarded = [op for op in cluster.oplog if op.discarded]
    surviving = [op for op in cluster.oplog if not op.discarded]
    for d in discarded:
        for s in surviving:
            if vc_less(d.vc, s.vc):
                return False
    return True


def _serving_check(cluster, scenario, ctx, client, skip_keys) -> List[str]:
    """Every key's last surviving cluster write is served post-heal.

    Keys whose history contains a discarded op are skipped (recovery
    legitimately rewound them), as are scenario-excluded keys (poisoned
    buckets are the fault's blast radius, bounded separately by the
    single-node matrix) and ``skip_keys`` — the pre-fault baseline
    losses plus the control run's losses, i.e. keys the underlying
    system drops even without the fault.
    """
    problems: List[str] = []
    last = {}
    rewound = set()
    for op in cluster.oplog:
        if op.discarded:
            rewound.add(op.key)
        else:
            last[op.key] = op
    for key in sorted(last):
        if key in rewound or key in skip_keys \
                or scenario.exclude_key(ctx, key):
            continue
        op = last[key]
        want = ABSENT if op.kind == "delete" else op.value
        try:
            got = client.lookup(key)
        except Trap as exc:  # pragma: no cover - a served read must not trap
            problems.append(f"key {key}: lookup trapped ({exc})")
            continue
        if got != want:
            problems.append(f"key {key}: served {got}, last write {want}")
    return problems


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def _fresh_scenario(fid: str):
    """A fresh scenario instance (fuzzed reproducers cache per-run
    telemetry on themselves, so the two modes must not share one)."""
    registered = scenario_by_id(fid)
    if isinstance(registered, FuzzedScenario):
        for scenario in build_fuzzed_scenarios():
            if scenario.fid == fid:
                return scenario
        raise KeyError(fid)  # pragma: no cover - registry invariant
    return type(registered)()


def _run_cell(
    fid: str,
    target: int,
    seed: int,
    crash_spec: Optional[Tuple[str, int]] = None,
    engine: str = DEFAULT_REPLICATION_ENGINE,
) -> CellOutcome:
    site = f"{crash_spec[0]}#{crash_spec[1]}" if crash_spec else ""
    # fault-free control: its post-heal losses are the system's, not the
    # cluster's, and get excluded from both fault runs' serving bar
    control = _run_mode(_fresh_scenario(fid), target, seed, "control",
                        engine=engine)
    skip = frozenset(control.lost_keys)
    promoted = _run_mode(
        _fresh_scenario(fid), target, seed, "promoted",
        crash_spec=crash_spec, skip_keys=skip, engine=engine,
    )
    quiesced = _run_mode(
        _fresh_scenario(fid), target, seed, "quiesced",
        crash_spec=crash_spec, skip_keys=skip, engine=engine,
    )
    scenario = scenario_by_id(fid)
    cell = CellOutcome(
        fid=fid,
        system=scenario.system,
        kind=scenario.kind,
        target=target,
        site=site,
        seed=seed,
        manifested=promoted.manifested,
        confirmed_hard=promoted.confirmed_hard,
        promoted=promoted.promoted,
        recovered=promoted.recovered,
        recovered_by=promoted.recovered_by,
        crash_retries=promoted.crash_retries,
        discarded_ops=promoted.discarded_ops,
        cascaded_ops=promoted.cascaded_ops,
        cascade_rounds=promoted.cascade_rounds,
        resync_replayed=promoted.resync_replayed,
        demoted=promoted.demoted,
        health_score=promoted.health_score,
        digests=list(promoted.digests),
    )
    notes: List[str] = []
    if promoted.manifested != quiesced.manifested:
        notes.append("mode disagreement: manifested")
    if promoted.recovered != quiesced.recovered:
        notes.append("mode disagreement: recovered")
    cell.digests_match = bool(
        promoted.recovered
        and quiesced.recovered
        and promoted.digests
        and promoted.digests == quiesced.digests
    )
    cell.causal_cut_ok = promoted.causal_cut_ok and quiesced.causal_cut_ok
    problems = promoted.serving_problems + quiesced.serving_problems
    if promoted.window_routed_to_sick or quiesced.window_routed_to_sick:
        problems.append("window write routed to the down node")
    if crash_spec is not None and not (
        promoted.injections_fired and quiesced.injections_fired
    ):
        problems.append("injected heal crash never fired")
    cell.serving_ok = promoted.recovered and not problems
    if problems:
        notes.append("; ".join(problems[:3]))
    cell.notes = "; ".join(notes)
    return cell


def run_cluster_sweep(
    fids: Optional[Sequence[str]] = None,
    sweep_seed: int = DEFAULT_SWEEP_SEED,
    quick: bool = False,
    progress=None,
    engine: str = DEFAULT_REPLICATION_ENGINE,
) -> ClusterSweepReport:
    """Run the cluster fault sweep; deterministic per seed.

    ``quick`` restricts to :data:`QUICK_FIDS` + the first crash cell —
    a strict subset of the full sweep's cells with identical per-cell
    behavior (cell seeds and target shards derive from the fid, not
    the sweep's cell list), which is what ``--check`` relies on.
    """
    if fids is None:
        fids = (
            list(QUICK_FIDS) if quick else [s.fid for s in ALL_SCENARIOS]
        )
    crash_cells = (
        QUICK_CRASH_CELLS if quick else CRASH_CELLS
    ) if CRASH_FID in fids else ()
    if engine != "delta":
        # the delta-engine sites never fire under re-execution: the
        # cells would fail their injections_fired bar vacuously
        crash_cells = tuple(
            c for c in crash_cells
            if c[0] not in ("cluster.ship_delta", "cluster.compact")
        )
    report = ClusterSweepReport(
        sweep_seed=sweep_seed, replication_engine=engine
    )
    t0 = time.time()
    for fid in fids:
        cell = _run_cell(fid, target_shard(fid), sweep_seed, engine=engine)
        report.cells.append(cell)
        if progress is not None:
            progress(cell)
    for site, occ in crash_cells:
        cell = _run_cell(
            CRASH_FID, CRASH_TARGET, sweep_seed, crash_spec=(site, occ),
            engine=engine,
        )
        report.cells.append(cell)
        if progress is not None:
            progress(cell)
    report.wall_seconds = time.time() - t0
    return report


def check_against(report: ClusterSweepReport, committed: dict) -> List[str]:
    """Drift check: every cell of this (quick) sweep must match the
    committed report's outcome contract for the same cell."""
    problems: List[str] = []
    for field_name in ("sweep_seed", "n_nodes", "replication",
                       "replication_engine"):
        mine = getattr(report, field_name)
        theirs = committed.get(field_name)
        if theirs != mine:
            problems.append(
                f"{field_name} mismatch: committed {theirs} vs {mine}"
            )
    if problems:
        return problems
    by_key = {c.get("cell"): c for c in committed.get("cells", [])}
    for cell in report.cells:
        want = by_key.get(cell.cell_key)
        if want is None:
            problems.append(f"cell {cell.cell_key} missing from committed report")
            continue
        for k, v in cell.contract().items():
            if want.get(k) != v:
                problems.append(
                    f"cell {cell.cell_key} drifted on {k}: "
                    f"committed {want.get(k)!r} vs {v!r}"
                )
    return problems
