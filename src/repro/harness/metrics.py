"""Small aggregation helpers used by the benchmark harness."""

from __future__ import annotations

from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def median(values: Sequence[float]) -> float:
    """Median (0.0 for an empty sequence)."""
    vals = sorted(values)
    if not vals:
        return 0.0
    mid = len(vals) // 2
    if len(vals) % 2:
        return float(vals[mid])
    return (vals[mid - 1] + vals[mid]) / 2.0


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean over the positive values."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


def fraction(hits: int, total: int) -> str:
    """Render a success fraction the way the paper's tables do."""
    if total <= 0:
        return "n/a"
    if hits == total:
        return "Y"
    if hits == 0:
        return "N"
    return f"{hits}/{total}"


def pct(value: float, digits: int = 1) -> str:
    """Format a percentage with the given precision."""
    return f"{value:.{digits}f}%"
