"""Deterministic simulated clock.

The paper's timing numbers (5-minute runs, 1-minute snapshot intervals,
3-5 second re-execution delays, Figure 8's mitigation times) are
wall-clock on their testbed.  The reproduction accounts time on a
simulated clock instead: every workload operation, snapshot, reversion
and re-execution advances it by a fixed, seeded cost.  Two runs with the
same seed produce identical timelines.
"""

from __future__ import annotations

import random


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new now."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative {dt}")
        self.now += dt
        return self.now


class ReexecDelay:
    """Seeded 3-5 s re-execution delay (paper Section 6.3)."""

    def __init__(self, seed: int = 0, low: float = 3.0, high: float = 5.0):
        self._rng = random.Random(seed)
        self.low = low
        self.high = high

    def __call__(self) -> float:
        return self._rng.uniform(self.low, self.high)


#: seconds of simulated time per workload operation (600 ops ~= 5 minutes)
OP_PERIOD = 0.5

#: length of one experiment run in operations (≈ the paper's 5 minutes)
RUN_OPS = 600

#: operation index at which the bug trigger fires (≈ half-way, 2.5 min)
TRIGGER_AT = 300
