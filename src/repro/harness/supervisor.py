"""Supervised, crash-safe mitigation: retries, backoff, degradation.

The recovery pipeline itself can die — an injected (or real) crash can
land between any two reversion steps, inside a re-execution, or mid-way
through a checkpoint record.  This module is the supervisor that makes
mitigation *converge anyway*:

* :func:`with_crash_retries` re-runs a mitigation step after each
  :class:`~repro.errors.InjectedCrash`, dropping the pool's volatile
  state (exactly what a process restart does) and charging exponential
  backoff to the simulated clock, up to an attempt budget;
* :func:`ladder_run` drives the **degradation ladder**: each rung is a
  progressively blunter mitigation (purge → rollback → whole-pool
  snapshot restore), and a rung that crashes past its retry budget or
  fails to recover hands over to the next one.  A ladder that runs dry
  produces a structured *unrecoverable* report instead of an exception —
  the operator-facing artifact the paper's reactor would page with;
* :func:`pool_digest` fingerprints the durable pool image + allocator
  metadata, which is how tests assert that a crashed-and-resumed
  mitigation converges to byte-identical state.

Together with the reverter's :class:`~repro.reactor.revert.IntentJournal`
(idempotent, resumable cuts) this closes the loop the injection sweep
(:mod:`repro.harness.inject_sweep`) verifies exhaustively.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import InjectedCrash
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool

#: simulated seconds of backoff after the first crash retry (doubles per
#: retry, capped so a retry storm cannot eat the whole mitigation budget)
BACKOFF_BASE = 2.0
BACKOFF_CAP = 30.0

#: default per-rung crash-retry budget
MAX_CRASH_RETRIES = 6


@dataclass
class StepResult:
    """What a ladder rung reports back to the supervisor."""

    recovered: bool
    attempts: int = 0
    timed_out: bool = False
    notes: str = ""


@dataclass
class RungOutcome:
    """One rung of the degradation ladder, as it actually ran."""

    rung: str
    recovered: bool
    attempts: int = 0
    crash_retries: int = 0
    duration_seconds: float = 0.0
    timed_out: bool = False
    notes: str = ""

    def to_json(self) -> dict:
        return asdict(self)


@dataclass
class LadderReport:
    """The supervisor's full account of one mitigation."""

    rungs: List[RungOutcome] = field(default_factory=list)
    recovered: bool = False
    recovered_by: Optional[str] = None
    crash_retries: int = 0

    def to_json(self) -> dict:
        return {
            "recovered": self.recovered,
            "recovered_by": self.recovered_by,
            "crash_retries": self.crash_retries,
            "rungs": [r.to_json() for r in self.rungs],
        }


def backoff_delay(retry: int, base: float = BACKOFF_BASE,
                  cap: float = BACKOFF_CAP) -> float:
    """Exponential backoff for the k-th retry (1-based), capped."""
    return min(cap, base * (2 ** (retry - 1)))


def with_crash_retries(
    step: Callable[[], StepResult],
    pool: PMPool,
    clock,
    max_retries: int = MAX_CRASH_RETRIES,
    base_backoff: float = BACKOFF_BASE,
) -> Tuple[StepResult, int]:
    """Run ``step``, restarting it after each injected crash.

    A crash drops the pool's volatile state (write buffer, staged lines)
    — the durable image keeps whatever the step persisted, which is why
    steps must be idempotent (reversion cuts are pure functions of the
    log; the intent journal skips completed work).  Returns the step's
    result and how many times it crashed.  Re-raises the final
    :class:`InjectedCrash` once the retry budget is spent.
    """
    retries = 0
    while True:
        try:
            return step(), retries
        except InjectedCrash:
            retries += 1
            pool.crash()
            if retries > max_retries:
                raise
            clock.advance(backoff_delay(retries, base_backoff))


def ladder_run(
    rungs: Sequence[Tuple[str, Callable[[], StepResult]]],
    pool: PMPool,
    clock,
    max_crash_retries: int = MAX_CRASH_RETRIES,
    base_backoff: float = BACKOFF_BASE,
) -> LadderReport:
    """Drive the degradation ladder until a rung recovers or all fail."""
    report = LadderReport()
    for name, step in rungs:
        t0 = clock.now
        try:
            res, retries = with_crash_retries(
                step, pool, clock, max_crash_retries, base_backoff
            )
        except InjectedCrash as exc:
            report.crash_retries += max_crash_retries + 1
            report.rungs.append(RungOutcome(
                rung=name, recovered=False,
                crash_retries=max_crash_retries + 1,
                duration_seconds=clock.now - t0,
                notes=f"crash-retry budget exhausted: {exc}",
            ))
            continue
        report.crash_retries += retries
        report.rungs.append(RungOutcome(
            rung=name, recovered=res.recovered, attempts=res.attempts,
            crash_retries=retries, duration_seconds=clock.now - t0,
            timed_out=res.timed_out, notes=res.notes,
        ))
        if res.recovered:
            report.recovered = True
            report.recovered_by = name
            break
    return report


def pool_digest(pool: PMPool, allocator: PMAllocator) -> int:
    """Fingerprint of the durable pool image + allocator metadata.

    Two mitigations that leave the same digest left byte-identical
    durable state — the convergence check for crashed-and-resumed runs.
    """
    items = pool.durable_items()
    payload = ",".join(f"{a}:{v}" for a, v in sorted(items.items()))
    meta = json.dumps(allocator.export_meta(), sort_keys=True)
    return zlib.crc32(f"{payload}|{meta}".encode()) & 0xFFFFFFFF
