"""Parallel experiment-matrix runner (process-pool fan-out).

PR 1 made each cell of the 12-fault x 4-solution evaluation matrix fast;
the wall-clock bottleneck became the *serial* sweep that the CLI and the
table/figure benchmarks run one cell at a time.  Cells are independent
and deterministic per ``(fault, solution, seed)``, so this module fans
them out over a :class:`concurrent.futures.ProcessPoolExecutor`:

* :func:`expand_matrix` builds the cell-spec list (the cross product);
* :func:`run_matrix` executes it — ``jobs=1`` is the exact serial path
  (same code, no pool, for debugging), ``jobs=N`` fans out over ``N``
  worker processes that import :mod:`repro` fresh (spawn start method)
  and call :func:`repro.harness.experiment.run_experiment`;
* :func:`summarize_result` / :func:`result_from_summary` round-trip an
  :class:`~repro.harness.experiment.ExperimentResult` through a plain
  JSON-compatible dict, the only payload that crosses the process
  boundary (and the format persisted under ``results/``, following the
  JSON-artifact convention of :mod:`repro.instrument.artifacts`).

Failure handling: a cell that raises inside a worker produces a per-cell
*error record* instead of aborting the sweep; a cell that exceeds the
optional per-cell timeout is recorded as ``timeout``; a worker process
dying (``BrokenProcessPool``) rebuilds the pool and retries the
unfinished cells once before recording ``worker-crash`` errors.
Progress is reported incrementally as futures complete.

Determinism: ``run_experiment`` depends only on the cell spec, so the
parallel sweep must produce summary-*equal* cells to the serial loop at
every seed — modulo the few fields that record measured wall-clock time
(the slicer times itself; :func:`comparable_summary` zeroes them for
comparison).  ``tests/test_matrix_parallel.py`` and the matrix section
of ``benchmarks/bench_perf_hotpaths.py`` enforce exactly that.
"""

from __future__ import annotations

import ctypes
import os
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields
from multiprocessing import get_context
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.harness.experiment import (
    SOLUTIONS,
    ExperimentResult,
    MitigationRun,
    run_experiment,
)
from repro.faults.registry import ALL_SCENARIOS
from repro.lang.interp import FaultInfo

#: matrix axes: the paper's Section 6.1 evaluation (f1–f12) plus every
#: registered fuzzer discovery (f13+) — derived from the registry so the
#: matrix grows with `repro fuzz-sweep --emit-registry`
ALL_FAULT_IDS = tuple(s.fid for s in ALL_SCENARIOS)
ALL_SOLUTIONS = SOLUTIONS

#: fields of ExperimentResult handled specially by the summary round-trip
_NESTED_FIELDS = ("detection_fault", "mitigation")


# ----------------------------------------------------------------------
# cell specs
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class CellSpec:
    """One (fault, solution, seed) cell of the evaluation matrix."""

    fid: str
    solution: str
    seed: int = 0

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.fid, self.solution, self.seed)

    def label(self) -> str:
        return f"{self.fid}/{self.solution}@{self.seed}"


def expand_matrix(
    fids: Optional[Iterable[str]] = None,
    solutions: Optional[Iterable[str]] = None,
    seeds: Iterable[int] = (0,),
) -> List[CellSpec]:
    """The cross product of the given axes, solution-major like the
    serial CLI sweep (all faults of one solution, then the next)."""
    fid_list = list(fids) if fids is not None else list(ALL_FAULT_IDS)
    sol_list = list(solutions) if solutions is not None else list(ALL_SOLUTIONS)
    return [
        CellSpec(fid, sol, seed)
        for sol in sol_list
        for fid in fid_list
        for seed in seeds
    ]


# ----------------------------------------------------------------------
# summary round-trip
# ----------------------------------------------------------------------
def summarize_result(result: ExperimentResult) -> Dict[str, object]:
    """Serialize an :class:`ExperimentResult` to a picklable/JSON dict.

    Every dataclass field is carried verbatim (enumerated via
    ``dataclasses.fields`` so new fields cannot silently be dropped);
    nested ``FaultInfo``/``MitigationRun`` become nested dicts.
    """
    out: Dict[str, object] = {}
    for f in fields(ExperimentResult):
        if f.name in _NESTED_FIELDS:
            continue
        value = getattr(result, f.name)
        out[f.name] = list(value) if isinstance(value, list) else value
    fault = result.detection_fault
    out["detection_fault"] = (
        None
        if fault is None
        else {
            f.name: (
                list(getattr(fault, f.name))
                if isinstance(getattr(fault, f.name), list)
                else getattr(fault, f.name)
            )
            for f in fields(FaultInfo)
        }
    )
    run = result.mitigation
    out["mitigation"] = (
        None
        if run is None
        else {
            f.name: (
                list(getattr(run, f.name))
                if isinstance(getattr(run, f.name), list)
                else getattr(run, f.name)
            )
            for f in fields(MitigationRun)
        }
    )
    return out


#: summary fields that record *measured wall-clock* time — the slicer
#: times itself with a real clock (`ReversionPlan.slicing_seconds`), so
#: two runs of the same cell agree on every field except these.
#: (`duration_seconds` is the *simulated* clock and stays deterministic.)
_WALL_CLOCK_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("mitigation", "slicing_seconds"),
    ("mitigation", "analysis_seconds"),
)


def comparable_summary(
    summary: Optional[Dict[str, object]],
) -> Optional[Dict[str, object]]:
    """*summary* with measured wall-clock fields zeroed (a copy).

    A cell is a deterministic function of ``(fault, solution, seed)``
    **except** for fields holding real elapsed time; serial-vs-parallel
    equality checks must compare through this canonical form.
    """
    if summary is None:
        return None
    out = dict(summary)
    for parent, leaf in _WALL_CLOCK_FIELDS:
        nested = out.get(parent)
        if isinstance(nested, dict) and leaf in nested:
            nested = dict(nested)
            nested[leaf] = 0.0
            out[parent] = nested
    return out


def result_from_summary(summary: Dict[str, object]) -> ExperimentResult:
    """Rebuild the :class:`ExperimentResult` a summary dict came from."""
    data = dict(summary)
    fault = data.pop("detection_fault", None)
    run = data.pop("mitigation", None)
    result = ExperimentResult(**data)
    if fault is not None:
        result.detection_fault = FaultInfo(**fault)
    if run is not None:
        result.mitigation = MitigationRun(**run)
    return result


# ----------------------------------------------------------------------
# the worker side
# ----------------------------------------------------------------------
class CellTimeout(BaseException):
    """Raised inside a worker when a cell exceeds its wall-clock budget.

    Subclasses ``BaseException`` (like ``KeyboardInterrupt``) so that no
    ``except Exception`` inside the experiment stack can swallow it.
    """


class _CellWatchdog:
    """Monitor-thread timeout: raise :class:`CellTimeout` in a target
    thread after ``timeout`` seconds.

    Replaces the old ``SIGALRM`` timer: signals only deliver to a
    process's main thread (and not at all on some platforms), so the
    alarm silently did nothing when a cell ran on a worker thread.  A
    :class:`threading.Timer` plus ``PyThreadState_SetAsyncExc`` works on
    any thread and any platform.  The async exception is delivered at
    the target thread's next bytecode boundary — the same granularity
    the signal handler had.

    :meth:`cancel` and the timer callback race when the cell finishes at
    the deadline; the lock-guarded ``_done`` flag makes that race safe,
    and a late-delivered ``CellTimeout`` is still caught by the payload
    wrapper's outer handler.

    One CPython caveat remains: a pending async exception delivered
    while the interpreter is inside a *gc callback* (hypothesis installs
    one process-wide) is reported as unraisable and cleared — the cell
    then finishes normally despite the timer having fired.  ``fired``
    records the timer's verdict so the payload wrapper can convert such
    a lost delivery into a timeout record deterministically.
    """

    def __init__(self, timeout: float, thread_id: int):
        self.timeout = timeout
        self.thread_id = thread_id
        self._lock = threading.Lock()
        self._done = False
        #: True once the deadline passed and the async exception was sent
        self.fired = False
        self._timer = threading.Timer(timeout, self._fire)
        self._timer.daemon = True

    def start(self) -> None:
        self._timer.start()

    def _fire(self) -> None:
        with self._lock:
            if self._done:
                return
            self.fired = True
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(self.thread_id), ctypes.py_object(CellTimeout)
            )

    def cancel(self) -> None:
        with self._lock:
            self._done = True
        self._timer.cancel()


def _run_cell_payload(
    key: Tuple[str, str, int], timeout: Optional[float]
) -> Dict[str, object]:
    """Execute one cell; returns an ``ok`` or ``error`` payload dict.

    Runs in the worker process (and, for ``jobs=1``, in the caller).  All
    expected failures are converted to data here so the future never
    carries an exception for an in-cell error — only worker *death*
    surfaces at the pool level.  The per-cell timeout is enforced by
    :class:`_CellWatchdog`, which works on any thread of any platform.
    """
    fid, solution, seed = key
    start = time.perf_counter()
    watchdog: Optional[_CellWatchdog] = None
    if timeout is not None and timeout > 0:
        watchdog = _CellWatchdog(timeout, threading.get_ident())
        watchdog.start()
    try:
        try:
            result = run_experiment(fid, solution, seed=seed)
            payload: Dict[str, object] = {
                "status": "ok",
                "summary": summarize_result(result),
                "seconds": time.perf_counter() - start,
            }
        finally:
            if watchdog is not None:
                watchdog.cancel()
        if watchdog is not None and watchdog.fired:
            # the deadline passed but the async exception was lost (e.g.
            # swallowed by a gc callback); honour the timer's verdict
            raise CellTimeout()
        return payload
    except CellTimeout:
        return {
            "status": "error",
            "error": {
                "kind": "timeout",
                "type": "CellTimeout",
                "message": f"cell exceeded {timeout:.3f}s",
                "traceback": "",
            },
            "seconds": time.perf_counter() - start,
        }
    except Exception as exc:
        return {
            "status": "error",
            "error": {
                "kind": "exception",
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            "seconds": time.perf_counter() - start,
        }


# ----------------------------------------------------------------------
# the caller side
# ----------------------------------------------------------------------
@dataclass
class CellOutcome:
    """Result of one cell: a summary dict, or an error record."""

    spec: CellSpec
    summary: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, object]] = None
    seconds: float = 0.0
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.summary is not None

    def result(self) -> ExperimentResult:
        """The rebuilt :class:`ExperimentResult` (raises on error cells)."""
        if self.summary is None:
            raise RuntimeError(
                f"cell {self.spec.label()} failed: {self.error}"
            )
        return result_from_summary(self.summary)

    def to_json(self) -> Dict[str, object]:
        return {
            "fid": self.spec.fid,
            "solution": self.spec.solution,
            "seed": self.spec.seed,
            "ok": self.ok,
            "summary": self.summary,
            "error": self.error,
            "seconds": self.seconds,
            "attempts": self.attempts,
        }


@dataclass
class MatrixReport:
    """Outcome of one sweep, cells in spec order (not completion order)."""

    jobs: int
    cells: List[CellOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def n_ok(self) -> int:
        return sum(1 for c in self.cells if c.ok)

    @property
    def n_errors(self) -> int:
        return len(self.cells) - self.n_ok

    def by_key(self) -> Dict[Tuple[str, str, int], CellOutcome]:
        return {c.spec.key: c for c in self.cells}

    def summaries(self) -> Dict[Tuple[str, str, int], Optional[Dict[str, object]]]:
        """Cell summaries keyed by spec — the equality-comparison view."""
        return {c.spec.key: c.summary for c in self.cells}

    def to_json(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "n_cells": len(self.cells),
            "n_ok": self.n_ok,
            "n_errors": self.n_errors,
            "cells": [c.to_json() for c in self.cells],
        }


ProgressFn = Callable[[int, int, CellOutcome], None]


def default_jobs() -> int:
    """Default fan-out width: one worker per CPU."""
    return os.cpu_count() or 1


def run_matrix(
    specs: Sequence[CellSpec],
    jobs: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
    max_crash_retries: int = 1,
) -> MatrixReport:
    """Run every cell, serially (``jobs=1``) or over a process pool.

    The two paths execute the identical per-cell code
    (:func:`_run_cell_payload`) and return identical summaries; only the
    scheduling differs.  ``progress`` is invoked once per finished cell
    with ``(done, total, outcome)`` in completion order.
    """
    specs = list(specs)
    n_jobs = jobs if jobs is not None else default_jobs()
    if n_jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {n_jobs}")
    start = time.perf_counter()
    outcomes: Dict[int, CellOutcome] = {}
    done = 0

    def record(index: int, outcome: CellOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        done += 1
        if progress is not None:
            progress(done, len(specs), outcome)

    if n_jobs == 1 or len(specs) <= 1:
        for i, spec in enumerate(specs):
            payload = _run_cell_payload(spec.key, cell_timeout)
            record(i, _outcome_from_payload(spec, payload, attempts=1))
    else:
        _run_pooled(
            specs, n_jobs, cell_timeout, record, max_crash_retries
        )

    report = MatrixReport(jobs=n_jobs)
    report.cells = [outcomes[i] for i in range(len(specs))]
    report.wall_seconds = time.perf_counter() - start
    return report


def _outcome_from_payload(
    spec: CellSpec, payload: Dict[str, object], attempts: int
) -> CellOutcome:
    return CellOutcome(
        spec=spec,
        summary=payload.get("summary") if payload["status"] == "ok" else None,
        error=payload.get("error") if payload["status"] != "ok" else None,
        seconds=float(payload.get("seconds", 0.0)),
        attempts=attempts,
    )


def _run_pooled(
    specs: List[CellSpec],
    n_jobs: int,
    cell_timeout: Optional[float],
    record: Callable[[int, CellOutcome], None],
    max_crash_retries: int,
) -> None:
    """Fan the cells out, rebuilding the pool after worker death.

    Workers use the ``spawn`` start method so each imports :mod:`repro`
    fresh — no state leaks from the parent, and fork-safety of the
    harness is never assumed.  When the pool breaks, every unfinished
    cell's attempt count is bumped (the dead worker's cell cannot be told
    apart from innocently queued ones); cells past their retry budget get
    ``worker-crash`` error records, the rest are resubmitted to a fresh
    pool.
    """
    pending: Dict[int, CellSpec] = dict(enumerate(specs))
    attempts: Dict[int, int] = {i: 0 for i in pending}
    # bounded pool rebuilds: each rebuild errors-out or retires at least
    # one cell, but cap defensively anyway
    for _rebuild in range(len(specs) + max_crash_retries + 1):
        if not pending:
            return
        ctx = get_context("spawn")
        broken = False
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(pending)), mp_context=ctx
        ) as pool:
            futures = {
                pool.submit(_run_cell_payload, spec.key, cell_timeout): i
                for i, spec in pending.items()
            }
            not_done = set(futures)
            while not_done:
                finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in finished:
                    i = futures[fut]
                    spec = pending[i]
                    try:
                        payload = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except Exception as exc:  # pragma: no cover - transport
                        # e.g. the payload failed to pickle; treat as an
                        # in-cell error, not a crash
                        record(i, CellOutcome(
                            spec=spec,
                            error={
                                "kind": "exception",
                                "type": type(exc).__name__,
                                "message": str(exc),
                                "traceback": traceback.format_exc(),
                            },
                            attempts=attempts[i] + 1,
                        ))
                        del pending[i]
                        continue
                    record(i, _outcome_from_payload(
                        spec, payload, attempts=attempts[i] + 1
                    ))
                    del pending[i]
                if broken:
                    break
        if not broken:
            return
        # worker death: bump attempts for everything unfinished, retire
        # cells that exhausted the retry budget, resubmit the rest
        for i in list(pending):
            attempts[i] += 1
            if attempts[i] > max_crash_retries:
                record(i, CellOutcome(
                    spec=pending[i],
                    error={
                        "kind": "worker-crash",
                        "type": "BrokenProcessPool",
                        "message": "worker process died while the cell "
                                   "was queued or running",
                        "traceback": "",
                    },
                    attempts=attempts[i],
                ))
                del pending[i]
    if pending:  # pragma: no cover - defensive cap
        for i, spec in pending.items():
            record(i, CellOutcome(
                spec=spec,
                error={
                    "kind": "worker-crash",
                    "type": "BrokenProcessPool",
                    "message": "pool rebuild budget exhausted",
                    "traceback": "",
                },
                attempts=attempts[i],
            ))
