"""Deterministic fault injection for the recovery pipeline.

Arthas exists because bad values survive restarts — but the recovery
pipeline itself persists data, records checkpoints, and patches the pool
across many steps, and a crash can land between any two of them.  This
module lets the harness *prove* the pipeline survives its own failures:

* instrumented code calls :func:`fire` at **named sites** — every
  persist/flush boundary (:mod:`repro.pmem.pool`,
  :mod:`repro.pmem.persist`), every checkpoint ``record_*`` hook
  (:mod:`repro.checkpoint.manager`), and between reversion steps
  (:mod:`repro.reactor.revert`);
* an :class:`InjectionPlan` decides whether the site fires a fault.
  Plans are **seeded and deterministic** (the same plan against the same
  run injects at exactly the same dynamic point) and **enumerable**
  (record mode counts every site occurrence, and
  :func:`enumerate_cells` expands the counts into the full sweep);
* five fault kinds model the WITCHER / Linux-PM-study failure classes:

  - ``crash``      — the process dies *before* the site's effect persists
                     (:class:`~repro.errors.InjectedCrash` is raised at
                     the site; un-fenced stores are lost when the harness
                     calls ``pool.crash()``);
  - ``torn``       — a fence persists only part of its staged lines, then
                     the process dies (torn cache-line writeback — the
                     Linux-PM-study torn/alignment-update pattern);
  - ``bitflip``    — one bit of a just-recorded checkpoint-log version is
                     flipped (media corruption of checkpoint bytes);
  - ``skip-flush`` — a flush (``clwb``) is silently elided: the range is
                     never staged for writeback, modelling the program
                     *missing* the flush call (WITCHER's missing-flush
                     bug class).  The store stays in the write buffer,
                     reads still see it, and the next power loss drops
                     it even though the program believed it durable;
  - ``skip-fence`` — a fence (``sfence``) is silently elided: staged
                     lines stay staged and persist hooks do not fire, so
                     the ordering the program relied on between the
                     writes before and after the fence is lost
                     (WITCHER's persist-ordering bug class).

``fire`` is a no-op (one module-attribute load and a None check) when no
plan is active, so production paths pay nothing.

Site-name taxonomy (`family` below is what :func:`enumerate_cells`
groups by; occurrences are counted per family per plan):

=========================  ====================================================
site family                fired from
=========================  ====================================================
``pmem.flush``             :meth:`PMPool.flush` (clwb boundary)
``pmem.fence``             :meth:`PMPool.fence`, before durability (sfence)
``pmem.api.<fn>``          each wrapper in :mod:`repro.pmem.persist`
``ckpt.record_update``     :class:`CheckpointManager` persist hook
``ckpt.record_alloc``      alloc hook
``ckpt.record_free``       free hook
``ckpt.record_tx_begin``   transaction-begin hook
``ckpt.record_tx_commit``  transaction-commit hook
``ckpt.index_merge``       :meth:`CheckpointLog.flush_staging`, before the
                           staged records are merged into the indexes
``revert.cut``             before each rollback cut / purge group
``revert.commit``          after a cut is applied, before its intent is
                           marked done
``cluster.promote``        :meth:`ShardManager.promote`, after the sick
                           node is marked down on the ring, before the
                           promotion journal entry completes
``cluster.resync``         :meth:`ShardManager.resync`, at the start of
                           the catch-up pass and before each replayed
                           oplog-tail op
``cluster.handoff``        :meth:`ShardManager.resync`, after the healed
                           node is demoted + marked up, before the
                           journal records the handoff
``cluster.ship_delta``     :meth:`Cluster._drain_node`, before a queued
                           batch of physical replica deltas is applied
                           to one node (delta replication engine)
``cluster.compact``        :meth:`Cluster.compact`, after the base image
                           is captured, before the acked delta prefix is
                           truncated
=========================  ====================================================

The ``cluster.*`` sites model a *second* fault arriving mid-promotion:
only ``crash`` applies there (the supervisor is host-side code — there
is no torn store or checkpoint record to corrupt), and every phase is
journaled so a crashed-and-retried promotion converges.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InjectedCrash

#: the supported fault kinds
KINDS = ("crash", "torn", "bitflip", "skip-flush", "skip-fence")

#: kinds the crash-consistency fuzzer injects into *guest* persistence
#: (the recovery-pipeline sweep keeps using crash/torn/bitflip)
FUZZ_KINDS = ("crash", "torn", "skip-flush", "skip-fence")

#: site families the fuzzer targets — the guest-visible persistence
#: boundaries only, so occurrence counts are identical whatever recovery
#: solution (checkpointing or not) is attached to the run
FUZZ_SITES = ("pmem.flush", "pmem.fence")

#: shard-supervisor phase boundaries (promotion protocol) plus the
#: delta-replication shipping/compaction boundaries; crash-only
CLUSTER_SITES = (
    "cluster.promote",
    "cluster.resync",
    "cluster.handoff",
    "cluster.ship_delta",
    "cluster.compact",
)

#: kinds that only make sense at specific site families
_TORN_SITES = ("pmem.fence",)
_BITFLIP_SITES = ("ckpt.record_update",)
_SKIP_FLUSH_SITES = (
    "pmem.flush",
    "pmem.api.pmem_flush",
    "pmem.api.pmem_persist",
    "pmem.api.pmem_memcpy_persist",
)
_SKIP_FENCE_SITES = (
    "pmem.fence",
    "pmem.api.pmem_drain",
    "pmem.api.pmem_persist",
)


@dataclass(frozen=True, order=True)
class InjectionSpec:
    """One planned fault: fire ``kind`` at the n-th firing of ``site``."""

    site: str
    occurrence: int = 1
    kind: str = "crash"
    #: seeds the torn split point / flipped bit position
    seed: int = 0

    def label(self) -> str:
        return f"{self.site}#{self.occurrence}:{self.kind}"


class InjectionPlan:
    """Counts site firings and decides which one injects a fault.

    ``record=True`` turns the plan into a pure site recorder: nothing is
    injected, but :attr:`counts` accumulates how often each site fired —
    the input to :func:`enumerate_cells`.

    Every spec is one-shot: a site occurrence passes its counter exactly
    once, so a retry of the crashed step proceeds clean — which is
    exactly the fail-once/recover-after model the sweep verifies.

    A ``(site, occurrence)`` pair can fire at most one spec, so plans
    holding two specs for the same pair are rejected at construction —
    the second spec could never fire, which would silently pin
    :attr:`all_fired` to False and starve the fuzzer of its coverage
    signal.  :meth:`observe` *consumes* the matched spec, making
    ``all_fired`` exactly "every planned injection happened".
    """

    def __init__(self, specs: Iterable[InjectionSpec] = (), record: bool = False):
        self.specs: List[InjectionSpec] = list(specs)
        self.record = record
        #: (site, occurrence) -> spec not yet fired; observe() consumes
        self._pending: Dict[Tuple[str, int], InjectionSpec] = {}
        for spec in self.specs:
            key = (spec.site, spec.occurrence)
            if key in self._pending:
                raise ValueError(
                    f"duplicate injection spec at {spec.site}"
                    f"#{spec.occurrence}: a site occurrence can fire at "
                    f"most one spec, so the duplicate could never fire"
                )
            self._pending[key] = spec
        #: site -> number of times it fired under this plan
        self.counts: Dict[str, int] = {}
        #: specs that actually injected
        self.fired: List[InjectionSpec] = []

    def observe(self, site: str) -> Optional[InjectionSpec]:
        """Count one firing of ``site``; return the spec to inject, if any."""
        n = self.counts.get(site, 0) + 1
        self.counts[site] = n
        if self.record:
            return None
        spec = self._pending.pop((site, n), None)
        if spec is not None:
            self.fired.append(spec)
        return spec

    @property
    def all_fired(self) -> bool:
        """Every planned spec fired — a sound coverage signal now that
        ``observe`` consumes specs and duplicates are rejected."""
        return not self._pending


#: the currently armed plan (None = injection disabled, zero-cost path)
_active: Optional[InjectionPlan] = None


def active() -> Optional[InjectionPlan]:
    """The currently armed plan, if any."""
    return _active


@contextmanager
def activate(plan: InjectionPlan) -> Iterator[InjectionPlan]:
    """Arm ``plan`` for the duration of the ``with`` block."""
    global _active
    prev = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = prev


def fire(site: str) -> Optional[InjectionSpec]:
    """Report that execution reached a named injection site.

    Raises :class:`~repro.errors.InjectedCrash` when the armed plan
    schedules a ``crash`` here.  Returns the spec for kinds the site
    must apply itself (``torn``, ``bitflip``) and None otherwise.
    """
    plan = _active
    if plan is None:
        return None
    spec = plan.observe(site)
    if spec is None:
        return None
    if spec.kind == "crash":
        raise InjectedCrash(
            f"injected crash at {site}#{spec.occurrence}", location=site
        )
    return spec


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
def _sample_occurrences(n: int, max_per_site: int) -> List[int]:
    """Up to ``max_per_site`` occurrence indexes in [1, n], always
    including the first and (when allowed) the last — deterministic."""
    if n <= 0:
        return []
    if max_per_site <= 0 or n <= max_per_site:
        return list(range(1, n + 1))
    if max_per_site == 1:
        return [1]
    # spread evenly, endpoints pinned
    step = (n - 1) / (max_per_site - 1)
    occs = sorted({1 + round(i * step) for i in range(max_per_site)})
    return occs


def kind_applies(site: str, kind: str) -> bool:
    """Whether a fault kind is meaningful at a site family."""
    if kind == "crash":
        return True
    if kind == "torn":
        return any(site.startswith(f) for f in _TORN_SITES)
    if kind == "bitflip":
        return any(site.startswith(f) for f in _BITFLIP_SITES)
    if kind == "skip-flush":
        return any(site.startswith(f) for f in _SKIP_FLUSH_SITES)
    if kind == "skip-fence":
        return any(site.startswith(f) for f in _SKIP_FENCE_SITES)
    return False


def enumerate_cells(
    counts: Dict[str, int],
    kinds: Sequence[str] = ("crash",),
    max_per_site: int = 3,
    seed: int = 0,
) -> List[InjectionSpec]:
    """Expand recorded site counts into the sweep's cell list.

    One cell per (site, sampled occurrence, applicable kind), in a
    deterministic order.  ``torn`` cells only target fence sites and
    ``bitflip`` cells only checkpoint-update sites; ``crash`` applies
    everywhere.
    """
    for kind in kinds:
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; pick from {KINDS}")
    cells: List[InjectionSpec] = []
    for site in sorted(counts):
        occs = _sample_occurrences(counts[site], max_per_site)
        for kind in kinds:
            if not kind_applies(site, kind):
                continue
            for occ in occs:
                cells.append(InjectionSpec(site, occ, kind, seed=seed))
    return cells
