"""libpmem-style convenience API over :class:`~repro.pmem.pool.PMPool`.

Mirrors the low-level half of PMDK that the paper's "native persistence"
systems use (``pmem_map_file``, ``pmem_persist``, ``pmem_flush``,
``pmem_drain``, ``pmem_memcpy_persist``).  Systems written with the
high-level object API use :class:`~repro.pmem.allocator.PMAllocator` and
:class:`~repro.pmem.tx.TransactionManager` instead.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro import faultinject
from repro.errors import PoolError
from repro.pmem.pool import PMPool

#: registry of mapped pools by path, emulating the pmem_map_file namespace
_mapped: Dict[str, PMPool] = {}


def pmem_map_file(path: str, size_words: int) -> PMPool:
    """Map (create or reopen) a persistent pool identified by ``path``."""
    if path in _mapped:
        pool = _mapped[path]
        if pool.size_words != size_words:
            raise PoolError(
                f"pool {path} already mapped with size {pool.size_words}, "
                f"requested {size_words}"
            )
        return pool
    pool = PMPool(size_words, name=path)
    _mapped[path] = pool
    return pool


def pmem_unmap(path: str) -> None:
    """Remove a pool from the mapped-file registry (its data is dropped)."""
    _mapped.pop(path, None)


def pmem_persist(pool: PMPool, addr: int, nwords: int) -> None:
    """Flush a range and fence — the fundamental durability primitive."""
    faultinject.fire("pmem.api.pmem_persist")
    pool.persist(addr, nwords)


def pmem_flush(pool: PMPool, addr: int, nwords: int) -> None:
    """Stage a range for writeback without ordering it (``clwb``)."""
    faultinject.fire("pmem.api.pmem_flush")
    pool.flush(addr, nwords)


def pmem_drain(pool: PMPool) -> None:
    """Order previously flushed ranges (``sfence``)."""
    faultinject.fire("pmem.api.pmem_drain")
    pool.fence()


def pmem_memcpy_persist(pool: PMPool, dst: int, values: Iterable[int]) -> None:
    """Copy words into PM and persist them in one call."""
    faultinject.fire("pmem.api.pmem_memcpy_persist")
    values = list(values)
    pool.write_range(dst, values)
    pool.persist(dst, len(values))
