"""libpmem-style convenience API over :class:`~repro.pmem.pool.PMPool`.

Mirrors the low-level half of PMDK that the paper's "native persistence"
systems use (``pmem_map_file``, ``pmem_persist``, ``pmem_flush``,
``pmem_drain``, ``pmem_memcpy_persist``).  Systems written with the
high-level object API use :class:`~repro.pmem.allocator.PMAllocator` and
:class:`~repro.pmem.tx.TransactionManager` instead.

The wrappers honor the ``skip-flush`` / ``skip-fence`` fault kinds at
their own ``pmem.api.*`` sites (the call is silently elided, modelling a
*missing* libpmem call in the program), which is how the
crash-consistency fuzzer perturbs native-persistence guests.

:func:`probe_persistence` is the WITCHER-style likely-invariant probe:
it inspects the simulated CPU write buffer / staged-line state and
reports what a power loss *right now* would lose — the signal the
fuzzer's consistency checks and the new fault families are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro import faultinject
from repro.errors import PoolError
from repro.pmem.pool import WORDS_PER_LINE, PMPool

#: registry of mapped pools by path, emulating the pmem_map_file namespace
_mapped: Dict[str, PMPool] = {}


def pmem_map_file(path: str, size_words: int) -> PMPool:
    """Map (create or reopen) a persistent pool identified by ``path``."""
    if path in _mapped:
        pool = _mapped[path]
        if pool.size_words != size_words:
            raise PoolError(
                f"pool {path} already mapped with size {pool.size_words}, "
                f"requested {size_words}"
            )
        return pool
    pool = PMPool(size_words, name=path)
    _mapped[path] = pool
    return pool


def pmem_unmap(path: str) -> None:
    """Remove a pool from the mapped-file registry (its data is dropped)."""
    _mapped.pop(path, None)


def pmem_persist(pool: PMPool, addr: int, nwords: int) -> None:
    """Flush a range and fence — the fundamental durability primitive."""
    spec = faultinject.fire("pmem.api.pmem_persist")
    if spec is not None and spec.kind == "skip-flush":
        pool.stats["skipped_flushes"] += 1
        pool.fence()  # the fence still runs; the range was never staged
        return
    if spec is not None and spec.kind == "skip-fence":
        pool.stats["skipped_fences"] += 1
        pool.flush(addr, nwords)  # staged, but never ordered here
        return
    pool.persist(addr, nwords)


def pmem_flush(pool: PMPool, addr: int, nwords: int) -> None:
    """Stage a range for writeback without ordering it (``clwb``)."""
    spec = faultinject.fire("pmem.api.pmem_flush")
    if spec is not None and spec.kind == "skip-flush":
        pool.stats["skipped_flushes"] += 1
        return
    pool.flush(addr, nwords)


def pmem_drain(pool: PMPool) -> None:
    """Order previously flushed ranges (``sfence``)."""
    spec = faultinject.fire("pmem.api.pmem_drain")
    if spec is not None and spec.kind == "skip-fence":
        pool.stats["skipped_fences"] += 1
        return
    pool.fence()


def pmem_memcpy_persist(pool: PMPool, dst: int, values: Iterable[int]) -> None:
    """Copy words into PM and persist them in one call."""
    spec = faultinject.fire("pmem.api.pmem_memcpy_persist")
    values = list(values)
    pool.write_range(dst, values)
    if spec is not None and spec.kind == "skip-flush":
        pool.stats["skipped_flushes"] += 1
        pool.fence()
        return
    pool.persist(dst, len(values))


# ----------------------------------------------------------------------
# likely-invariant probes over the simulated cache/fence layer
# ----------------------------------------------------------------------
@dataclass
class PersistProbe:
    """What a power loss *right now* would do to a pool.

    The fuzzer's invariant checks read this between guest quiescence and
    the simulated power loss: a quiescent guest that believes its data
    durable must show an empty write buffer, otherwise some persist call
    was skipped / unordered (WITCHER's missing-flush and persist-ordering
    invariants).
    """

    #: words written but never flushed — lost at power loss (missing flush)
    unflushed_words: int = 0
    #: cache lines flushed but not yet fenced (ordering not established)
    staged_lines: int = 0
    #: words inside staged lines — lost at power loss (missing fence)
    staged_words: int = 0
    #: explicit flushed ranges whose persist hooks have not fired
    pending_ranges: int = 0
    #: addresses a power loss would revert to their durable value
    at_risk: Tuple[int, ...] = field(default=(), repr=False)

    @property
    def at_risk_words(self) -> int:
        return len(self.at_risk)

    @property
    def consistent(self) -> bool:
        """True when a power loss right now loses nothing."""
        return self.at_risk_words == 0 and self.pending_ranges == 0


def probe_persistence(pool: PMPool) -> PersistProbe:
    """Inspect ``pool``'s write-buffer state without disturbing it."""
    staged = pool._staged_lines
    staged_words = 0
    unflushed = 0
    at_risk: List[int] = []
    for addr in pool._cache:
        at_risk.append(addr)
        if addr // WORDS_PER_LINE in staged:
            staged_words += 1
        else:
            unflushed += 1
    at_risk.sort()
    return PersistProbe(
        unflushed_words=unflushed,
        staged_lines=len(staged),
        staged_words=staged_words,
        pending_ranges=len(pool._pending_ranges),
        at_risk=tuple(at_risk),
    )
