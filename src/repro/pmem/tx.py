"""Undo-log transactions in the style of ``libpmemobj``.

A transaction brackets a group of PM updates so that either all of them
become durable (commit) or none do (abort).  The Arthas checkpoint manager
registers begin/commit callbacks here: the paper's checkpoint log inserts
special entries at transaction boundaries so the reactor can revert whole
transactions together (Section 4.6).

Semantics implemented:

* Transactions are **per context** (PMDK transactions are per-thread):
  every guest thread passes its id, so concurrent threads hold
  independent transactions over the same pool.
* ``add(addr, n)`` snapshots the current values of a range into the undo
  log (``TX_ADD``).  A range must be added before it is modified for
  abort to restore it — exactly the PMDK contract.
* ``commit`` flushes every added range and fences once, then notifies
  commit hooks.  Per-range persist hooks on the pool still fire (tagged
  ``tx-commit``), which is how the checkpoint manager copies the undo-log
  ranges into its own log, as described in the paper.
* ``abort`` restores the undo snapshots durably and discards buffered
  stores to those ranges.
* Nested transactions within one context flatten into the outermost one
  (libpmemobj style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.errors import TransactionError
from repro.pmem.pool import PMPool

BeginHook = Callable[[int], None]
CommitHook = Callable[[int, List[Tuple[int, int]]], None]


@dataclass
class _TxFrame:
    """State of one context's in-flight transaction."""

    tx_id: int
    depth: int = 1
    undo: List[Tuple[int, List[int]]] = field(default_factory=list)
    ranges: List[Tuple[int, int]] = field(default_factory=list)


class TransactionManager:
    """Per-pool transaction state, one independent frame per context."""

    def __init__(self, pool: PMPool):
        self.pool = pool
        self._next_tx_id = 1
        self._frames: Dict[int, _TxFrame] = {}
        #: tx id whose commit is currently persisting (for persist hooks)
        self._committing: int = 0
        self._begin_hooks: List[BeginHook] = []
        self._commit_hooks: List[CommitHook] = []

    # ------------------------------------------------------------------
    def add_begin_hook(self, hook: BeginHook) -> None:
        """Register a callback fired when an outermost transaction begins."""
        self._begin_hooks.append(hook)

    def add_commit_hook(self, hook: CommitHook) -> None:
        """Register a callback fired after an outermost commit persists."""
        self._commit_hooks.append(hook)

    # ------------------------------------------------------------------
    def active(self, ctx: int = 0) -> bool:
        """True when context ``ctx`` has a transaction in flight."""
        return ctx in self._frames

    @property
    def current_tx_id(self) -> int:
        """Id of the transaction currently committing (0 when none).

        The checkpoint manager reads this from within persist hooks to tag
        log entries with their transaction.
        """
        return self._committing

    def begin(self, ctx: int = 0) -> int:
        """Begin a transaction for ``ctx`` (nested begins flatten)."""
        frame = self._frames.get(ctx)
        if frame is not None:
            frame.depth += 1
            return frame.tx_id
        tx_id = self._next_tx_id
        self._next_tx_id += 1
        self._frames[ctx] = _TxFrame(tx_id)
        for hook in self._begin_hooks:
            hook(tx_id)
        return tx_id

    def add(self, addr: int, nwords: int, ctx: int = 0) -> None:
        """Snapshot a range into the undo log before modifying it."""
        frame = self._frames.get(ctx)
        if frame is None:
            raise TransactionError("tx_add outside a transaction")
        frame.undo.append((addr, self.pool.read_range(addr, nwords)))
        frame.ranges.append((addr, nwords))

    def commit(self, ctx: int = 0) -> None:
        """Commit; only the outermost commit persists the added ranges."""
        frame = self._frames.get(ctx)
        if frame is None:
            raise TransactionError("tx_commit outside a transaction")
        frame.depth -= 1
        if frame.depth > 0:
            return
        self._committing = frame.tx_id
        try:
            for addr, nwords in frame.ranges:
                self.pool.flush(addr, nwords, tag="tx-commit")
            self.pool.fence()
        finally:
            self._committing = 0
        for hook in self._commit_hooks:
            hook(frame.tx_id, list(frame.ranges))
        del self._frames[ctx]

    def abort(self, ctx: int = 0) -> None:
        """Abort the whole (outermost) transaction, restoring undo values."""
        frame = self._frames.get(ctx)
        if frame is None:
            raise TransactionError("tx_abort outside a transaction")
        # restore in reverse order so overlapping adds unwind correctly
        for addr, values in reversed(frame.undo):
            self.pool.discard_cached(addr, len(values))
            for i, v in enumerate(values):
                self.pool.durable_write(addr + i, v)
        del self._frames[ctx]

    def reset(self) -> None:
        """Forcibly clear all transaction state (after a crash)."""
        self._frames.clear()
        self._committing = 0
