"""Whole-pool snapshot and restore.

This is the substrate for the pmCRIU baseline (Section 6.1): CRIU enhanced
to dump the PM pool alongside process state.  A snapshot captures the
durable image and the allocator metadata; restore replaces both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool


@dataclass
class PoolSnapshot:
    """A point-in-time durable image of a pool."""

    #: simulated time at which the snapshot was taken (seconds)
    taken_at: float
    durable: Dict[int, int] = field(default_factory=dict)
    allocator_meta: dict = field(default_factory=dict)
    #: free-form label ("ckpt3"), used in reports
    label: str = ""

    def size_words(self) -> int:
        """Number of non-zero durable words captured."""
        return len(self.durable)


def take_snapshot(
    pool: PMPool,
    allocator: Optional[PMAllocator] = None,
    taken_at: float = 0.0,
    label: str = "",
) -> PoolSnapshot:
    """Capture the durable image (and allocator metadata) of a pool."""
    return PoolSnapshot(
        taken_at=taken_at,
        durable=pool.durable_items(),
        allocator_meta=allocator.export_meta() if allocator is not None else {},
        label=label,
    )


def restore_snapshot(
    pool: PMPool,
    snapshot: PoolSnapshot,
    allocator: Optional[PMAllocator] = None,
) -> None:
    """Replace the pool's durable image with a snapshot's."""
    pool.load_durable(snapshot.durable)
    if allocator is not None and snapshot.allocator_meta:
        allocator.import_meta(snapshot.allocator_meta)


@dataclass
class EpochSnapshot:
    """A lightweight snapshot: an open dirty-word epoch plus allocator meta.

    Unlike :class:`PoolSnapshot` this does not copy the durable image — the
    pool records pre-images of the words mutated after ``take_epoch_snapshot``
    and restore rewrites only those.  Cost is O(words dirtied since the
    snapshot) instead of O(pool).
    """

    taken_at: float
    #: epoch token from :meth:`PMPool.open_epoch`
    epoch: int = 0
    allocator_meta: dict = field(default_factory=dict)
    label: str = ""

    def dirty_words(self, pool: PMPool) -> int:
        """Words mutated since the snapshot (the restore cost)."""
        return pool.epoch_dirty_words(self.epoch)


def take_epoch_snapshot(
    pool: PMPool,
    allocator: Optional[PMAllocator] = None,
    taken_at: float = 0.0,
    label: str = "",
) -> EpochSnapshot:
    """Open a dirty-word epoch; later mutations are undoable in O(delta)."""
    return EpochSnapshot(
        taken_at=taken_at,
        epoch=pool.open_epoch(),
        allocator_meta=allocator.export_meta() if allocator is not None else {},
        label=label,
    )


def restore_epoch_snapshot(
    pool: PMPool,
    snapshot: EpochSnapshot,
    allocator: Optional[PMAllocator] = None,
    close: bool = True,
) -> int:
    """Rewrite only the words dirtied since the snapshot; returns that count.

    With ``close=False`` the epoch stays open (emptied), so the caller can
    keep mutating and restore again later.  Epochs must be restored newest-
    first (LIFO) when several are open.
    """
    undone = pool.epoch_undo(snapshot.epoch, close=close)
    if allocator is not None and snapshot.allocator_meta:
        allocator.import_meta(snapshot.allocator_meta)
    return undone
