"""Whole-pool snapshot and restore.

This is the substrate for the pmCRIU baseline (Section 6.1): CRIU enhanced
to dump the PM pool alongside process state.  A snapshot captures the
durable image and the allocator metadata; restore replaces both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool


@dataclass
class PoolSnapshot:
    """A point-in-time durable image of a pool."""

    #: simulated time at which the snapshot was taken (seconds)
    taken_at: float
    durable: Dict[int, int] = field(default_factory=dict)
    allocator_meta: dict = field(default_factory=dict)
    #: free-form label ("ckpt3"), used in reports
    label: str = ""

    def size_words(self) -> int:
        """Number of non-zero durable words captured."""
        return len(self.durable)


def take_snapshot(
    pool: PMPool,
    allocator: Optional[PMAllocator] = None,
    taken_at: float = 0.0,
    label: str = "",
) -> PoolSnapshot:
    """Capture the durable image (and allocator metadata) of a pool."""
    return PoolSnapshot(
        taken_at=taken_at,
        durable=pool.durable_items(),
        allocator_meta=allocator.export_meta() if allocator is not None else {},
        label=label,
    )


def restore_snapshot(
    pool: PMPool,
    snapshot: PoolSnapshot,
    allocator: Optional[PMAllocator] = None,
) -> None:
    """Replace the pool's durable image with a snapshot's."""
    pool.load_durable(snapshot.durable)
    if allocator is not None and snapshot.allocator_meta:
        allocator.import_meta(snapshot.allocator_meta)
