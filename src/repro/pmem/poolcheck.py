"""Structural pool validation — the reproduction's ``pmempool-check``.

The paper's consistency evaluation (Section 6.2) runs "sanity checks on
the persistent memory file with tools such as pmempool-check, which catch
bad PM blocks".  This module provides the equivalent for the simulated
pool: structural invariants that hold for any healthy pool regardless of
the application on top.

Checks:

* allocator metadata is self-consistent: live blocks are disjoint, free
  extents are disjoint and sorted, and together they tile the heap;
* the root pointer is null or points at the start of a live block;
* no durable data sits in free space ("stray blocks": a block was freed
  while still holding data that something may still reference — the
  symptom left behind by use-after-free bugs and unreverted frees);
* pointer-looking durable words inside live blocks target live blocks
  (dangling persistent pointers).

Stray-data and dangling-pointer findings are *warnings* (legal pools can
exhibit them transiently); metadata findings are errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.pmem.allocator import HEADER_WORDS, PMAllocator
from repro.pmem.pool import PM_BASE, PMPool


@dataclass
class PoolCheckReport:
    """Findings from one pool validation."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        """One-line verdict: consistent/CORRUPT with finding counts."""
        status = "consistent" if self.ok else "CORRUPT"
        return (
            f"pool {status}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )


def check_pool(pool: PMPool, allocator: PMAllocator) -> PoolCheckReport:
    """Validate one pool's structural invariants."""
    report = PoolCheckReport()
    heap_start = PM_BASE + HEADER_WORDS
    heap_end = PM_BASE + pool.size_words

    blocks = sorted(allocator.allocations().items())
    extents = sorted(allocator._free)

    # 1. live blocks are in-heap and disjoint
    for (a, n), (b, m) in zip(blocks, blocks[1:]):
        if a + n > b:
            report.errors.append(
                f"live blocks overlap: [{a:#x},+{n}) and [{b:#x},+{m})"
            )
    for a, n in blocks:
        if a < heap_start or a + n > heap_end:
            report.errors.append(f"live block [{a:#x},+{n}) outside heap")

    # 2. free extents are disjoint and in-heap
    for (a, n), (b, m) in zip(extents, extents[1:]):
        if a + n > b:
            report.errors.append(
                f"free extents overlap: [{a:#x},+{n}) and [{b:#x},+{m})"
            )
    for a, n in extents:
        if a < heap_start or a + n > heap_end:
            report.errors.append(f"free extent [{a:#x},+{n}) outside heap")

    # 3. live + free tiles the heap exactly
    covered = sum(n for _a, n in blocks) + sum(n for _a, n in extents)
    if covered != heap_end - heap_start:
        report.errors.append(
            f"heap accounting broken: {covered} words covered, "
            f"{heap_end - heap_start} in heap"
        )
    regions = sorted(blocks + extents)
    cursor = heap_start
    for a, n in regions:
        if a != cursor:
            report.errors.append(
                f"heap gap or overlap at {cursor:#x} (next region {a:#x})"
            )
            break
        cursor = a + n

    # 4. root pointer sanity
    root = allocator.root()
    if root != 0 and not allocator.is_allocated(root):
        report.errors.append(f"root pointer {root:#x} is not a live block")

    # 5. stray durable data in free space
    free_words = 0
    for a, n in extents:
        free_words += sum(
            1 for w in range(a, a + n) if pool.durable_read(w) != 0
        )
    if free_words:
        report.warnings.append(
            f"{free_words} non-zero durable word(s) in free space "
            f"(stale data from freed blocks)"
        )

    # 6. dangling persistent pointers inside live blocks
    dangling = 0
    for a, n in blocks:
        for w in range(a, a + n):
            value = pool.durable_read(w)
            if value and pool.contains(value):
                if allocator.block_containing(value) is None:
                    dangling += 1
    if dangling:
        report.warnings.append(
            f"{dangling} pointer-looking durable word(s) targeting freed "
            f"memory (dangling persistent pointers)"
        )
    return report
