"""Simulated persistent memory substrate.

This package stands in for the Optane DIMMs + PMDK stack the paper runs on.
It models the pieces that decide *which values survive a restart*:

* :mod:`repro.pmem.pool` — a word-addressable persistent region with a CPU
  write-buffer model: stores land in a volatile cache and only become
  durable when flushed (``clwb``-style) and fenced (``sfence``-style).
  ``crash()`` discards everything that was not yet durable.
* :mod:`repro.pmem.allocator` — a pmemobj-like allocator with a pool root
  object, ``zalloc``/``free``/``realloc`` and usage accounting.
* :mod:`repro.pmem.tx` — undo-log transactions (libpmemobj style).
* :mod:`repro.pmem.snapshot` — whole-pool snapshot/restore, the substrate
  for the pmCRIU baseline.

Addresses are word addresses (one word = 8 simulated bytes).  Address 0 is
NULL.  Persistent addresses live at ``PM_BASE`` and above; the interpreter
gives volatile memory a disjoint range below it.
"""

from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PM_BASE, WORDS_PER_LINE, PMPool
from repro.pmem.snapshot import PoolSnapshot, restore_snapshot, take_snapshot
from repro.pmem.tx import TransactionManager

__all__ = [
    "PM_BASE",
    "WORDS_PER_LINE",
    "PMPool",
    "PMAllocator",
    "TransactionManager",
    "PoolSnapshot",
    "take_snapshot",
    "restore_snapshot",
]
