"""Word-addressable persistent memory pool with a CPU write-buffer model.

The model follows how real PM behaves underneath ``clwb``/``sfence``:

* ``write`` puts the value in a volatile write buffer (the "CPU cache").
  Reads see the buffer first, so the running program always observes its
  own latest stores.
* ``flush`` stages the cache lines overlapping a range for writeback.
* ``fence`` makes every staged line durable and fires persist hooks.
* ``persist`` is the common ``flush + fence`` pair (``pmem_persist``).
* ``crash`` throws away the write buffer and staged lines; only durable
  words survive — exactly the semantics that turn soft faults into hard
  faults when a bad value *was* persisted.

Persist hooks are how the Arthas checkpoint manager observes the program's
own persistence points (Section 4.2 of the paper): a hook fires once per
explicitly persisted range, after the range is durable, with the durable
values.  Hook granularity therefore matches the granularity the target
program chose, which is what makes rollback consistent (Section 4.6).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro import faultinject
from repro.errors import InjectedCrash, PoolError

#: First valid persistent word address.  Everything below is volatile space
#: (or NULL); keeping the ranges disjoint lets analyses and the leak
#: detector classify an address by value alone.
PM_BASE = 0x1000_0000

#: Words per simulated cache line (8 words x 8 bytes = 64-byte lines).
WORDS_PER_LINE = 8

#: Type of a persist hook: (addr, nwords, values, tag) -> None.  ``tag`` is
#: an opaque string the writer supplied (e.g. "persist", "tx-commit").
PersistHook = Callable[[int, int, List[int], str], None]


class PMPool:
    """A simulated persistent memory pool.

    Parameters
    ----------
    size_words:
        Capacity of the pool in words.
    name:
        Pool name, used in error messages and snapshots.
    """

    def __init__(self, size_words: int, name: str = "pool"):
        if size_words <= 0:
            raise PoolError(f"pool size must be positive, got {size_words}")
        self.name = name
        self.size_words = size_words
        #: durable words: addr -> value (sparse; absent means 0)
        self._durable: Dict[int, int] = {}
        #: CPU write buffer: addr -> value, not yet durable
        self._cache: Dict[int, int] = {}
        #: line indices staged by flush but not yet fenced
        self._staged_lines: set[int] = set()
        #: explicit (addr, nwords, tag) ranges awaiting the next fence
        self._pending_ranges: List[Tuple[int, int, str]] = []
        self._persist_hooks: List[PersistHook] = []
        #: open dirty-word epochs: token -> {addr: durable pre-image},
        #: where ``None`` means the word had no durable entry at all
        #: (distinct from an explicit 0, so undo restores the exact
        #: representation byte-for-byte).  Insertion order is open order;
        #: undo must be LIFO.  Empty in normal operation, so the hot
        #: persist path pays one truthiness check per durable word (see
        #: :meth:`open_epoch`).
        self._epoch_preimages: Dict[int, Dict[int, Optional[int]]] = {}
        self._epoch_next = 1
        # statistics used by the overhead model and tests
        self.stats = {
            "writes": 0,
            "reads": 0,
            "flushes": 0,
            "fences": 0,
            "skipped_flushes": 0,
            "skipped_fences": 0,
            "persisted_words": 0,
            "crashes": 0,
        }

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        """Return True if ``addr`` is a valid word address in this pool."""
        return PM_BASE <= addr < PM_BASE + self.size_words

    def _check(self, addr: int, nwords: int = 1) -> None:
        if nwords < 0:
            raise PoolError(f"negative range length {nwords}")
        if not self.contains(addr) or not (
            nwords == 0 or self.contains(addr + nwords - 1)
        ):
            raise PoolError(
                f"address range [{addr:#x}, +{nwords}) outside pool "
                f"{self.name} [{PM_BASE:#x}, {PM_BASE + self.size_words:#x})"
            )

    @staticmethod
    def line_of(addr: int) -> int:
        """Return the cache-line index containing a word address."""
        return addr // WORDS_PER_LINE

    # ------------------------------------------------------------------
    # load / store
    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        """Read one word, observing un-persisted stores (cache first)."""
        self._check(addr)
        self.stats["reads"] += 1
        if addr in self._cache:
            return self._cache[addr]
        return self._durable.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        """Store one word into the write buffer (not yet durable)."""
        self._check(addr)
        self.stats["writes"] += 1
        self._cache[addr] = value

    def read_range(self, addr: int, nwords: int) -> List[int]:
        """Read ``nwords`` consecutive words."""
        self._check(addr, nwords)
        return [self.read(addr + i) for i in range(nwords)]

    def write_range(self, addr: int, values: Iterable[int]) -> None:
        """Store consecutive words starting at ``addr``."""
        values = list(values)
        self._check(addr, len(values))
        for i, v in enumerate(values):
            self.write(addr + i, v)

    def durable_read(self, addr: int) -> int:
        """Read the *durable* value of a word (what a crash would keep)."""
        self._check(addr)
        return self._durable.get(addr, 0)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def flush(self, addr: int, nwords: int = 1, tag: str = "persist") -> None:
        """Stage the cache lines overlapping ``[addr, addr+nwords)``.

        Nothing is durable until the next :meth:`fence`.
        """
        if nwords == 0:
            return
        self._check(addr, nwords)
        spec = faultinject.fire("pmem.flush")
        if spec is not None and spec.kind == "skip-flush":
            # the clwb is elided: the store stays in the write buffer,
            # reads still see it, and the next power loss drops it even
            # though the program believed it durable (missing-flush bug)
            self.stats["skipped_flushes"] += 1
            return
        self.stats["flushes"] += 1
        first = self.line_of(addr)
        last = self.line_of(addr + nwords - 1)
        self._staged_lines.update(range(first, last + 1))
        self._pending_ranges.append((addr, nwords, tag))

    def fence(self) -> None:
        """Make all staged lines durable and fire persist hooks.

        Hooks fire once per explicit flushed range, in flush order, after
        durability — a hook never observes a value that could still be
        lost in a crash.
        """
        spec = faultinject.fire("pmem.fence")  # crash-before-persist site
        if spec is not None and spec.kind == "torn":
            self._torn_fence(spec)
        if spec is not None and spec.kind == "skip-fence":
            # the sfence is elided: staged lines stay staged and persist
            # hooks do not fire, so the ordering the program relied on is
            # lost until some *later* fence happens to drain the buffer
            # (persist-ordering bug)
            self.stats["skipped_fences"] += 1
            return
        self.stats["fences"] += 1
        epochs = self._epoch_preimages
        for line in self._staged_lines:
            base = line * WORDS_PER_LINE
            for addr in range(base, base + WORDS_PER_LINE):
                if addr in self._cache:
                    if epochs:
                        self._note_dirty(addr)
                    value = self._cache.pop(addr)
                    # canonical sparse image: zero means entry absent,
                    # matching durable_write — so a physically
                    # replicated pool is byte-comparable to an
                    # executed one
                    if value == 0:
                        self._durable.pop(addr, None)
                    else:
                        self._durable[addr] = value
                    self.stats["persisted_words"] += 1
        self._staged_lines.clear()
        pending, self._pending_ranges = self._pending_ranges, []
        for addr, nwords, tag in pending:
            if self._persist_hooks:
                values = [self._durable.get(addr + i, 0) for i in range(nwords)]
                for hook in self._persist_hooks:
                    hook(addr, nwords, values, tag)

    def _torn_fence(self, spec) -> None:
        """Persist only part of the staged lines, then die (torn write).

        Models a crash landing mid-writeback: whole cache lines are the
        durability unit, so a deterministic, seeded prefix of the staged
        lines reaches PM and the rest is lost with the write buffer.
        Persist hooks never fire — the process died before the fence
        completed, so the checkpoint log is left *behind* the pool,
        exactly the divergence recovery must tolerate.
        """
        import random

        lines = sorted(self._staged_lines)
        rng = random.Random((spec.seed << 16) ^ len(lines))
        keep = rng.randrange(1, len(lines)) if len(lines) > 1 else 0
        for line in lines[:keep]:
            base = line * WORDS_PER_LINE
            for addr in range(base, base + WORDS_PER_LINE):
                if addr in self._cache:
                    if self._epoch_preimages:
                        self._note_dirty(addr)
                    value = self._cache.pop(addr)
                    if value == 0:
                        self._durable.pop(addr, None)
                    else:
                        self._durable[addr] = value
                    self.stats["persisted_words"] += 1
        raise InjectedCrash(
            f"torn fence: {keep} of {len(lines)} staged line(s) persisted",
            location="pmem.fence",
        )

    def persist(self, addr: int, nwords: int = 1, tag: str = "persist") -> None:
        """``pmem_persist`` equivalent: flush the range and fence."""
        self.flush(addr, nwords, tag)
        self.fence()

    def add_persist_hook(self, hook: PersistHook) -> None:
        """Register a hook observing every explicitly persisted range."""
        self._persist_hooks.append(hook)

    def remove_persist_hook(self, hook: PersistHook) -> None:
        """Unregister a previously added persist hook."""
        self._persist_hooks.remove(hook)

    # ------------------------------------------------------------------
    # crash / direct durable access
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate power loss: drop all state that is not durable."""
        self.stats["crashes"] += 1
        self._cache.clear()
        self._staged_lines.clear()
        self._pending_ranges.clear()

    def dirty_words(self) -> int:
        """Number of words sitting in the write buffer (would be lost)."""
        return len(self._cache)

    def durable_write(self, addr: int, value: int) -> None:
        """Write directly to durable storage, bypassing the write buffer.

        Used only by recovery machinery (reactor reversions, snapshot
        restore) — never by the guest program.
        """
        self._check(addr)
        if self._epoch_preimages:
            self._note_dirty(addr)
        if value == 0:
            self._durable.pop(addr, None)
        else:
            self._durable[addr] = value

    def apply_words(self, words: Dict[int, int]) -> None:
        """Install a captured word delta wholesale (physical replication).

        Equivalent to :meth:`durable_write` per word — shares the
        0-means-absent convention and epoch dirty tracking — but
        validates the address range once (the pool's address space is
        one contiguous run, so checking the extremes covers every word)
        and skips the per-call machinery: the shipped-delta apply loop
        is the cluster replication hot path.
        """
        if not words:
            return
        self._check(min(words))
        self._check(max(words))
        durable = self._durable
        if self._epoch_preimages:
            for addr, value in words.items():
                self._note_dirty(addr)
                if value == 0:
                    durable.pop(addr, None)
                else:
                    durable[addr] = value
        else:
            for addr, value in words.items():
                if value == 0:
                    durable.pop(addr, None)
                else:
                    durable[addr] = value

    def discard_cached(self, addr: int, nwords: int = 1) -> None:
        """Drop any buffered (un-persisted) stores in a range.

        Used by the allocator (fresh blocks start from durable zeros) and
        by transaction aborts.
        """
        self._check(addr, nwords)
        for a in range(addr, addr + nwords):
            self._cache.pop(a, None)

    def durable_items(self) -> Dict[int, int]:
        """A copy of all non-zero durable words (addr -> value)."""
        return dict(self._durable)

    def load_durable(self, items: Dict[int, int]) -> None:
        """Replace the durable image wholesale (snapshot restore)."""
        for addr in items:
            self._check(addr)
        if self._epoch_preimages:
            # record the full diff so open epochs stay undoable — the
            # wholesale replacement is O(pool) anyway
            for addr in set(self._durable) | set(items):
                if self._durable.get(addr, 0) != items.get(addr, 0):
                    self._note_dirty(addr)
        self._durable = dict(items)
        self._cache.clear()
        self._staged_lines.clear()
        self._pending_ranges.clear()

    # ------------------------------------------------------------------
    # dirty-word epochs (incremental snapshots)
    # ------------------------------------------------------------------
    def _note_dirty(self, addr: int) -> None:
        """Record ``addr``'s durable pre-image in every open epoch.

        First write wins per epoch: the stored value is what the word
        held when the epoch opened (or when it was first touched after),
        which is exactly what :meth:`epoch_undo` must write back.  A
        word with no durable entry records ``None`` so undo can remove
        the entry again rather than leave an explicit 0 behind.
        """
        durable = self._durable
        for pre in self._epoch_preimages.values():
            if addr not in pre:
                pre[addr] = durable.get(addr)

    def open_epoch(self) -> int:
        """Open a dirty-word tracking epoch; returns an opaque token.

        From now until the epoch is undone or closed, every durable
        mutation (fence writeback, ``durable_write``, ``load_durable``)
        records the word's pre-image, so the pool can later be restored
        to this exact point by rewriting *only the dirty words* —
        O(delta) instead of the O(pool) full-image copy a
        :func:`~repro.pmem.snapshot.take_snapshot` pays.  Epochs nest;
        undo order must be LIFO (newest first).
        """
        token = self._epoch_next
        self._epoch_next += 1
        self._epoch_preimages[token] = {}
        return token

    def epoch_dirty_words(self, token: int) -> int:
        """Number of distinct durable words mutated since the epoch opened."""
        return len(self._epoch_preimages[token])

    def epoch_undo(self, token: int, close: bool = True) -> int:
        """Rewrite the epoch's dirty words back to their pre-images.

        ``token`` must be the *newest* open epoch (undo is LIFO — undoing
        an older epoch first would restore stale values over newer
        epochs' base states).  With ``close=False`` the epoch stays open
        with an empty dirty set: the pool now *is* the epoch state, so
        tracking simply continues from here.  Returns the number of
        words rewritten.  Restores are recorded into the remaining older
        epochs (first-write-wins makes most of that a no-op), keeping
        them undoable in turn.
        """
        if token not in self._epoch_preimages:
            raise PoolError(f"unknown or closed epoch {token}")
        newest = next(reversed(self._epoch_preimages))
        if token != newest:
            raise PoolError(
                f"epoch undo must be LIFO: {token} is not the newest "
                f"open epoch ({newest})"
            )
        pre = self._epoch_preimages.pop(token)
        durable = self._durable
        others = self._epoch_preimages
        for addr, value in pre.items():
            if others:
                for other in others.values():
                    if addr not in other:
                        other[addr] = durable.get(addr)
            if value is None:
                durable.pop(addr, None)
            else:
                durable[addr] = value
        if not close:
            self._epoch_preimages[token] = {}
        return len(pre)

    def close_epoch(self, token: int) -> None:
        """Stop tracking an epoch without restoring (keep current state)."""
        self._epoch_preimages.pop(token, None)

    def capture_epoch_delta(self, token: int) -> Dict[int, int]:
        """Close an epoch and return its word delta as ``addr -> post``.

        The delta maps every durable word mutated since the epoch opened
        to its *current* durable value (0 for words whose entry was
        removed).  Writing those post-values into another pool holding
        the epoch's pre-state — via :meth:`durable_write`, which shares
        the 0-means-absent convention — reproduces this pool's durable
        image exactly.  This is the physical-replication capture: the
        replica gets the delta, not the computation.
        """
        if token not in self._epoch_preimages:
            raise PoolError(f"unknown or closed epoch {token}")
        durable = self._durable
        delta = {
            addr: durable.get(addr, 0)
            for addr in self._epoch_preimages[token]
        }
        self.close_epoch(token)
        return delta
