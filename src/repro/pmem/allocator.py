"""A pmemobj-style allocator for :class:`~repro.pmem.pool.PMPool`.

Provides the pieces of ``libpmemobj`` the paper's systems rely on:

* ``zalloc`` (``pmemobj_zalloc``): zero-filled, failure-atomic allocation,
* ``free`` (``pmemobj_free``),
* ``realloc``, which the Arthas checkpoint log must link so reversions can
  follow a resized block to its earlier incarnation,
* a pool **root object** (``pmemobj_root``) — the durable entry point from
  which a program re-finds its data structures after restart.

Allocation metadata is failure-atomic (as in PMDK): a block allocated
before a crash is still allocated after it, and a block freed before a
crash stays freed.  Leaks therefore persist across restarts, which is
exactly the behaviour faults f8 and f12 need.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AllocationError, OutOfSpaceError
from repro.pmem.pool import PM_BASE, WORDS_PER_LINE, PMPool

#: Words reserved at the start of the pool for the header (root pointer).
HEADER_WORDS = WORDS_PER_LINE

#: Hook signatures for checkpoint-manager integration.
AllocHook = Callable[[int, int], None]  # (addr, nwords)
FreeHook = Callable[[int, int], None]  # (addr, nwords)
ReallocHook = Callable[[int, int, int], None]  # (old_addr, new_addr, nwords)

#: Op-tap payloads: ("alloc", addr, nwords, site), ("free", addr) or
#: ("realloc", old_addr, new_addr, nwords) — a replayable record of one
#: metadata mutation, consumed by the cluster's delta-capture machinery.
OpTap = Callable[[tuple], None]


class PMAllocator:
    """First-fit free-list allocator over a persistent pool."""

    def __init__(self, pool: PMPool):
        self.pool = pool
        heap_start = PM_BASE + HEADER_WORDS
        heap_end = PM_BASE + pool.size_words
        #: sorted list of (start, nwords) free extents
        self._free: List[Tuple[int, int]] = [(heap_start, heap_end - heap_start)]
        #: live allocations: addr -> nwords
        self._allocations: Dict[int, int] = {}
        #: optional provenance tag per allocation (e.g. alloc-site GUID)
        self._sites: Dict[int, str] = {}
        self._alloc_hooks: List[AllocHook] = []
        self._free_hooks: List[FreeHook] = []
        self._realloc_hooks: List[ReallocHook] = []
        #: fired *before* any metadata mutation (alloc/free/unfree/
        #: realloc/import_meta); lets delta snapshots capture the
        #: pre-mutation metadata lazily instead of copying it eagerly
        self._pre_mutate_hooks: List[Callable[[], None]] = []
        #: fired with a replayable op tuple after alloc/free/realloc —
        #: the metadata half of a :class:`ReplicaDelta` (see
        #: :mod:`repro.distributed.cluster`).  Recovery-side mutations
        #: (``unfree``, ``import_meta``, ``replay_*``) do not tap: they
        #: are not part of a replicated guest op.
        self._op_taps: List[OpTap] = []

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def add_alloc_hook(self, hook: AllocHook) -> None:
        """Register a callback fired after every allocation."""
        self._alloc_hooks.append(hook)

    def add_free_hook(self, hook: FreeHook) -> None:
        """Register a callback fired after every free."""
        self._free_hooks.append(hook)

    def add_realloc_hook(self, hook: ReallocHook) -> None:
        """Register a callback fired after every realloc."""
        self._realloc_hooks.append(hook)

    def add_pre_mutate_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback fired before every metadata mutation."""
        self._pre_mutate_hooks.append(hook)

    def remove_pre_mutate_hook(self, hook: Callable[[], None]) -> None:
        """Unregister a previously added pre-mutation callback."""
        self._pre_mutate_hooks.remove(hook)

    def add_op_tap(self, tap: OpTap) -> None:
        """Register a callback receiving replayable metadata-op tuples."""
        self._op_taps.append(tap)

    def remove_op_tap(self, tap: OpTap) -> None:
        """Unregister a previously added op tap."""
        self._op_taps.remove(tap)

    def _notify_mutate(self) -> None:
        if self._pre_mutate_hooks:
            for hook in list(self._pre_mutate_hooks):
                hook()

    def _tap(self, op: tuple) -> None:
        if self._op_taps:
            for tap in self._op_taps:
                tap(op)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def zalloc(self, nwords: int, site: Optional[str] = None) -> int:
        """Allocate ``nwords`` zero-filled words; returns the address.

        Raises :class:`OutOfSpaceError` when no free extent is large
        enough — the condition a persistent leak eventually produces.
        """
        if nwords <= 0:
            raise AllocationError(f"allocation size must be positive, got {nwords}")
        self._notify_mutate()
        for i, (start, length) in enumerate(self._free):
            if length >= nwords:
                if length == nwords:
                    del self._free[i]
                else:
                    self._free[i] = (start + nwords, length - nwords)
                self._allocations[start] = nwords
                if site is not None:
                    self._sites[start] = site
                # zero-fill durably: a fresh pmemobj allocation is zeroed
                # and its zeroing survives crashes.
                for a in range(start, start + nwords):
                    self.pool.durable_write(a, 0)
                self.pool.discard_cached(start, nwords)
                self._tap(("alloc", start, nwords, site))
                for hook in self._alloc_hooks:
                    hook(start, nwords)
                return start
        raise OutOfSpaceError(
            f"pool {self.pool.name}: no extent of {nwords} words available "
            f"(used {self.used_words()}/{self.capacity_words()} words)"
        )

    def free(self, addr: int) -> None:
        """Free a previously allocated block (failure-atomic)."""
        self._notify_mutate()
        nwords = self._allocations.pop(addr, None)
        if nwords is None:
            raise AllocationError(f"free of unallocated address {addr:#x}")
        self._sites.pop(addr, None)
        self._insert_free(addr, nwords)
        self._tap(("free", addr))
        for hook in self._free_hooks:
            hook(addr, nwords)

    def realloc(self, addr: int, nwords: int, site: Optional[str] = None) -> int:
        """Resize a block; contents are copied, the old block is freed.

        Fires realloc hooks with (old, new, nwords) so the checkpoint log
        can link the two incarnations (``old_entry``/``new_entry`` fields
        of the paper's Figure 5).
        """
        old_n = self._allocations.get(addr)
        if old_n is None:
            raise AllocationError(f"realloc of unallocated address {addr:#x}")
        new_addr = self.zalloc(nwords, site=site)
        copy_n = min(old_n, nwords)
        for i in range(copy_n):
            self.pool.durable_write(new_addr + i, self.pool.read(addr + i))
        self.free(addr)
        self._tap(("realloc", addr, new_addr, nwords))
        for hook in self._realloc_hooks:
            hook(addr, new_addr, nwords)
        return new_addr

    def unfree(self, addr: int, nwords: int, site: Optional[str] = None) -> None:
        """Re-allocate a specific freed range (reversion of a ``free``).

        Used by the Arthas reactor when rolling back past a free
        operation; the exact range must currently lie inside one free
        extent.  Block contents are *not* touched — the durable words are
        still there, which is what makes the reversion meaningful.
        """
        self._notify_mutate()
        existing = self._allocations.get(addr)
        if existing is not None:
            if existing == nwords:
                return  # already live (e.g. reverted twice)
            raise AllocationError(
                f"cannot unfree [{addr:#x}, +{nwords}): a different "
                f"{existing}-word block now lives there"
            )
        for i, (start, length) in enumerate(self._free):
            if start <= addr and addr + nwords <= start + length:
                del self._free[i]
                if start < addr:
                    self._free.append((start, addr - start))
                tail = (start + length) - (addr + nwords)
                if tail > 0:
                    self._free.append((addr + nwords, tail))
                self._free.sort()
                self._allocations[addr] = nwords
                if site is not None:
                    self._sites[addr] = site
                return
        raise AllocationError(
            f"cannot unfree [{addr:#x}, +{nwords}): range not entirely free"
        )

    # ------------------------------------------------------------------
    # delta replay (physical replication)
    # ------------------------------------------------------------------
    def replay_alloc(self, addr: int, nwords: int,
                     site: Optional[str] = None) -> None:
        """Re-apply a primary's allocation at its exact address.

        No first-fit search: the replica's free list must cover the
        range (guaranteed when primary and replica histories are
        aligned, which the delta engine maintains).  No zero-fill and no
        hooks — the word delta carries the zeroing and the checkpoint
        records arrive in the shipped record batch.  Idempotent: a
        same-size live block at ``addr`` is a completed re-apply.
        """
        self.unfree(addr, nwords, site=site)

    def replay_free(self, addr: int) -> None:
        """Re-apply a primary's free; hook-free and idempotent."""
        self._notify_mutate()
        nwords = self._allocations.pop(addr, None)
        if nwords is None:
            return  # already freed (crash-retried re-apply)
        self._sites.pop(addr, None)
        self._insert_free(addr, nwords)

    def _insert_free(self, addr: int, nwords: int) -> None:
        """Insert an extent into the free list, coalescing neighbours."""
        self._free.append((addr, nwords))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for start, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                prev_start, prev_len = merged[-1]
                merged[-1] = (prev_start, prev_len + length)
            else:
                merged.append((start, length))
        self._free = merged

    # ------------------------------------------------------------------
    # root object
    # ------------------------------------------------------------------
    def set_root(self, addr: int) -> None:
        """Durably record the pool's root object pointer."""
        self.pool.write(PM_BASE, addr)
        self.pool.persist(PM_BASE, 1, tag="root")

    def root(self) -> int:
        """Return the root object pointer (0 if never set)."""
        return self.pool.read(PM_BASE)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def is_allocated(self, addr: int) -> bool:
        """True when ``addr`` is the start of a live block."""
        return addr in self._allocations

    def size_of(self, addr: int) -> int:
        """Size in words of the live block starting at ``addr``."""
        try:
            return self._allocations[addr]
        except KeyError:
            raise AllocationError(f"{addr:#x} is not an allocation start") from None

    def block_containing(self, addr: int) -> Optional[Tuple[int, int]]:
        """Return (start, nwords) of the live block containing ``addr``."""
        for start, nwords in self._allocations.items():
            if start <= addr < start + nwords:
                return (start, nwords)
        return None

    def allocations(self) -> Dict[int, int]:
        """A copy of the live allocation map (addr -> nwords)."""
        return dict(self._allocations)

    def site_of(self, addr: int) -> Optional[str]:
        """Provenance tag recorded at allocation (e.g. a trace GUID)."""
        return self._sites.get(addr)

    def used_words(self) -> int:
        """Words currently allocated."""
        return sum(self._allocations.values())

    def capacity_words(self) -> int:
        """Allocatable words in the pool (excluding the header)."""
        return self.pool.size_words - HEADER_WORDS

    def usage_ratio(self) -> float:
        """used_words / capacity_words."""
        return self.used_words() / self.capacity_words()

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def export_meta(self) -> dict:
        """Export allocator metadata for a pool snapshot."""
        return {
            "free": list(self._free),
            "allocations": dict(self._allocations),
            "sites": dict(self._sites),
        }

    def import_meta(self, meta: dict) -> None:
        """Restore allocator metadata from a pool snapshot."""
        self._notify_mutate()
        self._free = [tuple(x) for x in meta["free"]]
        self._allocations = dict(meta["allocations"])
        self._sites = dict(meta["sites"])
