"""The PMLang compiler: a restricted Python-syntax subset to IR.

PMLang exists because Arthas needs a *compiled program* to analyze — the
paper instruments LLVM IR produced from C.  PMLang programs are written as
Python source (parsed with :mod:`ast`) so the five target systems stay
readable, but they compile to the register IR of :mod:`repro.lang.ir` and
run on the interpreter, not on CPython.

Supported subset
----------------
* module level: ``def`` function definitions only
* statements: assignment to names / ``p.field`` / ``a[i]``, augmented
  assignment, ``if``/``elif``/``else``, ``while`` (with ``break`` /
  ``continue``), ``for i in range(...)``, ``return``, ``assert``, ``pass``,
  expression-statement calls
* expressions: integer literals, ``True``/``False``, names, arithmetic /
  bitwise / comparison operators, ``and`` / ``or`` (short-circuit),
  ``not`` / unary ``-`` / ``~``, calls to user functions and intrinsics,
  field access ``p.field``, indexing ``a[i]``, ``sizeof("struct")``

Everything is a 64-bit-style integer.  Struct field names are
module-global (declared via the ``structs`` argument), so ``p.it_key``
needs no type annotations — the style C programs with prefixed field names
use.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence

from repro.errors import CompileError
from repro.lang import intrinsics
from repro.lang.ir import BINOPS, BasicBlock, Function, Instr, Module

_BINOP_NAMES = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.LShift: "<<",
    ast.RShift: ">>",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
}

_CMP_NAMES = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}


def compile_module(
    name: str,
    source: str,
    structs: Optional[Dict[str, Sequence[str]]] = None,
) -> Module:
    """Compile PMLang ``source`` into a finalized :class:`Module`.

    Parameters
    ----------
    name:
        Module name (used in reports and metadata files).
    source:
        PMLang source text.
    structs:
        Mapping of struct name to ordered field names.  Field names are
        module-global; ``sizeof("name")`` resolves against this table.
    """
    module = Module(name)
    for sname, fields in (structs or {}).items():
        module.declare_struct(sname, fields)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise CompileError(f"{name}: syntax error: {exc}") from exc
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom, ast.Expr)):
            # allow docstrings and no-op imports at module level
            if isinstance(node, ast.Expr) and not isinstance(
                node.value, ast.Constant
            ):
                raise CompileError(f"{name}: unsupported module-level expression")
            continue
        if not isinstance(node, ast.FunctionDef):
            raise CompileError(
                f"{name}: only function definitions allowed at module "
                f"level, got {type(node).__name__} at line {node.lineno}"
            )
        _FunctionCompiler(module, node).compile()
    module.finalize()
    module.validate_calls()
    return module


class _FunctionCompiler:
    """Compiles one ``ast.FunctionDef`` into a :class:`Function`."""

    def __init__(self, module: Module, node: ast.FunctionDef):
        self.module = module
        self.node = node
        if node.args.posonlyargs or node.args.kwonlyargs or node.args.vararg:
            raise CompileError(f"{node.name}: only plain positional parameters")
        params = [a.arg for a in node.args.args]
        self.func = Function(node.name, params)
        self.block: BasicBlock = self.func.add_block("entry")
        self._temp = 0
        self._label = 0
        #: stack of (continue_label, break_label) for loops
        self._loops: List[tuple] = []

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _fresh_temp(self) -> str:
        self._temp += 1
        return f"%t{self._temp}"

    def _fresh_label(self, hint: str) -> str:
        self._label += 1
        return f"{hint}{self._label}"

    def _new_block(self, label: str) -> BasicBlock:
        self.block = self.func.add_block(label)
        return self.block

    def _append(self, op: str, dst: Optional[str], args: Sequence, node) -> Instr:
        line = getattr(node, "lineno", 0)
        return self.block.append(Instr(op, dst, args, src_line=line))

    def _terminated(self) -> bool:
        return self.block.terminator is not None

    def _err(self, node, message: str) -> CompileError:
        return CompileError(
            f"{self.func.name}: line {getattr(node, 'lineno', '?')}: {message}"
        )

    # ------------------------------------------------------------------
    def compile(self) -> Function:
        self.module.add_function(self.func)
        body = self.node.body
        # drop a leading docstring
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        self._stmts(body)
        if not self._terminated():
            self._append("ret", None, (None,), self.node)
        return self.func

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _stmts(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if self._terminated():
                # dead code after return/break/continue — skip quietly,
                # matching how C compilers drop unreachable code
                return
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Return):
            src = None if stmt.value is None else self._expr(stmt.value)
            self._append("ret", None, (src,), stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise self._err(stmt, "break outside loop")
            self._append("br", None, (self._loops[-1][1],), stmt)
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise self._err(stmt, "continue outside loop")
            self._append("br", None, (self._loops[-1][0],), stmt)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Assert):
            cond = self._expr(stmt.test)
            msg = "assertion failed"
            if stmt.msg is not None:
                msg = self._const_str(stmt.msg, "assert message")
            self._append("assert", None, (cond, msg), stmt)
        elif isinstance(stmt, ast.Expr):
            if not isinstance(stmt.value, ast.Call):
                raise self._err(stmt, "bare expressions must be calls")
            self._call(stmt.value, want_result=False)
        else:
            raise self._err(stmt, f"unsupported statement {type(stmt).__name__}")

    def _assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise self._err(stmt, "multiple assignment targets unsupported")
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            src = self._expr(stmt.value)
            self._append("mov", target.id, (src,), stmt)
        elif isinstance(target, ast.Attribute):
            ptr = self._field_addr(target)
            src = self._expr(stmt.value)
            self._append("store", None, (ptr, src), stmt)
        elif isinstance(target, ast.Subscript):
            ptr = self._index_addr(target)
            src = self._expr(stmt.value)
            self._append("store", None, (ptr, src), stmt)
        else:
            raise self._err(stmt, f"bad assignment target {type(target).__name__}")

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        op = _BINOP_NAMES.get(type(stmt.op))
        if op is None:
            raise self._err(stmt, f"unsupported augmented op {type(stmt.op).__name__}")
        if isinstance(stmt.target, ast.Name):
            rhs = self._expr(stmt.value)
            dst = self._fresh_temp()
            self._append("binop", dst, (op, stmt.target.id, rhs), stmt)
            self._append("mov", stmt.target.id, (dst,), stmt)
        elif isinstance(stmt.target, (ast.Attribute, ast.Subscript)):
            if isinstance(stmt.target, ast.Attribute):
                ptr = self._field_addr(stmt.target)
            else:
                ptr = self._index_addr(stmt.target)
            cur = self._fresh_temp()
            self._append("load", cur, (ptr,), stmt)
            rhs = self._expr(stmt.value)
            result = self._fresh_temp()
            self._append("binop", result, (op, cur, rhs), stmt)
            self._append("store", None, (ptr, result), stmt)
        else:
            raise self._err(stmt, "bad augmented-assignment target")

    def _if(self, stmt: ast.If) -> None:
        cond = self._expr(stmt.test)
        then_label = self._fresh_label("then")
        else_label = self._fresh_label("else") if stmt.orelse else None
        join_label = self._fresh_label("join")
        self._append(
            "cbr", None, (cond, then_label, else_label or join_label), stmt
        )
        self._new_block(then_label)
        self._stmts(stmt.body)
        then_falls_through = not self._terminated()
        if then_falls_through:
            self._append("br", None, (join_label,), stmt)
        if else_label is not None:
            self._new_block(else_label)
            self._stmts(stmt.orelse)
            else_falls_through = not self._terminated()
            if else_falls_through:
                self._append("br", None, (join_label,), stmt)
        else:
            # without an else arm, the cbr itself targets the join block
            else_falls_through = True
        # always create the join block: later statements continue there
        self._new_block(join_label)
        if not (then_falls_through or else_falls_through):
            # both arms returned; join is unreachable but needs a terminator
            self._append("ret", None, (None,), stmt)

    def _while(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise self._err(stmt, "while-else unsupported")
        head = self._fresh_label("loop")
        body_label = self._fresh_label("body")
        exit_label = self._fresh_label("exit")
        self._append("br", None, (head,), stmt)
        self._new_block(head)
        cond = self._expr(stmt.test)
        self._append("cbr", None, (cond, body_label, exit_label), stmt)
        self._new_block(body_label)
        self._loops.append((head, exit_label))
        self._stmts(stmt.body)
        self._loops.pop()
        if not self._terminated():
            self._append("br", None, (head,), stmt)
        self._new_block(exit_label)

    def _for(self, stmt: ast.For) -> None:
        """``for i in range(...)`` sugar, lowered to a while loop."""
        if stmt.orelse:
            raise self._err(stmt, "for-else unsupported")
        if not (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
        ):
            raise self._err(stmt, "for loops must iterate over range(...)")
        if not isinstance(stmt.target, ast.Name):
            raise self._err(stmt, "for target must be a simple name")
        rargs = stmt.iter.args
        if len(rargs) == 1:
            start_reg = self._const(0, stmt)
            stop_reg = self._expr(rargs[0])
            step_reg = self._const(1, stmt)
        elif len(rargs) == 2:
            start_reg = self._expr(rargs[0])
            stop_reg = self._expr(rargs[1])
            step_reg = self._const(1, stmt)
        elif len(rargs) == 3:
            start_reg = self._expr(rargs[0])
            stop_reg = self._expr(rargs[1])
            step_reg = self._expr(rargs[2])
        else:
            raise self._err(stmt, "range takes 1-3 arguments")
        ivar = stmt.target.id
        # hoist the bound/step into stable temps so the body can't clobber
        stop_t = self._fresh_temp()
        self._append("mov", stop_t, (stop_reg,), stmt)
        step_t = self._fresh_temp()
        self._append("mov", step_t, (step_reg,), stmt)
        self._append("mov", ivar, (start_reg,), stmt)
        head = self._fresh_label("loop")
        body_label = self._fresh_label("body")
        inc_label = self._fresh_label("inc")
        exit_label = self._fresh_label("exit")
        self._append("br", None, (head,), stmt)
        self._new_block(head)
        cond = self._fresh_temp()
        self._append("binop", cond, ("<", ivar, stop_t), stmt)
        self._append("cbr", None, (cond, body_label, exit_label), stmt)
        self._new_block(body_label)
        self._loops.append((inc_label, exit_label))
        self._stmts(stmt.body)
        self._loops.pop()
        if not self._terminated():
            self._append("br", None, (inc_label,), stmt)
        self._new_block(inc_label)
        nxt = self._fresh_temp()
        self._append("binop", nxt, ("+", ivar, step_t), stmt)
        self._append("mov", ivar, (nxt,), stmt)
        self._append("br", None, (head,), stmt)
        self._new_block(exit_label)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _const(self, value: int, node) -> str:
        dst = self._fresh_temp()
        self._append("const", dst, (value,), node)
        return dst

    def _const_str(self, node: ast.expr, what: str) -> str:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        raise self._err(node, f"{what} must be a string literal")

    def _expr(self, node: ast.expr) -> str:
        if isinstance(node, ast.Constant):
            if node.value is True:
                return self._const(1, node)
            if node.value is False:
                return self._const(0, node)
            if isinstance(node.value, int):
                return self._const(node.value, node)
            raise self._err(node, f"unsupported literal {node.value!r}")
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.BinOp):
            op = _BINOP_NAMES.get(type(node.op))
            if op is None or op not in BINOPS:
                raise self._err(node, f"unsupported operator {type(node.op).__name__}")
            a = self._expr(node.left)
            b = self._expr(node.right)
            dst = self._fresh_temp()
            self._append("binop", dst, (op, a, b), node)
            return dst
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self._err(node, "chained comparisons unsupported")
            op = _CMP_NAMES.get(type(node.ops[0]))
            if op is None:
                raise self._err(node, "unsupported comparison")
            a = self._expr(node.left)
            b = self._expr(node.comparators[0])
            dst = self._fresh_temp()
            self._append("binop", dst, (op, a, b), node)
            return dst
        if isinstance(node, ast.BoolOp):
            return self._boolop(node)
        if isinstance(node, ast.UnaryOp):
            opname = {
                ast.Not: "not",
                ast.USub: "neg",
                ast.Invert: "bnot",
            }.get(type(node.op))
            if opname is None:
                raise self._err(node, "unsupported unary operator")
            a = self._expr(node.operand)
            dst = self._fresh_temp()
            self._append("unop", dst, (opname, a), node)
            return dst
        if isinstance(node, ast.Call):
            reg = self._call(node, want_result=True)
            assert reg is not None
            return reg
        if isinstance(node, ast.Attribute):
            ptr = self._field_addr(node)
            dst = self._fresh_temp()
            self._append("load", dst, (ptr,), node)
            return dst
        if isinstance(node, ast.Subscript):
            ptr = self._index_addr(node)
            dst = self._fresh_temp()
            self._append("load", dst, (ptr,), node)
            return dst
        raise self._err(node, f"unsupported expression {type(node).__name__}")

    def _boolop(self, node: ast.BoolOp) -> str:
        """Short-circuit ``and`` / ``or`` with branches."""
        is_and = isinstance(node.op, ast.And)
        result = self._fresh_temp()
        join = self._fresh_label("bjoin")
        values = node.values
        for i, value in enumerate(values):
            v = self._expr(value)
            self._append("mov", result, (v,), node)
            if i == len(values) - 1:
                self._append("br", None, (join,), node)
            else:
                more = self._fresh_label("bnext")
                if is_and:
                    self._append("cbr", None, (result, more, join), node)
                else:
                    self._append("cbr", None, (result, join, more), node)
                self._new_block(more)
        self._new_block(join)
        return result

    def _field_addr(self, node: ast.Attribute) -> str:
        offset = self.module.field_offsets.get(node.attr)
        if offset is None:
            raise self._err(node, f"unknown struct field {node.attr!r}")
        base = self._expr(node.value)
        dst = self._fresh_temp()
        self._append("gep", dst, (base, offset, None, 0), node)
        return dst

    def _index_addr(self, node: ast.Subscript) -> str:
        base = self._expr(node.value)
        index = self._expr(node.slice)
        dst = self._fresh_temp()
        self._append("gep", dst, (base, 0, index, 1), node)
        return dst

    def _call(self, node: ast.Call, want_result: bool) -> Optional[str]:
        if node.keywords:
            raise self._err(node, "keyword arguments unsupported")
        if not isinstance(node.func, ast.Name):
            raise self._err(node, "only direct calls by name are supported")
        fname = node.func.id
        if fname == "sizeof":
            if len(node.args) != 1:
                raise self._err(node, "sizeof takes one struct name")
            sname = self._const_str(node.args[0], "sizeof argument")
            size = self.module.struct_sizes.get(sname)
            if size is None:
                raise self._err(node, f"unknown struct {sname!r}")
            return self._const(size, node)
        if fname == "addr":
            if len(node.args) != 1:
                raise self._err(node, "addr takes one field or index expression")
            target = node.args[0]
            if isinstance(target, ast.Attribute):
                return self._field_addr(target)
            if isinstance(target, ast.Subscript):
                return self._index_addr(target)
            raise self._err(node, "addr argument must be p.field or a[i]")
        if fname == "range":
            raise self._err(node, "range only valid as a for-loop iterator")
        sp = intrinsics.spec(fname)
        if sp is not None:
            return self._intrinsic_call(node, fname, sp, want_result)
        # user-function call; arity validated after compilation
        args = [self._expr(a) for a in node.args]
        dst = self._fresh_temp() if want_result else None
        self._append("call", dst, (fname, tuple(args)), node)
        return dst

    def _intrinsic_call(
        self, node: ast.Call, fname: str, sp, want_result: bool
    ) -> Optional[str]:
        if len(node.args) != sp.arity:
            raise self._err(
                node, f"{fname} takes {sp.arity} argument(s), got {len(node.args)}"
            )
        operands: List = []
        for i, arg in enumerate(node.args):
            if i in sp.str_args:
                operands.append(self._const_str(arg, f"{fname} argument {i}"))
            else:
                operands.append(self._expr(arg))
        operands.extend(sp.extra)
        dst = self._fresh_temp() if sp.has_dst else None
        if want_result and not sp.has_dst:
            raise self._err(node, f"{fname} returns no value")
        self._append(sp.op, dst, tuple(operands), node)
        return dst
