"""Programmatic IR construction, for users who bypass PMLang.

The compiler is the normal front end, but hand-built IR is useful for
analysis unit tests and for embedding generated code.  The builder keeps
a cursor (current function + block), allocates temporaries, and finalizes
into a validated :class:`~repro.lang.ir.Module`.

Example::

    b = IRBuilder("m")
    b.function("double", ["x"])
    t = b.binop("*", "x", b.const(2))
    b.ret(t)
    module = b.build()
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import CompileError
from repro.lang.ir import BasicBlock, Function, Instr, Module


class IRBuilder:
    """Fluent construction of one module."""

    def __init__(self, name: str, structs: Optional[Dict[str, Sequence[str]]] = None):
        self.module = Module(name)
        for sname, fields in (structs or {}).items():
            self.module.declare_struct(sname, fields)
        self._func: Optional[Function] = None
        self._block: Optional[BasicBlock] = None
        self._temp = 0
        self._built = False

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def function(self, name: str, params: Sequence[str]) -> "IRBuilder":
        """Start a new function; the cursor moves to its entry block."""
        self._func = Function(name, params)
        self.module.add_function(self._func)
        self._block = self._func.add_block("entry")
        return self

    def block(self, label: str) -> "IRBuilder":
        """Start a new block in the current function and move there."""
        self._require_function()
        self._block = self._func.add_block(label)
        return self

    def at(self, label: str) -> "IRBuilder":
        """Move the cursor to an existing block."""
        self._require_function()
        self._block = self._func.block(label)
        return self

    # ------------------------------------------------------------------
    # instructions (each returns the destination register, if any)
    # ------------------------------------------------------------------
    def const(self, value: int) -> str:
        return self._emit("const", (value,))

    def mov(self, dst: str, src: str) -> str:
        self._append(Instr("mov", dst, (src,)))
        return dst

    def binop(self, op: str, a: str, b: str) -> str:
        return self._emit("binop", (op, a, b))

    def unop(self, op: str, a: str) -> str:
        return self._emit("unop", (op, a))

    def gep(self, base: str, offset: int = 0, index: Optional[str] = None,
            scale: int = 1) -> str:
        return self._emit("gep", (base, offset, index, scale))

    def field_addr(self, base: str, fieldname: str) -> str:
        offset = self.module.field_offsets.get(fieldname)
        if offset is None:
            raise CompileError(f"unknown struct field {fieldname!r}")
        return self.gep(base, offset, None, 0)

    def load(self, ptr: str) -> str:
        return self._emit("load", (ptr,))

    def store(self, ptr: str, value: str) -> None:
        self._append(Instr("store", None, (ptr, value)))

    def alloc(self, size: str, space: str = "pm") -> str:
        return self._emit("alloc", (size, space))

    def free(self, ptr: str, space: str = "pm") -> None:
        self._append(Instr("free", None, (ptr, space)))

    def call(self, fname: str, args: Sequence[str], want_result: bool = True
             ) -> Optional[str]:
        dst = self._fresh() if want_result else None
        self._append(Instr("call", dst, (fname, tuple(args))))
        return dst

    def persist(self, ptr: str, nwords: str) -> None:
        self._append(Instr("persist", None, (ptr, nwords)))

    def setroot(self, ptr: str) -> None:
        self._append(Instr("setroot", None, (ptr,)))

    def getroot(self) -> str:
        return self._emit("getroot", ())

    def assert_true(self, cond: str, message: str) -> None:
        self._append(Instr("assert", None, (cond, message)))

    def ret(self, src: Optional[str] = None) -> None:
        self._append(Instr("ret", None, (src,)))

    def br(self, label: str) -> None:
        self._append(Instr("br", None, (label,)))

    def cbr(self, cond: str, then_label: str, else_label: str) -> None:
        self._append(Instr("cbr", None, (cond, then_label, else_label)))

    def nop(self) -> None:
        self._append(Instr("nop", None, ()))

    # ------------------------------------------------------------------
    def build(self) -> Module:
        """Finalize: assigns instruction ids and validates the module."""
        if self._built:
            raise CompileError("module already built")
        self.module.finalize()
        self.module.validate_calls()
        self._built = True
        return self.module

    # ------------------------------------------------------------------
    def _require_function(self) -> None:
        if self._func is None:
            raise CompileError("no current function; call .function() first")

    def _fresh(self) -> str:
        self._temp += 1
        return f"%b{self._temp}"

    def _append(self, instr: Instr) -> None:
        self._require_function()
        assert self._block is not None
        if self._block.terminator is not None:
            raise CompileError(
                f"block {self._block.label} already terminated"
            )
        self._block.append(instr)

    def _emit(self, op: str, args) -> str:
        dst = self._fresh()
        self._append(Instr(op, dst, args))
        return dst
