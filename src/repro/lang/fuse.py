"""Superinstruction/trace compilation for the PMLang VM.

The table-dispatch interpreter in :mod:`repro.lang.interp` pays a fixed
per-step toll — block/instruction fetch, handler dispatch, trace gating,
index bookkeeping — that dominates the pure-compute workloads the
overhead model (Figure 12) runs through the VM.  This module removes the
toll for straight-line code:

* **Segments** — every maximal run of *fusable* instructions inside a
  basic block (arithmetic, moves, address math, memory ops, persistence
  ops, asserts, and the ``br``/``cbr`` terminators) is compiled once
  into a single Python closure.  Executing the segment is one call: the
  closure binds ``frame.regs`` to a local and runs the instructions as
  consecutive statements, with no per-step dispatch.
* **Superinstructions** — inside a segment, a compiler temporary
  (``%tN``) that is defined once and consumed exactly once by the next
  instruction is inlined into its consumer, fusing the hottest opcode
  pairs and triples (``const``+``binop``, ``binop``+``binop``,
  ``binop``+``cbr``, ``gep`` chains) into one expression.  The temp is
  never materialised in the register file.

Exactness contract (the "fused" engine must be oracle-equivalent to the
table engine):

* Instructions that can trap (``load``/``store`` via
  :meth:`Machine._load`/:meth:`Machine._store`, and every
  handler-dispatched op) always execute with ``frame.index`` pointing at
  themselves, so fault attribution (iid, location, stack) is identical.
  They are therefore never fusion *consumers*.
* Raw-coded statements can only raise ``KeyError`` (unset register) or
  ``ZeroDivisionError`` (``//``/``%``).  The runner then re-executes the
  faulting instruction through the table path, which performs the exact
  error conversion (``ReproError`` / ``ArithmeticTrap``) the table
  engine would; completed prefix steps are committed first, so
  ``steps_executed`` matches to the step.
* Instructions carrying a trace GUID keep their trace hooks, compiled
  inline and gated on an attached tracer; GUID-carrying instructions
  never participate in inlining.  (Re)finalising or (re)instrumenting a
  module drops all cached segments, so codegen never sees stale GUIDs.
* Elided instructions still count toward ``steps_executed`` and the
  step budget; a segment only runs when its full step count fits the
  remaining budget, otherwise the runner falls back to single-stepping
  so ``HangTrap`` fires on exactly the same step as the table engine.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.pmem.pool import PM_BASE

#: engines :class:`~repro.lang.interp.Machine` accepts; "table" is the
#: original per-step dispatch interpreter, kept as the oracle
VM_ENGINES = ("table", "fused")

#: ops a fused segment may contain; everything else (calls, returns,
#: allocation, transactions, yields, panics) single-steps via the table
FUSABLE_OPS = frozenset({
    "const", "mov", "binop", "unop", "gep", "load", "store",
    "persist", "flush", "fence", "getroot", "setroot",
    "assert", "emit", "nop", "br", "cbr",
})

#: pure producers whose single-use %t results may be inlined (``//`` and
#: ``%`` are excluded at the use site: they can raise)
_ELIDABLE_PRODUCERS = frozenset({"const", "mov", "unop", "binop", "gep"})

#: raw-coded, trap-free consumers able to absorb an inlined operand
#: expression; load/store are deliberately absent so every trapping
#: statement owns its own ``frame.index`` (exact fault attribution)
_EXPR_CONSUMERS = frozenset({"mov", "binop", "unop", "gep", "cbr"})

#: opname -> raw Python expression template (matches _BINOP_FUNCS:
#: comparisons produce 0/1, shift counts mask to 63)
_RAW_BINOPS = {
    "+": "({a} + {b})",
    "-": "({a} - {b})",
    "*": "({a} * {b})",
    "//": "({a} // {b})",
    "%": "({a} % {b})",
    "<<": "({a} << ({b} & 63))",
    ">>": "({a} >> ({b} & 63))",
    "&": "({a} & {b})",
    "|": "({a} | {b})",
    "^": "({a} ^ {b})",
    "==": "(1 if {a} == {b} else 0)",
    "!=": "(1 if {a} != {b} else 0)",
    "<": "(1 if {a} < {b} else 0)",
    "<=": "(1 if {a} <= {b} else 0)",
    ">": "(1 if {a} > {b} else 0)",
    ">=": "(1 if {a} >= {b} else 0)",
}


class Segment:
    """One compiled straight-line run of fusable instructions."""

    __slots__ = ("start", "n_steps", "run", "iids")

    def __init__(self, start: int, n_steps: int, run, iids: Tuple[int, ...]):
        self.start = start
        #: original instruction count, elided temps included — the unit
        #: the step budget and ``steps_executed`` are charged in
        self.n_steps = n_steps
        #: ``run(machine, thread, frame)`` executes the whole segment
        self.run = run
        self.iids = iids


def invalidate(module) -> None:
    """Drop every cached segment (module re-finalised or re-instrumented)."""
    for func in module.functions.values():
        for block in func.blocks.values():
            block._fused_segs = None


def compile_block_segments(func, block) -> Dict[int, "Segment"]:
    """Build and cache the start-index -> :class:`Segment` map for one block."""
    segs: Dict[int, Segment] = {}
    instrs = block.instrs
    counts = _temp_counts(func)
    i, n = 0, len(instrs)
    while i < n:
        if instrs[i].op in FUSABLE_OPS:
            j = i
            while j < n and instrs[j].op in FUSABLE_OPS:
                j += 1
            segs[i] = _compile_segment(func, block, i, j, counts)
            i = j
        else:
            i += 1
    block._fused_segs = segs
    return segs


def _temp_counts(func) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Function-wide (definition count, use count) per register name."""
    defs: Dict[str, int] = {}
    uses: Dict[str, int] = {}
    for p in func.params:
        defs[p] = defs.get(p, 0) + 1
    for ins in func.instructions():
        if ins.dst is not None:
            defs[ins.dst] = defs.get(ins.dst, 0) + 1
        for r in ins.uses():
            uses[r] = uses.get(r, 0) + 1
    return defs, uses


def _compile_segment(func, block, start: int, end: int, counts) -> Segment:
    # deferred import: interp imports this module at load time
    from repro.lang.interp import _DISPATCH, _TRACE_DST_OPS, _TRACE_PTR_OPS

    defs, uses = counts
    instrs = block.instrs
    ns: Dict[str, object] = {"PM_BASE": PM_BASE}
    body: list = []
    emit = body.append
    #: (dst, expr, chain-start index) of an elided producer awaiting its
    #: consumer — at most one, always consumed by the very next instr
    pending: Optional[Tuple[str, str, Optional[int]]] = None
    #: what F.index holds when the next statement runs (start on entry)
    runtime_index = start
    ended = False
    traced = False

    def use(name: str) -> Tuple[str, Optional[int]]:
        nonlocal pending
        if pending is not None and pending[0] == name:
            _dst, expr, first = pending
            pending = None
            return expr, first
        return "R[%r]" % (name,), None

    def set_index(idx: int) -> None:
        nonlocal runtime_index
        if runtime_index != idx:
            emit("    F.index = %d" % idx)
            runtime_index = idx

    def value_expr(ins) -> Tuple[str, Optional[int]]:
        op = ins.op
        if op == "const":
            return repr(ins.args[0]), None
        if op == "mov":
            return use(ins.args[0])
        if op == "unop":
            opname, a = ins.args
            e, first = use(a)
            if opname == "neg":
                return "(-%s)" % e, first
            if opname == "not":
                return "(0 if %s else 1)" % e, first
            return "(~%s)" % e, first
        if op == "binop":
            opname, a, b = ins.args
            ea, fa = use(a)
            eb, fb = use(b)
            expr = _RAW_BINOPS[opname].format(a=ea, b=eb)
            return expr, fa if fa is not None else fb
        # gep
        base, offset, index, scale = ins.args
        eb, first = use(base)
        if index is None:
            return "(%s + %d)" % (eb, offset), first
        ei, fi = use(index)
        if first is None:
            first = fi
        return "(%s + %d + %s * %d)" % (eb, offset, ei, scale), first

    def trace_reg(ins, name: str) -> None:
        # mirrors Machine._trace_before/_trace_after: regs.get, PM gate
        nonlocal traced
        traced = True
        emit("    if W is not None:")
        emit("        _a = R.get(%r)" % (name,))
        emit("        if _a is not None and _a >= PM_BASE:")
        emit("            W(%r, _a)" % (ins.guid,))

    for i in range(start, end):
        ins = instrs[i]
        op = ins.op
        if (
            i + 1 < end
            and op in _ELIDABLE_PRODUCERS
            and not (op == "binop" and ins.args[0] in ("//", "%"))
            and ins.dst is not None
            and ins.dst.startswith("%t")
            and defs.get(ins.dst, 0) == 1
            and uses.get(ins.dst, 0) == 1
            and ins.guid is None
            and instrs[i + 1].guid is None
            and instrs[i + 1].op in _EXPR_CONSUMERS
            and instrs[i + 1].uses().count(ins.dst) == 1
        ):
            expr, first = value_expr(ins)
            pending = (ins.dst, expr, first if first is not None else i)
            continue
        if op == "const":
            emit("    R[%r] = %s" % (ins.dst, repr(ins.args[0])))
        elif op in ("mov", "unop", "binop", "gep"):
            expr, first = value_expr(ins)
            set_index(first if first is not None else i)
            emit("    R[%r] = %s" % (ins.dst, expr))
            if op == "gep" and ins.guid is not None:
                trace_reg(ins, ins.dst)
        elif op == "load":
            set_index(i)
            if ins.guid is not None:
                trace_reg(ins, ins.args[0])
            ns["I%d" % i] = ins
            emit("    R[%r] = M._load(R[%r], I%d)" % (ins.dst, ins.args[0], i))
        elif op == "store":
            set_index(i)
            if ins.guid is not None:
                trace_reg(ins, ins.args[0])
            ns["I%d" % i] = ins
            emit("    M._store(R[%r], R[%r], I%d)" % (ins.args[0], ins.args[1], i))
        elif op == "br":
            emit("    F.block = %r" % (ins.args[0],))
            emit("    F.index = 0")
            emit("    return")
            ended = True
        elif op == "cbr":
            ec, first = use(ins.args[0])
            set_index(first if first is not None else i)
            emit(
                "    F.block = %r if %s else %r"
                % (ins.args[1], ec, ins.args[2])
            )
            emit("    F.index = 0")
            emit("    return")
            ended = True
        elif op == "nop":
            pass
        else:  # handler-dispatched: persist/flush/fence/roots/assert/emit
            set_index(i)
            if ins.guid is not None and op in _TRACE_PTR_OPS:
                trace_reg(ins, ins.args[0])
            ns["H%d" % i] = _DISPATCH[op]
            ns["I%d" % i] = ins
            emit("    H%d(M, T, F, I%d)" % (i, i))
            if ins.guid is not None and op in _TRACE_DST_OPS and ins.dst is not None:
                trace_reg(ins, ins.dst)
    if not ended:
        # park F.index on the first un-fused instruction for the runner
        emit("    F.index = %d" % end)

    lines = ["def _seg(M, T, F):"]
    if any(("R[" in ln or "R.get" in ln) for ln in body):
        lines.append("    R = F.regs")
    if traced:
        lines.append("    W = M.tracer")
    lines.extend(body)
    src = "\n".join(lines) + "\n"
    code = compile(
        src, "<fused %s:%s:%d>" % (func.name, block.label, start), "exec"
    )
    exec(code, ns)
    return Segment(
        start, end - start, ns["_seg"],
        tuple(ins.iid for ins in instrs[start:end]),
    )
