"""The PMLang virtual machine.

Executes :class:`~repro.lang.ir.Module` code against a simulated PM pool
(:mod:`repro.pmem`) and a volatile heap.  The machine provides everything
the Arthas toolchain needs from a runtime:

* **Trap semantics** — null/wild dereferences raise
  :class:`~repro.errors.SegfaultTrap`, ``panic()`` raises
  :class:`~repro.errors.PanicTrap`, a step-budget overrun raises
  :class:`~repro.errors.HangTrap` (how deadlocks/infinite loops are
  detected), PM exhaustion raises :class:`~repro.errors.OutOfPMTrap`.
  Every trap records a :class:`FaultInfo` with the faulting instruction —
  the input the Arthas reactor slices from.
* **Crash/restart** — ``crash()`` drops all volatile state and every PM
  store that was not persisted; a fresh machine over the same pool models
  a restart.
* **Fault injection** — host callbacks keyed by instruction id run before
  an instruction executes; they can flip persisted bits (hardware faults)
  or raise :class:`~repro.errors.InjectedCrash` (untimely crashes).
* **Cooperative threads** — ``spawn`` creates background threads;
  ``call_concurrent`` interleaves threads with a seeded preemptive
  scheduler, which is how the race-condition faults are triggered
  deterministically.
* **Tracing hooks** — instructions carrying a GUID report their runtime PM
  address to an attached tracer (the paper's ``<GUID, pmem_address>``
  trace).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    AllocationError,
    ArithmeticTrap,
    AssertTrap,
    HangTrap,
    OutOfSpaceError,
    PanicTrap,
    PoolError,
    ReproError,
    SegfaultTrap,
    Trap,
)
from repro.lang.fuse import VM_ENGINES, compile_block_segments
from repro.lang.ir import Function, Instr, Module
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PM_BASE, PMPool
from repro.pmem.tx import TransactionManager

#: base of the volatile heap; well below PM_BASE so ranges never overlap
VOL_BASE = 0x0010_0000

#: default per-call step budget (exceeding it means hang/deadlock)
DEFAULT_STEP_BUDGET = 400_000

#: ops whose pointer operand is traced before execution
_TRACE_PTR_OPS = frozenset({"load", "store", "persist", "flush", "txadd", "free"})

#: ops whose result (a fresh PM address) is traced after execution
_TRACE_DST_OPS = frozenset({"alloc", "realloc", "getroot", "gep"})

InjectionFn = Callable[["Machine", "Thread", Instr], None]
TraceFn = Callable[[str, int], None]

#: handler return codes; ``None`` (the implicit return) means "advance"
_CTRL = 1   # the handler updated block/index itself (call/ret/br/cbr)
_YIELD = 2  # advance and switch threads (cooperative yield)


def _floordiv(a: int, b: int) -> int:
    return a // b  # ZeroDivisionError becomes ArithmeticTrap at the call site


def _mod(a: int, b: int) -> int:
    return a % b


#: precompiled binop evaluators (comparisons produce 0/1 ints, shifts
#: mask the count to 63 — x86 semantics, same as the old operator chain)
_BINOP_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": _floordiv,
    "%": _mod,
    "<<": lambda a, b: a << (b & 63),
    ">>": lambda a, b: a >> (b & 63),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
}


@dataclass
class FaultInfo:
    """Where and how the guest program failed."""

    iid: int
    kind: str
    message: str
    location: str
    stack: List[str] = field(default_factory=list)

    def signature(self) -> Tuple[str, int, str]:
        """(kind, fault iid, top-of-stack) — the detector's symptom key."""
        top = self.stack[-1] if self.stack else ""
        return (self.kind, self.iid, top)


class Frame:
    """One activation record."""

    __slots__ = ("func", "regs", "block", "index", "ret_dst")

    def __init__(self, func: Function, regs: Dict[str, int], ret_dst: Optional[str]):
        self.func = func
        self.regs = regs
        self.block = func.entry
        self.index = 0
        self.ret_dst = ret_dst


class Thread:
    """A guest thread: a stack of frames plus completion state."""

    _next_tid = 0

    def __init__(self, name: str):
        Thread._next_tid += 1
        self.tid = Thread._next_tid
        self.name = name
        self.frames: List[Frame] = []
        self.done = False
        self.result: Optional[int] = None

    @property
    def frame(self) -> Frame:
        return self.frames[-1]

    def stack_locations(self) -> List[str]:
        return [f"{fr.func.name}:{fr.block}:{fr.index}" for fr in self.frames]


class Machine:
    """Interpreter for one module over one PM pool."""

    def __init__(
        self,
        module: Module,
        pool: Optional[PMPool] = None,
        allocator: Optional[PMAllocator] = None,
        txman: Optional[TransactionManager] = None,
        pool_size: int = 1 << 16,
        seed: int = 0,
        step_budget: int = DEFAULT_STEP_BUDGET,
        vm_engine: str = "fused",
    ):
        if vm_engine not in VM_ENGINES:
            raise ValueError(
                f"unknown vm_engine {vm_engine!r}; expected one of {VM_ENGINES}"
            )
        self.vm_engine = vm_engine
        self.module = module
        self.pool = pool if pool is not None else PMPool(pool_size, name=module.name)
        self.allocator = allocator if allocator is not None else PMAllocator(self.pool)
        self.txman = txman if txman is not None else TransactionManager(self.pool)
        self.step_budget = step_budget
        self.rng = random.Random(seed)
        # volatile heap
        self.vmem: Dict[int, int] = {}
        self._vol_next = VOL_BASE
        self._vol_valid: set[int] = set()
        self._vol_allocs: Dict[int, int] = {}
        # background threads awaiting scheduling
        self._background: List[Thread] = []
        # host integration
        self.injections: Dict[int, List[InjectionFn]] = {}
        self.tracer: Optional[TraceFn] = None
        #: cooperative yield point: when set, called every
        #: ``step_hook_every`` executed steps, counted on the
        #: machine-lifetime ``steps_executed`` counter so runs of many
        #: short calls still yield (both engines, same accounting as
        #: the budget check).  The live-traffic server parks mitigation
        #: re-executions here so the event loop can serve between probe
        #: steps.  Must not touch guest state.
        self.step_hook: Optional[Callable[[], None]] = None
        self.step_hook_every: int = 0
        self._next_step_hook: int = 0
        #: optional dynamic-dependence recorder (repro.analysis.dynslice);
        #: called before every instruction when attached — expensive, so
        #: only diagnostic runs enable it
        self.dep_recorder = None
        self.emitted: Dict[str, List[int]] = {}
        self.last_fault: Optional[FaultInfo] = None
        # counters for the overhead model
        self.steps_executed = 0
        self.calls_executed = 0

    # ------------------------------------------------------------------
    # host API
    # ------------------------------------------------------------------
    def call(self, fname: str, *args: int, step_budget: Optional[int] = None) -> Optional[int]:
        """Run ``fname(*args)`` on a fresh main thread to completion.

        Background threads previously spawned get interleaved at yield
        points.  Raises the guest's :class:`Trap` on failure, after
        recording :attr:`last_fault`.
        """
        thread = self._make_thread(fname, args, name=f"main:{fname}")
        self.calls_executed += 1
        budget = step_budget if step_budget is not None else self.step_budget
        self._run([thread] + self._background, budget, preempt=False)
        self._background = [t for t in self._background if not t.done]
        return thread.result

    def spawn(self, fname: str, *args: int, name: Optional[str] = None) -> Thread:
        """Create a background thread; it runs during future calls."""
        thread = self._make_thread(fname, args, name=name or f"bg:{fname}")
        self._background.append(thread)
        return thread

    def run_background(self, step_budget: Optional[int] = None) -> None:
        """Run pending background threads to completion."""
        if not self._background:
            return
        budget = step_budget if step_budget is not None else self.step_budget
        self._run(list(self._background), budget, preempt=False)
        self._background = [t for t in self._background if not t.done]

    def pending_background(self) -> int:
        """Number of spawned threads that have not finished."""
        return len(self._background)

    def call_concurrent(
        self,
        calls: Sequence[Tuple[str, Sequence[int]]],
        step_budget: Optional[int] = None,
        quantum: Tuple[int, int] = (1, 12),
    ) -> List[Optional[int]]:
        """Run several calls as interleaved threads (seeded preemption).

        This is the vehicle for reproducing race-condition faults: the
        scheduler switches threads every ``rng.randint(*quantum)`` steps,
        so a given seed yields a deterministic interleaving.
        """
        threads = [
            self._make_thread(fname, args, name=f"conc{i}:{fname}")
            for i, (fname, args) in enumerate(calls)
        ]
        self.calls_executed += len(threads)
        budget = step_budget if step_budget is not None else self.step_budget
        self._run(threads, budget, preempt=True, quantum=quantum)
        return [t.result for t in threads]

    def crash(self) -> None:
        """Simulate process death + power loss: volatile state vanishes."""
        self.pool.crash()
        self.txman.reset()
        self.vmem.clear()
        self._vol_valid.clear()
        self._vol_allocs.clear()
        self._vol_next = VOL_BASE
        self._background = []

    def add_injection(self, iid: int, fn: InjectionFn) -> None:
        """Run ``fn`` before every execution of instruction ``iid``."""
        self.injections.setdefault(iid, []).append(fn)

    def clear_injections(self) -> None:
        self.injections.clear()

    def emitted_value(self, key: str, default: int = 0) -> int:
        """Last value the guest emitted under ``key``."""
        values = self.emitted.get(key)
        return values[-1] if values else default

    # ------------------------------------------------------------------
    # execution core
    # ------------------------------------------------------------------
    def _make_thread(self, fname: str, args: Sequence[int], name: str) -> Thread:
        func = self.module.functions.get(fname)
        if func is None:
            raise ReproError(f"no such function {fname!r} in module {self.module.name}")
        if len(args) != len(func.params):
            raise ReproError(
                f"{fname} takes {len(func.params)} args, got {len(args)}"
            )
        thread = Thread(name)
        regs = dict(zip(func.params, (int(a) for a in args)))
        thread.frames.append(Frame(func, regs, None))
        return thread

    def _hook_prologue(self) -> Optional[Callable[[], None]]:
        """Arm the step hook for a run; returns it (or ``None``)."""
        hook = self.step_hook
        if hook is None or self.step_hook_every <= 0:
            return None
        if self._next_step_hook <= self.steps_executed:
            self._next_step_hook = self.steps_executed + self.step_hook_every
        return hook

    def _run(
        self,
        threads: List[Thread],
        step_budget: int,
        preempt: bool,
        quantum: Tuple[int, int] = (1, 12),
    ) -> None:
        if (
            self.vm_engine == "fused"
            and not preempt
            and self.dep_recorder is None
            and not self.injections
        ):
            # no preemption (so no rng draws), no per-instruction host
            # hooks: the compiled-segment runner is oracle-equivalent
            self._run_fused(threads, step_budget)
            return
        live = [t for t in threads if not t.done]
        if not live:
            return
        current = 0
        slice_left = self.rng.randint(*quantum) if preempt else 1 << 60
        steps = 0
        hook = self._hook_prologue()
        while live:
            thread = live[current % len(live)]
            try:
                switch = self._step(thread)
            except Trap as trap:
                self._record_fault(trap, thread)
                raise
            steps += 1
            self.steps_executed += 1
            if steps > step_budget:
                trap = HangTrap(
                    f"step budget {step_budget} exceeded in {thread.name}",
                    location=self._current_location(thread),
                )
                self._record_fault(trap, thread)
                raise trap
            if hook is not None and self.steps_executed >= self._next_step_hook:
                hook()
                self._next_step_hook = self.steps_executed + self.step_hook_every
            if thread.done:
                live = [t for t in live if not t.done]
                current = 0
                slice_left = self.rng.randint(*quantum) if preempt else 1 << 60
                continue
            if preempt:
                slice_left -= 1
            if switch or slice_left <= 0:
                current = (current + 1) % len(live)
                slice_left = self.rng.randint(*quantum) if preempt else 1 << 60

    def _run_fused(
        self, threads: List[Thread], step_budget: int
    ) -> None:
        """Cooperative scheduling over compiled segments (the fused engine).

        Straight-line runs execute as one closure call
        (:mod:`repro.lang.fuse`); everything else — and any segment that
        would overrun the step budget, or any instruction a segment
        abandoned after a raw-coded ``KeyError``/``ZeroDivisionError`` —
        single-steps through the table path, which owns the exact trap
        conversions.  Step accounting matches the table engine to the
        step: elided superinstruction temps still count, and a segment
        only runs when its full count fits the remaining budget.
        """
        live = [t for t in threads if not t.done]
        if not live:
            return
        current = 0
        steps = 0
        hook = self._hook_prologue()
        while live:
            thread = live[current % len(live)]
            frame = thread.frames[-1]
            block = frame.func.blocks[frame.block]
            segs = block._fused_segs
            if segs is None:
                segs = compile_block_segments(frame.func, block)
            seg = segs.get(frame.index)
            if seg is not None and steps + seg.n_steps <= step_budget:
                try:
                    seg.run(self, thread, frame)
                except Trap as trap:
                    prefix = frame.index - seg.start
                    if prefix > 0:
                        steps += prefix
                        self.steps_executed += prefix
                    self._record_fault(trap, thread)
                    raise
                except (KeyError, ZeroDivisionError):
                    # a raw-coded statement faulted: commit the completed
                    # prefix, then let the table re-execute the faulting
                    # instruction (frame.index points at it) for the
                    # exact ReproError/ArithmeticTrap conversion
                    prefix = frame.index - seg.start
                    if prefix > 0:
                        steps += prefix
                        self.steps_executed += prefix
                except BaseException:
                    prefix = frame.index - seg.start
                    if prefix > 0:
                        steps += prefix
                        self.steps_executed += prefix
                    raise
                else:
                    steps += seg.n_steps
                    self.steps_executed += seg.n_steps
                    if hook is not None and self.steps_executed >= self._next_step_hook:
                        hook()
                        self._next_step_hook = (
                            self.steps_executed + self.step_hook_every
                        )
                    continue
            try:
                switch = self._step(thread)
            except Trap as trap:
                self._record_fault(trap, thread)
                raise
            steps += 1
            self.steps_executed += 1
            if steps > step_budget:
                trap = HangTrap(
                    f"step budget {step_budget} exceeded in {thread.name}",
                    location=self._current_location(thread),
                )
                self._record_fault(trap, thread)
                raise trap
            if hook is not None and self.steps_executed >= self._next_step_hook:
                hook()
                self._next_step_hook = self.steps_executed + self.step_hook_every
            if thread.done:
                live = [t for t in live if not t.done]
                current = 0
                continue
            if switch:
                current = (current + 1) % len(live)

    def _current_instr(self, thread: Thread) -> Instr:
        frame = thread.frame
        return frame.func.blocks[frame.block].instrs[frame.index]

    def _current_location(self, thread: Thread) -> str:
        try:
            return self._current_instr(thread).location()
        except Exception:  # pragma: no cover - defensive
            return thread.name

    def _record_fault(self, trap: Trap, thread: Thread) -> None:
        try:
            instr = self._current_instr(thread)
            iid, location = instr.iid, instr.location()
        except Exception:  # pragma: no cover - defensive
            iid, location = -1, thread.name
        self.last_fault = FaultInfo(
            iid=iid,
            kind=trap.kind,
            message=str(trap),
            location=trap.location or location,
            stack=thread.stack_locations(),
        )

    # ------------------------------------------------------------------
    def _step(self, thread: Thread) -> bool:
        """Execute one instruction; returns True if the thread yields.

        Dispatch goes through the precompiled per-opcode handler table
        (:data:`_DISPATCH`); the resolved handler is cached on the
        :class:`Instr` itself, so steady-state execution pays a single
        attribute load instead of walking an opcode ``if/elif`` chain.
        """
        frame = thread.frame
        instr = frame.func.blocks[frame.block].instrs[frame.index]

        for fn in self.injections.get(instr.iid, ()):
            fn(self, thread, instr)

        if self.dep_recorder is not None:
            self.dep_recorder.on_instr(self, thread, instr)

        traced = instr.guid is not None and self.tracer is not None
        if traced:
            self._trace_before(instr, frame)

        handler = instr.handler
        if handler is None:
            handler = _DISPATCH.get(instr.op)
            if handler is None:  # pragma: no cover - unreachable with a valid module
                raise ReproError(f"unknown opcode {instr.op!r}")
            instr.handler = handler
        code = handler(self, thread, frame, instr)

        if traced:
            self._trace_after(instr, frame)

        if code is None:
            frame.index += 1
            return False
        if code == _CTRL:
            return False
        frame.index += 1  # _YIELD
        return True

    # ------------------------------------------------------------------
    # per-opcode handlers (the dispatch table's targets)
    #
    # A handler returns None when the machine should advance to the next
    # instruction, _CTRL when it updated block/index itself (call, ret,
    # branches), or _YIELD to advance *and* switch threads.
    # ------------------------------------------------------------------
    def _op_const(self, thread: Thread, frame: Frame, instr: Instr):
        frame.regs[instr.dst] = instr.args[0]

    def _op_mov(self, thread: Thread, frame: Frame, instr: Instr):
        frame.regs[instr.dst] = self._reg(frame, instr.args[0], instr)

    def _op_binop(self, thread: Thread, frame: Frame, instr: Instr):
        opname, a_r, b_r = instr.args
        a = self._reg(frame, a_r, instr)
        b = self._reg(frame, b_r, instr)
        fn = _BINOP_FUNCS.get(opname)
        if fn is None:  # pragma: no cover - unreachable with a valid module
            raise ReproError(f"unknown binop {opname!r}")
        try:
            frame.regs[instr.dst] = fn(a, b)
        except ZeroDivisionError:
            raise ArithmeticTrap(
                "division by zero" if opname == "//" else "modulo by zero",
                location=instr.location(),
            ) from None

    def _op_unop(self, thread: Thread, frame: Frame, instr: Instr):
        opname, a = instr.args
        v = self._reg(frame, a, instr)
        if opname == "neg":
            frame.regs[instr.dst] = -v
        elif opname == "not":
            frame.regs[instr.dst] = 0 if v else 1
        else:  # bnot
            frame.regs[instr.dst] = ~v

    def _op_gep(self, thread: Thread, frame: Frame, instr: Instr):
        base_r, offset, index_r, scale = instr.args
        addr = self._reg(frame, base_r, instr) + offset
        if index_r is not None:
            addr += self._reg(frame, index_r, instr) * scale
        frame.regs[instr.dst] = addr

    def _op_load(self, thread: Thread, frame: Frame, instr: Instr):
        addr = self._reg(frame, instr.args[0], instr)
        frame.regs[instr.dst] = self._load(addr, instr)

    def _op_store(self, thread: Thread, frame: Frame, instr: Instr):
        addr = self._reg(frame, instr.args[0], instr)
        value = self._reg(frame, instr.args[1], instr)
        self._store(addr, value, instr)

    def _op_alloc(self, thread: Thread, frame: Frame, instr: Instr):
        size_r, space = instr.args
        size = self._reg(frame, size_r, instr)
        frame.regs[instr.dst] = self._alloc(size, space, instr)

    def _op_free(self, thread: Thread, frame: Frame, instr: Instr):
        addr = self._reg(frame, instr.args[0], instr)
        self._free(addr, instr.args[1], instr)

    def _op_realloc(self, thread: Thread, frame: Frame, instr: Instr):
        addr = self._reg(frame, instr.args[0], instr)
        size = self._reg(frame, instr.args[1], instr)
        try:
            frame.regs[instr.dst] = self.allocator.realloc(
                addr, size, site=instr.guid or str(instr.iid)
            )
        except OutOfSpaceError as exc:
            raise self._oom(exc, instr) from exc
        except AllocationError as exc:
            raise SegfaultTrap(str(exc), location=instr.location()) from exc

    def _op_call(self, thread: Thread, frame: Frame, instr: Instr):
        fname, arg_regs = instr.args
        func = self.module.functions[fname]
        values = [self._reg(frame, r, instr) for r in arg_regs]
        frame.index += 1  # return to the next instruction
        new_regs = dict(zip(func.params, values))
        thread.frames.append(Frame(func, new_regs, instr.dst))
        return _CTRL

    def _op_ret(self, thread: Thread, frame: Frame, instr: Instr):
        src = instr.args[0]
        value = self._reg(frame, src, instr) if src is not None else 0
        thread.frames.pop()
        if not thread.frames:
            thread.done = True
            thread.result = value
        elif frame.ret_dst is not None:
            thread.frame.regs[frame.ret_dst] = value
        return _CTRL

    def _op_br(self, thread: Thread, frame: Frame, instr: Instr):
        frame.block = instr.args[0]
        frame.index = 0
        return _CTRL

    def _op_cbr(self, thread: Thread, frame: Frame, instr: Instr):
        cond = self._reg(frame, instr.args[0], instr)
        frame.block = instr.args[1] if cond else instr.args[2]
        frame.index = 0
        return _CTRL

    def _op_persist(self, thread: Thread, frame: Frame, instr: Instr):
        addr = self._reg(frame, instr.args[0], instr)
        nwords = self._reg(frame, instr.args[1], instr)
        try:
            self.pool.persist(addr, nwords)
        except PoolError as exc:
            raise SegfaultTrap(str(exc), location=instr.location()) from exc

    def _op_flush(self, thread: Thread, frame: Frame, instr: Instr):
        addr = self._reg(frame, instr.args[0], instr)
        nwords = self._reg(frame, instr.args[1], instr)
        try:
            self.pool.flush(addr, nwords)
        except PoolError as exc:
            raise SegfaultTrap(str(exc), location=instr.location()) from exc

    def _op_fence(self, thread: Thread, frame: Frame, instr: Instr):
        self.pool.fence()

    def _op_txbegin(self, thread: Thread, frame: Frame, instr: Instr):
        self.txman.begin(ctx=thread.tid)

    def _op_txadd(self, thread: Thread, frame: Frame, instr: Instr):
        addr = self._reg(frame, instr.args[0], instr)
        nwords = self._reg(frame, instr.args[1], instr)
        try:
            self.txman.add(addr, nwords, ctx=thread.tid)
        except PoolError as exc:
            raise SegfaultTrap(str(exc), location=instr.location()) from exc

    def _op_txcommit(self, thread: Thread, frame: Frame, instr: Instr):
        self.txman.commit(ctx=thread.tid)

    def _op_txabort(self, thread: Thread, frame: Frame, instr: Instr):
        self.txman.abort(ctx=thread.tid)

    def _op_setroot(self, thread: Thread, frame: Frame, instr: Instr):
        self.allocator.set_root(self._reg(frame, instr.args[0], instr))

    def _op_getroot(self, thread: Thread, frame: Frame, instr: Instr):
        frame.regs[instr.dst] = self.allocator.root()

    def _op_assert(self, thread: Thread, frame: Frame, instr: Instr):
        cond = self._reg(frame, instr.args[0], instr)
        if not cond:
            raise AssertTrap(instr.args[1], location=instr.location())

    def _op_panic(self, thread: Thread, frame: Frame, instr: Instr):
        raise PanicTrap(instr.args[0], location=instr.location())

    def _op_emit(self, thread: Thread, frame: Frame, instr: Instr):
        key, value_r = instr.args
        self.emitted.setdefault(key, []).append(self._reg(frame, value_r, instr))

    def _op_yield(self, thread: Thread, frame: Frame, instr: Instr):
        return _YIELD

    def _op_nop(self, thread: Thread, frame: Frame, instr: Instr):
        pass

    # ------------------------------------------------------------------
    # operand and memory helpers
    # ------------------------------------------------------------------
    def _reg(self, frame: Frame, name: str, instr: Instr) -> int:
        try:
            return frame.regs[name]
        except KeyError:
            raise ReproError(
                f"read of unset register {name!r} at {instr.location()} "
                f"(PMLang variable used before assignment)"
            ) from None

    def _load(self, addr: int, instr: Instr) -> int:
        if addr >= PM_BASE:
            if not self.pool.contains(addr):
                raise SegfaultTrap(
                    f"PM load outside pool at {addr:#x}", location=instr.location()
                )
            return self.pool.read(addr)
        if addr in self._vol_valid:
            return self.vmem.get(addr, 0)
        raise SegfaultTrap(
            f"invalid load at {addr:#x}"
            + (" (null dereference)" if addr == 0 else ""),
            location=instr.location(),
        )

    def _store(self, addr: int, value: int, instr: Instr) -> None:
        if addr >= PM_BASE:
            if not self.pool.contains(addr):
                raise SegfaultTrap(
                    f"PM store outside pool at {addr:#x}", location=instr.location()
                )
            self.pool.write(addr, value)
            return
        if addr in self._vol_valid:
            self.vmem[addr] = value
            return
        raise SegfaultTrap(
            f"invalid store at {addr:#x}"
            + (" (null dereference)" if addr == 0 else ""),
            location=instr.location(),
        )

    def _alloc(self, size: int, space: str, instr: Instr) -> int:
        if size <= 0:
            raise SegfaultTrap(
                f"allocation of non-positive size {size}", location=instr.location()
            )
        if space == "pm":
            try:
                return self.allocator.zalloc(size, site=instr.guid or str(instr.iid))
            except OutOfSpaceError as exc:
                raise self._oom(exc, instr) from exc
        addr = self._vol_next
        self._vol_next += size
        self._vol_allocs[addr] = size
        for a in range(addr, addr + size):
            self._vol_valid.add(a)
            self.vmem[a] = 0
        return addr

    def _free(self, addr: int, space: str, instr: Instr) -> None:
        if space == "pm":
            try:
                self.allocator.free(addr)
            except AllocationError as exc:
                raise SegfaultTrap(str(exc), location=instr.location()) from exc
            return
        size = self._vol_allocs.pop(addr, None)
        if size is None:
            raise SegfaultTrap(
                f"invalid volatile free at {addr:#x}", location=instr.location()
            )
        for a in range(addr, addr + size):
            self._vol_valid.discard(a)
            self.vmem.pop(a, None)

    def _oom(self, exc: OutOfSpaceError, instr: Instr) -> Trap:
        from repro.errors import OutOfPMTrap

        return OutOfPMTrap(str(exc), location=instr.location())

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def _trace_before(self, instr: Instr, frame: Frame) -> None:
        if instr.op in _TRACE_PTR_OPS:
            addr = frame.regs.get(instr.args[0])
            if addr is not None and addr >= PM_BASE:
                self.tracer(instr.guid, addr)

    def _trace_after(self, instr: Instr, frame: Frame) -> None:
        if instr.op in _TRACE_DST_OPS and instr.dst is not None:
            addr = frame.regs.get(instr.dst)
            if addr is not None and addr >= PM_BASE:
                self.tracer(instr.guid, addr)


#: opcode -> handler function, built once at import time; the VM caches
#: the resolved handler on each Instr (see Machine._step)
_DISPATCH: Dict[str, Callable] = {
    "const": Machine._op_const,
    "mov": Machine._op_mov,
    "binop": Machine._op_binop,
    "unop": Machine._op_unop,
    "gep": Machine._op_gep,
    "load": Machine._op_load,
    "store": Machine._op_store,
    "alloc": Machine._op_alloc,
    "free": Machine._op_free,
    "realloc": Machine._op_realloc,
    "call": Machine._op_call,
    "ret": Machine._op_ret,
    "br": Machine._op_br,
    "cbr": Machine._op_cbr,
    "persist": Machine._op_persist,
    "flush": Machine._op_flush,
    "fence": Machine._op_fence,
    "txbegin": Machine._op_txbegin,
    "txadd": Machine._op_txadd,
    "txcommit": Machine._op_txcommit,
    "txabort": Machine._op_txabort,
    "setroot": Machine._op_setroot,
    "getroot": Machine._op_getroot,
    "assert": Machine._op_assert,
    "panic": Machine._op_panic,
    "emit": Machine._op_emit,
    "yield": Machine._op_yield,
    "nop": Machine._op_nop,
}
