"""PMLang: the compiler/IR/interpreter substrate.

The paper's Arthas operates on LLVM IR produced from C systems.  This
package provides the equivalent stack for the reproduction:

* :mod:`repro.lang.ir` — a register-based intermediate representation
  (functions, basic blocks, instructions) playing the role of LLVM IR.
* :mod:`repro.lang.compiler` — compiles **PMLang**, a restricted subset of
  Python syntax (parsed with :mod:`ast`), into the IR.  The five target PM
  systems under :mod:`repro.systems` are written in PMLang.
* :mod:`repro.lang.interp` — a virtual machine executing the IR against a
  simulated PM pool and volatile heap, with cooperative threads, fault
  injection points, step budgets (hang detection) and tracing hooks.
* :mod:`repro.lang.printer` — human-readable IR dumps.

All values are 64-bit-style integers; pointers are integer addresses.
Persistent addresses live at ``PM_BASE`` and above, volatile addresses
below — so every analysis and runtime check can classify a pointer by its
value range.
"""

from repro.lang.compiler import compile_module
from repro.lang.interp import FaultInfo, Machine
from repro.lang.ir import BasicBlock, Function, Instr, Module
from repro.lang.printer import format_function, format_module

__all__ = [
    "compile_module",
    "Machine",
    "FaultInfo",
    "Module",
    "Function",
    "BasicBlock",
    "Instr",
    "format_module",
    "format_function",
]
