"""Human-readable IR dumps, used in docs, debugging and metadata files."""

from __future__ import annotations

from typing import List

from repro.lang.ir import Function, Instr, Module


def format_instr(instr: Instr) -> str:
    """Render one instruction, e.g. ``#12 %t3 = binop ('+', 'a', 'b')``."""
    dst = f"{instr.dst} = " if instr.dst is not None else ""
    guid = f" !guid={instr.guid}" if instr.guid is not None else ""
    args = ", ".join(repr(a) for a in instr.args)
    return f"#{instr.iid:<4} {dst}{instr.op} {args}{guid}"


def format_function(func: Function) -> str:
    """Render one function with labelled blocks."""
    lines: List[str] = [f"def {func.name}({', '.join(func.params)}):"]
    for label in func.block_order:
        lines.append(f"  {label}:")
        for instr in func.blocks[label].instrs:
            lines.append(f"    {format_instr(instr)}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Render a whole module: struct layouts plus every function."""
    parts = [f"; module {module.name}"]
    if module.struct_sizes:
        for name, size in module.struct_sizes.items():
            fields = [
                f for f, off in sorted(module.field_offsets.items(), key=lambda x: x[1])
                if _field_in_struct(module, name, f)
            ]
            parts.append(f"; struct {name} ({size} words): {', '.join(fields)}")
    for func in module.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts)


def _field_in_struct(module: Module, struct: str, fieldname: str) -> bool:
    # field names are module-global; attribute them to the first struct
    # whose size covers their offset (best effort, printing only)
    return module.field_offsets[fieldname] < module.struct_sizes[struct]
