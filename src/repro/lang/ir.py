"""Register-based intermediate representation (the reproduction's LLVM IR).

A :class:`Module` holds :class:`Function` objects; each function is a list
of :class:`BasicBlock` objects ending in a terminator; blocks hold
:class:`Instr` objects.  Registers are function-local string names; PMLang
local variables compile to registers of the same name, compiler temporaries
are ``%tN``.

Instruction set
---------------

============  =============================  =======================================
op            operands (``args``)            meaning
============  =============================  =======================================
const         (value,)                       dst = integer constant
mov           (src,)                         dst = src
binop         (op, a, b)                     dst = a <op> b  (arith/logic/compare)
unop          (op, a)                        dst = <op> a    (neg, not, bnot)
gep           (base, offset, index, scale)   dst = base + offset + index*scale
load          (ptr,)                         dst = memory[ptr]
store         (ptr, val)                     memory[ptr] = val
alloc         (size, space)                  dst = allocate words ("pm" | "vol")
free          (ptr, space)                   release an allocation
realloc       (ptr, size)                    dst = resized PM block (contents move)
call          (fname, [args])                dst = call user function
ret           (src | None,)                  return
br            (label,)                       unconditional branch
cbr           (cond, tlabel, flabel)         conditional branch
persist       (ptr, nwords)                  pmem_persist(ptr, nwords)
flush         (ptr, nwords)                  pmem_flush (no ordering)
fence         ()                             sfence / pmem_drain
txbegin       ()                             begin transaction
txadd         (ptr, nwords)                  add range to tx undo log
txcommit      ()                             commit transaction
txabort       ()                             abort transaction
setroot       (ptr,)                         set pool root object
getroot       ()                             dst = pool root object
assert        (cond, msg)                    trap AssertTrap if cond == 0
panic         (msg,)                         trap PanicTrap
emit          (key, val)                     report a value to the host harness
yield         ()                             cooperative thread yield point
nop           ()                             no effect (injection anchor)
============  =============================  =======================================

``gep`` (named after LLVM's getelementptr) is the only address-arithmetic
instruction; keeping field offsets as constants inside it is what makes the
pointer analysis field-sensitive.  ``index`` may be ``None`` (plain field
access) or a register (array indexing, which collapses to a
field-insensitive summary in the points-to domain).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CompileError

TERMINATORS = frozenset({"ret", "br", "cbr"})

MEMORY_WRITE_OPS = frozenset({"store", "persist", "flush"})

#: ops that may create a persistent pointer out of thin air
PM_SOURCE_OPS = frozenset({"getroot"})

BINOPS = frozenset(
    {
        "+",
        "-",
        "*",
        "//",
        "%",
        "<<",
        ">>",
        "&",
        "|",
        "^",
        "==",
        "!=",
        "<",
        "<=",
        ">",
        ">=",
    }
)

UNOPS = frozenset({"neg", "not", "bnot"})


class Instr:
    """One IR instruction.

    Attributes
    ----------
    iid:
        Module-unique instruction id (assigned by :meth:`Module.finalize`).
    op, dst, args:
        Opcode, destination register (or None) and operand tuple.
    func, block, index:
        Position of the instruction after finalize.
    src_line:
        PMLang source line the instruction was compiled from, for reports.
    guid:
        Trace GUID assigned by the instrumentation pass (None before).
    handler:
        Per-opcode interpreter handler, resolved lazily by the VM on
        first execution (a pure function of ``op``, so sharing the
        instruction between machines is safe).
    """

    __slots__ = ("iid", "op", "dst", "args", "func", "block", "index", "src_line",
                 "guid", "handler")

    def __init__(
        self,
        op: str,
        dst: Optional[str] = None,
        args: Sequence = (),
        src_line: int = 0,
    ):
        self.op = op
        self.dst = dst
        self.args = tuple(args)
        self.src_line = src_line
        self.iid = -1
        self.func = ""
        self.block = ""
        self.index = -1
        self.guid: Optional[str] = None
        self.handler = None

    # ------------------------------------------------------------------
    def uses(self) -> Tuple[str, ...]:
        """Registers this instruction reads."""
        op, a = self.op, self.args
        if op == "mov":
            return (a[0],)
        if op == "binop":
            return (a[1], a[2])
        if op == "unop":
            return (a[1],)
        if op == "gep":
            base, _off, index, _scale = a
            return (base,) if index is None else (base, index)
        if op == "load":
            return (a[0],)
        if op == "store":
            return (a[0], a[1])
        if op == "alloc":
            return (a[0],)
        if op == "free":
            return (a[0],)
        if op == "realloc":
            return (a[0], a[1])
        if op == "call":
            return tuple(a[1])
        if op == "ret":
            return () if a[0] is None else (a[0],)
        if op == "cbr":
            return (a[0],)
        if op in ("persist", "flush", "txadd"):
            return (a[0], a[1])
        if op == "setroot":
            return (a[0],)
        if op == "assert":
            return (a[0],)
        if op == "emit":
            return (a[1],)
        return ()

    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    def location(self) -> str:
        """Human-readable position, e.g. ``assoc_find:loop:3``."""
        return f"{self.func}:{self.block}:{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dst = f"{self.dst} = " if self.dst else ""
        return f"<Instr #{self.iid} {dst}{self.op} {self.args}>"


class BasicBlock:
    """A labelled straight-line sequence ending in a terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instrs: List[Instr] = []
        #: start-index -> compiled fused segment (repro.lang.fuse); None
        #: until the fused VM first executes this block, and reset by
        #: finalize()/instrumentation so codegen never sees stale code
        self._fused_segs = None

    def append(self, instr: Instr) -> Instr:
        """Append an instruction to this block and return it."""
        self.instrs.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None

    def successors(self) -> Tuple[str, ...]:
        """Labels of the blocks this block's terminator can jump to."""
        term = self.terminator
        if term is None or term.op == "ret":
            return ()
        if term.op == "br":
            return (term.args[0],)
        return (term.args[1], term.args[2])


class Function:
    """A function: parameters plus basic blocks, entry block first."""

    def __init__(self, name: str, params: Sequence[str]):
        self.name = name
        self.params = list(params)
        self.blocks: Dict[str, BasicBlock] = {}
        self.block_order: List[str] = []

    def add_block(self, label: str) -> BasicBlock:
        """Create and register a new basic block in this function."""
        if label in self.blocks:
            raise CompileError(f"duplicate block {label} in {self.name}")
        block = BasicBlock(label)
        self.blocks[label] = block
        self.block_order.append(label)
        return block

    @property
    def entry(self) -> str:
        return self.block_order[0]

    def instructions(self) -> Iterator[Instr]:
        for label in self.block_order:
            yield from self.blocks[label].instrs

    def block(self, label: str) -> BasicBlock:
        """Look up a basic block by label."""
        return self.blocks[label]


class Module:
    """A compiled PMLang module: functions plus struct field layout."""

    def __init__(self, name: str):
        self.name = name
        self.functions: Dict[str, Function] = {}
        #: global field-name -> word offset map (PMLang structs)
        self.field_offsets: Dict[str, int] = {}
        #: struct name -> size in words
        self.struct_sizes: Dict[str, int] = {}
        self._instr_by_iid: Dict[int, Instr] = {}
        self._finalized = False

    def add_function(self, func: Function) -> Function:
        """Register a function; duplicate names are rejected."""
        if func.name in self.functions:
            raise CompileError(f"duplicate function {func.name}")
        self.functions[func.name] = func
        return func

    def declare_struct(self, name: str, fields: Sequence[str]) -> None:
        """Register a struct layout; field names are module-global."""
        for i, field in enumerate(fields):
            if field in self.field_offsets and self.field_offsets[field] != i:
                raise CompileError(
                    f"field {field!r} of struct {name} conflicts with an "
                    f"existing field at a different offset; PMLang field "
                    f"names are module-global"
                )
            self.field_offsets[field] = i
        self.struct_sizes[name] = len(fields)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Assign instruction ids and position metadata; validate blocks."""
        counter = itertools.count()
        self._instr_by_iid.clear()
        for func in self.functions.values():
            for label in func.block_order:
                block = func.blocks[label]
                block._fused_segs = None  # drop stale compiled segments
                if block.terminator is None:
                    raise CompileError(
                        f"block {func.name}:{label} lacks a terminator"
                    )
                for idx, instr in enumerate(block.instrs):
                    instr.iid = next(counter)
                    instr.func = func.name
                    instr.block = label
                    instr.index = idx
                    self._instr_by_iid[instr.iid] = instr
        self._finalized = True

    def instructions(self) -> Iterator[Instr]:
        for func in self.functions.values():
            yield from func.instructions()

    def instr(self, iid: int) -> Instr:
        """Look up an instruction by its module-unique id."""
        return self._instr_by_iid[iid]

    def instr_count(self) -> int:
        """Total instructions in the module (after finalize)."""
        return len(self._instr_by_iid)

    def validate_calls(self) -> None:
        """Check every call targets a defined function with matching arity."""
        for instr in self.instructions():
            if instr.op != "call":
                continue
            fname, args = instr.args
            target = self.functions.get(fname)
            if target is None:
                raise CompileError(f"call to undefined function {fname!r}")
            if len(args) != len(target.params):
                raise CompileError(
                    f"call to {fname} with {len(args)} args, "
                    f"expected {len(target.params)}"
                )
