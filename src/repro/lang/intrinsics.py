"""PMLang intrinsic functions.

Intrinsics are the PMLang-visible surface of the PM substrate — the
equivalents of the PMDK calls and persistence instructions that the Arthas
analyzer recognises (Section 3.2 of the paper).  The table maps an
intrinsic call in PMLang source to an IR opcode; the compiler consults it,
and the analyzer's PM-variable identification keys off the resulting ops
(``alloc`` with space "pm", ``getroot``, ``persist`` ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class IntrinsicSpec:
    """Shape of one intrinsic: target opcode, arity, result, extras."""

    op: str
    arity: int
    has_dst: bool
    #: extra constant operands appended after the register args
    extra: Tuple = ()
    #: indices of arguments that must be string literals (moved into args)
    str_args: Tuple[int, ...] = ()


INTRINSICS: Dict[str, IntrinsicSpec] = {
    "pm_alloc": IntrinsicSpec("alloc", 1, True, extra=("pm",)),
    "valloc": IntrinsicSpec("alloc", 1, True, extra=("vol",)),
    "pm_free": IntrinsicSpec("free", 1, False, extra=("pm",)),
    "vfree": IntrinsicSpec("free", 1, False, extra=("vol",)),
    "pm_realloc": IntrinsicSpec("realloc", 2, True),
    "persist": IntrinsicSpec("persist", 2, False),
    "flush": IntrinsicSpec("flush", 2, False),
    "fence": IntrinsicSpec("fence", 0, False),
    "tx_begin": IntrinsicSpec("txbegin", 0, False),
    "tx_add": IntrinsicSpec("txadd", 2, False),
    "tx_commit": IntrinsicSpec("txcommit", 0, False),
    "tx_abort": IntrinsicSpec("txabort", 0, False),
    "set_root": IntrinsicSpec("setroot", 1, False),
    "get_root": IntrinsicSpec("getroot", 0, True),
    "assert_true": IntrinsicSpec("assert", 2, False, str_args=(1,)),
    "panic": IntrinsicSpec("panic", 1, False, str_args=(0,)),
    "emit": IntrinsicSpec("emit", 2, False, str_args=(0,)),
    "thread_yield": IntrinsicSpec("yield", 0, False),
    "nop": IntrinsicSpec("nop", 0, False),
}

#: names that are handled specially by the compiler, not via the table:
#: ``sizeof("struct")`` (compile-time constant), ``range`` (for loops),
#: ``addr(p.field)`` / ``addr(a[i])`` (address-of, for field-granularity
#: persists and tx_adds)
SPECIAL_INTRINSICS = frozenset({"sizeof", "range", "addr"})


def is_intrinsic(name: str) -> bool:
    """True when ``name`` is a PMLang intrinsic (table or special form)."""
    return name in INTRINSICS or name in SPECIAL_INTRINSICS


def spec(name: str) -> Optional[IntrinsicSpec]:
    """The table entry for an intrinsic (None for special forms)."""
    return INTRINSICS.get(name)
