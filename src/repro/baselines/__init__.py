"""Baselines evaluated against Arthas (paper Section 6.1).

* :mod:`repro.baselines.pmcriu` — CRIU enhanced with PM-pool dumps:
  coarse-grained, periodic (1/min) whole-pool snapshots, restored
  newest-first on failure.
* :mod:`repro.baselines.arckpt` — Arthas's checkpoint log *without* the
  analyzer: fine-grained entries reverted one at a time in strict
  reverse-time order.  A facet of Arthas, not a real alternative: it only
  recovers bugs whose bad update is the most recent one.
"""

from repro.baselines.arckpt import ArCkpt
from repro.baselines.pmcriu import PmCRIU

__all__ = ["PmCRIU", "ArCkpt"]
