"""ArCkpt: fine-grained checkpointing without the analyzer.

Keeps Arthas's checkpoint log but disables slicing: entries are reverted
one at a time in strict reverse sequence order, re-executing after each.
The paper positions this as a facet of Arthas: it recovers only the bugs
whose bad persistent update is (nearly) the most recent one and times out
otherwise, because walking back through thousands of unrelated updates
one re-execution at a time exhausts the mitigation budget.
"""

from __future__ import annotations

from typing import Callable

from repro.checkpoint.log import CheckpointLog
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.reactor.revert import MitigationResult, ReexecFn, Reverter, _NullClock


class ArCkpt:
    """Time-ordered, one-entry-at-a-time reversion."""

    def __init__(
        self,
        log: CheckpointLog,
        pool: PMPool,
        allocator: PMAllocator,
    ):
        self.log = log
        self.pool = pool
        self.allocator = allocator

    def mitigate(
        self,
        reexec: ReexecFn,
        clock=None,
        reexec_delay: Callable[[], float] = lambda: 4.0,
        max_attempts: int = 130,
        timeout_seconds: float = 600.0,
    ) -> MitigationResult:
        """Revert update entries newest-first, re-executing after each."""
        clock = clock if clock is not None else _NullClock()
        reverter = Reverter(
            self.log,
            self.pool,
            self.allocator,
            reexec=reexec,
            clock=clock,
            reexec_delay=reexec_delay,
            max_attempts=max_attempts,
            timeout_seconds=timeout_seconds,
        )
        result = MitigationResult(recovered=False, mode="arckpt")
        update_seqs = sorted(
            (ev.seq for ev in self.log.events if ev.kind == "update"),
            reverse=True,
        )
        for seq in update_seqs:
            if result.attempts >= max_attempts or clock.now > timeout_seconds:
                result.timed_out = True
                break
            for s in reverter.tx_closure(seq):
                if reverter.revert_update_seq(s, 1):
                    result.reverted_seqs.append(s)
            clock.advance(reverter.revert_cost)
            clock.advance(reexec_delay())
            result.attempts += 1
            outcome = reexec()
            if outcome.ok:
                result.recovered = True
                break
        result.duration_seconds = clock.now
        return result
