"""pmCRIU: the coarse-grained checkpoint-rollback baseline.

CRIU snapshots entire process state at fixed intervals; the paper enhances
it to dump the PM pool too.  The reproduction keeps the parts that matter
for PM hard faults: a periodic whole-pool snapshot, and mitigation by
restoring snapshots newest-first, re-executing after each restore.

Two shape-defining properties from the paper emerge naturally:

* recovery succeeds iff some snapshot predates the bad persistent state —
  bugs triggered before the first snapshot are only recoverable by
  restoring the *empty initial pool* (which loses everything and is the
  "probabilistic" success of f5/f8);
* data loss is large, because restoring a point-in-time image throws away
  every update after it, related to the fault or not.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.pmem.snapshot import PoolSnapshot, restore_snapshot, take_snapshot
from repro.reactor.revert import MitigationResult, ReexecFn, _NullClock


class PmCRIU:
    """Periodic whole-pool snapshotting plus newest-first restore."""

    def __init__(
        self,
        pool: PMPool,
        allocator: PMAllocator,
        interval_seconds: float = 60.0,
        snapshot_cost: float = 0.35,
    ):
        self.pool = pool
        self.allocator = allocator
        self.interval_seconds = interval_seconds
        self.snapshot_cost = snapshot_cost
        self.snapshots: List[PoolSnapshot] = []
        self._last_snapshot_at: Optional[float] = None
        # the pristine image (empty pool) is always restorable
        self._initial = take_snapshot(pool, allocator, taken_at=0.0, label="initial")

    # ------------------------------------------------------------------
    def maybe_snapshot(self, now: float) -> bool:
        """Take a snapshot if the interval elapsed; returns True if taken."""
        due = (
            self._last_snapshot_at is None
            or now - self._last_snapshot_at >= self.interval_seconds
        )
        if not due:
            return False
        self._last_snapshot_at = now
        self.snapshots.append(
            take_snapshot(
                self.pool,
                self.allocator,
                taken_at=now,
                label=f"ckpt{len(self.snapshots) + 1}",
            )
        )
        return True

    def snapshot_count(self) -> int:
        return len(self.snapshots)

    # ------------------------------------------------------------------
    def mitigate(
        self,
        reexec: ReexecFn,
        clock=None,
        reexec_delay: Callable[[], float] = lambda: 4.0,
        restore_cost: float = 1.5,
        max_attempts: int = 20,
        timeout_seconds: float = 600.0,
    ) -> MitigationResult:
        """Restore snapshots newest-first until re-execution succeeds."""
        clock = clock if clock is not None else _NullClock()
        result = MitigationResult(recovered=False, mode="pmcriu")
        images = list(reversed(self.snapshots)) + [self._initial]
        for snapshot in images:
            if result.attempts >= max_attempts or clock.now > timeout_seconds:
                result.timed_out = True
                break
            restore_snapshot(self.pool, snapshot, self.allocator)
            clock.advance(restore_cost)
            clock.advance(reexec_delay())
            result.attempts += 1
            result.notes = f"restored {snapshot.label}"
            outcome = reexec()
            if outcome.ok:
                result.recovered = True
                break
        result.duration_seconds = clock.now
        return result
