"""repro: a Python reproduction of Arthas (EuroSys '21).

"Understanding and Dealing with Hard Faults in Persistent Memory
Systems" — Brian Choi, Randal Burns, Peng Huang.

Top-level surface:

* :mod:`repro.pmem` — simulated persistent memory (pool, allocator,
  transactions, snapshots, pool checking).
* :mod:`repro.lang` — PMLang: compiler, register IR, interpreter.
* :mod:`repro.analysis` — points-to, PM classification, PDG, static and
  dynamic slicing.
* :mod:`repro.instrument` / :mod:`repro.checkpoint` — trace GUIDs and the
  versioned checkpoint log.
* :mod:`repro.detector` / :mod:`repro.reactor` — failure detection and
  the reversion engine (purge, rollback, bisect, leak diff).
* :mod:`repro.baselines` — pmCRIU and ArCkpt.
* :mod:`repro.systems` — the five PM target systems in PMLang.
* :mod:`repro.faults` — the 12 reproduced hard faults + the 28-bug study.
* :mod:`repro.harness` — the end-to-end experiment runner.
* :mod:`repro.distributed` — the Section 7 distributed-recovery sketch.

Command line: ``python -m repro --help``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
