"""Fuzzer-discovered fault families beyond the seeded Table-2 set.

The f1–f12 scenarios in :mod:`repro.faults.registry` are hand-written
reproductions of the paper's studied bugs.  This module holds the fault
families the *fuzzer* (:mod:`repro.harness.fuzz_sweep`) discovers by
perturbing the guest-visible persistence boundaries — the same failure
classes the follow-up literature catalogues:

* ``crash-consistency`` — WITCHER-style missing-flush (``skip-flush``)
  and persist-ordering (``skip-fence``) bugs: the program believes a
  store durable, the simulated CPU write buffer still holds it, and the
  next power loss silently drops it.  Detected by the likely-invariant
  probe :func:`repro.pmem.persist.probe_persistence` — a quiescent guest
  must leave nothing at risk in the write buffer.
* ``kernel-pm`` — the Linux-kernel PM-issue patterns: torn/alignment
  updates (a fence persists only part of its staged cache lines) and
  initialization races (a fault landing inside the restart/recovery
  window, where repair writes are themselves not yet durable).

Every entry is a :class:`FuzzedScenario`: a *self-contained* reproducer
that arms its own :class:`~repro.faultinject.InjectionPlan` around a
fixed insert window in a dedicated keyspace, power-cycles the system,
and reports as victims the acknowledged keys the recovery no longer
serves.  The scenario recomputes its victims on every run, so the same
registry entry behaves identically under every solution column of the
evaluation matrix.

``FUZZED_FAULT_SPECS`` between the BEGIN/END markers is *generated* by
``python -m repro fuzz-sweep --emit-registry`` — edit the fuzzer, not
the block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import faultinject
from repro.errors import Trap
from repro.faults.registry import FaultScenario
from repro.pmem.persist import probe_persistence
from repro.workloads.generators import VALUE_BASE

FAMILY_CRASH_CONSISTENCY = "crash-consistency"
FAMILY_KERNEL_PM = "kernel-pm"
FUZZ_FAMILIES = (FAMILY_CRASH_CONSISTENCY, FAMILY_KERNEL_PM)

#: the fuzz window: a burst of inserts in a dedicated keyspace far above
#: the mixed workload (small ints) and the consistency probe (9M+).  The
#: stride keeps every key in one hash-bucket class, concentrating
#: pressure on a single chain/bucket so partial persists leave dangling
#: links rather than diffuse noise.
FUZZ_KEY0 = 5_000_000
FUZZ_STRIDE = 64
FUZZ_WINDOW_OPS = 30

#: power-loss/recovery cycles run *inside* the armed window after the
#: insert burst — injection sites firing there perturb the recovery path
#: itself (the initialization-race region)
FUZZ_REBOOT_CYCLES = 2


class FuzzedScenario(FaultScenario):
    """One fuzzer-discovered injection reproducer.

    ``trigger`` arms the spec plan around the fuzz window (insert burst,
    then reboot cycles), ends with a clean power loss + recovery, and
    diffs the acknowledged keys against what the system still serves.
    Keys in ``baseline`` are losses the *clean* window already exhibits
    (e.g. level-hash bucket evictions) and are never counted as victims.

    The manifestation is in-guest — ``check_key`` traps on a missing
    victim, a recovery that traps recurs when re-run — so the detector
    obtains a fault instruction and Arthas can slice from it, exactly as
    for the seeded scenarios.
    """

    kind = "dataloss"
    family = FAMILY_CRASH_CONSISTENCY
    pre_ops = 120
    post_ops = 90

    def __init__(
        self,
        fid: str,
        system: str,
        specs: Sequence[Tuple[str, int, str, int]],
        family: str = FAMILY_CRASH_CONSISTENCY,
        phase: str = "steady",
        kind: str = "dataloss",
        fault: str = "",
        consequence: str = "Data loss",
        baseline: Sequence[int] = (),
        record: bool = False,
    ):
        self.fid = fid
        self.system = system
        self.specs: Tuple[Tuple[str, int, str, int], ...] = tuple(
            (str(s[0]), int(s[1]), str(s[2]), int(s[3])) for s in specs
        )
        self.family = family
        self.phase = phase
        self.kind = kind
        self.fault = fault or self.default_fault_label()
        self.consequence = consequence
        self.baseline = frozenset(int(k) for k in baseline)
        self.record = record
        # --- probe telemetry, overwritten by every trigger() run ------
        #: site -> firing count over the whole armed window
        self.last_counts: Dict[str, int] = {}
        #: site -> firing count up to the end of the insert burst (the
        #: steady region); occurrences beyond this are the init region
        self.last_steady_counts: Dict[str, int] = {}
        self.last_fired: List[str] = []
        self.last_all_fired = False
        #: key -> "missing" | "wrong" | "trap" (baseline subtracted)
        self.last_victims: Dict[int, str] = {}
        #: raw victims including baseline losses
        self.last_raw_victims: Dict[int, str] = {}
        #: trap kind when the post-window recovery itself failed
        self.last_recover_trap: Optional[str] = None
        self.last_acked = 0
        #: write-buffer invariant probe at guest quiescence
        self.last_probe: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def default_fault_label(self) -> str:
        return "fuzzed: " + "+".join(
            f"{site}#{occ}:{kind}" for site, occ, kind, _seed in self.specs
        ) or "fuzz probe"

    def _reboot(self, adapter) -> Optional[str]:
        """Power loss + restart + recovery; returns the trap kind when
        the recovery itself fails (a one-shot injected crash included)."""
        try:
            adapter.restart()
        except Trap:  # pragma: no cover - restart is host-side
            return "restart-trap"
        try:
            adapter.recover()
        except Trap as exc:
            fault = adapter.machine.last_fault
            if fault is not None:
                return fault.kind
            return type(exc).__name__
        return None

    # ------------------------------------------------------------------
    def trigger(self, ctx) -> None:
        adapter = ctx.adapter
        if self.record:
            plan = faultinject.InjectionPlan(record=True)
        else:
            plan = faultinject.InjectionPlan(
                [faultinject.InjectionSpec(site, occ, kind, seed=seed)
                 for site, occ, kind, seed in self.specs]
            )
        acked: Dict[int, int] = {}
        with faultinject.activate(plan):
            # steady region: the insert burst the program believes durable
            for i in range(FUZZ_WINDOW_OPS):
                key = FUZZ_KEY0 + i * FUZZ_STRIDE
                value = VALUE_BASE + key
                try:
                    ret = adapter.insert(key, value)
                except Trap:
                    self._reboot(adapter)
                    continue
                if ret is None or ret == 1:
                    acked[key] = value
            self.last_steady_counts = dict(plan.counts)
            # WITCHER likely-invariant probe: the guest is quiescent and
            # believes everything durable — words still in the write
            # buffer are exactly the missing-flush / unordered persists
            probe = probe_persistence(adapter.pool)
            self.last_probe = {
                "at_risk_words": probe.at_risk_words,
                "unflushed_words": probe.unflushed_words,
                "staged_lines": probe.staged_lines,
                "pending_ranges": probe.pending_ranges,
                "consistent": probe.consistent,
            }
            # init region: power-loss/recovery cycles under the armed
            # plan — specs firing here hit the recovery path itself
            for _ in range(FUZZ_REBOOT_CYCLES):
                self._reboot(adapter)
        self.last_counts = dict(plan.counts)
        self.last_fired = [s.label() for s in plan.fired]
        self.last_all_fired = plan.all_fired
        self.last_acked = len(acked)

        # observation power loss: what does a clean recovery still serve?
        recover_trap = self._reboot(adapter)
        raw: Dict[int, str] = {}
        if recover_trap is None:
            for key in sorted(acked):
                try:
                    got = adapter.lookup(key)
                except Trap:
                    raw[key] = "trap"
                    if self._reboot(adapter) is not None:
                        recover_trap = "recover-trap"
                        break
                    continue
                if got == -1:
                    raw[key] = "missing"
                elif got != acked[key]:
                    raw[key] = "wrong"
        victims = {k: how for k, how in raw.items() if k not in self.baseline}
        self.last_raw_victims = raw
        self.last_victims = dict(victims)
        self.last_recover_trap = recover_trap

        ctx.state["acked"] = acked
        ctx.state["victims"] = victims
        ctx.state["recover_trap"] = recover_trap
        hi = FUZZ_KEY0 + FUZZ_WINDOW_OPS * FUZZ_STRIDE
        ctx.state["exclude"] = lambda k: FUZZ_KEY0 <= k < hi

    # ------------------------------------------------------------------
    def manifest(self, ctx) -> None:
        if ctx.state.get("recover_trap"):
            # the durable damage makes recovery itself fail; re-running
            # it recurs in-guest, handing the detector a fault instruction
            ctx.adapter.restart()
            ctx.adapter.recover()
        for key, how in sorted(ctx.state.get("victims", {}).items()):
            if how in ("missing", "trap"):
                ctx.adapter.check_key(key)

    def verify(self, ctx) -> None:
        # reexec restarted and re-ran recovery before calling us, so a
        # recovery that still traps never reaches this point.  Victims
        # must now be *consistent*: served with the acknowledged value or
        # cleanly absent (discarded by the reversion) — garbage values
        # and lookup traps keep the fault alive.
        acked = ctx.state.get("acked", {})
        for key in sorted(ctx.state.get("victims", {})):
            got = ctx.adapter.lookup(key)
            assert got in (-1, acked.get(key)), (
                f"fuzz victim {key} served garbage {got}"
            )
        for key in ctx.sample_keys(3):
            ctx.adapter.check_key(key)

    def extra_consistency(self, ctx) -> List[str]:
        # the damaged bucket class must accept fresh inserts again
        key = FUZZ_KEY0 + (FUZZ_WINDOW_OPS + 3) * FUZZ_STRIDE
        try:
            ctx.adapter.insert(key, VALUE_BASE + key)
            if ctx.adapter.lookup(key) != VALUE_BASE + key:
                return ["fuzz bucket class rejects new inserts after recovery"]
        except Trap:
            return ["insert into fuzz bucket class traps after recovery"]
        return []


# ----------------------------------------------------------------------
# generated registry entries
# ----------------------------------------------------------------------
# --- BEGIN FUZZED FAULT SPECS (generated by `repro fuzz-sweep --emit-registry`) ---
FUZZED_FAULT_SPECS: List[Dict[str, object]] = [
    {
        "fid": 'f13',
        "system": 'cceh',
        "family": 'crash-consistency',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'untimely crash at pmem.flush#298 + elided fence at pmem.fence#124; 1 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.flush', 298, 'crash', 225], ['pmem.fence', 124, 'skip-fence', 157]],
        "baseline": [],
    },
    {
        "fid": 'f14',
        "system": 'cceh',
        "family": 'crash-consistency',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'elided fence at pmem.fence#125; invariant: 4 word(s) at risk in the write buffer at quiescence; 1 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.fence', 125, 'skip-fence', 919]],
        "baseline": [],
    },
    {
        "fid": 'f15',
        "system": 'levelhash',
        "family": 'kernel-pm',
        "phase": 'mixed',
        "kind": 'dataloss',
        "fault": 'torn fence at pmem.fence#60 + untimely crash at pmem.fence#235 (recovery path); 3 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.fence', 60, 'torn', 814], ['pmem.fence', 235, 'crash', 37]],
        "baseline": [5000064, 5000128, 5000448, 5000512, 5000704, 5000768, 5000832, 5000896],
    },
    {
        "fid": 'f16',
        "system": 'levelhash',
        "family": 'crash-consistency',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'missing flush at pmem.flush#242; invariant: 3 word(s) at risk in the write buffer at quiescence; 1 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.flush', 242, 'skip-flush', 254]],
        "baseline": [5000064, 5000128, 5000448, 5000512, 5000704, 5000768, 5000832, 5000896],
    },
    {
        "fid": 'f17',
        "system": 'memcached',
        "family": 'kernel-pm',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'torn fence at pmem.fence#24; 11 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.fence', 24, 'torn', 526]],
        "baseline": [],
    },
    {
        "fid": 'f18',
        "system": 'memcached',
        "family": 'crash-consistency',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'missing flush at pmem.flush#384; invariant: 6 word(s) at risk in the write buffer at quiescence; 12 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.flush', 384, 'skip-flush', 494]],
        "baseline": [],
    },
    {
        "fid": 'f19',
        "system": 'pelikan',
        "family": 'kernel-pm',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'untimely crash at pmem.fence#36 + torn fence at pmem.fence#90; 28 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.fence', 36, 'crash', 884], ['pmem.fence', 90, 'torn', 43]],
        "baseline": [],
    },
    {
        "fid": 'f20',
        "system": 'pelikan',
        "family": 'kernel-pm',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'torn fence at pmem.fence#70; 23 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.fence', 70, 'torn', 867]],
        "baseline": [],
    },
    {
        "fid": 'f21',
        "system": 'pmemkv',
        "family": 'kernel-pm',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'untimely crash at pmem.fence#20 + torn fence at pmem.fence#29; 26 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.fence', 20, 'crash', 959], ['pmem.fence', 29, 'torn', 36]],
        "baseline": [],
    },
    {
        "fid": 'f22',
        "system": 'pmemkv',
        "family": 'crash-consistency',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'missing flush at pmem.flush#64; invariant: 2 word(s) at risk in the write buffer at quiescence; 1 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.flush', 64, 'skip-flush', 120]],
        "baseline": [],
    },
    {
        "fid": 'f23',
        "system": 'redis',
        "family": 'crash-consistency',
        "phase": 'steady',
        "kind": 'trap',
        "fault": 'missing flush at pmem.flush#52; invariant: 2 word(s) at risk in the write buffer at quiescence; 1 acked key(s) lost at power loss',
        "consequence": 'Lookup crash',
        "specs": [['pmem.flush', 52, 'skip-flush', 131]],
        "baseline": [],
    },
    {
        "fid": 'f24',
        "system": 'redis',
        "family": 'crash-consistency',
        "phase": 'steady',
        "kind": 'dataloss',
        "fault": 'elided fence at pmem.fence#90; invariant: 5 word(s) at risk in the write buffer at quiescence; 1 acked key(s) lost at power loss',
        "consequence": 'Data loss',
        "specs": [['pmem.fence', 90, 'skip-fence', 283]],
        "baseline": [],
    },
]
# --- END FUZZED FAULT SPECS ---


def build_fuzzed_scenarios() -> List[FuzzedScenario]:
    """The registered fuzzer discoveries, in fid order."""
    out: List[FuzzedScenario] = []
    for entry in FUZZED_FAULT_SPECS:
        out.append(
            FuzzedScenario(
                fid=str(entry["fid"]),
                system=str(entry["system"]),
                specs=[tuple(s) for s in entry["specs"]],
                family=str(entry["family"]),
                phase=str(entry["phase"]),
                kind=str(entry["kind"]),
                fault=str(entry["fault"]),
                consequence=str(entry["consequence"]),
                baseline=entry.get("baseline", ()),
            )
        )
    out.sort(key=lambda s: int(s.fid[1:]))
    return out
