"""The 28-bug empirical study dataset (paper Section 2).

The paper reports aggregates over 28 real-world hard-fault bugs — 8 from
five new PM systems and 20 historical Redis/Memcached bugs reproduced on
their PM ports (Table 1) — classified by root cause (Figure 2),
consequence (Figure 3) and fault-propagation pattern (Section 2.6).

The paper does not enumerate every bug, so the per-bug records here are
*reconstructed*: the named, described cases (Section 2.3 and Table 2) are
placed explicitly, and the remainder are filled in so that every
aggregate matches the published distribution exactly:

* Table 1 counts: CCEH 1, Dash 1, PMEMKV 2, LevelHash 2, RECIPE 2 (new);
  Memcached 9, Redis 11 (ported).
* Figure 2 root causes: logic 46%, race 18%, integer overflow 11%,
  buffer overflow 11%, memory leak 11%, hardware fault 4%.
* Figure 3 consequences: repeated crash 32%, wrong result 21%,
  persistent leak 14%, repeated hang 11%, out of space 7%,
  data loss 7%, corruption 7%.
* Propagation: Type I 18%, Type II 68%, Type III 14%.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

# root causes (Figure 2)
LOGIC = "logic error"
INT_OVERFLOW = "integer overflow"
RACE = "race condition"
BUF_OVERFLOW = "buffer overflow"
HW_FAULT = "hardware fault"
MEM_LEAK = "memory leak"

# consequences (Figure 3)
CRASH = "repeated crash"
WRONG = "wrong result"
CORRUPTION = "corruption"
OOS = "out of space"
HANG = "repeated hang"
LEAK = "persistent leak"
DATALOSS = "data loss"

# propagation patterns (Section 2.6)
TYPE_I = "I"  # bad persistent value directly causes the failure
TYPE_II = "II"  # bad value propagates across volatile/persistent state
TYPE_III = "III"  # persistent mistake without a bad value (e.g. leak)


@dataclass(frozen=True)
class StudyBug:
    """One studied hard-fault bug."""

    bug_id: int
    system: str
    origin: str  # "new" | "ported"
    root_cause: str
    consequence: str
    propagation: str
    description: str


STUDY_BUGS: List[StudyBug] = [
    # -- new PM systems (8) ------------------------------------------------
    StudyBug(1, "cceh", "new", LOGIC, HANG, TYPE_II,
             "directory doubling leaves global depth stale; inserts loop"),
    StudyBug(2, "dash", "new", LOGIC, CRASH, TYPE_II,
             "displacement metadata mishandled during segment split"),
    StudyBug(3, "pmemkv", "new", MEM_LEAK, LEAK, TYPE_III,
             "asynchronous lazy free loses queued blocks across a crash"),
    StudyBug(4, "pmemkv", "new", LOGIC, CRASH, TYPE_I,
             "stale persistent iterator pointer dereferenced after reopen"),
    StudyBug(5, "levelhash", "new", LOGIC, WRONG, TYPE_II,
             "two-level rehash publishes items under the wrong level mask"),
    StudyBug(6, "levelhash", "new", INT_OVERFLOW, CRASH, TYPE_II,
             "bucket index computation overflows on resize"),
    StudyBug(7, "recipe", "new", RACE, CRASH, TYPE_II,
             "converted index misses a fence; racy split persists torn node"),
    StudyBug(8, "recipe", "new", LOGIC, CORRUPTION, TYPE_II,
             "converted structure persists transient lock word"),
    # -- ported Memcached (9) ----------------------------------------------
    StudyBug(9, "memcached", "ported", INT_OVERFLOW, HANG, TYPE_II,
             "refcount overflow frees linked item; chain self-loop (f1)"),
    StudyBug(10, "memcached", "ported", LOGIC, DATALOSS, TYPE_II,
             "flush_all at a future time expires valid items now (f2)"),
    StudyBug(11, "memcached", "ported", RACE, DATALOSS, TYPE_II,
             "bucket insert race loses a concurrent update (f3)"),
    StudyBug(12, "memcached", "ported", INT_OVERFLOW, CRASH, TYPE_II,
             "append length wraps; value spills over neighbour items (f4)"),
    StudyBug(13, "memcached", "ported", HW_FAULT, WRONG, TYPE_II,
             "bit flip in persisted rehashing flag misroutes lookups (f5)"),
    StudyBug(14, "memcached", "ported", LOGIC, CRASH, TYPE_I,
             "persisted item flags invalid; dereference on first access"),
    StudyBug(15, "memcached", "ported", MEM_LEAK, OOS, TYPE_III,
             "slab rebalance forgets to release evacuated pages"),
    StudyBug(16, "memcached", "ported", LOGIC, WRONG, TYPE_II,
             "CAS id persisted stale; conditional writes misjudged"),
    StudyBug(17, "memcached", "ported", RACE, CRASH, TYPE_II,
             "LRU crawler races eviction; persisted dangling prev pointer"),
    # -- ported Redis (11) -------------------------------------------------
    StudyBug(18, "redis", "ported", BUF_OVERFLOW, CRASH, TYPE_II,
             "listpack encoding for >4096B corrupts size; reads segfault (f6)"),
    StudyBug(19, "redis", "ported", LOGIC, CRASH, TYPE_I,
             "shared object refcount decremented twice; panic on access (f7)"),
    StudyBug(20, "redis", "ported", MEM_LEAK, LEAK, TYPE_III,
             "slowlog entries unlinked but never freed (f8)"),
    StudyBug(21, "redis", "ported", LOGIC, WRONG, TYPE_II,
             "expire bookkeeping persisted inconsistently with dict"),
    StudyBug(22, "redis", "ported", BUF_OVERFLOW, CORRUPTION, TYPE_II,
             "ziplist cascade update writes past reallocated region"),
    StudyBug(23, "redis", "ported", LOGIC, HANG, TYPE_I,
             "persisted cyclic quicklist node; iteration never ends"),
    StudyBug(24, "redis", "ported", RACE, WRONG, TYPE_I,
             "lazy-free race persists object flagged both live and dead"),
    StudyBug(25, "redis", "ported", LOGIC, LEAK, TYPE_III,
             "module data type forgets free hook for persisted values"),
    StudyBug(26, "redis", "ported", RACE, LEAK, TYPE_II,
             "racy cluster resharding skips cleanup of migrated slots"),
    StudyBug(27, "redis", "ported", LOGIC, OOS, TYPE_II,
             "AOF-rewrite scratch structures persisted and accumulated"),
    StudyBug(28, "redis", "ported", BUF_OVERFLOW, WRONG, TYPE_II,
             "sds header overflow yields wrong string length after reopen"),
]


# ----------------------------------------------------------------------
# aggregations (Tables/Figures of Section 2)
# ----------------------------------------------------------------------
def bugs_per_system() -> Dict[Tuple[str, str], int]:
    """Table 1: (system, origin) -> count."""
    counter: Counter = Counter((b.system, b.origin) for b in STUDY_BUGS)
    return dict(counter)


def root_cause_distribution() -> Dict[str, float]:
    """Figure 2: root cause -> percentage."""
    counter: Counter = Counter(b.root_cause for b in STUDY_BUGS)
    total = len(STUDY_BUGS)
    return {cause: 100.0 * n / total for cause, n in counter.most_common()}


def consequence_distribution() -> Dict[str, float]:
    """Figure 3: consequence -> percentage."""
    counter: Counter = Counter(b.consequence for b in STUDY_BUGS)
    total = len(STUDY_BUGS)
    return {cons: 100.0 * n / total for cons, n in counter.most_common()}


def propagation_distribution() -> Dict[str, float]:
    """Section 2.6: propagation type -> percentage."""
    counter: Counter = Counter(b.propagation for b in STUDY_BUGS)
    total = len(STUDY_BUGS)
    return {f"Type {t}": 100.0 * n / total for t, n in sorted(counter.items())}


def reproduced_family_distribution() -> Dict[str, Dict[str, int]]:
    """How the *reproduced* registry extends the studied failure space.

    The study's 28 bugs are all application-level hard faults; the
    fuzzer-discovered families (crash-consistency, kernel-pm) add the
    persistence-layer classes the follow-up literature catalogues.
    Returns family -> {"scenarios": n, "systems": distinct systems}.
    """
    from repro.faults.registry import scenarios_by_family

    return {
        family: {
            "scenarios": len(scenarios),
            "systems": len({s.system for s in scenarios}),
        }
        for family, scenarios in scenarios_by_family().items()
    }
