"""The 12 reproduced hard faults (paper Table 2).

Each :class:`FaultScenario` packages one real-world bug: how the workload
runs before it, how it is triggered, how the failure *manifests* (the
detector's observation), how a re-execution verifies the symptom is gone,
and what extra consistency obligations a recovery must meet.

The scenarios are written so the evaluation *shapes* of the paper emerge
mechanically rather than being hard-coded:

* corruptions sit dormant while unrelated updates accumulate (defeating
  time-ordered one-at-a-time reversion — ArCkpt times out),
* the two overflow faults (f4, f10) crash almost immediately (the only
  cases ArCkpt handles),
* triggers land mid-run, after pmCRIU snapshots exist (except the seeded
  early-trigger runs of f5/f8, pmCRIU's probabilistic cases),
* leaks (f8, f12) have no useful fault instruction and exercise the
  recovery-diff mitigation instead of slicing.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.errors import InjectedCrash
from repro.systems import ALL_ADAPTERS
from repro.workloads.generators import VALUE_BASE, Op, OpKind


class FaultScenario:
    """Base class: one reproduced hard fault."""

    fid = "f0"
    system = "none"
    fault = ""
    consequence = ""
    #: fault family: the seeded Table-2 reproductions are "table2"; the
    #: fuzzer registers "crash-consistency" and "kernel-pm" entries
    #: (see :mod:`repro.faults.fuzzed`)
    family = "table2"
    #: "trap" (crash/hang/panic), "dataloss" (failed checks) or "leak"
    kind = "trap"
    checksum_detectable = False
    pre_ops = 280
    post_ops = 260
    #: leak-monitor ratio used when kind == "leak"
    leak_ratio = 3.0
    #: workload mix: load-heavy before the trigger, serve-heavy after
    pre_mix = (0.85, 0.13)
    post_mix = (0.05, 0.90)

    # ------------------------------------------------------------------
    def adapter_cls(self):
        return ALL_ADAPTERS[self.system]

    def trigger_op_index(self, seed: int) -> int:
        """Operation index at which the trigger fires (default: half-way)."""
        return self.pre_ops

    def exclude_key(self, ctx, key: int) -> bool:
        """Keys the post-trigger workload must avoid (poisoned buckets)."""
        fn = ctx.state.get("exclude")
        return bool(fn and fn(key))

    # ------------------------------------------------------------------
    def apply_op(self, ctx, op: Op) -> None:
        """Apply one workload request and maintain the oracle."""
        if op.kind is OpKind.INSERT:
            ctx.adapter.insert(op.key, op.value)
            ctx.oracle[op.key] = op.value
        elif op.kind is OpKind.GET:
            ctx.adapter.lookup(op.key)
        else:
            ctx.adapter.delete(op.key)
            ctx.oracle.pop(op.key, None)

    def trigger(self, ctx) -> None:
        raise NotImplementedError

    def manifest(self, ctx) -> None:
        """Perform the action that exhibits the failure (traps escape).

        The default checks a stable sample of oracle keys through the
        system's guest-side check function — the paper's user-defined
        "inserted key/value items exist" check.
        """
        for key in ctx.sample_keys(6):
            ctx.adapter.check_key(key)

    def verify(self, ctx) -> None:
        """Re-execution symptom check: raise a Trap while symptom persists.

        The default re-runs the manifest action; scenarios narrow it to
        the originally failing symptom so that data legitimately
        discarded by a reversion is not miscounted as failure.
        """
        self.manifest(ctx)

    def extra_consistency(self, ctx) -> List[str]:
        """Scenario-specific semantic checks after a recovery."""
        return []

    def _update_existing(self, ctx, op: Op) -> None:
        """Rewrite a live, non-excluded key in place (steady-state noise)."""
        keys = [k for k in sorted(ctx.oracle) if not self.exclude_key(ctx, k)]
        if not keys:
            return
        key = keys[op.key % len(keys)]
        ctx.adapter.insert(key, op.value)
        ctx.oracle[key] = op.value


# ----------------------------------------------------------------------
# memcached
# ----------------------------------------------------------------------
class F1RefcountOverflow(FaultScenario):
    fid = "f1"
    system = "memcached"
    fault = "Refcount overflow"
    consequence = "Deadlock"
    kind = "trap"

    def trigger(self, ctx) -> None:
        adapter = ctx.adapter
        victim = min(ctx.oracle)
        # GETs wrap the 8-bit refcount around to 0 (no overflow check)
        for _ in range(256):
            if adapter.call("mc_refcount", adapter.root, victim) == 0:
                break
            adapter.lookup(victim)
        # the reaper frees refcount-0 items without unlinking them
        adapter.reap()
        ctx.oracle.pop(victim, None)
        # a re-insert reclaims the freed block; its chain pointer now
        # points at itself.  Key deltas are large powers of two so the
        # keys share a bucket whatever the table size grew to.
        poison = victim + (1 << 20) * 3
        adapter.insert(poison, VALUE_BASE + poison)
        ctx.oracle[poison] = VALUE_BASE + poison
        bucket = victim % 64
        ctx.state["bucket"] = bucket
        ctx.state["probe"] = victim + (1 << 20) * 5
        ctx.state["exclude"] = lambda key: key % 64 == bucket

    def manifest(self, ctx) -> None:
        # a GET for an absent key in the poisoned bucket walks the
        # self-loop forever
        ctx.adapter.lookup(ctx.state["probe"])

    def verify(self, ctx) -> None:
        assert ctx.adapter.lookup(ctx.state["probe"]) == -1
        for key in ctx.sample_keys(3, exclude=self.exclude_key_set(ctx)):
            ctx.adapter.check_key(key)

    def exclude_key_set(self, ctx):
        bucket = ctx.state.get("bucket", -1)
        return lambda key: key % 64 == bucket


class F2FlushAllLogic(FaultScenario):
    fid = "f2"
    system = "memcached"
    fault = "flush_all logic bug"
    consequence = "Data loss"
    kind = "dataloss"
    # after the trigger the traffic rewrites existing keys in place and
    # re-reads the (now missing) victims: plenty of unrelated updates for
    # time-ordered rollback to wade through, but no fresh allocations
    # that could reuse the wrongly freed victim blocks
    post_mix = (0.60, 0.35)

    def trigger(self, ctx) -> None:
        adapter = ctx.adapter
        # a *future* flush time should be scheduled; the bug applies it now
        now = adapter._root_field("m_time")
        adapter.flush_all(now + 100_000)
        victims = sorted(ctx.oracle)[:4]
        ctx.state["victims"] = victims
        # the post-trigger serving traffic touches the victims, lazily
        # (and wrongly) deleting them
        for key in victims:
            adapter.lookup(key)

    def apply_op(self, ctx, op: Op) -> None:
        victims = ctx.state.get("victims")
        if victims is None:
            super().apply_op(ctx, op)
            return
        # post-trigger: in-place rewrites of live keys plus re-reads of
        # the victims (which now miss)
        if op.kind is OpKind.INSERT and ctx.oracle:
            key = sorted(ctx.oracle)[op.key % len(ctx.oracle)]
            ctx.adapter.insert(key, op.value)
            ctx.oracle[key] = op.value
        else:
            ctx.adapter.lookup(victims[op.key % len(victims)])

    def manifest(self, ctx) -> None:
        for key in ctx.state["victims"]:
            ctx.adapter.check_key(key)

    def verify(self, ctx) -> None:
        for key in ctx.state["victims"]:
            ctx.adapter.check_key(key)


class F3HashtableRace(FaultScenario):
    fid = "f3"
    system = "memcached"
    fault = "Hashtable lock data race"
    consequence = "Data loss"
    kind = "dataloss"

    def trigger(self, ctx) -> None:
        adapter = ctx.adapter
        # a table expansion races with an insert: the buggy check-then-set
        # expansion lock admits the insert, which publishes into an
        # old-table bucket that has already been migrated.  When the
        # expansion swaps tables, the key becomes unreachable — but its
        # insert *was* persisted, into the old table.
        key = (1 << 20) * 7 + 64 * ctx.seed  # bucket 0 under any table size
        adapter.machine.call_concurrent(
            [
                ("mc_expand", (adapter.root,)),
                ("mc_set", (adapter.root, key, VALUE_BASE + key)),
            ],
            quantum=(2, 10),
        )
        lost = [key] if adapter.lookup(key) == -1 else []
        if not lost:
            ctx.oracle[key] = VALUE_BASE + key
        ctx.state["lost"] = lost
        ctx.state["exclude"] = lambda k: k % 64 == key % 64

    def manifest(self, ctx) -> None:
        for key in ctx.state["lost"]:
            ctx.adapter.check_key(key)

    def verify(self, ctx) -> None:
        for key in ctx.state["lost"]:
            ctx.adapter.check_key(key)


class F4AppendOverflow(FaultScenario):
    fid = "f4"
    system = "memcached"
    fault = "Integer overflow in append"
    consequence = "Segfault"
    kind = "trap"
    post_ops = 6  # the overflow crashes the next lookups almost immediately

    def trigger(self, ctx) -> None:
        # append 257 words: 1 + 257 wraps to 2 in the 8-bit length check
        victim = sorted(ctx.oracle)[len(ctx.oracle) // 2]
        ctx.adapter.append(victim, 257, 987_654_321)
        ctx.state["victim"] = victim

    def manifest(self, ctx) -> None:
        for key in sorted(ctx.oracle)[:48]:
            ctx.adapter.lookup(key)

    def verify(self, ctx) -> None:
        for key in sorted(ctx.oracle)[:48]:
            ctx.adapter.lookup(key)
        for key in ctx.sample_keys(3):
            ctx.adapter.check_key(key)


class F5RehashFlagBitflip(FaultScenario):
    fid = "f5"
    system = "memcached"
    fault = "Rehashing flag bit flip"
    consequence = "Data loss"
    kind = "dataloss"
    checksum_detectable = True

    def trigger_op_index(self, seed: int) -> int:
        if seed == 0:
            return self.pre_ops
        # hardware faults strike at a random time; seeds spread the flip
        # across the run (pmCRIU's probabilistic case)
        rng = random.Random(seed * 1_000_003)
        return rng.randrange(30, self.pre_ops + self.post_ops - 30)

    def trigger(self, ctx) -> None:
        adapter = ctx.adapter
        offset = adapter.STRUCTS["mroot"].index("m_rehashing")
        addr = adapter.root + offset
        flipped = adapter.pool.durable_read(addr) ^ 1
        adapter.pool.durable_write(addr, flipped)

    def manifest(self, ctx) -> None:
        for key in ctx.sample_keys(4):
            ctx.adapter.check_key(key)

    def verify(self, ctx) -> None:
        for key in ctx.sample_keys(4):
            ctx.adapter.check_key(key)


# ----------------------------------------------------------------------
# redis
# ----------------------------------------------------------------------
class F6ListpackOverflow(FaultScenario):
    fid = "f6"
    system = "redis"
    fault = "Listpack buffer overflow"
    consequence = "Segfault"
    kind = "trap"
    # post-trigger traffic keeps rewriting existing keys in place, piling
    # up updates between the dormant corruption and its manifestation
    post_mix = (0.45, 0.50)
    post_ops = 400

    def apply_op(self, ctx, op: Op) -> None:
        if op.kind is OpKind.INSERT and ctx.state.get("lp_a") and ctx.oracle:
            self._update_existing(ctx, op)
            return
        super().apply_op(ctx, op)

    def trigger(self, ctx) -> None:
        adapter = ctx.adapter
        # lp_a is allocated, then lp_b right after it in the heap; the
        # oversized element (1 + 300 wraps past the capacity check)
        # spills out of lp_a across lp_b's header
        lp_a = 500_000 + ctx.seed
        lp_b = lp_a + 1
        adapter.lpush(lp_a, 3, 7)
        adapter.lpush(lp_b, 3, 11)
        adapter.lpush(lp_b, 2, 13)
        adapter.lpush(lp_a, 300, 987_654_321)
        ctx.state["lp_a"] = lp_a
        ctx.state["lp_b"] = lp_b
        # the spill also trashes the dict entries of both listpacks, so
        # their whole hash buckets are poisoned until recovery
        buckets = {lp_a % 64, lp_b % 64}
        ctx.state["exclude"] = lambda key: key % 64 in buckets

    def manifest(self, ctx) -> None:
        # reading the corrupted listpack chases a huge bogus length
        ctx.adapter.lrange(ctx.state["lp_b"])

    def verify(self, ctx) -> None:
        total = ctx.adapter.lrange(ctx.state["lp_b"])
        assert total in (-1, 11 * 3 + 13 * 2), f"listpack sum {total}"
        for key in ctx.sample_keys(3):
            ctx.adapter.check_key(key)


class F7RefcountLogic(FaultScenario):
    fid = "f7"
    system = "redis"
    fault = "Logic bug in refcount"
    consequence = "Server panic"
    kind = "trap"
    # the post phase rewrites existing keys in place (no allocations), so
    # the prematurely freed object is not silently reused before detection
    post_mix = (0.45, 0.50)

    def trigger(self, ctx) -> None:
        adapter = ctx.adapter
        src = 700_000 + ctx.seed
        shared = src + 1
        adapter.insert(src, VALUE_BASE + src)
        adapter.copy(shared, src)  # object now shared, refcount 2
        adapter.getset(src, VALUE_BASE + src + 7)  # double-decrements
        ctx.oracle[src] = VALUE_BASE + src + 7
        ctx.state["shared"] = shared
        ctx.state["shared_value"] = VALUE_BASE + src
        ctx.state["exclude"] = lambda key: key in (src, shared)

    def apply_op(self, ctx, op: Op) -> None:
        # steady-state value updates over existing keys
        if op.kind is OpKind.INSERT and ctx.state.get("shared") and ctx.oracle:
            self._update_existing(ctx, op)
            return
        super().apply_op(ctx, op)

    def manifest(self, ctx) -> None:
        ctx.adapter.lookup(ctx.state["shared"])

    def verify(self, ctx) -> None:
        # the symptom is the panic; a clean miss (the key discarded by a
        # coarse rollback) is an acceptable recovery
        ctx.adapter.lookup(ctx.state["shared"])

    def extra_consistency(self, ctx) -> List[str]:
        value = ctx.adapter.lookup(ctx.state["shared"])
        if value not in (-1, ctx.state["shared_value"]):
            return [
                f"shared key returns {value}, expected {ctx.state['shared_value']}"
                " (object block reused after un-reverted free)"
            ]
        return []


class F8SlowlogLeak(FaultScenario):
    fid = "f8"
    system = "redis"
    fault = "slowlogEntry leak"
    consequence = "Persistent leak"
    kind = "leak"
    leak_ratio = 1.25

    def trigger_op_index(self, seed: int) -> int:
        if seed == 0:
            return self.pre_ops
        rng = random.Random(seed * 2_000_003)
        return rng.randrange(20, self.pre_ops + 40)

    def apply_op(self, ctx, op: Op) -> None:
        super().apply_op(ctx, op)
        # slow commands arrive steadily; the trim leaks what it unlinks
        if ctx.op_index % 3 == 0:
            ctx.adapter.slow_op(100 + ctx.op_index)

    def trigger(self, ctx) -> None:
        # a burst of slow commands (e.g. an expensive scan pattern)
        for i in range(120):
            ctx.adapter.slow_op(5000 + i)

    def manifest(self, ctx) -> None:  # pragma: no cover - leak path
        pass  # leaks are detected by the usage monitor, not an action

    def verify(self, ctx) -> None:
        for key in ctx.sample_keys(3):
            ctx.adapter.check_key(key)


# ----------------------------------------------------------------------
# cceh
# ----------------------------------------------------------------------
class F9DirectoryDoubling(FaultScenario):
    fid = "f9"
    system = "cceh"
    fault = "Directory doubling bug"
    consequence = "Infinite loop"
    kind = "trap"
    pre_mix = (0.9, 0.1)
    post_mix = (0.45, 0.50)

    def apply_op(self, ctx, op: Op) -> None:
        # post-trigger traffic rewrites existing keys (the update path is
        # safe: it finds the key before the full-segment check)
        if op.kind is OpKind.INSERT and ctx.state.get("stuck") and ctx.oracle:
            self._update_existing(ctx, op)
            return
        super().apply_op(ctx, op)

    def trigger(self, ctx) -> None:
        adapter = ctx.adapter
        iid = adapter.double_crash_iid()

        def crash(machine, thread, instr):
            raise InjectedCrash(
                "untimely crash before global-depth update",
                location=instr.location(),
            )

        adapter.machine.add_injection(iid, crash)
        key = max(ctx.oracle) + 1
        stuck = None
        for _ in range(600):
            try:
                adapter.insert(key, VALUE_BASE + key)
                ctx.oracle[key] = VALUE_BASE + key
                key += 1
            except InjectedCrash:
                stuck = key
                break
        assert stuck is not None, "directory doubling never triggered"
        # process restart: the injection dies with the machine
        adapter.restart()
        adapter.recover()
        gd = adapter.pool.read(adapter.root + adapter.STRUCTS["ccroot"].index("cc_gd"))
        mask = (1 << gd) - 1
        ctx.state["stuck"] = stuck
        ctx.state["exclude"] = lambda k, m=mask, s=stuck: (k & m) == (s & m)

    def manifest(self, ctx) -> None:
        stuck = ctx.state["stuck"]
        ctx.adapter.insert(stuck, VALUE_BASE + stuck)

    def verify(self, ctx) -> None:
        stuck = ctx.state["stuck"]
        assert ctx.adapter.insert(stuck, VALUE_BASE + stuck) == 1
        assert ctx.adapter.lookup(stuck) == VALUE_BASE + stuck
        # growth must work again: push enough same-segment keys through to
        # force a split (and, at max depth, a directory doubling) — a
        # recovery that merely made room while leaving the doubling
        # metadata broken hangs here and does not count
        gd = ctx.adapter.pool.read(
            ctx.adapter.root + ctx.adapter.STRUCTS["ccroot"].index("cc_gd")
        )
        for j in range(1, 6):
            ctx.adapter.insert(stuck + (1 << gd) * j * 524_287, 77 + j)
        for key in ctx.sample_keys(3):
            ctx.adapter.check_key(key)


# ----------------------------------------------------------------------
# pelikan
# ----------------------------------------------------------------------
class F10ValueLengthOverflow(FaultScenario):
    fid = "f10"
    system = "pelikan"
    fault = "Value length overflow"
    consequence = "Segfault"
    kind = "trap"
    post_ops = 6  # crashes the next lookups almost immediately

    def trigger(self, ctx) -> None:
        victim = sorted(ctx.oracle)[len(ctx.oracle) // 2]
        ctx.adapter.set_value(victim, 260, 987_654_321)
        ctx.state["victim"] = victim

    def manifest(self, ctx) -> None:
        for key in sorted(ctx.oracle)[:48]:
            ctx.adapter.lookup(key)

    def verify(self, ctx) -> None:
        for key in sorted(ctx.oracle)[:48]:
            ctx.adapter.lookup(key)
        for key in ctx.sample_keys(3):
            ctx.adapter.check_key(key)


class F11NullStats(FaultScenario):
    fid = "f11"
    system = "pelikan"
    fault = "Null stats response"
    consequence = "Segfault"
    kind = "trap"

    def trigger(self, ctx) -> None:
        # reset frees the stats block and persists a null pointer; the
        # lazy re-allocation it relies on was never implemented
        ctx.adapter.stats_reset()

    def manifest(self, ctx) -> None:
        ctx.adapter.stats_cmd()

    def verify(self, ctx) -> None:
        ctx.adapter.stats_cmd()
        for key in ctx.sample_keys(3):
            ctx.adapter.check_key(key)


# ----------------------------------------------------------------------
# pmemkv
# ----------------------------------------------------------------------
class F12AsyncLazyFree(FaultScenario):
    fid = "f12"
    system = "pmemkv"
    fault = "Asynchronous lazy free"
    consequence = "Persistent leak"
    kind = "leak"
    leak_ratio = 1.3
    post_mix = (0.35, 0.60)

    def apply_op(self, ctx, op: Op) -> None:
        super().apply_op(ctx, op)
        # in normal operation the background thread drains regularly
        if ctx.op_index % 50 == 49:
            ctx.adapter.drain()

    def trigger(self, ctx) -> None:
        adapter = ctx.adapter
        victims = sorted(ctx.oracle)[:120]
        for key in victims:
            adapter.delete(key)
            ctx.oracle.pop(key, None)
        # crash before the asynchronous free thread runs: the unlinked
        # blocks stay allocated in PM forever
        adapter.restart()
        adapter.recover()

    def manifest(self, ctx) -> None:  # pragma: no cover - leak path
        pass

    def verify(self, ctx) -> None:
        for key in ctx.sample_keys(3):
            ctx.adapter.check_key(key)


#: the hand-written Table-2 reproductions
TABLE2_SCENARIOS: List[FaultScenario] = [
    F1RefcountOverflow(),
    F2FlushAllLogic(),
    F3HashtableRace(),
    F4AppendOverflow(),
    F5RehashFlagBitflip(),
    F6ListpackOverflow(),
    F7RefcountLogic(),
    F8SlowlogLeak(),
    F9DirectoryDoubling(),
    F10ValueLengthOverflow(),
    F11NullStats(),
    F12AsyncLazyFree(),
]

# imported here, after FaultScenario exists, because fuzzed.py subclasses
# it (deliberate late import to close the module cycle)
from repro.faults.fuzzed import build_fuzzed_scenarios  # noqa: E402

#: every registered scenario: Table 2 plus the fuzzer discoveries (f13+)
ALL_SCENARIOS: List[FaultScenario] = TABLE2_SCENARIOS + build_fuzzed_scenarios()

_BY_ID: Dict[str, FaultScenario] = {s.fid: s for s in ALL_SCENARIOS}


def scenario_by_id(fid: str) -> FaultScenario:
    return _BY_ID[fid]


def scenarios_by_family() -> Dict[str, List[FaultScenario]]:
    """Registered scenarios grouped by fault family, fid-ordered."""
    out: Dict[str, List[FaultScenario]] = {}
    for scenario in ALL_SCENARIOS:
        out.setdefault(scenario.family, []).append(scenario)
    return out
