"""Fault scenarios (Table 2) and the empirical-study dataset (Section 2).

* :mod:`repro.faults.registry` — the 12 reproduced hard faults f1-f12,
  each with its trigger, manifestation, symptom verification and
  consistency checks.
* :mod:`repro.faults.study` — the 28-bug empirical study: root causes
  (Figure 2), consequences (Figure 3), propagation types (Section 2.6)
  and per-system counts (Table 1).
"""

from repro.faults.registry import ALL_SCENARIOS, FaultScenario, scenario_by_id
from repro.faults.study import STUDY_BUGS, StudyBug

__all__ = [
    "FaultScenario",
    "ALL_SCENARIOS",
    "scenario_by_id",
    "StudyBug",
    "STUDY_BUGS",
]
