"""Call graph construction.

PMLang has no function pointers (unlike C), so every edge is direct; the
module still mirrors the paper's pipeline stage and provides the reverse
graph and reachability queries the PDG and reactor use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.lang.ir import Module


@dataclass
class CallGraph:
    """callers/callees per function plus call-site lists."""

    #: function -> set of functions it calls
    callees: Dict[str, Set[str]] = field(default_factory=dict)
    #: function -> set of functions calling it
    callers: Dict[str, Set[str]] = field(default_factory=dict)
    #: callee function -> list of call-site instruction ids
    call_sites: Dict[str, List[int]] = field(default_factory=dict)

    def reachable_from(self, root: str) -> Set[str]:
        """All functions transitively callable from ``root``."""
        seen: Set[str] = set()
        stack = [root]
        while stack:
            fname = stack.pop()
            if fname in seen:
                continue
            seen.add(fname)
            stack.extend(self.callees.get(fname, ()))
        return seen


def build_callgraph(module: Module) -> CallGraph:
    """Collect caller/callee relations and call sites for a module."""
    graph = CallGraph()
    for fname in module.functions:
        graph.callees[fname] = set()
        graph.callers.setdefault(fname, set())
        graph.call_sites.setdefault(fname, [])
    for func in module.functions.values():
        for instr in func.instructions():
            if instr.op != "call":
                continue
            target = instr.args[0]
            graph.callees[func.name].add(target)
            graph.callers.setdefault(target, set()).add(func.name)
            graph.call_sites.setdefault(target, []).append(instr.iid)
    return graph
