"""Program slicing over the PDG (Weiser-style backward slices).

The reactor slices the fault instruction and keeps only nodes with
persistent-memory operands (paper Section 4.5); the slice is then joined
against the runtime PM-address trace to find checkpoint entries.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.pdg import PDG
from repro.analysis.pmvars import PMClassification


def backward_slice(
    pdg: PDG, iid: int, max_nodes: Optional[int] = None
) -> Set[int]:
    """All instructions that may affect ``iid`` (including itself).

    ``max_nodes`` implements the paper's analysis timeout: when the slice
    grows past the limit, exploration stops and the partial (still useful,
    possibly incomplete) slice is returned.
    """
    seen: Set[int] = {iid}
    stack = [iid]
    while stack:
        node = stack.pop()
        for dep, _kind in pdg.dependencies_of(node):
            if dep not in seen:
                seen.add(dep)
                stack.append(dep)
                if max_nodes is not None and len(seen) >= max_nodes:
                    return seen
    return seen


def forward_slice(
    pdg: PDG, iid: int, max_nodes: Optional[int] = None
) -> Set[int]:
    """All instructions ``iid`` may affect (purge-mode second pass)."""
    seen: Set[int] = {iid}
    stack = [iid]
    while stack:
        node = stack.pop()
        for dep, _kind in pdg.dependents_of(node):
            if dep not in seen:
                seen.add(dep)
                stack.append(dep)
                if max_nodes is not None and len(seen) >= max_nodes:
                    return seen
    return seen


def pm_slice(
    pdg: PDG,
    pm: PMClassification,
    iid: int,
    max_nodes: Optional[int] = None,
) -> Set[int]:
    """Backward slice filtered to PM instructions."""
    return {
        node
        for node in backward_slice(pdg, iid, max_nodes)
        if pm.is_pm_instr(node)
    }


def slice_distances(pdg: PDG, iid: int) -> Dict[int, int]:
    """BFS distance of every slice node from the fault instruction.

    Supports the paper's "complex policy function" that orders candidate
    sequence numbers by slice distance and caps the maximum distance.
    """
    dist: Dict[int, int] = {iid: 0}
    frontier = [iid]
    while frontier:
        nxt = []
        for node in frontier:
            for dep, _kind in pdg.dependencies_of(node):
                if dep not in dist:
                    dist[dep] = dist[node] + 1
                    nxt.append(dep)
        frontier = nxt
    return dist
