"""Program slicing over the PDG (Weiser-style backward slices).

The reactor slices the fault instruction and keeps only nodes with
persistent-memory operands (paper Section 4.5); the slice is then joined
against the runtime PM-address trace to find checkpoint entries.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.pdg import PDG
from repro.analysis.pmvars import PMClassification


def backward_slice(
    pdg: PDG, iid: int, max_nodes: Optional[int] = None
) -> Set[int]:
    """All instructions that may affect ``iid`` (including itself).

    ``max_nodes`` implements the paper's analysis timeout: when the slice
    grows past the limit, exploration stops and the partial (still useful,
    possibly incomplete) slice is returned.

    Slices are memoized on the PDG (keyed by ``(iid, max_nodes)``):
    detector/reactor rounds and the purge->rollback fallback re-slice the
    same fault up to 8x per mitigation, and the graph never changes after
    analysis (``add_edge`` invalidates).  A fresh mutable set is returned
    on every call.
    """
    key = (iid, max_nodes)
    cached = pdg._slice_cache.get(key)
    if cached is None:
        cached = frozenset(_walk_backward(pdg, iid, max_nodes))
        pdg._slice_cache[key] = cached
    return set(cached)


def _walk_backward(pdg: PDG, iid: int, max_nodes: Optional[int]) -> Set[int]:
    seen: Set[int] = {iid}
    stack = [iid]
    while stack:
        node = stack.pop()
        for dep, _kind in pdg.dependencies_of(node):
            if dep not in seen:
                seen.add(dep)
                stack.append(dep)
                if max_nodes is not None and len(seen) >= max_nodes:
                    return seen
    return seen


def forward_slice(
    pdg: PDG, iid: int, max_nodes: Optional[int] = None
) -> Set[int]:
    """All instructions ``iid`` may affect (purge-mode second pass)."""
    seen: Set[int] = {iid}
    stack = [iid]
    while stack:
        node = stack.pop()
        for dep, _kind in pdg.dependents_of(node):
            if dep not in seen:
                seen.add(dep)
                stack.append(dep)
                if max_nodes is not None and len(seen) >= max_nodes:
                    return seen
    return seen


def pm_slice(
    pdg: PDG,
    pm: PMClassification,
    iid: int,
    max_nodes: Optional[int] = None,
) -> Set[int]:
    """Backward slice filtered to PM instructions."""
    return {
        node
        for node in backward_slice(pdg, iid, max_nodes)
        if pm.is_pm_instr(node)
    }


def slice_distances(pdg: PDG, iid: int) -> Dict[int, int]:
    """BFS distance of every slice node from the fault instruction.

    Supports the paper's "complex policy function" that orders candidate
    sequence numbers by slice distance and caps the maximum distance.

    Memoized on the PDG per fault iid — the distance policy recomputes
    the same BFS on every plan request of a multi-round mitigation.  A
    fresh dict is returned on every call.
    """
    cached = pdg._dist_cache.get(iid)
    if cached is None:
        cached = {iid: 0}
        frontier = [iid]
        while frontier:
            nxt = []
            for node in frontier:
                for dep, _kind in pdg.dependencies_of(node):
                    if dep not in cached:
                        cached[dep] = cached[node] + 1
                        nxt.append(dep)
            frontier = nxt
        pdg._dist_cache[iid] = cached
    return dict(cached)
