"""PM variable and instruction identification (paper Section 4.1).

Starting from the API points that *create* persistent pointers
(``pm_alloc``, ``pm_realloc``, ``get_root``), the points-to analysis
already computed the transitive closure of everything those pointers can
flow into — including through loads/stores, calls and pointer arithmetic.
This module projects that closure onto:

* **PM registers** — registers that may hold a persistent address, and
* **PM instructions** — instructions that create or access PM: the set the
  instrumentation pass assigns trace GUIDs to and the slicer retains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set, Tuple

from repro.analysis.pointer import PointsToResult
from repro.lang.ir import Instr, Module

#: ops whose first operand is a pointer being dereferenced/persisted
_PTR_ACCESS_OPS = frozenset(
    {"load", "store", "gep", "persist", "flush", "txadd", "free"}
)

#: ops that create persistent pointers outright
_PM_CREATE_OPS = frozenset({"getroot", "setroot"})


@dataclass
class PMClassification:
    """Result of PM variable/instruction identification."""

    #: (func, reg) pairs that may hold a PM address
    pm_registers: Set[Tuple[str, str]] = field(default_factory=set)
    #: instruction ids that create or access PM
    pm_instr_iids: Set[int] = field(default_factory=set)

    def is_pm_instr(self, iid: int) -> bool:
        """True when the instruction creates or accesses persistent memory."""
        return iid in self.pm_instr_iids

    def is_pm_register(self, func: str, reg: str) -> bool:
        """True when the register may hold a persistent address."""
        return (func, reg) in self.pm_registers


def classify_pm(module: Module, points_to: PointsToResult) -> PMClassification:
    """Classify every register and instruction of a module."""
    result = PMClassification()
    for func in module.functions.values():
        seen_regs: Set[str] = set()
        for instr in func.instructions():
            regs = set(instr.uses())
            if instr.dst is not None:
                regs.add(instr.dst)
            for reg in regs - seen_regs:
                if points_to.is_pm_pointer(func.name, reg):
                    result.pm_registers.add((func.name, reg))
                    seen_regs.add(reg)
            if _is_pm_instr(func.name, instr, points_to):
                result.pm_instr_iids.add(instr.iid)
    return result


def _is_pm_instr(fname: str, instr: Instr, points_to: PointsToResult) -> bool:
    op = instr.op
    if op == "alloc":
        return instr.args[1] == "pm"
    if op == "realloc":
        return True
    if op in _PM_CREATE_OPS:
        return True
    if op in _PTR_ACCESS_OPS:
        return points_to.is_pm_pointer(fname, instr.args[0])
    return False
