"""Andersen-style, field-sensitive points-to analysis.

Abstract memory locations are ``(site, offset)`` pairs where ``site`` is an
allocation-site instruction id (``alloc``/``realloc``) or the special pool
root cell, and ``offset`` is a word offset within the object or ``TOP``
(unknown — produced by array indexing and raw pointer arithmetic).

The inclusion constraints are the standard ones::

    alloc   d            pts(d)  ∋ (site_d, 0)
    mov     d, s         pts(d)  ⊇ pts(s)
    gep     d, b, k      pts(d)  ⊇ { (s, o+k) | (s, o) ∈ pts(b) }
    load    d, p         pts(d)  ⊇ ⋃ { heap(l) | l ∈ pts(p) }
    store   p, v         heap(l) ⊇ pts(v)   for l ∈ pts(p)
    call/ret             copy constraints between args/params/returns

The analysis is context-insensitive (the paper's is context-sensitive;
the difference only widens slices, it never misses a dependency) and
flow-insensitive over the heap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lang.ir import Module

#: sentinel offset for "somewhere in the object"
TOP = -1

#: the pool-root cell is modelled as a one-word pseudo allocation site
ROOT_SITE = -2

Loc = Tuple[int, int]  # (site, offset)


def _varkey(func: str, reg: str) -> str:
    return f"{func}::{reg}"


@dataclass
class PointsToResult:
    """Solved points-to sets plus per-instruction memory footprints."""

    #: variable key -> set of locations
    pts: Dict[str, Set[Loc]] = field(default_factory=dict)
    #: allocation site -> "pm" | "vol"
    site_space: Dict[int, str] = field(default_factory=dict)
    #: memory locations each load reads (load iid -> locs)
    load_locs: Dict[int, FrozenSet[Loc]] = field(default_factory=dict)
    #: memory locations each store-like instr writes (iid -> locs)
    store_locs: Dict[int, FrozenSet[Loc]] = field(default_factory=dict)
    #: solver iterations until fixpoint (reported in Table 9 context)
    iterations: int = 0

    def pts_of(self, func: str, reg: str) -> Set[Loc]:
        """The points-to set of one register."""
        return self.pts.get(_varkey(func, reg), set())

    def is_pm_site(self, site: int) -> bool:
        """True when an allocation site lives in persistent memory."""
        return site == ROOT_SITE or self.site_space.get(site) == "pm"

    def is_pm_pointer(self, func: str, reg: str) -> bool:
        """May this register hold a persistent-memory address?"""
        return any(self.is_pm_site(site) for site, _off in self.pts_of(func, reg))

    @staticmethod
    def locs_overlap(a: Loc, b: Loc) -> bool:
        return a[0] == b[0] and (a[1] == b[1] or a[1] == TOP or b[1] == TOP)


class _Heap:
    """heap(site, offset) -> set of Locs, with a TOP bucket per site."""

    def __init__(self) -> None:
        self._cells: Dict[int, Dict[int, Set[Loc]]] = {}

    def read(self, loc: Loc) -> Set[Loc]:
        site, off = loc
        buckets = self._cells.get(site)
        if buckets is None:
            return set()
        if off == TOP:
            out: Set[Loc] = set()
            for vals in buckets.values():
                out |= vals
            return out
        return buckets.get(off, set()) | buckets.get(TOP, set())

    def write(self, loc: Loc, values: Set[Loc]) -> bool:
        if not values:
            return False
        site, off = loc
        bucket = self._cells.setdefault(site, {}).setdefault(off, set())
        before = len(bucket)
        bucket |= values
        return len(bucket) != before

    def site_contents(self, site: int) -> Set[Loc]:
        out: Set[Loc] = set()
        for vals in self._cells.get(site, {}).values():
            out |= vals
        return out


def _shift(locs: Set[Loc], offset: int, indexed: bool) -> Set[Loc]:
    out: Set[Loc] = set()
    for site, off in locs:
        if indexed or off == TOP:
            out.add((site, TOP))
        else:
            out.add((site, off + offset))
    return out


def _weaken(locs: Set[Loc]) -> Set[Loc]:
    return {(site, TOP) for site, _off in locs}


def analyze_pointers(module: Module, max_iterations: int = 200) -> PointsToResult:
    """Solve the inclusion constraints to a fixpoint."""
    result = PointsToResult()
    pts = result.pts
    heap = _Heap()

    # returns per function, for call/ret copy constraints
    ret_regs: Dict[str, List[Tuple[str, str]]] = {}
    for fname, func in module.functions.items():
        regs = []
        for instr in func.instructions():
            if instr.op == "ret" and instr.args[0] is not None:
                regs.append((fname, instr.args[0]))
            if instr.op == "alloc":
                result.site_space[instr.iid] = instr.args[1]
            if instr.op == "realloc":
                result.site_space[instr.iid] = "pm"
        ret_regs[fname] = regs

    def get(func: str, reg: str) -> Set[Loc]:
        return pts.get(_varkey(func, reg), set())

    def add(func: str, reg: str, values: Set[Loc]) -> bool:
        if not values:
            return False
        key = _varkey(func, reg)
        bucket = pts.setdefault(key, set())
        before = len(bucket)
        bucket |= values
        return len(bucket) != before

    instrs = [(f.name, i) for f in module.functions.values() for i in f.instructions()]

    changed = True
    iteration = 0
    while changed and iteration < max_iterations:
        changed = False
        iteration += 1
        for fname, instr in instrs:
            op = instr.op
            if op == "alloc":
                changed |= add(fname, instr.dst, {(instr.iid, 0)})
            elif op == "realloc":
                changed |= add(fname, instr.dst, {(instr.iid, 0)})
                # contents of the old block may flow into the new one
                for site, _off in get(fname, instr.args[0]):
                    changed |= heap.write((instr.iid, TOP), heap.site_contents(site))
            elif op == "mov":
                changed |= add(fname, instr.dst, get(fname, instr.args[0]))
            elif op == "gep":
                base, offset, index, _scale = instr.args
                locs = _shift(get(fname, base), offset, indexed=index is not None)
                changed |= add(fname, instr.dst, locs)
            elif op == "load":
                incoming: Set[Loc] = set()
                for loc in get(fname, instr.args[0]):
                    incoming |= heap.read(loc)
                changed |= add(fname, instr.dst, incoming)
            elif op == "store":
                values = get(fname, instr.args[1])
                for loc in get(fname, instr.args[0]):
                    changed |= heap.write(loc, values)
            elif op == "binop":
                merged = _weaken(get(fname, instr.args[1]) | get(fname, instr.args[2]))
                changed |= add(fname, instr.dst, merged)
            elif op == "unop":
                changed |= add(fname, instr.dst, _weaken(get(fname, instr.args[1])))
            elif op == "call":
                target, arg_regs = instr.args
                callee = module.functions[target]
                for param, arg in zip(callee.params, arg_regs):
                    changed |= add(target, param, get(fname, arg))
                if instr.dst is not None:
                    for rf, rr in ret_regs[target]:
                        changed |= add(fname, instr.dst, get(rf, rr))
            elif op == "setroot":
                changed |= heap.write(
                    (ROOT_SITE, 0), get(fname, instr.args[0])
                )
            elif op == "getroot":
                changed |= add(fname, instr.dst, heap.read((ROOT_SITE, 0)))
    result.iterations = iteration

    # per-instruction memory footprints for the PDG's memory data deps
    for fname, instr in instrs:
        if instr.op == "load":
            result.load_locs[instr.iid] = frozenset(get(fname, instr.args[0]))
        elif instr.op == "store":
            result.store_locs[instr.iid] = frozenset(get(fname, instr.args[0]))
        elif instr.op in ("alloc", "realloc"):
            # zero-initialisation defines the whole object
            result.store_locs[instr.iid] = frozenset({(instr.iid, TOP)})
    return result
