"""Control-flow graphs, dominators, post-dominators, control dependence.

Control dependence follows Ferrante/Ottenstein/Warren (the PDG paper the
authors cite): block ``B`` is control-dependent on the terminator of block
``A`` iff ``A`` has a successor from which ``B`` is reachable without
passing through ``B``'s post-dominators — computed here via the classic
"walk up the post-dominator tree from each CFG edge" formulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.lang.ir import Function

#: virtual exit node label used for post-dominance
VIRTUAL_EXIT = "<exit>"


class FunctionCFG:
    """Block-level CFG of one function with dominance information."""

    def __init__(self, func: Function):
        self.func = func
        self.succs: Dict[str, Tuple[str, ...]] = {}
        self.preds: Dict[str, List[str]] = {label: [] for label in func.block_order}
        for label in func.block_order:
            succs = func.blocks[label].successors()
            self.succs[label] = succs
            for s in succs:
                self.preds[s].append(label)
        self._ipdom: Optional[Dict[str, Optional[str]]] = None

    # ------------------------------------------------------------------
    def reachable_blocks(self) -> Set[str]:
        """Blocks reachable from the entry block."""
        seen: Set[str] = set()
        stack = [self.func.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.succs[label])
        return seen

    # ------------------------------------------------------------------
    def immediate_postdominators(self) -> Dict[str, Optional[str]]:
        """ipdom of each block over the reversed CFG with a virtual exit.

        Every ``ret`` block gets an edge to the virtual exit; so does every
        block with no successors at all, so statically infinite loops do
        not wedge the fixpoint.
        """
        if self._ipdom is not None:
            return self._ipdom
        blocks = list(self.func.block_order) + [VIRTUAL_EXIT]
        # reversed-graph successors = CFG predecessors (+ exit wiring)
        rsuccs: Dict[str, List[str]] = {b: [] for b in blocks}
        rpreds: Dict[str, List[str]] = {b: [] for b in blocks}
        for label in self.func.block_order:
            targets = list(self.succs[label])
            if not targets:
                targets = [VIRTUAL_EXIT]
            for t in targets:
                rsuccs[t].append(label)
                rpreds[label].append(t)
        # iterative dominator algorithm (Cooper/Harvey/Kennedy) on the
        # reversed graph, rooted at the virtual exit
        order = self._rpo(rsuccs, VIRTUAL_EXIT)
        index = {b: i for i, b in enumerate(order)}
        ipdom: Dict[str, Optional[str]] = {b: None for b in blocks}
        ipdom[VIRTUAL_EXIT] = VIRTUAL_EXIT
        changed = True
        while changed:
            changed = False
            for b in order:
                if b == VIRTUAL_EXIT:
                    continue
                candidates = [p for p in rpreds[b] if ipdom[p] is not None]
                if not candidates:
                    continue
                new = candidates[0]
                for p in candidates[1:]:
                    new = self._intersect(new, p, ipdom, index)
                if ipdom[b] != new:
                    ipdom[b] = new
                    changed = True
        ipdom[VIRTUAL_EXIT] = None
        self._ipdom = ipdom
        return ipdom

    @staticmethod
    def _rpo(succs: Dict[str, List[str]], root: str) -> List[str]:
        seen: Set[str] = set()
        post: List[str] = []

        def visit(node: str) -> None:
            stack = [(node, iter(succs[node]))]
            seen.add(node)
            while stack:
                cur, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(succs[nxt])))
                        advanced = True
                        break
                if not advanced:
                    post.append(cur)
                    stack.pop()

        visit(root)
        return list(reversed(post))

    @staticmethod
    def _intersect(
        a: str, b: str, idom: Dict[str, Optional[str]], index: Dict[str, int]
    ) -> str:
        while a != b:
            while index.get(a, 1 << 30) > index.get(b, 1 << 30):
                a = idom[a]  # type: ignore[assignment]
            while index.get(b, 1 << 30) > index.get(a, 1 << 30):
                b = idom[b]  # type: ignore[assignment]
        return a

    # ------------------------------------------------------------------
    def control_dependences(self) -> Dict[str, Set[str]]:
        """Map block -> set of blocks whose *terminator* it depends on.

        For each CFG edge (A -> B) where B does not post-dominate A, every
        block on the post-dominator-tree path from B up to (but excluding)
        ipdom(A) is control-dependent on A.
        """
        ipdom = self.immediate_postdominators()
        result: Dict[str, Set[str]] = {b: set() for b in self.func.block_order}
        for a in self.func.block_order:
            succs = self.succs[a]
            if len(succs) < 2:
                continue  # only conditional branches create control deps
            stop = ipdom.get(a)
            for b in succs:
                runner: Optional[str] = b
                while runner is not None and runner != stop and runner != VIRTUAL_EXIT:
                    result.setdefault(runner, set()).add(a)
                    runner = ipdom.get(runner)
        return result
