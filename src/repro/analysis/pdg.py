"""Inter-procedural Program Dependence Graph (paper Section 4.1, step ❷).

Nodes are instruction ids; an edge ``u -> v`` (stored backward, as
``deps[v] ∋ (u, kind)``) means *v depends on u*.  Edge kinds:

``data``
    register def-use, from reaching definitions
``mem``
    load may read what a store (or zero-initialising alloc) wrote,
    from the points-to footprints
``control``
    instruction executes only if a conditional branch goes a certain way
    (Ferrante et al. control dependence)
``call``
    dependence of a callee instruction on its call sites: parameter flow
    and calling context
``ret``
    a call's result depends on the callee's return instructions

A backward slice is reverse reachability over these edges; the forward
map supports the purge mode's forward-dependency second pass
(Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import FunctionCFG
from repro.analysis.defuse import compute_defuse, is_param_def
from repro.analysis.pointer import TOP, PointsToResult
from repro.lang.ir import Module


@dataclass
class PDG:
    """The dependence graph with backward and forward adjacency."""

    #: v -> set of (u, kind): v depends on u
    deps: Dict[int, Set[Tuple[int, str]]] = field(default_factory=dict)
    #: u -> set of (v, kind): v depends on u
    fwd: Dict[int, Set[Tuple[int, str]]] = field(default_factory=dict)
    #: memoized backward slices keyed by (iid, max_nodes) — the reactor
    #: re-slices the same fault across detector/reactor rounds and the
    #: purge->rollback fallback; the graph is immutable after build, so
    #: add_edge invalidates (see repro.analysis.slicing)
    _slice_cache: Dict[Tuple[int, Optional[int]], FrozenSet[int]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: memoized BFS distance maps keyed by fault iid (distance_policy)
    _dist_cache: Dict[int, Dict[int, int]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def add_edge(self, u: int, v: int, kind: str) -> None:
        """Record that instruction ``v`` depends on ``u`` (self-loops dropped)."""
        if u == v:
            return
        if self._slice_cache or self._dist_cache:
            self._slice_cache.clear()
            self._dist_cache.clear()
        self.deps.setdefault(v, set()).add((u, kind))
        self.fwd.setdefault(u, set()).add((v, kind))

    def dependencies_of(self, iid: int) -> Set[Tuple[int, str]]:
        """(dep, kind) pairs this instruction depends on."""
        return self.deps.get(iid, set())

    def dependents_of(self, iid: int) -> Set[Tuple[int, str]]:
        """(dependent, kind) pairs that depend on this instruction."""
        return self.fwd.get(iid, set())

    def edge_count(self) -> int:
        """Total dependence edges in the graph."""
        return sum(len(v) for v in self.deps.values())

    def node_count(self) -> int:
        """Instructions participating in at least one edge."""
        nodes = set(self.deps)
        nodes.update(self.fwd)
        return len(nodes)


def build_pdg(
    module: Module, points_to: PointsToResult, callgraph: CallGraph
) -> PDG:
    """Construct the PDG for a finalized module."""
    pdg = PDG()
    _add_register_data_edges(module, callgraph, pdg)
    _add_memory_edges(module, points_to, pdg)
    _add_control_edges(module, pdg)
    _add_interproc_context_edges(module, callgraph, pdg)
    return pdg


# ----------------------------------------------------------------------
def _add_register_data_edges(module: Module, callgraph: CallGraph, pdg: PDG) -> None:
    for func in module.functions.values():
        defuse = compute_defuse(func)
        for instr in func.instructions():
            for reg in instr.uses():
                for def_id in defuse.reaching_defs(instr.iid, reg):
                    # parameter defs carry call-site dependence, but
                    # _add_interproc_context_edges already links every
                    # callee instruction to every call site — adding the
                    # same "call" edges here was pure duplicate work
                    if not is_param_def(def_id):
                        pdg.add_edge(def_id, instr.iid, "data")
            if instr.op == "call" and instr.dst is not None:
                callee = instr.args[0]
                callee_func = module.functions[callee]
                for ret_iid in (
                    i.iid for i in callee_func.instructions() if i.op == "ret"
                ):
                    pdg.add_edge(ret_iid, instr.iid, "ret")


def _add_memory_edges(module: Module, points_to: PointsToResult, pdg: PDG) -> None:
    # index stores by site: site -> list of (iid, offsets, has_top)
    by_site: Dict[int, List[Tuple[int, Set[int], bool]]] = {}
    for iid, locs in points_to.store_locs.items():
        per_site: Dict[int, Tuple[Set[int], bool]] = {}
        for site, off in locs:
            offsets, has_top = per_site.get(site, (set(), False))
            if off == TOP:
                has_top = True
            else:
                offsets.add(off)
            per_site[site] = (offsets, has_top)
        for site, (offsets, has_top) in per_site.items():
            by_site.setdefault(site, []).append((iid, offsets, has_top))

    for load_iid, locs in points_to.load_locs.items():
        for site, off in locs:
            for store_iid, offsets, has_top in by_site.get(site, ()):
                if off == TOP or has_top or off in offsets:
                    pdg.add_edge(store_iid, load_iid, "mem")


def _add_control_edges(module: Module, pdg: PDG) -> None:
    for func in module.functions.values():
        cfg = FunctionCFG(func)
        cd = cfg.control_dependences()
        for block_label, branch_blocks in cd.items():
            block = func.blocks[block_label]
            for branch_label in branch_blocks:
                branch_instr = func.blocks[branch_label].terminator
                if branch_instr is None:
                    continue
                for instr in block.instrs:
                    pdg.add_edge(branch_instr.iid, instr.iid, "control")


def _add_interproc_context_edges(
    module: Module, callgraph: CallGraph, pdg: PDG
) -> None:
    """Every callee instruction depends on the function's call sites.

    This carries calling context (the caller's branches and data feeding
    the call) into slices of callee instructions; without it a fault deep
    inside a helper would never reach the request handling that led there.
    """
    for fname, func in module.functions.items():
        sites = callgraph.call_sites.get(fname, [])
        if not sites:
            continue
        for instr in func.instructions():
            for site in sites:
                pdg.add_edge(site, instr.iid, "call")
