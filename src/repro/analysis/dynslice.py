"""Dynamic dependence recording and dynamic slicing (paper Section 7).

The paper's discussion ("Analysis Accuracy") names dynamic program
slicing [Agrawal & Horgan, PLDI '90] as the future-work remedy for
static-analysis over-approximation, at the cost of heavy runtime
tracking.  This module implements that trade-off so the ablation bench
can quantify both sides:

* :class:`DynamicDependenceRecorder` attaches to a
  :class:`~repro.lang.interp.Machine` (``machine.dep_recorder``) and
  shadows the execution: register provenance per frame, a last-writer map
  per memory word, call/return linkage, and a last-taken-branch control
  approximation.  Every executed instruction contributes edges
  ``dep -> instr`` to a *dynamic* dependence graph containing only
  dependences that actually happened.
* :func:`dynamic_slice` is reverse reachability over those edges.

Dynamic slices are subsets of the sound static slices (a property the
test suite checks), so feeding them to the reactor yields smaller
candidate lists and fewer reversion attempts — in exchange for the
recording overhead the bench measures.

Control dependence is approximated by the most recent conditional branch
executed in the same activation plus the calling context; this is the
standard lightweight scheme and can over-connect straight-line code that
merely *follows* a branch, but never misses a dependence the reactor
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.lang.ir import Instr

#: pseudo register key holding the current control dependence
_CTRL = "%ctrl%"


@dataclass
class _ShadowFrame:
    """Provenance mirror of one activation record."""

    #: register name -> iid of the instruction that defined it
    defs: Dict[str, int] = field(default_factory=dict)
    #: destination register awaiting the callee's return value
    ret_dst: Optional[str] = None


class DynamicDependenceRecorder:
    """Shadows an execution, building the dynamic dependence graph."""

    def __init__(self) -> None:
        #: instr iid -> set of iids it dynamically depended on
        self.deps: Dict[int, Set[int]] = {}
        #: memory word -> iid of its last dynamic writer
        self._mem_writer: Dict[int, int] = {}
        #: per-thread shadow stacks, keyed by thread id
        self._stacks: Dict[int, List[_ShadowFrame]] = {}
        #: per-thread iid of a ``ret`` whose value is about to land
        self._pending_ret: Dict[int, int] = {}
        self.instructions_recorded = 0

    # ------------------------------------------------------------------
    def _sync_stack(self, machine, thread) -> _ShadowFrame:
        """Mirror the thread's frame stack, wiring call/return provenance."""
        stack = self._stacks.setdefault(thread.tid, [])
        # returns: frames popped since we last looked
        while len(stack) > len(thread.frames):
            popped = stack.pop()
            ret_iid = self._pending_ret.pop(thread.tid, None)
            if stack and popped.ret_dst is not None and ret_iid is not None:
                stack[-1].defs[popped.ret_dst] = ret_iid
        # calls: frames pushed since we last looked
        while len(stack) < len(thread.frames):
            depth = len(stack)
            frame = thread.frames[depth]
            shadow = _ShadowFrame(ret_dst=frame.ret_dst)
            if stack:
                call_iid = stack[-1].defs.get("%call%")
                if call_iid is not None:
                    # parameters and control context come from the call
                    for param in frame.func.params:
                        shadow.defs[param] = call_iid
                    shadow.defs[_CTRL] = call_iid
            stack.append(shadow)
        return stack[-1]

    # ------------------------------------------------------------------
    def on_instr(self, machine, thread, instr: Instr) -> None:
        """Record the dependences of one about-to-execute instruction."""
        self.instructions_recorded += 1
        shadow = self._sync_stack(machine, thread)
        frame = thread.frame
        deps: Set[int] = set()

        for reg in instr.uses():
            dep = shadow.defs.get(reg)
            if dep is not None:
                deps.add(dep)
        ctrl = shadow.defs.get(_CTRL)
        if ctrl is not None:
            deps.add(ctrl)

        op = instr.op
        if op == "load":
            addr = frame.regs.get(instr.args[0])
            if addr is not None and addr in self._mem_writer:
                deps.add(self._mem_writer[addr])
        elif op == "store":
            addr = frame.regs.get(instr.args[0])
            if addr is not None:
                self._mem_writer[addr] = instr.iid
        elif op == "alloc":
            pass  # fresh zeroed block: loads before any store have no dep
        elif op == "cbr":
            shadow.defs[_CTRL] = instr.iid
        elif op == "call":
            shadow.defs["%call%"] = instr.iid
        elif op == "ret":
            self._pending_ret[thread.tid] = instr.iid

        if instr.dst is not None:
            shadow.defs[instr.dst] = instr.iid

        if deps:
            self.deps.setdefault(instr.iid, set()).update(deps)

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Forget volatile shadows (frames); memory provenance survives
        for persistent words and is stale-but-harmless for volatile ones."""
        self._stacks.clear()
        self._pending_ret.clear()

    def edge_count(self) -> int:
        """Total dynamic dependence edges recorded."""
        return sum(len(v) for v in self.deps.values())


def dynamic_slice(recorder: DynamicDependenceRecorder, iid: int) -> Set[int]:
    """All instructions that dynamically affected ``iid`` (plus itself)."""
    seen: Set[int] = {iid}
    stack = [iid]
    while stack:
        node = stack.pop()
        for dep in recorder.deps.get(node, ()):
            if dep not in seen:
                seen.add(dep)
                stack.append(dep)
    return seen
