"""Static analysis: the reproduction of the Arthas analyzer (Section 4.1).

The pipeline mirrors the paper's:

1. :mod:`repro.analysis.pointer` — Andersen-style, field-sensitive
   points-to analysis over allocation sites (the paper uses a
   field-/context-sensitive pointer analysis; ours is field-sensitive and
   context-insensitive, which is sound but may over-approximate).
2. :mod:`repro.analysis.pmvars` — identify *PM variables and
   instructions*: registers whose points-to sets reach persistent
   allocation sites or the pool root, and the loads/stores/persists that
   touch them (the def-use transitive closure of the paper).
3. :mod:`repro.analysis.cfg` + :mod:`repro.analysis.defuse` — control-flow
   graphs, dominators/post-dominators, reaching definitions.
4. :mod:`repro.analysis.pdg` — the inter-procedural Program Dependence
   Graph with data (register + memory) and control edges.
5. :mod:`repro.analysis.slicing` — backward slices of fault instructions,
   the reactor's input.

:func:`analyze_module` runs the whole pipeline and returns an
:class:`AnalysisResult` bundle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.pdg import PDG, build_pdg
from repro.analysis.pointer import PointsToResult, analyze_pointers
from repro.analysis.pmvars import PMClassification, classify_pm
from repro.analysis.slicing import backward_slice, pm_slice
from repro.lang.ir import Module


@dataclass
class AnalysisResult:
    """Everything the Arthas toolchain derives statically from a module."""

    module: Module
    points_to: PointsToResult
    pm: PMClassification
    pdg: PDG
    callgraph: CallGraph
    #: seconds spent in each phase (Table 9's "Static Analysis" row)
    timings: Dict[str, float] = field(default_factory=dict)

    def backward_slice(self, iid: int) -> Set[int]:
        """All instructions that may affect the given instruction."""
        return backward_slice(self.pdg, iid)

    def pm_backward_slice(self, iid: int) -> Set[int]:
        """The backward slice filtered to PM instructions (Section 4.5)."""
        return pm_slice(self.pdg, self.pm, iid)


def analyze_module(module: Module) -> AnalysisResult:
    """Run the full analyzer pipeline on a finalized module."""
    timings: Dict[str, float] = {}
    start = time.perf_counter()
    callgraph = build_callgraph(module)
    timings["callgraph"] = time.perf_counter() - start

    start = time.perf_counter()
    points_to = analyze_pointers(module)
    timings["pointer"] = time.perf_counter() - start

    start = time.perf_counter()
    pm = classify_pm(module, points_to)
    timings["pmvars"] = time.perf_counter() - start

    start = time.perf_counter()
    pdg = build_pdg(module, points_to, callgraph)
    timings["pdg"] = time.perf_counter() - start

    return AnalysisResult(
        module=module,
        points_to=points_to,
        pm=pm,
        pdg=pdg,
        callgraph=callgraph,
        timings=timings,
    )


__all__ = [
    "AnalysisResult",
    "analyze_module",
    "analyze_pointers",
    "classify_pm",
    "build_pdg",
    "build_callgraph",
    "backward_slice",
    "pm_slice",
    "PDG",
    "CallGraph",
    "PointsToResult",
    "PMClassification",
]
