"""Reaching definitions and def-use chains over registers.

Classic bit-vector-style dataflow per function: a definition is any
instruction with a destination register; parameters are defined by a
virtual entry definition (id ``PARAM_DEF_BASE - param_index`` per
function, negative so it never collides with instruction ids).  The PDG
builder turns the resulting use -> reaching-defs map into data edges and
wires parameter uses to call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lang.ir import Function, Module

#: virtual definition ids for parameters: -(1000 + index) within a function
PARAM_DEF_BASE = -1000


def param_def_id(param_index: int) -> int:
    """Virtual definition id of the ``param_index``-th parameter."""
    return PARAM_DEF_BASE - param_index


def is_param_def(def_id: int) -> bool:
    """True when a definition id denotes a virtual parameter definition."""
    return def_id <= PARAM_DEF_BASE


def param_index_of(def_id: int) -> int:
    """Recover the parameter index from a virtual definition id."""
    return PARAM_DEF_BASE - def_id


@dataclass
class DefUseResult:
    """Def-use information for one function."""

    func_name: str
    #: use site -> register -> set of reaching definition ids
    reaching: Dict[int, Dict[str, Set[int]]] = field(default_factory=dict)
    #: all definition sites per register (instruction ids only)
    defs_of: Dict[str, Set[int]] = field(default_factory=dict)

    def reaching_defs(self, iid: int, reg: str) -> Set[int]:
        """Definition ids of ``reg`` that reach instruction ``iid``."""
        return self.reaching.get(iid, {}).get(reg, set())


def compute_defuse(func: Function) -> DefUseResult:
    """Run reaching definitions over one function."""
    result = DefUseResult(func.name)

    # enumerate definitions
    def_sites: List[Tuple[int, str]] = []  # (def_id, reg)
    for i, param in enumerate(func.params):
        def_sites.append((param_def_id(i), param))
    for instr in func.instructions():
        if instr.dst is not None:
            def_sites.append((instr.iid, instr.dst))
            result.defs_of.setdefault(instr.dst, set()).add(instr.iid)

    defs_by_reg: Dict[str, Set[int]] = {}
    for def_id, reg in def_sites:
        defs_by_reg.setdefault(reg, set()).add(def_id)

    # block-level GEN/KILL
    gen: Dict[str, Dict[str, int]] = {}
    for label in func.block_order:
        block_gen: Dict[str, int] = {}
        for instr in func.blocks[label].instrs:
            if instr.dst is not None:
                block_gen[instr.dst] = instr.iid  # later defs shadow earlier
        gen[label] = block_gen

    # IN/OUT as register -> frozen set of def ids
    empty: Dict[str, FrozenSet[int]] = {}
    in_sets: Dict[str, Dict[str, FrozenSet[int]]] = {
        label: dict(empty) for label in func.block_order
    }
    entry_in = {
        param: frozenset({param_def_id(i)}) for i, param in enumerate(func.params)
    }
    in_sets[func.entry] = dict(entry_in)

    preds: Dict[str, List[str]] = {label: [] for label in func.block_order}
    for label in func.block_order:
        for s in func.blocks[label].successors():
            preds[s].append(label)

    def transfer(label: str, in_map: Dict[str, FrozenSet[int]]) -> Dict[str, FrozenSet[int]]:
        out = dict(in_map)
        for reg, def_iid in gen[label].items():
            out[reg] = frozenset({def_iid})
        return out

    out_sets: Dict[str, Dict[str, FrozenSet[int]]] = {
        label: transfer(label, in_sets[label]) for label in func.block_order
    }

    changed = True
    while changed:
        changed = False
        for label in func.block_order:
            merged: Dict[str, Set[int]] = {
                reg: set(ids) for reg, ids in (entry_in if label == func.entry else {}).items()
            }
            for p in preds[label]:
                for reg, ids in out_sets[p].items():
                    merged.setdefault(reg, set()).update(ids)
            frozen = {reg: frozenset(ids) for reg, ids in merged.items()}
            if frozen != in_sets[label]:
                in_sets[label] = frozen
                out_sets[label] = transfer(label, frozen)
                changed = True

    # per-instruction reaching sets (walk each block forward)
    for label in func.block_order:
        live: Dict[str, Set[int]] = {reg: set(ids) for reg, ids in in_sets[label].items()}
        for instr in func.blocks[label].instrs:
            used = instr.uses()
            if used:
                result.reaching[instr.iid] = {
                    reg: set(live.get(reg, set())) for reg in used
                }
            if instr.dst is not None:
                live[instr.dst] = {instr.iid}
    return result


def compute_module_defuse(module: Module) -> Dict[str, DefUseResult]:
    """Def-use for every function in a module."""
    return {name: compute_defuse(func) for name, func in module.functions.items()}
