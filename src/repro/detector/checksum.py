"""Checksum-based corruption detection (paper Section 6.6).

The alternative the paper compares against: compute a checksum for each
PM state at persist time, store it, and validate later.  Implemented as a
pool persist hook keeping a shadow digest per word (the idealized
finest-granularity checksum — every persisted range is hashed, exactly
the cost the paper describes).

The mechanism catches *out-of-band* value corruption (hardware bit
flips — fault f5) because the flip bypasses the persist hooks.  It is
blind to bad-but-properly-persisted values (logic errors, overflows,
races): their checksums are recomputed over the bad data and validate
fine.  The Table 7 bench demonstrates both behaviours by running this
monitor against all 12 faults.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pmem.pool import PMPool


def word_digest(value: int) -> int:
    """Digest of one word (a checksum the program would store)."""
    v = value & 0xFFFF_FFFF_FFFF_FFFF
    v ^= v >> 33
    v = (v * 0xFF51AFD7ED558CCD) & 0xFFFF_FFFF_FFFF_FFFF
    v ^= v >> 33
    return v


class ChecksumMonitor:
    """Maintains per-word digests at every persistence point."""

    def __init__(self, pool: PMPool):
        self.pool = pool
        #: word address -> digest of the last persisted value
        self._digests: Dict[int, int] = {}
        self.updates = 0
        self._attached = False

    def attach(self) -> None:
        """Start checksumming at every persistence point; idempotent."""
        if not self._attached:
            self.pool.add_persist_hook(self._on_persist)
            self._attached = True

    def detach(self) -> None:
        """Stop observing persistence points."""
        if self._attached:
            self.pool.remove_persist_hook(self._on_persist)
            self._attached = False

    def _on_persist(self, addr: int, nwords: int, values: List[int], tag: str) -> None:
        for i, value in enumerate(values):
            self._digests[addr + i] = word_digest(value)
        self.updates += 1

    def verify(self) -> List[int]:
        """Word addresses whose durable value no longer matches its digest.

        Empty for every software fault (bad values were checksummed when
        persisted); non-empty exactly when something changed PM without
        going through a persistence point — hardware corruption.
        """
        return [
            addr
            for addr, digest in self._digests.items()
            if word_digest(self.pool.durable_read(addr)) != digest
        ]
