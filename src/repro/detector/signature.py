"""Failure signatures and the hard-fault similarity heuristic.

The paper's detector retrieves the faulting instruction, exit code and
stack trace and flags a *potential hard failure* when a new failure looks
like a previously recorded one (same exit code / fault instruction /
"loosely the same" stack).  The heuristic is deliberately imperfect —
false alarms are pruned later by the reactor (an empty reversion plan
means "not a PM fault; just restart").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.lang.interp import FaultInfo


@dataclass(frozen=True)
class FailureSignature:
    """What the detector remembers about one failure."""

    kind: str
    fault_iid: int
    location: str
    #: innermost function names, outermost first (truncated stack)
    stack_funcs: Tuple[str, ...] = ()

    @classmethod
    def from_fault(cls, fault: FaultInfo, depth: int = 3) -> "FailureSignature":
        funcs = tuple(loc.split(":")[0] for loc in fault.stack[-depth:])
        return cls(
            kind=fault.kind,
            fault_iid=fault.iid,
            location=fault.location,
            stack_funcs=funcs,
        )


def signatures_similar(a: FailureSignature, b: FailureSignature) -> bool:
    """Loose similarity, mirroring the paper's "e.g., having the same exit
    code, fault instruction, loosely the same stack trace".

    Failure *kind* plays the role of the exit code; a matching kind makes
    two failures similar.  The heuristic is deliberately permissive —
    false alarms cost nothing because the reactor prunes them (an empty
    reversion plan leads to a plain restart).  Matching fault site or
    innermost stack frame marks the signatures as strongly similar, which
    callers may additionally inspect.
    """
    return a.kind == b.kind


def signatures_strongly_similar(a: FailureSignature, b: FailureSignature) -> bool:
    """Same kind *and* matching fault instruction, location or stack top."""
    if a.kind != b.kind:
        return False
    if a.fault_iid == b.fault_iid and a.fault_iid >= 0:
        return True
    if a.location == b.location:
        return True
    return bool(
        a.stack_funcs and b.stack_funcs and a.stack_funcs[-1] == b.stack_funcs[-1]
    )
