"""The Arthas detector (paper Section 4.3).

Monitors a PM system for crashes, assertion failures, hangs, PM-space
exhaustion, leaks and failed user-defined checks; compares failure
signatures across restarts to decide whether a failure is *potentially
hard* (recurring) and therefore worth invoking the reactor on.
"""

from repro.detector.monitor import Detector, LeakMonitor, RunOutcome, UserCheck
from repro.detector.signature import FailureSignature, signatures_similar

__all__ = [
    "Detector",
    "LeakMonitor",
    "RunOutcome",
    "UserCheck",
    "FailureSignature",
    "signatures_similar",
]
