"""Failure detection: crash/hang/leak/user-check monitoring.

:class:`Detector.observe` wraps one execution of the target system,
turning guest traps into :class:`RunOutcome` values, recording failure
signatures, and judging (via :func:`signatures_similar`) whether a
failure that recurred after a restart is a *potential hard failure*.

:class:`LeakMonitor` watches PM usage growth relative to the live-item
count — the "PM usage monitor" the paper uses to stop leaking systems.
User-defined checks (e.g. "inserted key/value items exist") are callables
returning a violation message or None.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.detector.signature import FailureSignature, signatures_similar
from repro.errors import Trap
from repro.lang.interp import FaultInfo, Machine
from repro.pmem.allocator import PMAllocator

#: a user check returns None when satisfied, else a violation message
UserCheck = Callable[[], Optional[str]]


@dataclass
class RunOutcome:
    """Result of one detector-observed execution."""

    ok: bool
    fault: Optional[FaultInfo] = None
    signature: Optional[FailureSignature] = None
    #: message from a failed user check (fault-free data-loss failures)
    violation: Optional[str] = None

    @property
    def failed(self) -> bool:
        return not self.ok


class LeakMonitor:
    """Flags runaway PM usage (persistent leaks).

    ``threshold_ratio`` is the tolerated ratio of allocated words to the
    words accounted for by live application items; ``usage_limit`` is an
    absolute usage fraction that triggers regardless.
    """

    def __init__(
        self,
        allocator: PMAllocator,
        expected_words_fn: Callable[[], int],
        threshold_ratio: float = 3.0,
        usage_limit: float = 0.9,
    ):
        self.allocator = allocator
        self.expected_words_fn = expected_words_fn
        self.threshold_ratio = threshold_ratio
        self.usage_limit = usage_limit

    def check(self) -> Optional[str]:
        """Return a violation message when usage looks like a leak."""
        used = self.allocator.used_words()
        if self.allocator.usage_ratio() >= self.usage_limit:
            return f"PM usage at {self.allocator.usage_ratio():.0%} of pool"
        expected = self.expected_words_fn()
        if expected > 0 and used > expected * self.threshold_ratio:
            return (
                f"PM usage {used} words vs {expected} expected "
                f"(ratio {used / expected:.1f})"
            )
        return None


class Detector:
    """Observes runs, keeps failure history, flags potential hard faults."""

    def __init__(self) -> None:
        self.history: List[FailureSignature] = []
        self.user_checks: List[UserCheck] = []
        self.leak_monitor: Optional[LeakMonitor] = None

    def add_user_check(self, check: UserCheck) -> None:
        """Register a user-defined check consulted after trap-free runs."""
        self.user_checks.append(check)

    def set_leak_monitor(self, monitor: LeakMonitor) -> None:
        """Attach the PM usage monitor consulted after trap-free runs."""
        self.leak_monitor = monitor

    # ------------------------------------------------------------------
    def observe(self, machine: Machine, action: Callable[[], None]) -> RunOutcome:
        """Run ``action`` under observation; never re-raises guest traps."""
        try:
            action()
        except Trap:
            fault = machine.last_fault
            assert fault is not None
            signature = FailureSignature.from_fault(fault)
            self.history.append(signature)
            return RunOutcome(ok=False, fault=fault, signature=signature)
        # trap-free: consult user checks and the leak monitor
        for check in self.user_checks:
            violation = check()
            if violation is not None:
                return RunOutcome(ok=False, violation=violation)
        if self.leak_monitor is not None:
            violation = self.leak_monitor.check()
            if violation is not None:
                return RunOutcome(ok=False, violation=violation)
        return RunOutcome(ok=True)

    # ------------------------------------------------------------------
    def is_potential_hard_failure(self, signature: FailureSignature) -> bool:
        """True when a similar failure was seen before (recurs on retry)."""
        earlier = [s for s in self.history if s is not signature]
        return any(signatures_similar(signature, s) for s in earlier)

    def last_signature(self) -> Optional[FailureSignature]:
        """The most recently recorded failure signature, if any."""
        return self.history[-1] if self.history else None
