"""Seeded request-stream generators for the experiment harness."""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterator, Optional, Set


class OpKind(Enum):
    INSERT = "insert"
    GET = "get"
    DELETE = "delete"


@dataclass(frozen=True)
class Op:
    """One request: kind, key and (for inserts) a value."""

    kind: OpKind
    key: int
    value: int = 0


#: values are large so that corrupted pointers land far outside the pool
VALUE_BASE = 900_000_000


class MixedWorkload:
    """A seeded insert-heavy mix with gets and occasional deletes.

    ``exclude_keys``/``exclude_buckets`` steer the stream away from
    poisoned keys or hash buckets — the mechanism scenarios use to let a
    persisted corruption sit dormant while unrelated updates accumulate
    (which is what defeats time-ordered rollback in the paper).
    """

    def __init__(
        self,
        seed: int = 0,
        keyspace: int = 4096,
        insert_ratio: float = 0.55,
        get_ratio: float = 0.40,
        exclude: Optional[Callable[[int], bool]] = None,
    ):
        self.rng = random.Random(seed)
        self.keyspace = keyspace
        self.insert_ratio = insert_ratio
        self.get_ratio = get_ratio
        self.exclude = exclude
        self._next_key = 0
        self.inserted: Set[int] = set()

    def _fresh_key(self) -> int:
        while True:
            key = self._next_key
            self._next_key += 1
            if self.exclude is None or not self.exclude(key):
                return key

    def _existing_key(self) -> Optional[int]:
        if not self.inserted:
            return None
        candidates = sorted(self.inserted)
        for _ in range(8):
            key = candidates[self.rng.randrange(len(candidates))]
            if self.exclude is None or not self.exclude(key):
                return key
        return None

    def next_op(self) -> Op:
        """Draw the next request according to the configured mix."""
        roll = self.rng.random()
        if roll < self.insert_ratio or not self.inserted:
            key = self._fresh_key()
            self.inserted.add(key)
            return Op(OpKind.INSERT, key, VALUE_BASE + key)
        if roll < self.insert_ratio + self.get_ratio:
            key = self._existing_key()
            if key is None:
                key = self._fresh_key()
                self.inserted.add(key)
                return Op(OpKind.INSERT, key, VALUE_BASE + key)
            return Op(OpKind.GET, key)
        key = self._existing_key()
        if key is None:
            key = self._fresh_key()
            self.inserted.add(key)
            return Op(OpKind.INSERT, key, VALUE_BASE + key)
        self.inserted.discard(key)
        return Op(OpKind.DELETE, key)

    def ops(self, n: int) -> Iterator[Op]:
        """Yield ``n`` consecutive requests."""
        for _ in range(n):
            yield self.next_op()
