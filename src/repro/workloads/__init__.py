"""Workload generators: a YCSB-style mix plus custom insert benchmarks.

The paper drives Redis/Memcached with YCSB (4 threads, 3M ops, 50/50
read-write) and PMEMKV/Pelikan/CCEH with custom insert benchmarks
(Section 6.7).  These generators produce the same request shapes at
laptop scale, seeded for determinism.
"""

from repro.workloads.generators import MixedWorkload, Op, OpKind
from repro.workloads.ycsb import YCSBWorkload, zipf_keys

__all__ = ["Op", "OpKind", "MixedWorkload", "YCSBWorkload", "zipf_keys"]
