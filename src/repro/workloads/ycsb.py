"""YCSB-style workload: zipfian key popularity, configurable mix.

Used by the overhead evaluation (Figure 12 / Table 8): the paper runs
YCSB with a 50% read / 50% write mix against Redis and Memcached, and
custom all-insert benchmarks against the other three systems.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Iterator, List, Tuple

from repro.workloads.generators import VALUE_BASE, Op, OpKind


@lru_cache(maxsize=64)
def _zipf_cdf(keyspace: int, theta: float) -> Tuple[float, ...]:
    """Inverse-CDF table for a zipfian over ``keyspace`` ranks.

    The table depends only on ``(keyspace, theta)``, never on the seed,
    so it is cached: repeated ``run_ops`` batches and the sustained
    serving stream stop paying the O(keyspace) float build per call.
    """
    weights = [1.0 / ((rank + 1) ** theta) for rank in range(keyspace)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return tuple(cdf)


def zipf_keys(
    n: int, keyspace: int, theta: float, seed: int, use_cache: bool = True
) -> List[int]:
    """Draw ``n`` keys from a zipfian distribution over ``keyspace``.

    Uses the standard inverse-CDF construction (ranks weighted by
    ``1/rank**theta``); theta=0 degenerates to uniform.  The CDF is
    memoized per ``(keyspace, theta)``; ``use_cache=False`` rebuilds it
    from scratch (the oracle path — draws must come out identical, which
    ``bench_write_path.ycsb`` asserts on every run).
    """
    rng = random.Random(seed)
    if use_cache:
        cdf = _zipf_cdf(keyspace, theta)
    else:
        weights = [1.0 / ((rank + 1) ** theta) for rank in range(keyspace)]
        total = sum(weights)
        acc = 0.0
        fresh = []
        for w in weights:
            acc += w / total
            fresh.append(acc)
        cdf = tuple(fresh)

    keys = []
    for _ in range(n):
        u = rng.random()
        lo, hi = 0, keyspace - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        keys.append(lo)
    return keys


class YCSBWorkload:
    """read/update mix over a preloaded zipfian keyspace."""

    def __init__(
        self,
        seed: int = 0,
        keyspace: int = 512,
        read_ratio: float = 0.5,
        theta: float = 0.9,
    ):
        self.rng = random.Random(seed)
        self.keyspace = keyspace
        self.read_ratio = read_ratio
        self.theta = theta

    def load_ops(self) -> Iterator[Op]:
        """The load phase: insert every key once."""
        for key in range(self.keyspace):
            yield Op(OpKind.INSERT, key, VALUE_BASE + key)

    def run_ops(self, n: int) -> Iterator[Op]:
        """The transaction phase: zipfian reads and updates."""
        keys = zipf_keys(n, self.keyspace, self.theta, self.rng.randrange(1 << 30))
        for key in keys:
            if self.rng.random() < self.read_ratio:
                yield Op(OpKind.GET, key)
            else:
                yield Op(OpKind.INSERT, key, VALUE_BASE + key + 1)
