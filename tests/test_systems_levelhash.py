"""Tests for the bonus Level-hashing system and its studied bug."""

import pytest

from repro.detector.monitor import Detector
from repro.errors import AssertTrap
from repro.harness.simclock import ReexecDelay, SimClock
from repro.reactor.plan import compute_plan, distance_policy
from repro.reactor.revert import Reverter
from repro.reactor.server import ReactorServer
from repro.systems.levelhash import LevelHashAdapter


@pytest.fixture
def lv():
    adapter = LevelHashAdapter()
    adapter.start()
    return adapter


class TestBasicOps:
    def test_insert_get_update(self, lv):
        lv.insert(1, 11)
        assert lv.lookup(1) == 11
        lv.insert(1, 22)
        assert lv.lookup(1) == 22
        assert lv.count_items() == 1

    def test_two_choice_plus_bottom_placement(self, lv):
        for k in range(20):
            lv.insert(k, k)
        assert all(lv.lookup(k) == k for k in range(20))
        assert lv.consistency_violations() == []

    def test_delete(self, lv):
        lv.insert(5, 55)
        assert lv.delete(5) == 1
        assert lv.lookup(5) == -1
        assert lv.delete(5) == 0
        assert lv.count_items() == 0

    def test_restart_recovery(self, lv):
        for k in range(15):
            lv.insert(k, 100 + k)
        lv.restart()
        lv.recover()
        assert all(lv.lookup(k) == 100 + k for k in range(15))
        assert lv.consistency_violations() == []


class TestWrongMaskResizeBug:
    def _fill_until_loss(self, lv):
        inserted = []
        for k in range(2, 400, 3):
            lv.insert(k, 100 + k)
            inserted.append(k)
        missing = [k for k in inserted if lv.lookup(k) != 100 + k]
        return inserted, missing

    def test_resize_silently_loses_keys(self, lv):
        inserted, missing = self._fill_until_loss(lv)
        assert missing, "the wrong-mask rehash must misplace some keys"
        # the misplacement is persistent: restart does not help
        lv.restart()
        lv.recover()
        assert lv.lookup(missing[0]) == -1
        # and it is a *silent* wrong result: counts still look fine
        assert lv.count_items() == lv.call("lv_scan", lv.root)

    def test_arthas_recovers_misplaced_keys(self, lv):
        inserted, missing = self._fill_until_loss(lv)
        victim = missing[-1]  # lost in the most recent bad resize
        detector = Detector()
        outcome = detector.observe(lv.machine, lambda: lv.check_key(victim))
        assert not outcome.ok and outcome.fault.kind == "assert"

        server = ReactorServer(lv.module, analysis=lv.analysis)
        plan = server.compute_plan(
            lv.guid_map, lv.trace, lv.ckpt.log, outcome.fault.iid,
            policy=distance_policy(max_distance=8),
        )
        assert not plan.empty

        def reexec():
            lv.restart()
            return detector.observe(
                lv.machine, lambda: (lv.recover(), lv.check_key(victim))
            )

        reverter = Reverter(
            lv.ckpt.log, lv.pool, lv.allocator, reexec=reexec,
            clock=SimClock(), reexec_delay=ReexecDelay(1),
            timeout_seconds=3000, max_attempts=400,
        )
        result = reverter.mitigate_purge(plan)
        assert result.recovered
        assert lv.lookup(victim) == 100 + victim
        assert lv.consistency_violations() == []
