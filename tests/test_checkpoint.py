"""Tests for the versioned checkpoint log and its manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.log import CheckpointLog
from repro.checkpoint.manager import CheckpointManager
from repro.errors import CheckpointError
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PM_BASE, PMPool
from repro.pmem.tx import TransactionManager


class TestLog:
    def test_update_creates_versions(self):
        log = CheckpointLog()
        s1 = log.record_update(100, 2, [1, 2])
        s2 = log.record_update(100, 2, [3, 4])
        entry = log.entries[100]
        assert [v.seq for v in entry.versions] == [s1, s2]
        assert entry.latest().data == (3, 4)
        assert entry.latest_before(s2).data == (1, 2)
        assert entry.latest_before(s1) is None

    def test_version_ring_evicts_oldest(self):
        log = CheckpointLog(max_versions=3)
        for i in range(5):
            log.record_update(100, 1, [i])
        entry = log.entries[100]
        assert len(entry.versions) == 3
        assert entry.total_versions == 5
        assert entry.history_evicted
        assert [v.data[0] for v in entry.versions] == [2, 3, 4]

    def test_value_count_mismatch_rejected(self):
        log = CheckpointLog()
        with pytest.raises(CheckpointError):
            log.record_update(100, 2, [1])

    def test_sequence_numbers_are_global_and_ordered(self):
        log = CheckpointLog()
        seqs = [
            log.record_update(100, 1, [1]),
            log.record_alloc(200, 4),
            log.record_free(200, 4),
            log.record_tx_begin(7),
            log.record_tx_commit(7),
        ]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_tx_membership(self):
        log = CheckpointLog()
        log.record_tx_begin(9)
        s1 = log.record_update(100, 1, [1], tx_id=9)
        s2 = log.record_update(104, 1, [2], tx_id=9)
        log.record_tx_commit(9)
        assert set(log.seqs_in_tx(9)) == {s1, s2}
        assert log.tx_of_seq(s1) == 9
        assert log.tx_of_seq(s2) == 9

    def test_entries_overlapping(self):
        log = CheckpointLog()
        log.record_update(100, 4, [1, 2, 3, 4])
        assert log.entries_overlapping(102)
        assert not log.entries_overlapping(104)
        assert log.update_seqs_for_address(101)

    def test_realloc_linking(self):
        log = CheckpointLog()
        log.record_update(100, 2, [1, 2])
        log.link_realloc(100, 300)
        assert log.entries[100].new_entry == 300
        assert log.entries[300].old_entry == 100

    def test_live_unfreed_allocs(self):
        log = CheckpointLog()
        log.record_alloc(100, 4)
        log.record_alloc(200, 4)
        log.record_free(100, 4)
        assert log.live_unfreed_allocs() == {200: 4}

    def test_events_after(self):
        log = CheckpointLog()
        s1 = log.record_update(100, 1, [1])
        s2 = log.record_update(104, 1, [2])
        assert [e.seq for e in log.events_after(s1)] == [s2]


class TestManager:
    def _stack(self):
        pool = PMPool(1024)
        allocator = PMAllocator(pool)
        txman = TransactionManager(pool)
        manager = CheckpointManager(pool, allocator, txman)
        manager.attach()
        return pool, allocator, txman, manager

    def test_persist_recorded_after_durability(self):
        pool, allocator, txman, manager = self._stack()
        a = allocator.zalloc(2)
        pool.write(a, 9)
        pool.persist(a, 1)
        entry = manager.log.entries[a]
        assert entry.latest().data == (9,)

    def test_unpersisted_write_not_recorded(self):
        pool, allocator, txman, manager = self._stack()
        a = allocator.zalloc(2)
        pool.write(a, 9)  # no persist
        assert a not in manager.log.entries

    def test_tx_commit_groups_entries(self):
        pool, allocator, txman, manager = self._stack()
        a = allocator.zalloc(4)
        tid = txman.begin()
        txman.add(a, 1)
        txman.add(a + 1, 1)
        pool.write(a, 1)
        pool.write(a + 1, 2)
        txman.commit()
        seqs = manager.log.seqs_in_tx(tid)
        assert len(seqs) == 2
        assert {manager.log.event(s).addr for s in seqs} == {a, a + 1}

    def test_alloc_free_realloc_events(self):
        pool, allocator, txman, manager = self._stack()
        a = allocator.zalloc(4)
        b = allocator.realloc(a, 8)
        allocator.free(b)
        kinds = [e.kind for e in manager.log.events]
        assert "alloc" in kinds and "free" in kinds
        assert manager.log.entries[b].old_entry == a

    def test_detach_stops_recording(self):
        pool, allocator, txman, manager = self._stack()
        a = allocator.zalloc(2)
        manager.detach()
        pool.write(a, 1)
        pool.persist(a, 1)
        assert a not in manager.log.entries


# ----------------------------------------------------------------------
# property: after arbitrary persisted updates, replaying the newest
# version of every log entry reproduces the durable image
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(1, 6), st.integers(0, 1000)),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=80, deadline=None)
def test_log_reconstructs_durable_state(updates):
    pool = PMPool(1024)
    allocator = PMAllocator(pool)
    txman = TransactionManager(pool)
    manager = CheckpointManager(
        pool, allocator, txman, max_versions=10_000  # no eviction
    )
    manager.attach()
    base = PM_BASE + 64
    for off, n, val in updates:
        for i in range(n):
            pool.write(base + off + i, val + i)
        pool.persist(base + off, n)
    # reconstruct: newest version covering each word wins
    reconstructed = {}
    ordered = sorted(
        (v.seq, e.address, v)
        for e in manager.log.entries.values()
        for v in e.versions
    )
    for _seq, addr, version in ordered:
        for i, value in enumerate(version.data):
            reconstructed[addr + i] = value
    for addr in range(base, base + 64):
        assert pool.durable_read(addr) == reconstructed.get(addr, 0)
