"""Tests for the mini-Pelikan and mini-PMEMKV target systems."""

import pytest

from repro.errors import SegfaultTrap
from repro.systems.pelikan import PelikanAdapter
from repro.systems.pmemkv import PmemkvAdapter


@pytest.fixture
def pl():
    adapter = PelikanAdapter()
    adapter.start()
    return adapter


@pytest.fixture
def pk():
    adapter = PmemkvAdapter()
    adapter.start()
    return adapter


class TestPelikan:
    def test_set_get_delete(self, pl):
        pl.insert(1, 11)
        assert pl.lookup(1) == 11
        assert pl.delete(1) == 1
        assert pl.lookup(1) == -1

    def test_value_sizes_pick_slab_class(self, pl):
        assert pl.set_value(1, 3, 5) == 1   # class 0
        assert pl.set_value(2, 7, 5) == 1   # class 1
        assert pl.set_value(3, 9, 5) == -1  # over the largest class

    def test_stats_track_operations(self, pl):
        pl.insert(1, 11)
        pl.lookup(1)
        pl.lookup(99)
        pl.delete(1)
        assert pl.stats_cmd() == 4  # 1 set + 1 hit + 1 miss + 1 del

    def test_consistency_and_restart(self, pl):
        for k in range(30):
            pl.insert(k, k)
        assert pl.consistency_violations() == []
        pl.restart()
        pl.recover()
        assert all(pl.lookup(k) == k for k in range(30))

    def test_f10_length_overflow_corrupts_neighbours(self, pl):
        for k in range(40):
            pl.insert(k, 900_000_000 + k)
        assert pl.set_value(3, 260, 987_654_321) == 1  # wrapped check
        with pytest.raises(SegfaultTrap):
            for k in range(40):
                pl.lookup(k)

    def test_f11_stats_reset_persists_null(self, pl):
        pl.insert(1, 11)
        pl.stats_reset()
        with pytest.raises(SegfaultTrap):
            pl.stats_cmd()
        pl.restart()
        pl.recover()
        with pytest.raises(SegfaultTrap):
            pl.stats_cmd()  # hard fault: the null pointer is persistent
        # regular traffic still works (the metric bump null-checks)
        assert pl.lookup(1) == 11


class TestPmemkv:
    def test_put_get_delete_drain(self, pk):
        pk.insert(1, 11)
        assert pk.lookup(1) == 11
        assert pk.delete(1) == 1
        assert pk.lookup(1) == -1
        assert pk.drain() == 1  # one queued block freed

    def test_lazy_free_defers_release(self, pk):
        pk.insert(1, 11)
        used_with_item = pk.allocator.used_words()
        pk.delete(1)
        assert pk.allocator.used_words() == used_with_item  # not yet freed
        pk.drain()
        assert pk.allocator.used_words() < used_with_item

    def test_f12_crash_before_drain_leaks(self, pk):
        for k in range(50):
            pk.insert(k, k)
        for k in range(30):
            pk.delete(k)
        pk.restart()  # the volatile to-free queue dies with the process
        pk.recover()
        live_words = pk.expected_item_words()
        assert pk.allocator.used_words() > live_words  # leaked blocks
        # draining the fresh (empty) queue cannot reclaim them
        assert pk.drain() == 0

    def test_restart_preserves_live_data(self, pk):
        for k in range(20):
            pk.insert(k, k)
        pk.restart()
        pk.recover()
        assert all(pk.lookup(k) == k for k in range(20))
        assert pk.consistency_violations() == []
