"""The monitor-thread cell watchdog (SIGALRM replacement).

The old per-cell timeout used ``SIGALRM``, which only delivers to a
process's main thread; a cell run from a worker thread silently lost its
timeout.  These tests pin the watchdog's portability (fires off the main
thread) and its shutdown race (a cell finishing at the deadline must not
leak a late ``CellTimeout`` into the caller).
"""

import threading
import time

from repro.harness.matrix import _CellWatchdog, _run_cell_payload


def test_watchdog_fires_off_main_thread():
    """A too-slow cell on a non-main thread still yields a timeout record."""
    payload = {}

    def worker():
        payload.update(_run_cell_payload(("f12", "arthas", 0), 0.001))

    t = threading.Thread(target=worker)
    t.start()
    t.join(timeout=30)
    assert not t.is_alive()
    assert payload["status"] == "error"
    assert payload["error"]["kind"] == "timeout"
    assert "exceeded" in payload["error"]["message"]


def test_watchdog_cancelled_before_deadline_never_fires():
    """A cell finishing before its deadline must see no timeout at all."""
    for _ in range(50):
        w = _CellWatchdog(0.05, threading.get_ident())
        w.start()
        w.cancel()
    # were any timer still pending, its CellTimeout would land in this
    # window and fail the test
    time.sleep(0.15)
    for _ in range(10_000):
        pass


def test_fast_cell_completes_under_generous_timeout():
    payload = _run_cell_payload(("f12", "arthas", 0), 120.0)
    assert payload["status"] == "ok"
    assert payload["summary"]["manifested"] is True
