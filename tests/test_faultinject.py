"""Unit tests for the deterministic fault-injection machinery."""

import pytest

from repro import faultinject
from repro.errors import InjectedCrash
from repro.faultinject import (
    InjectionPlan,
    InjectionSpec,
    enumerate_cells,
    kind_applies,
)


def test_fire_is_noop_without_plan():
    assert faultinject.active() is None
    assert faultinject.fire("pmem.fence") is None


def test_activate_restores_previous_plan():
    outer = InjectionPlan(record=True)
    inner = InjectionPlan(record=True)
    with faultinject.activate(outer):
        assert faultinject.active() is outer
        with faultinject.activate(inner):
            assert faultinject.active() is inner
        assert faultinject.active() is outer
    assert faultinject.active() is None


def test_crash_spec_fires_at_exact_occurrence_only_once():
    plan = InjectionPlan([InjectionSpec("pmem.fence", occurrence=2)])
    with faultinject.activate(plan):
        assert faultinject.fire("pmem.fence") is None  # occurrence 1
        with pytest.raises(InjectedCrash):
            faultinject.fire("pmem.fence")  # occurrence 2: boom
        # one-shot: the same site passes clean afterwards (retry model)
        assert faultinject.fire("pmem.fence") is None
        assert plan.all_fired
        assert plan.counts["pmem.fence"] == 3


def test_torn_and_bitflip_return_spec_instead_of_raising():
    plan = InjectionPlan([
        InjectionSpec("pmem.fence", 1, "torn", seed=7),
        InjectionSpec("ckpt.record_update", 1, "bitflip", seed=9),
    ])
    with faultinject.activate(plan):
        spec = faultinject.fire("pmem.fence")
        assert spec is not None and spec.kind == "torn" and spec.seed == 7
        spec = faultinject.fire("ckpt.record_update")
        assert spec is not None and spec.kind == "bitflip"


def test_record_mode_counts_without_injecting():
    plan = InjectionPlan([InjectionSpec("pmem.fence", 1)], record=True)
    with faultinject.activate(plan):
        for _ in range(3):
            assert faultinject.fire("pmem.fence") is None
    assert plan.counts == {"pmem.fence": 3}
    assert plan.fired == []


def test_kind_applies_restricts_torn_and_bitflip():
    assert kind_applies("pmem.fence", "torn")
    assert not kind_applies("pmem.flush", "torn")
    assert kind_applies("ckpt.record_update", "bitflip")
    assert not kind_applies("revert.cut", "bitflip")
    for site in ("pmem.fence", "ckpt.record_update", "revert.cut"):
        assert kind_applies(site, "crash")


def test_enumerate_cells_samples_endpoints_and_filters_kinds():
    counts = {"pmem.fence": 10, "revert.cut": 1, "ckpt.record_update": 2}
    cells = enumerate_cells(counts, kinds=("crash", "torn", "bitflip"),
                            max_per_site=3)
    fence_crash = [c.occurrence for c in cells
                   if c.site == "pmem.fence" and c.kind == "crash"]
    assert fence_crash[0] == 1 and fence_crash[-1] == 10
    assert len(fence_crash) == 3
    # torn only at fences, bitflip only at record_update
    assert all(c.site == "pmem.fence" for c in cells if c.kind == "torn")
    assert all(c.site == "ckpt.record_update"
               for c in cells if c.kind == "bitflip")
    # deterministic: same inputs, same cell list
    assert cells == enumerate_cells(counts, kinds=("crash", "torn", "bitflip"),
                                    max_per_site=3)


def test_enumerate_cells_rejects_unknown_kind():
    with pytest.raises(ValueError):
        enumerate_cells({"pmem.fence": 1}, kinds=("meteor",))
