"""Tests for the programmatic IR builder."""

import pytest

from repro.errors import CompileError
from repro.lang.builder import IRBuilder
from repro.lang.interp import Machine


def test_build_and_run_simple_function():
    b = IRBuilder("m")
    b.function("double", ["x"])
    two = b.const(2)
    result = b.binop("*", "x", two)
    b.ret(result)
    module = b.build()
    assert Machine(module).call("double", 21) == 42


def test_branches_and_blocks():
    b = IRBuilder("m")
    b.function("absval", ["x"])
    zero = b.const(0)
    neg = b.binop("<", "x", zero)
    b.cbr(neg, "negate", "keep")
    b.block("negate")
    flipped = b.unop("neg", "x")
    b.ret(flipped)
    b.block("keep")
    b.ret("x")
    module = b.build()
    machine = Machine(module)
    assert machine.call("absval", -7) == 7
    assert machine.call("absval", 7) == 7


def test_structs_memory_and_persistence():
    b = IRBuilder("m", structs={"pair": ["p_a", "p_b"]})
    b.function("roundtrip", [])
    size = b.const(2)
    obj = b.alloc(size, "pm")
    fa = b.field_addr(obj, "p_b")
    val = b.const(99)
    b.store(fa, val)
    one = b.const(1)
    b.persist(fa, one)
    b.setroot(obj)
    root = b.getroot()
    fb = b.field_addr(root, "p_b")
    out = b.load(fb)
    b.ret(out)
    module = b.build()
    machine = Machine(module)
    assert machine.call("roundtrip") == 99
    machine.crash()
    # still durable: read it back through a second builder-made function
    assert machine.pool.durable_read(machine.allocator.root() + 1) == 99


def test_calls_between_built_functions():
    b = IRBuilder("m")
    b.function("inc", ["x"])
    one = b.const(1)
    b.ret(b.binop("+", "x", one))
    b.function("twice", ["x"])
    t1 = b.call("inc", ["x"])
    t2 = b.call("inc", [t1])
    b.ret(t2)
    module = b.build()
    assert Machine(module).call("twice", 5) == 7


def test_errors():
    b = IRBuilder("m")
    with pytest.raises(CompileError):
        b.const(1)  # no function yet
    b.function("f", [])
    b.ret()
    with pytest.raises(CompileError):
        b.ret()  # block already terminated
    with pytest.raises(CompileError):
        b.field_addr("x", "no_such_field")
    module = b.build()
    with pytest.raises(CompileError):
        b.build()  # double build


def test_builder_module_is_analyzable():
    from repro.analysis import analyze_module

    b = IRBuilder("m")
    b.function("mk", [])
    size = b.const(4)
    obj = b.alloc(size, "pm")
    b.setroot(obj)
    b.ret(obj)
    module = b.build()
    analysis = analyze_module(module)
    alloc = next(i for i in module.instructions() if i.op == "alloc")
    assert analysis.pm.is_pm_instr(alloc.iid)
