"""Delta-replication engine tests: physical shipping vs re-execution.

The delta engine must be *observationally identical* to the logical
re-execution oracle — byte-identical per-node pool digests, equal
structural digests, equal oracles — while never re-executing the guest
on a mirror.  These tests pin that equivalence across guest systems,
group-commit batch sizes, injected crashes at the two new sites
(``cluster.ship_delta``, ``cluster.compact``), and the compaction
round-trip through ``rebuild_node`` + ``rebase_node``.
"""

import random

import pytest

from repro import faultinject
from repro.distributed.cluster import Cluster, ClusterClient
from repro.errors import InjectedCrash
from repro.faultinject import InjectionPlan, InjectionSpec
from repro.faults.registry import scenario_by_id
from repro.harness.supervisor import pool_digest

#: one fault id per guest system — the scenario is never triggered,
#: only its adapter class is borrowed for a fault-free workload
SYSTEM_FIDS = ("f1", "f9", "f20", "f21", "f23")

N_NODES = 3
N_OPS = 90


def _run_workload(
    engine: str,
    adapter_cls,
    n_ops: int = N_OPS,
    replication: int = N_NODES,
    batch: int = 8,
    seed: int = 5,
) -> Cluster:
    """One deterministic mixed workload through a fresh cluster."""
    cluster = Cluster(
        n_nodes=N_NODES, n_clients=2, adapter_cls=adapter_cls, seed=seed,
        replication=replication, replication_engine=engine,
        replication_batch=batch,
    )
    clients = [ClusterClient(cluster, i) for i in range(2)]
    rng = random.Random(seed)
    keyspace = max(16, n_ops // 2)
    for i in range(n_ops):
        key = rng.randrange(keyspace)
        roll = rng.random()
        if roll < 0.55:
            clients[i % 2].insert(key, 700 + i)
        elif roll < 0.75:
            clients[i % 2].lookup(key)
        elif roll < 0.90:
            clients[1].derived_insert(key, key + keyspace)
        else:
            clients[0].delete(key)
    cluster.drain()
    return cluster


def _digests(cluster: Cluster):
    """Per-node (pool digest, structural digest) after a full drain."""
    cluster.drain()
    return [
        (pool_digest(node.pool, node.allocator),
         node.ckpt.log.structural_digest())
        for node in cluster.nodes
    ]


class TestEngineEquivalence:
    @pytest.mark.parametrize("fid", SYSTEM_FIDS)
    def test_delta_matches_reexec_per_node(self, fid):
        adapter_cls = scenario_by_id(fid).adapter_cls()
        reexec = _run_workload("reexec", adapter_cls)
        delta = _run_workload("delta", adapter_cls)
        assert _digests(delta) == _digests(reexec)
        assert delta.oracles == reexec.oracles

    def test_spans_cover_all_mirrors(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        delta = _run_workload("delta", adapter_cls)
        mutations = [op for op in delta.oplog]
        assert mutations
        for op in mutations:
            assert set(op.spans) == set(range(N_NODES))

    def test_batched_equals_unbatched(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        batched = _run_workload("delta", adapter_cls, batch=8)
        unbatched = _run_workload("delta", adapter_cls, batch=1)
        assert _digests(batched) == _digests(unbatched)
        assert batched.oracles == unbatched.oracles

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Cluster(replication_engine="paxos")


class TestCrashAtShipDelta:
    def test_crash_then_retry_converges(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        control = _run_workload("delta", adapter_cls, batch=1)

        cluster = Cluster(
            n_nodes=N_NODES, n_clients=2, adapter_cls=adapter_cls, seed=5,
            replication=N_NODES, replication_engine="delta",
            replication_batch=1,
        )
        clients = [ClusterClient(cluster, i) for i in range(2)]
        rng = random.Random(5)
        keyspace = max(16, N_OPS // 2)
        plan = InjectionPlan([InjectionSpec("cluster.ship_delta", 4)])
        crashes = 0
        with faultinject.activate(plan):
            for i in range(N_OPS):
                key = rng.randrange(keyspace)
                roll = rng.random()
                try:
                    if roll < 0.55:
                        clients[i % 2].insert(key, 700 + i)
                    elif roll < 0.75:
                        clients[i % 2].lookup(key)
                    elif roll < 0.90:
                        clients[1].derived_insert(key, key + keyspace)
                    else:
                        clients[0].delete(key)
                except InjectedCrash:
                    # the crashed shipping round left the mirror's
                    # pointer unadvanced; a retried drain re-applies
                    # idempotently and the client op is re-issued
                    crashes += 1
                    cluster.drain()
                    if roll < 0.55:
                        clients[i % 2].insert(key, 700 + i)
                    elif roll < 0.75:
                        clients[i % 2].lookup(key)
                    elif roll < 0.90:
                        clients[1].derived_insert(key, key + keyspace)
                    else:
                        clients[0].delete(key)
            cluster.drain()
        assert plan.all_fired
        assert crashes == 1
        assert _digests(cluster) == _digests(control)
        assert cluster.oracles == control.oracles

    def test_pointers_unadvanced_by_crashed_round(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        cluster = Cluster(
            n_nodes=N_NODES, n_clients=1, adapter_cls=adapter_cls, seed=5,
            replication=N_NODES, replication_engine="delta",
            replication_batch=64,  # nothing drains until we say so
        )
        client = ClusterClient(cluster, 0)
        for key in range(6):
            client.insert(key, 900 + key)
        lagging = [
            nid for nid in range(N_NODES)
            if cluster._applied[nid] < cluster._log_pos
        ]
        assert lagging
        victim = lagging[0]
        before = cluster._applied[victim]
        plan = InjectionPlan([InjectionSpec("cluster.ship_delta", 1)])
        with faultinject.activate(plan):
            with pytest.raises(InjectedCrash):
                cluster.drain(victim)
        assert cluster._applied[victim] == before
        # the clean retry applies the same deltas exactly once
        applied = cluster.drain(victim)
        assert applied == cluster._log_pos - before
        assert cluster._applied[victim] == cluster._log_pos


class TestCrashAtCompact:
    def test_crash_then_retry_converges(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        cluster = _run_workload("delta", adapter_cls)
        control = _run_workload("delta", adapter_cls)
        n_deltas = len(cluster._delta_log)
        assert n_deltas

        plan = InjectionPlan([InjectionSpec("cluster.compact", 1)])
        with faultinject.activate(plan):
            with pytest.raises(InjectedCrash):
                cluster.compact()
        # the crash hit after capture but before truncation: nothing
        # moved, and the retry folds the same prefix
        assert cluster._horizon == 0
        assert len(cluster._delta_log) == n_deltas
        folded = cluster.compact()
        assert folded == n_deltas
        assert cluster._horizon == cluster._log_pos
        assert not cluster._delta_log
        assert _digests(cluster) == _digests(control)

    def test_compact_is_noop_under_reexec(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        cluster = _run_workload("reexec", adapter_cls)
        assert cluster.compact() == 0


class TestCompactionRoundTrip:
    def test_rebuild_then_rebase_from_compacted_base(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        cluster = _run_workload("delta", adapter_cls)
        folded = cluster.compact()
        assert folded
        n_ops = len(cluster.oplog)

        cluster.rebuild_node(1)
        assert 1 in cluster._needs_rebase
        credited, reverted = cluster.rebase_node(1)
        assert credited == n_ops
        assert reverted == 0
        assert 1 not in cluster._needs_rebase
        digests = _digests(cluster)
        assert digests[1] == digests[0]
        assert cluster.oracles[1] == cluster.oracles[0]

    def test_rebase_installs_tail_past_horizon(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        cluster = _run_workload("delta", adapter_cls, n_ops=40)
        cluster.compact()
        # grow a post-compaction tail, then heal through base + tail
        client = ClusterClient(cluster, 0)
        for key in range(200, 212):
            client.insert(key, 30 + key)
        cluster.drain()
        cluster.rebuild_node(2)
        credited, _ = cluster.rebase_node(2)
        assert credited == len(cluster.oplog)
        digests = _digests(cluster)
        assert digests[2] == digests[0]

    def test_replay_missed_refuses_delta_engine(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        cluster = _run_workload("delta", adapter_cls, n_ops=10)
        with pytest.raises(RuntimeError):
            cluster.replay_missed(0)


class TestReexecApplyAtomicity:
    def test_partial_failure_still_logs_applied_spans(self):
        adapter_cls = scenario_by_id("f1").adapter_cls()
        cluster = Cluster(
            n_nodes=N_NODES, n_clients=1, adapter_cls=adapter_cls, seed=5,
            replication=N_NODES, replication_engine="reexec",
        )
        client = ClusterClient(cluster, 0)
        client.insert(1, 11)
        oplog_before = len(cluster.oplog)

        # make the op fail on its *second* replica: the first replica's
        # apply is durable, so damage assessment must still see the op
        members = cluster.ring.replica_set(2, cluster.replication)
        second = members[1]
        original = cluster.nodes[second].insert
        calls = {"n": 0}

        def exploding(key, value):
            calls["n"] += 1
            raise RuntimeError("replica apply torn")

        cluster.nodes[second].insert = exploding
        try:
            with pytest.raises(RuntimeError):
                client.insert(2, 22)
        finally:
            cluster.nodes[second].insert = original
        assert calls["n"] == 1
        assert len(cluster.oplog) == oplog_before + 1
        op = cluster.oplog[-1]
        assert op.key == 2
        assert members[0] in op.spans
        assert second not in op.spans
