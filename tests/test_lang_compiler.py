"""Tests for the PMLang compiler: codegen correctness and rejection."""

import pytest

from repro.errors import CompileError
from repro.lang.compiler import compile_module
from repro.lang.interp import Machine
from tests.conftest import compile_and_run


class TestExpressions:
    def test_arithmetic(self):
        src = "def f(a, b):\n    return (a + b) * 2 - a // b + a % b\n"
        out, _ = compile_and_run(src, "f", 7, 3)
        assert out == (7 + 3) * 2 - 7 // 3 + 7 % 3

    def test_bitwise_and_shifts(self):
        src = "def f(a, b):\n    return ((a & b) | (a ^ b)) + (a << 2) + (a >> 1)\n"
        out, _ = compile_and_run(src, "f", 12, 10)
        assert out == ((12 & 10) | (12 ^ 10)) + (12 << 2) + (12 >> 1)

    def test_comparisons(self):
        src = (
            "def f(a, b):\n"
            "    return (a < b) + (a <= b) * 10 + (a == b) * 100"
            " + (a != b) * 1000 + (a > b) * 10000 + (a >= b) * 100000\n"
        )
        out, _ = compile_and_run(src, "f", 5, 5)
        assert out == 0 + 10 + 100 + 0 + 0 + 100000

    def test_unary_ops(self):
        src = "def f(a):\n    return (not a) + (-a) + (~a)\n"
        out, _ = compile_and_run(src, "f", 5)
        assert out == 0 + (-5) + (~5)

    def test_bool_literals(self):
        src = "def f():\n    x = True\n    y = False\n    return x * 10 + y\n"
        assert compile_and_run(src, "f")[0] == 10

    def test_short_circuit_and(self):
        src = (
            "def f(p):\n"
            "    count = valloc(1)\n"
            "    r = p != 0 and bump(count) > 0\n"
            "    return count[0]\n"
            "def bump(c):\n"
            "    c[0] = c[0] + 1\n"
            "    return c[0]\n"
        )
        assert compile_and_run(src, "f", 0)[0] == 0  # right side skipped
        assert compile_and_run(src, "f", 1)[0] == 1

    def test_short_circuit_or(self):
        src = (
            "def f(p):\n"
            "    count = valloc(1)\n"
            "    r = p != 0 or bump(count) > 0\n"
            "    return count[0]\n"
            "def bump(c):\n"
            "    c[0] = c[0] + 1\n"
            "    return c[0]\n"
        )
        assert compile_and_run(src, "f", 1)[0] == 0  # right side skipped
        assert compile_and_run(src, "f", 0)[0] == 1


class TestControlFlow:
    def test_if_elif_else(self):
        src = (
            "def f(x):\n"
            "    if x > 10:\n        return 1\n"
            "    elif x > 5:\n        return 2\n"
            "    else:\n        return 3\n"
        )
        assert compile_and_run(src, "f", 20)[0] == 1
        assert compile_and_run(src, "f", 7)[0] == 2
        assert compile_and_run(src, "f", 1)[0] == 3

    def test_while_with_break_continue(self):
        src = (
            "def f(n):\n"
            "    total = 0\n"
            "    i = 0\n"
            "    while True:\n"
            "        i = i + 1\n"
            "        if i > n:\n            break\n"
            "        if i % 2 == 0:\n            continue\n"
            "        total = total + i\n"
            "    return total\n"
        )
        assert compile_and_run(src, "f", 10)[0] == 1 + 3 + 5 + 7 + 9

    def test_for_range_variants(self):
        src = (
            "def f():\n"
            "    s = 0\n"
            "    for i in range(5):\n        s = s + i\n"
            "    for i in range(2, 5):\n        s = s + i * 10\n"
            "    for i in range(10, 0, -2):\n        s = s + i * 100\n"
            "    return s\n"
        )
        expected = sum(range(5)) + sum(i * 10 for i in range(2, 5))
        # negative steps produce an empty loop (the condition is i < stop)
        assert compile_and_run(src, "f")[0] == expected

    def test_both_arms_return(self):
        src = "def f(x):\n    if x:\n        return 1\n    else:\n        return 2\n"
        assert compile_and_run(src, "f", 1)[0] == 1
        assert compile_and_run(src, "f", 0)[0] == 2

    def test_nested_calls_and_recursion(self):
        src = (
            "def fib(n):\n"
            "    if n < 2:\n        return n\n"
            "    return fib(n - 1) + fib(n - 2)\n"
        )
        assert compile_and_run(src, "fib", 10)[0] == 55

    def test_aug_assign_targets(self):
        src = (
            "def f():\n"
            "    a = valloc(2)\n"
            "    a[0] = 1\n"
            "    a[0] += 5\n"
            "    x = 2\n"
            "    x *= 3\n"
            "    return a[0] * 100 + x\n"
        )
        assert compile_and_run(src, "f")[0] == 606


class TestStructsAndMemory:
    def test_field_access(self):
        src = (
            'def f():\n'
            '    p = pm_alloc(sizeof("pair"))\n'
            '    p.pr_a = 11\n'
            '    p.pr_b = 22\n'
            '    p.pr_a += 1\n'
            '    return p.pr_a * 100 + p.pr_b\n'
        )
        out, _ = compile_and_run(src, "f", structs={"pair": ["pr_a", "pr_b"]})
        assert out == 1222

    def test_addr_of_field_and_index(self):
        src = (
            'def f():\n'
            '    p = pm_alloc(sizeof("pair"))\n'
            '    p.pr_b = 5\n'
            '    q = addr(p.pr_b)\n'
            '    arr = valloc(4)\n'
            '    arr[2] = 7\n'
            '    r = addr(arr[2])\n'
            '    return q - p + r - arr\n'
        )
        out, _ = compile_and_run(src, "f", structs={"pair": ["pr_a", "pr_b"]})
        assert out == 1 + 2

    def test_sizeof(self):
        src = 'def f():\n    return sizeof("pair")\n'
        out, _ = compile_and_run(src, "f", structs={"pair": ["pr_a", "pr_b"]})
        assert out == 2

    def test_docstrings_allowed(self):
        src = '"""module doc"""\n\ndef f():\n    "fn doc"\n    return 1\n'
        assert compile_and_run(src, "f")[0] == 1


class TestRejection:
    def cases(self):
        return [
            "x = 1\n",  # module-level statement
            "def f(*args):\n    return 0\n",  # varargs
            "def f():\n    x, y = 1, 2\n    return x\n",  # tuple assign
            "def f():\n    return [1]\n",  # list literal
            "def f():\n    return 1.5\n",  # float
            "def f():\n    for x in items:\n        pass\n    return 0\n",
            "def f():\n    return g()\n",  # undefined function
            "def f():\n    return sizeof('nope')\n",  # unknown struct
            "def f(p):\n    return p.no_such_field\n",  # unknown field
            "def f():\n    return pm_alloc(1, 2)\n",  # intrinsic arity
            "def f():\n    return panic('x')\n",  # void intrinsic as value
            "def f():\n    assert_true(1, 2)\n    return 0\n",  # msg not str
            "def f():\n    break\n",  # break outside loop
            "def f():\n    return addr(f)\n",  # addr of non-lvalue
            "def f(a):\n    return a < 1 < 2\n",  # chained comparison
            "def f():\n    try:\n        pass\n    except Exception:\n        pass\n    return 0\n",
        ]

    def test_all_rejected(self):
        for src in self.cases():
            with pytest.raises(CompileError):
                compile_module("bad", src)

    def test_duplicate_function(self):
        with pytest.raises(CompileError):
            compile_module("bad", "def f():\n    return 1\ndef f():\n    return 2\n")

    def test_conflicting_field_offsets(self):
        with pytest.raises(CompileError):
            compile_module(
                "bad",
                "def f():\n    return 0\n",
                structs={"a": ["x", "y"], "b": ["y"]},  # y at offsets 1 and 0
            )

    def test_call_arity_checked(self):
        with pytest.raises(CompileError):
            compile_module(
                "bad", "def f():\n    return g(1)\ndef g(a, b):\n    return a\n"
            )


class TestIRShape:
    def test_blocks_have_terminators(self, kv_module):
        for func in kv_module.functions.values():
            for label in func.block_order:
                assert func.blocks[label].terminator is not None

    def test_instruction_ids_unique_and_indexed(self, kv_module):
        iids = [i.iid for i in kv_module.instructions()]
        assert len(iids) == len(set(iids))
        for instr in kv_module.instructions():
            assert kv_module.instr(instr.iid) is instr

    def test_printer_renders(self, kv_module):
        from repro.lang.printer import format_module

        text = format_module(kv_module)
        assert "kv_put" in text
        assert "getroot" in text
