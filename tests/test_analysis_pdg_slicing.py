"""Tests for PDG construction and program slicing."""

from repro.analysis import analyze_module
from repro.analysis.slicing import backward_slice, forward_slice, pm_slice, slice_distances
from repro.lang.compiler import compile_module


def _analyze(src, structs=None):
    module = compile_module("t", src, structs=structs or {})
    return module, analyze_module(module)


def _find(module, fname, op, nth=0):
    hits = [i for i in module.functions[fname].instructions() if i.op == op]
    return hits[nth]


def test_data_dependence_chain():
    src = "def f(a):\n    b = a + 1\n    c = b * 2\n    return c\n"
    module, res = _analyze(src)
    ret = _find(module, "f", "ret")
    sl = backward_slice(res.pdg, ret.iid)
    ops = {module.instr(i).op for i in sl}
    assert "binop" in ops  # both arithmetic steps are in the slice


def test_unrelated_computation_excluded():
    src = (
        "def f(a):\n"
        "    unrelated = a * 100\n"
        "    b = a + 1\n"
        "    return b\n"
    )
    module, res = _analyze(src)
    ret = _find(module, "f", "ret")
    sl = backward_slice(res.pdg, ret.iid)
    mul = next(
        i for i in module.functions["f"].instructions()
        if i.op == "binop" and i.args[0] == "*"
    )
    assert mul.iid not in sl


def test_control_dependence_in_slice():
    src = (
        "def f(c):\n"
        "    x = 0\n"
        "    if c:\n        x = 1\n"
        "    return x\n"
    )
    module, res = _analyze(src)
    store_x1 = next(
        i for i in module.functions["f"].instructions()
        if i.block.startswith("then") and i.op == "mov"
    )
    sl = backward_slice(res.pdg, store_x1.iid)
    cbrs = [i.iid for i in module.functions["f"].instructions() if i.op == "cbr"]
    assert any(c in sl for c in cbrs)


def test_memory_dependence_links_store_to_load():
    src = (
        "def w():\n"
        "    p = pm_alloc(2)\n"
        "    set_root(p)\n"
        "    p[0] = 7\n"
        "    persist(p, 2)\n"
        "    return 0\n"
        "def r():\n"
        "    p = get_root()\n"
        "    return p[0]\n"
        "def main():\n"
        "    w()\n"
        "    return r()\n"
    )
    module, res = _analyze(src)
    load = _find(module, "r", "load")
    store = next(i for i in module.functions["w"].instructions() if i.op == "store")
    sl = backward_slice(res.pdg, load.iid)
    assert store.iid in sl


def test_forward_slice_reaches_dependents():
    src = "def f(a):\n    b = a + 1\n    c = b * 2\n    return c\n"
    module, res = _analyze(src)
    add = next(
        i for i in module.functions["f"].instructions()
        if i.op == "binop" and i.args[0] == "+"
    )
    fwd = forward_slice(res.pdg, add.iid)
    mul = next(
        i for i in module.functions["f"].instructions()
        if i.op == "binop" and i.args[0] == "*"
    )
    assert mul.iid in fwd


def test_pm_slice_keeps_only_pm_instrs(kv_module):
    res = analyze_module(kv_module)
    get_loop_load = next(
        i for i in kv_module.functions["kv_get"].instructions() if i.op == "load"
    )
    full = backward_slice(res.pdg, get_loop_load.iid)
    pm_only = pm_slice(res.pdg, res.pm, get_loop_load.iid)
    assert pm_only <= full
    assert all(res.pm.is_pm_instr(i) for i in pm_only)
    assert pm_only, "PM slice should not be empty for a PM load"


def test_slice_includes_cross_function_root_cause(kv_module):
    """The defining property Arthas relies on: the store in kv_put that
    links a node is in the backward slice of kv_get's traversal."""
    res = analyze_module(kv_module)
    get_load = next(
        i for i in kv_module.functions["kv_get"].instructions() if i.op == "load"
    )
    sl = backward_slice(res.pdg, get_load.iid)
    put_stores = [
        i.iid for i in kv_module.functions["kv_put"].instructions() if i.op == "store"
    ]
    assert any(s in sl for s in put_stores)


def test_slice_distances_monotone():
    src = "def f(a):\n    b = a + 1\n    c = b * 2\n    d = c - 3\n    return d\n"
    module, res = _analyze(src)
    ret = _find(module, "f", "ret")
    dist = slice_distances(res.pdg, ret.iid)
    assert dist[ret.iid] == 0
    assert all(v >= 0 for v in dist.values())


def test_max_nodes_caps_slice(kv_module):
    res = analyze_module(kv_module)
    get_load = next(
        i for i in kv_module.functions["kv_get"].instructions() if i.op == "load"
    )
    capped = backward_slice(res.pdg, get_load.iid, max_nodes=5)
    assert len(capped) <= 6


def test_pdg_counts(kv_module):
    res = analyze_module(kv_module)
    assert res.pdg.node_count() > 0
    assert res.pdg.edge_count() > res.pdg.node_count() // 2
