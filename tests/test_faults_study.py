"""The empirical-study dataset must reproduce the paper's aggregates."""

import pytest

from repro.faults.study import (
    STUDY_BUGS,
    bugs_per_system,
    consequence_distribution,
    propagation_distribution,
    root_cause_distribution,
)


def test_total_bug_count():
    assert len(STUDY_BUGS) == 28


def test_table1_counts():
    counts = bugs_per_system()
    assert counts[("cceh", "new")] == 1
    assert counts[("dash", "new")] == 1
    assert counts[("pmemkv", "new")] == 2
    assert counts[("levelhash", "new")] == 2
    assert counts[("recipe", "new")] == 2
    assert counts[("memcached", "ported")] == 9
    assert counts[("redis", "ported")] == 11
    assert sum(n for (s, o), n in counts.items() if o == "new") == 8
    assert sum(n for (s, o), n in counts.items() if o == "ported") == 20


def test_figure2_root_causes():
    dist = root_cause_distribution()
    assert dist["logic error"] == pytest.approx(46.4, abs=0.5)
    assert dist["race condition"] == pytest.approx(17.9, abs=0.5)
    assert dist["integer overflow"] == pytest.approx(10.7, abs=0.5)
    assert dist["buffer overflow"] == pytest.approx(10.7, abs=0.5)
    assert dist["memory leak"] == pytest.approx(10.7, abs=0.5)
    assert dist["hardware fault"] == pytest.approx(3.6, abs=0.5)
    assert sum(dist.values()) == pytest.approx(100.0)


def test_figure3_consequences():
    dist = consequence_distribution()
    assert dist["repeated crash"] == pytest.approx(32.1, abs=0.5)
    assert dist["wrong result"] == pytest.approx(21.4, abs=0.5)
    assert dist["persistent leak"] == pytest.approx(14.3, abs=0.5)
    assert dist["repeated hang"] == pytest.approx(10.7, abs=0.5)
    assert dist["out of space"] == pytest.approx(7.1, abs=0.5)
    assert dist["data loss"] == pytest.approx(7.1, abs=0.5)
    assert dist["corruption"] == pytest.approx(7.1, abs=0.5)


def test_propagation_types():
    dist = propagation_distribution()
    assert dist["Type I"] == pytest.approx(17.9, abs=0.5)
    assert dist["Type II"] == pytest.approx(67.9, abs=0.5)
    assert dist["Type III"] == pytest.approx(14.3, abs=0.5)


def test_named_paper_cases_present():
    text = " ".join(b.description for b in STUDY_BUGS)
    for marker in ("f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8"):
        assert f"({marker})" in text


def test_bug_ids_unique():
    ids = [b.bug_id for b in STUDY_BUGS]
    assert len(ids) == len(set(ids))
