"""Cross-cutting property tests.

* PMLang arithmetic agrees with Python on random expressions.
* Every target system agrees with a dict model under random workloads
  (and stays internally consistent, and survives restart+recovery).
* For random single-update corruptions of a KV store, the Arthas
  pipeline (slice -> plan -> purge) recovers the store.
* Experiments are deterministic for a fixed seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detector.monitor import Detector
from repro.lang.compiler import compile_module
from repro.lang.interp import Machine
from repro.reactor.plan import compute_plan
from repro.reactor.revert import Reverter
from repro.systems import ALL_ADAPTERS


# ----------------------------------------------------------------------
# PMLang arithmetic vs Python
# ----------------------------------------------------------------------
_expr = st.recursive(
    st.sampled_from(["a", "b", "c"]) | st.integers(-50, 50).map(str),
    lambda inner: st.tuples(
        inner, st.sampled_from(["+", "-", "*", "//", "%", "&", "|", "^"]), inner
    ).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    max_leaves=12,
)


@given(_expr, st.integers(-30, 30), st.integers(-30, 30), st.integers(1, 30))
@settings(max_examples=120, deadline=None)
def test_pmlang_arithmetic_matches_python(expr, a, b, c):
    src = f"def f(a, b, c):\n    return {expr}\n"
    try:
        expected = eval(expr, {}, {"a": a, "b": b, "c": c})
    except ZeroDivisionError:
        return  # both sides trap; covered by interpreter unit tests
    module = compile_module("prop", src)
    got = Machine(module).call("f", a, b, c)
    assert got == expected


# ----------------------------------------------------------------------
# system vs dict model
# ----------------------------------------------------------------------
_workload = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "delete"]),
        st.integers(0, 40),
        st.integers(0, 10_000),
    ),
    max_size=80,
)


@pytest.mark.parametrize("system", sorted(ALL_ADAPTERS))
@given(ops=_workload)
@settings(max_examples=25, deadline=None)
def test_system_matches_dict_model(system, ops):
    adapter = ALL_ADAPTERS[system]()
    adapter.start()
    model = {}
    for kind, key, value in ops:
        if kind == "insert":
            adapter.insert(key, value)
            model[key] = value
        elif kind == "lookup":
            assert adapter.lookup(key) == model.get(key, -1)
        else:
            assert adapter.delete(key) == (1 if key in model else 0)
            model.pop(key, None)
    assert adapter.count_items() == len(model)
    assert adapter.consistency_violations() == []
    # restart + recovery preserves exactly the model
    adapter.restart()
    adapter.recover()
    for key, value in model.items():
        assert adapter.lookup(key) == value
    assert adapter.count_items() == len(model)


# ----------------------------------------------------------------------
# random corruption -> Arthas recovery
# ----------------------------------------------------------------------
@given(
    n_items=st.integers(3, 12),
    victim_idx=st.integers(0, 100),
    bogus=st.sampled_from([0x3B9ACA00, 0x7FFFFFFF, 1]),
)
@settings(max_examples=20, deadline=None)
def test_arthas_recovers_random_chain_corruption(n_items, victim_idx, bogus):
    """Persist a wild next-pointer into a random node; the slice-driven
    purge must make the store operational again."""
    from tests.conftest import KV_SOURCE, KV_STRUCTS
    from repro.analysis import analyze_module
    from repro.checkpoint.manager import CheckpointManager
    from repro.instrument.passes import instrument_module
    from repro.instrument.tracer import PMTrace

    module = compile_module("prop-kv", KV_SOURCE, structs=KV_STRUCTS)
    analysis = analyze_module(module)
    guid_map, _ = instrument_module(module, analysis.pm)
    machine = Machine(module)
    manager = CheckpointManager(machine.pool, machine.allocator, machine.txman)
    manager.attach()
    trace = PMTrace()
    machine.tracer = trace.record

    root = machine.call("kv_init")
    for k in range(n_items):
        machine.call("kv_put", root, k, 100 + k)

    # corrupt one node's kn_next through the normal (persisting) path:
    # walk to the victim from the head
    head = machine.pool.read(root + 1)
    node = head
    for _ in range(victim_idx % n_items):
        node = machine.pool.read(node + 2)
    machine.pool.write(node + 2, bogus)
    machine.pool.persist(node + 2, 1)

    detector = Detector()
    probe = n_items + 99  # absent key: the walk must terminate cleanly
    outcome = detector.observe(
        machine, lambda: machine.call("kv_get", root, probe, step_budget=20000)
    )
    if outcome.ok:
        return  # bogus value happened to terminate the walk benignly

    plan = compute_plan(analysis, guid_map, trace, manager.log,
                        outcome.fault.iid)

    def reexec():
        machine.crash()
        return detector.observe(
            machine,
            lambda: machine.call("kv_get", root, probe, step_budget=20000),
        )

    reverter = Reverter(manager.log, machine.pool, machine.allocator,
                        reexec=reexec)
    result = reverter.mitigate_purge(plan)
    assert result.recovered


# ----------------------------------------------------------------------
# experiment determinism
# ----------------------------------------------------------------------
def test_experiments_are_deterministic():
    from repro.harness.experiment import run_experiment

    a = run_experiment("f11", "arthas", seed=3)
    b = run_experiment("f11", "arthas", seed=3)
    ma, mb = a.mitigation, b.mitigation
    assert (ma.recovered, ma.attempts, ma.reverted_updates,
            ma.duration_seconds) == (
        mb.recovered, mb.attempts, mb.reverted_updates, mb.duration_seconds
    )
