"""Unit and property tests for the PM allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, OutOfSpaceError
from repro.pmem.allocator import HEADER_WORDS, PMAllocator
from repro.pmem.pool import PM_BASE, PMPool


class TestAllocation:
    def test_zalloc_returns_in_pool(self, allocator):
        addr = allocator.zalloc(8)
        assert allocator.pool.contains(addr)
        assert allocator.is_allocated(addr)
        assert allocator.size_of(addr) == 8

    def test_zalloc_zero_fills_durably(self, allocator):
        addr = allocator.zalloc(4)
        assert all(allocator.pool.durable_read(addr + i) == 0 for i in range(4))

    def test_zalloc_reuses_freed_block_first_fit(self, allocator):
        a = allocator.zalloc(8)
        allocator.zalloc(8)
        allocator.free(a)
        b = allocator.zalloc(8)
        assert b == a

    def test_zalloc_clears_stale_cached_writes(self, allocator):
        a = allocator.zalloc(4)
        allocator.pool.write(a, 99)  # never persisted
        allocator.free(a)
        b = allocator.zalloc(4)
        assert b == a
        assert allocator.pool.read(b) == 0

    def test_invalid_size(self, allocator):
        with pytest.raises(AllocationError):
            allocator.zalloc(0)
        with pytest.raises(AllocationError):
            allocator.zalloc(-3)

    def test_out_of_space(self):
        allocator = PMAllocator(PMPool(HEADER_WORDS + 16))
        allocator.zalloc(16)
        with pytest.raises(OutOfSpaceError):
            allocator.zalloc(1)

    def test_free_unknown_raises(self, allocator):
        with pytest.raises(AllocationError):
            allocator.free(PM_BASE + HEADER_WORDS)

    def test_double_free_raises(self, allocator):
        a = allocator.zalloc(4)
        allocator.free(a)
        with pytest.raises(AllocationError):
            allocator.free(a)

    def test_coalescing_allows_big_realloc(self, allocator):
        blocks = [allocator.zalloc(8) for _ in range(4)]
        for b in blocks:
            allocator.free(b)
        big = allocator.zalloc(32)
        assert big == blocks[0]

    def test_site_tags(self, allocator):
        a = allocator.zalloc(4, site="g1")
        assert allocator.site_of(a) == "g1"
        allocator.free(a)
        assert allocator.site_of(a) is None


class TestRealloc:
    def test_realloc_copies_contents(self, allocator):
        a = allocator.zalloc(4)
        allocator.pool.durable_write(a, 11)
        allocator.pool.durable_write(a + 3, 44)
        b = allocator.realloc(a, 8)
        assert allocator.pool.read(b) == 11
        assert allocator.pool.read(b + 3) == 44
        assert not allocator.is_allocated(a)

    def test_realloc_fires_hooks(self, allocator):
        events = []
        allocator.add_realloc_hook(lambda o, n, w: events.append((o, n, w)))
        a = allocator.zalloc(4)
        b = allocator.realloc(a, 8)
        assert events == [(a, b, 8)]

    def test_realloc_unknown_raises(self, allocator):
        with pytest.raises(AllocationError):
            allocator.realloc(PM_BASE + HEADER_WORDS, 4)


class TestUnfree:
    def test_unfree_restores_allocation(self, allocator):
        a = allocator.zalloc(8)
        allocator.free(a)
        allocator.unfree(a, 8)
        assert allocator.is_allocated(a)
        assert allocator.size_of(a) == 8

    def test_unfree_is_idempotent_for_live_blocks(self, allocator):
        a = allocator.zalloc(8)
        allocator.unfree(a, 8)  # already live: no-op
        assert allocator.is_allocated(a)

    def test_unfree_fails_when_range_reused(self, allocator):
        x = allocator.zalloc(4)
        y = allocator.zalloc(4)
        allocator.free(x)
        allocator.free(y)
        z = allocator.zalloc(6)  # straddles x's and y's old ranges
        assert z == x
        with pytest.raises(AllocationError):
            allocator.unfree(y, 4)

    def test_unfree_splits_free_extent(self, allocator):
        a = allocator.zalloc(4)
        mid = allocator.zalloc(4)
        c = allocator.zalloc(4)
        allocator.free(a)
        allocator.free(mid)
        allocator.free(c)  # one big coalesced extent now
        allocator.unfree(mid, 4)
        assert allocator.is_allocated(mid)
        # neighbours are still allocatable
        assert allocator.zalloc(4) == a
        assert allocator.zalloc(4) == c


class TestRootAndHooks:
    def test_root_roundtrip(self, allocator):
        addr = allocator.zalloc(4)
        allocator.set_root(addr)
        assert allocator.root() == addr

    def test_root_survives_crash(self, allocator):
        addr = allocator.zalloc(4)
        allocator.set_root(addr)
        allocator.pool.crash()
        assert allocator.root() == addr

    def test_alloc_free_hooks(self, allocator):
        events = []
        allocator.add_alloc_hook(lambda a, n: events.append(("alloc", a, n)))
        allocator.add_free_hook(lambda a, n: events.append(("free", a, n)))
        a = allocator.zalloc(4)
        allocator.free(a)
        assert events == [("alloc", a, 4), ("free", a, 4)]

    def test_block_containing(self, allocator):
        a = allocator.zalloc(8)
        assert allocator.block_containing(a + 3) == (a, 8)
        assert allocator.block_containing(a + 8) != (a, 8)

    def test_usage_accounting(self, allocator):
        base = allocator.used_words()
        a = allocator.zalloc(10)
        assert allocator.used_words() == base + 10
        allocator.free(a)
        assert allocator.used_words() == base

    def test_export_import_meta(self, allocator):
        a = allocator.zalloc(4, site="s")
        meta = allocator.export_meta()
        fresh = PMAllocator(allocator.pool)
        fresh.import_meta(meta)
        assert fresh.is_allocated(a)
        assert fresh.site_of(a) == "s"


# ----------------------------------------------------------------------
# property: live blocks never overlap, and used + free == capacity
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 32)),
            st.tuples(st.just("free"), st.integers(0, 10)),
            st.tuples(st.just("realloc"), st.integers(1, 32)),
        ),
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_allocator_invariants(ops):
    allocator = PMAllocator(PMPool(1024))
    live = []
    for op, arg in ops:
        if op == "alloc":
            try:
                live.append(allocator.zalloc(arg))
            except OutOfSpaceError:
                pass
        elif op == "free" and live:
            allocator.free(live.pop(arg % len(live)))
        elif op == "realloc" and live:
            idx = arg % len(live)
            try:
                live[idx] = allocator.realloc(live[idx], arg)
            except OutOfSpaceError:
                pass
    blocks = sorted(allocator.allocations().items())
    for (a, n), (b, m) in zip(blocks, blocks[1:]):
        assert a + n <= b, "live blocks overlap"
    free_words = sum(length for _start, length in allocator._free)
    assert allocator.used_words() + free_words == allocator.capacity_words()
