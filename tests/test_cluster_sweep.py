"""Tests for the cluster fault sweep: promotion-healed convergence,
promoted-vs-quiesced digest equality, the rebuild rung at cluster
scale, and the committed-report drift check."""

import json

import pytest

from repro.harness.cluster_sweep import (
    CRASH_TARGET,
    DEFAULT_SWEEP_SEED,
    QUICK_CRASH_CELLS,
    QUICK_FIDS,
    _run_cell,
    check_against,
    run_cluster_sweep,
    target_shard,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_cluster_sweep(quick=True)


class TestQuickSweep:
    def test_all_cells_converge(self, quick_report):
        assert quick_report.all_converged
        for cell in quick_report.cells:
            assert cell.manifested, cell.cell_key
            assert cell.recovered and cell.demoted, cell.cell_key

    def test_digest_equality_across_modes(self, quick_report):
        # the promoted run (serving during mitigation) converged to the
        # byte-identical per-node state of the quiesced oracle run
        for cell in quick_report.cells:
            assert cell.digests_match, cell.cell_key
            assert len(cell.digests) == quick_report.n_nodes

    def test_causal_cut_and_serving(self, quick_report):
        for cell in quick_report.cells:
            assert cell.causal_cut_ok, cell.cell_key
            assert cell.serving_ok, cell.notes or cell.cell_key

    def test_quick_is_strict_subset_of_full_cells(self, quick_report):
        # the drift check depends on quick cells matching the committed
        # full sweep cell-for-cell: same key derivation, same seeds
        keys = [c.cell_key for c in quick_report.cells]
        want = [f"{fid}@n{target_shard(fid)}" for fid in QUICK_FIDS] + [
            f"f1@n{CRASH_TARGET}+{site}#{occ}"
            for site, occ in QUICK_CRASH_CELLS
        ]
        assert keys == want

    def test_heal_crash_cell_retried(self, quick_report):
        crash_cells = [c for c in quick_report.cells if c.site]
        assert crash_cells
        for cell in crash_cells:
            assert cell.crash_retries >= 1, cell.cell_key


class TestRebuildCell:
    def test_unmitigable_fault_recovers_via_rebuild(self):
        # f9 (cceh) defeats the arthas ladder under the delta engine —
        # full mirroring shifts the sick node's allocation layout, so
        # the supervised revert never clears the symptom — and the
        # cluster recovers anyway by re-replicating from replicas
        cell = _run_cell("f9", target_shard("f9"), DEFAULT_SWEEP_SEED)
        assert cell.manifested
        assert cell.recovered and cell.recovered_by == "rebuild"
        assert cell.converged, cell.notes


class TestDriftCheck:
    def test_matches_itself(self, quick_report):
        committed = json.loads(json.dumps(quick_report.to_json()))
        assert check_against(quick_report, committed) == []

    def test_flags_contract_drift(self, quick_report):
        committed = json.loads(json.dumps(quick_report.to_json()))
        committed["cells"][0]["recovered"] = False
        problems = check_against(quick_report, committed)
        assert any("drifted on recovered" in p for p in problems)

    def test_flags_missing_cell_and_config_mismatch(self, quick_report):
        committed = json.loads(json.dumps(quick_report.to_json()))
        committed["cells"] = committed["cells"][1:]
        problems = check_against(quick_report, committed)
        assert any("missing from committed report" in p for p in problems)
        committed["sweep_seed"] = DEFAULT_SWEEP_SEED + 1
        problems = check_against(quick_report, committed)
        assert problems == [
            f"sweep_seed mismatch: committed {DEFAULT_SWEEP_SEED + 1} "
            f"vs {DEFAULT_SWEEP_SEED}"
        ]

    def test_committed_report_is_current(self, quick_report):
        # the repo's committed sweep must cover the quick cells exactly
        # as they run today — the CI drift job's contract
        with open("results/cluster_sweep.json") as f:
            committed = json.load(f)
        assert check_against(quick_report, committed) == []
        assert committed["all_converged"]
        assert committed["cells_total"] >= 28
