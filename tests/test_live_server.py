"""Live-traffic recovery server: quarantine scoping and serving safety.

The server's contract (see ``repro/reactor/server.py``) is that serving
traffic *through* a mitigation window must be invisible in the durable
state — the pool digest after mitigation is byte-identical whether the
stream kept flowing or the server quiesced — and that no request served
during a window ever observes a mid-rollback value, because window
reads come from the view (oracle snapshot + deferred-write overlay) and
never touch the pool.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.faultinject import InjectionPlan, InjectionSpec
from repro.reactor.server import KeyTouchIndex, LiveRecoveryServer, RangeLockTable
from repro.workloads.ycsb import zipf_keys

#: small-but-real serving config used by every server test: the stream
#: is long enough to cross trigger -> detection -> mitigation -> release
#: and short enough to keep the suite fast.  The arrival period is
#: deliberately unsustainable — correctness is keyed to request *index*,
#: never to wall time, so a backlogged loop must change nothing.
CONFIG = dict(keyspace=128, detect_every=8, release_after=96)
N_REQUESTS = 240
PERIOD = 0.0005

ALL_FIDS = [f"f{i}" for i in range(1, 13)]


def _run(fid: str, mode: str, **kw) -> LiveRecoveryServer:
    server = LiveRecoveryServer(fid, mode=mode, seed=0, **CONFIG, **kw)
    server.report = server.run_sync(N_REQUESTS, arrival_period_s=PERIOD)
    return server


# ----------------------------------------------------------------------
# range-lock table + key join
# ----------------------------------------------------------------------
def test_range_lock_table_merges_overlapping_ranges():
    table = RangeLockTable()
    table.lock(10, 20)
    table.lock(40, 50)
    assert table.ranges() == ((10, 20), (40, 50))
    table.lock(15, 45)  # bridges both
    assert table.ranges() == ((10, 50),)
    assert len(table) == 1
    assert table.locked_words == 40


def test_range_lock_table_covers_and_overlaps():
    table = RangeLockTable()
    table.lock(100, 110)
    assert table.covers(100) and table.covers(109)
    assert not table.covers(99) and not table.covers(110)
    assert table.overlaps(105, 200)
    assert table.overlaps(90, 101)
    assert not table.overlaps(110, 120)  # half-open: no touch
    table.clear()
    assert table.ranges() == () and table.locked_words == 0


def test_key_touch_index_skips_structural_words():
    index = KeyTouchIndex()
    for key in range(10):
        # every key writes the shared word 1000 plus its own block
        index.note(key, {1000, 2000 + key * 4})
    keys = index.keys_in_ranges([(999, 2100)], structural_threshold=4)
    # the shared word nominates nobody; the per-key blocks still do
    assert keys == set(range(10))
    all_keys = index.keys_in_ranges([(999, 1001)], structural_threshold=None)
    assert all_keys == set(range(10))
    none = index.keys_in_ranges([(999, 1001)], structural_threshold=4)
    assert none == set()


# ----------------------------------------------------------------------
# zipf CDF cache
# ----------------------------------------------------------------------
@pytest.mark.parametrize("keyspace,theta", [(64, 0.9), (512, 0.99), (32, 0.0)])
def test_zipf_cache_draws_identical_keys(keyspace, theta):
    for seed in (0, 7, 123):
        cached = zipf_keys(500, keyspace, theta, seed)
        fresh = zipf_keys(500, keyspace, theta, seed, use_cache=False)
        assert cached == fresh


# ----------------------------------------------------------------------
# digest determinism: live stream vs quiesced mitigation
# ----------------------------------------------------------------------
def test_live_stream_digest_matches_quiesced_mitigation():
    live = _run("f1", "quarantine")
    quiesced = _run("f1", "quiesced")
    assert live.mitigation_runs and quiesced.mitigation_runs
    assert live.digest_after_mitigation == quiesced.digest_after_mitigation
    assert live.report["final_digest"] == quiesced.report["final_digest"]
    assert not live._unavailable and not quiesced._unavailable


def test_injected_crash_mid_mitigation_live_vs_quiesced():
    # the mitigation worker crashes at the first reversion cut; the
    # crash-retry supervisor restarts it.  A live stream through the
    # crashed-and-retried window must still land on the quiesced digest.
    def plan():
        return InjectionPlan([InjectionSpec("revert.cut", 1, "crash")])

    live = _run("f1", "quarantine", inject_plan=plan())
    quiesced = _run("f1", "quiesced", inject_plan=plan())
    assert live.mitigation_runs and quiesced.mitigation_runs
    assert live.mitigation_runs[0].recovered
    assert live.digest_after_mitigation == quiesced.digest_after_mitigation


# ----------------------------------------------------------------------
# no mid-rollback values: window serving never reads the pool
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fid", ALL_FIDS)
def test_no_mid_rollback_value_observed(fid):
    server = LiveRecoveryServer(fid, mode="quarantine", seed=0, **CONFIG)

    # spy on the only keyed pool-read path the serving loop could use
    loop_ident = threading.get_ident()
    pool_reads = []
    orig_lookup = server.adapter.lookup

    def spying_lookup(key):
        pool_reads.append((time.perf_counter(), threading.get_ident(), key))
        return orig_lookup(key)

    server.adapter.lookup = spying_lookup
    server.run_sync(N_REQUESTS, arrival_period_s=PERIOD)

    if not server._windows:
        # scenario never manifested under this stream (e.g. silent-loss
        # faults): nothing was served through a window, nothing to check
        assert not any(r.during_mitigation for r in server.records)
        return

    # (a) the event loop never read the pool while a window was open —
    # every in-window lookup belongs to the mitigation worker thread
    for when, ident, _key in pool_reads:
        if any(s <= when <= e for s, e in server._windows):
            assert ident != loop_ident, (
                "serving loop read the pool mid-mitigation"
            )

    # (b) every OK response during the (single) window is explainable
    # without the pool: the pre-window view value or an earlier deferred
    # write in the same window (read-your-writes) — never anything else,
    # so never an intermediate rollback state
    if len(server._windows) == 1:
        win_writes = {}
        for rec in sorted(server.records, key=lambda r: r.index):
            if not rec.during_mitigation:
                continue
            if rec.status == "deferred":
                win_writes[rec.key] = rec.value  # -1 for a DELETE
            elif rec.kind == "GET" and rec.status == "ok":
                expected = win_writes.get(
                    rec.key, server.view_snapshot.get(rec.key, -1)
                )
                assert rec.value == expected, (
                    f"{fid}: GET({rec.key}) saw {rec.value}, "
                    f"expected {expected}"
                )

    # (c) quarantined responses only ever name quarantined keys, and
    # carry a usable retry hint
    for rec in server.records:
        if rec.status == "quarantined":
            assert rec.key in server.quarantined_keys
            assert rec.retry_after_s >= 0.0


# ----------------------------------------------------------------------
# report plumbing
# ----------------------------------------------------------------------
def test_report_surfaces_reactor_accounting_and_budget():
    server = _run("f1", "quarantine")
    report = server._report(N_REQUESTS, PERIOD, 0.0)
    assert report["reactor"]["plan_requests"] >= 1
    assert report["mitigation"]["reactor_requests"] >= 1
    assert report["mitigation"]["analysis_seconds"] >= 0.0
    budget = report["error_budget"]
    assert budget["burned"] == (
        budget["quarantined_responses"]
        + budget["fault_responses"]
        + budget["unavailable_responses"]
    )
    assert len(report["quarantine"]["stream_keys"]) < server.keyspace
