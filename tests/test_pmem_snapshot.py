"""Tests for whole-pool snapshot/restore (the pmCRIU substrate)."""

from repro.pmem.pool import PM_BASE, PMPool
from repro.pmem.snapshot import restore_snapshot, take_snapshot


def test_snapshot_restore_roundtrip(pool, allocator):
    a = allocator.zalloc(4)
    pool.write(a, 7)
    pool.persist(a, 1)
    snap = take_snapshot(pool, allocator, taken_at=12.5, label="ckpt1")
    pool.write(a, 99)
    pool.persist(a, 1)
    b = allocator.zalloc(4)
    restore_snapshot(pool, snap, allocator)
    assert pool.read(a) == 7
    assert allocator.is_allocated(a)
    assert not allocator.is_allocated(b)
    assert snap.taken_at == 12.5
    assert snap.label == "ckpt1"


def test_snapshot_excludes_unpersisted_writes(pool, allocator):
    a = allocator.zalloc(2)
    pool.write(a, 5)  # buffered only
    snap = take_snapshot(pool, allocator)
    pool.crash()
    restore_snapshot(pool, snap, allocator)
    assert pool.read(a) == 0


def test_snapshot_size_counts_nonzero_words(pool):
    pool.durable_write(PM_BASE + 1, 5)
    pool.durable_write(PM_BASE + 2, 6)
    snap = take_snapshot(pool)
    assert snap.size_words() == 2


def test_restore_clears_later_state(pool):
    snap = take_snapshot(pool)
    pool.durable_write(PM_BASE + 3, 9)
    restore_snapshot(pool, snap)
    assert pool.read(PM_BASE + 3) == 0


# ----------------------------------------------------------------------
# dirty-word epoch snapshots (the incremental-probe substrate)
# ----------------------------------------------------------------------

import pytest

from repro.errors import PoolError
from repro.pmem.snapshot import (
    restore_epoch_snapshot,
    take_epoch_snapshot,
)


def test_epoch_snapshot_restores_only_dirty_words(pool, allocator):
    a = allocator.zalloc(8)
    for i in range(8):
        pool.write(a + i, 10 + i)
    pool.persist(a, 8)
    snap = take_epoch_snapshot(pool, allocator, taken_at=3.0, label="ep")
    # mutate a small subset; the epoch only tracks those words
    pool.write(a + 2, 999)
    pool.persist(a + 2, 1)
    pool.durable_write(a + 5, 888)
    assert snap.dirty_words(pool) == 2
    restored = restore_epoch_snapshot(pool, snap, allocator)
    assert restored == 2
    assert [pool.read(a + i) for i in range(8)] == list(range(10, 18))
    assert snap.taken_at == 3.0 and snap.label == "ep"


def test_epoch_restore_matches_full_snapshot_restore(pool, allocator):
    """Epoch undo and full restore leave *identical* durable dicts —
    including the absent-vs-explicit-zero distinction."""
    a = allocator.zalloc(6)
    pool.durable_write(a, 1)
    pool.durable_write(a + 1, 0)  # explicit zero entry stays an entry
    full = take_snapshot(pool, allocator)
    epoch = take_epoch_snapshot(pool, allocator)
    pool.durable_write(a, 7)
    pool.durable_write(a + 1, 7)
    pool.durable_write(a + 2, 7)  # previously absent
    restore_epoch_snapshot(pool, epoch, allocator)
    after_epoch = pool.durable_items()
    pool.durable_write(a, 7)
    pool.durable_write(a + 1, 7)
    pool.durable_write(a + 2, 7)
    restore_snapshot(pool, full, allocator)
    assert pool.durable_items() == after_epoch


def test_epoch_undo_is_lifo_only(pool):
    outer = pool.open_epoch()
    inner = pool.open_epoch()
    with pytest.raises(PoolError):
        pool.epoch_undo(outer)
    pool.epoch_undo(inner)
    pool.epoch_undo(outer)
    with pytest.raises(PoolError):
        pool.epoch_undo(outer)  # already closed


def test_nested_epoch_undo_restores_each_level(pool):
    addr = PM_BASE + 10
    pool.durable_write(addr, 1)
    outer = pool.open_epoch()
    pool.durable_write(addr, 2)
    inner = pool.open_epoch()
    pool.durable_write(addr, 3)
    pool.epoch_undo(inner)
    assert pool.read(addr) == 2
    pool.epoch_undo(outer)
    assert pool.read(addr) == 1


def test_epoch_undo_keep_open_continues_tracking(pool):
    addr = PM_BASE + 20
    tok = pool.open_epoch()
    pool.durable_write(addr, 5)
    pool.epoch_undo(tok, close=False)
    assert pool.read(addr) == 0
    pool.durable_write(addr, 6)
    assert pool.epoch_dirty_words(tok) == 1
    pool.epoch_undo(tok)
    assert pool.read(addr) == 0


def test_epoch_snapshot_captures_allocator_meta(pool, allocator):
    a = allocator.zalloc(4)
    snap = take_epoch_snapshot(pool, allocator)
    b = allocator.zalloc(4)
    allocator.free(a)
    restore_epoch_snapshot(pool, snap, allocator)
    assert allocator.is_allocated(a)
    assert not allocator.is_allocated(b)
