"""Tests for whole-pool snapshot/restore (the pmCRIU substrate)."""

from repro.pmem.pool import PM_BASE, PMPool
from repro.pmem.snapshot import restore_snapshot, take_snapshot


def test_snapshot_restore_roundtrip(pool, allocator):
    a = allocator.zalloc(4)
    pool.write(a, 7)
    pool.persist(a, 1)
    snap = take_snapshot(pool, allocator, taken_at=12.5, label="ckpt1")
    pool.write(a, 99)
    pool.persist(a, 1)
    b = allocator.zalloc(4)
    restore_snapshot(pool, snap, allocator)
    assert pool.read(a) == 7
    assert allocator.is_allocated(a)
    assert not allocator.is_allocated(b)
    assert snap.taken_at == 12.5
    assert snap.label == "ckpt1"


def test_snapshot_excludes_unpersisted_writes(pool, allocator):
    a = allocator.zalloc(2)
    pool.write(a, 5)  # buffered only
    snap = take_snapshot(pool, allocator)
    pool.crash()
    restore_snapshot(pool, snap, allocator)
    assert pool.read(a) == 0


def test_snapshot_size_counts_nonzero_words(pool):
    pool.durable_write(PM_BASE + 1, 5)
    pool.durable_write(PM_BASE + 2, 6)
    snap = take_snapshot(pool)
    assert snap.size_words() == 2


def test_restore_clears_later_state(pool):
    snap = take_snapshot(pool)
    pool.durable_write(PM_BASE + 3, 9)
    restore_snapshot(pool, snap)
    assert pool.read(PM_BASE + 3) == 0
