"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.lang.compiler import compile_module
from repro.lang.interp import Machine
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PMPool
from repro.pmem.tx import TransactionManager

#: a small linked-list key-value program used by many compiler/analysis
#: tests — large enough to exercise loops, calls, structs and PM flows
KV_STRUCTS = {
    "kvroot": ["kv_count", "kv_head"],
    "kvnode": ["kn_key", "kn_value", "kn_next"],
}

KV_SOURCE = '''
def kv_init():
    root = get_root()
    if root == 0:
        root = pm_alloc(sizeof("kvroot"))
        root.kv_count = 0
        root.kv_head = 0
        persist(root, sizeof("kvroot"))
        set_root(root)
    return root


def kv_put(root, key, value):
    node = pm_alloc(sizeof("kvnode"))
    node.kn_key = key
    node.kn_value = value
    node.kn_next = root.kv_head
    persist(node, sizeof("kvnode"))
    root.kv_head = node
    root.kv_count = root.kv_count + 1
    persist(addr(root.kv_head), 1)
    persist(addr(root.kv_count), 1)
    return node


def kv_get(root, key):
    node = root.kv_head
    while node != 0:
        if node.kn_key == key:
            return node.kn_value
        node = node.kn_next
    return -1


def kv_delete(root, key):
    node = root.kv_head
    prev = 0
    while node != 0:
        if node.kn_key == key:
            if prev == 0:
                root.kv_head = node.kn_next
                persist(addr(root.kv_head), 1)
            else:
                prev.kn_next = node.kn_next
                persist(addr(prev.kn_next), 1)
            root.kv_count = root.kv_count - 1
            persist(addr(root.kv_count), 1)
            pm_free(node)
            return 1
        prev = node
        node = node.kn_next
    return 0


def kv_count(root):
    return root.kv_count


def __driver__():
    root = kv_init()
    kv_put(root, 1, 2)
    kv_get(root, 1)
    kv_delete(root, 1)
    kv_count(root)
    return 0
'''


@pytest.fixture
def pool():
    return PMPool(4096, name="testpool")


@pytest.fixture
def allocator(pool):
    return PMAllocator(pool)


@pytest.fixture
def txman(pool):
    return TransactionManager(pool)


@pytest.fixture(scope="session")
def kv_module():
    return compile_module("kv", KV_SOURCE, structs=KV_STRUCTS)


@pytest.fixture
def kv_machine(kv_module):
    return Machine(kv_module, pool_size=4096)


def compile_and_run(source, fname, *args, structs=None, pool_size=4096, seed=0):
    """Compile a one-off PMLang program and run one function."""
    module = compile_module("t", source, structs=structs or {})
    machine = Machine(module, pool_size=pool_size, seed=seed)
    return machine.call(fname, *args), machine
