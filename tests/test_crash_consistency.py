"""Crash-consistency sweeps over the target systems.

The paper distinguishes hard faults from crash-consistency bugs
(Section 8) and *assumes* the systems' transactional updates are
crash-consistent ("we assume their persistence program points are
properly synchronized").  These tests validate that assumption for our
PMLang systems by injecting a crash at every step of an operation and
checking the recovered state is either pre- or post-operation — the
standard exhaustive crash-point sweep.
"""

import pytest

from repro.errors import InjectedCrash, Trap
from repro.systems.cceh import CCEHAdapter
from repro.systems.memcached import MemcachedAdapter
from repro.systems.pmemkv import PmemkvAdapter
from repro.systems.redis import RedisAdapter


class _CrashAfterSteps:
    """Injection-free crash driver: run a call with a step budget of N
    and treat the budget trap as the crash point."""

    def __init__(self, adapter):
        self.adapter = adapter

    def run_with_crash(self, steps, fname, *args):
        """Execute fname(*args), crashing the process after ``steps``."""
        try:
            self.adapter.machine.call(fname, *args, step_budget=steps)
            return "completed"
        except Trap:
            self.adapter.restart()
            self.adapter.recover()
            return "crashed"


def _sweep(adapter, fname, args, check, max_steps=4000, stride=7):
    """Crash at many points through one operation; validate each time."""
    driver = _CrashAfterSteps(adapter)
    completed = False
    for steps in range(1, max_steps, stride):
        status = driver.run_with_crash(steps, fname, *args)
        check(status)
        if status == "completed":
            completed = True
            break
        # undo any partial effect a *completed-under-budget* retry left:
        # each iteration starts from the recovered state, as a real
        # operator retry would
    assert completed, "operation never completed within the sweep budget"


@pytest.mark.parametrize("stride", [3, 11])
def test_memcached_insert_is_crash_atomic(stride):
    mc = MemcachedAdapter()
    mc.start()
    for k in range(10):
        mc.insert(k, 100 + k)
    base_count = 10

    def check(status):
        count = mc.count_items()
        scanned = mc.call("mc_scan", mc.root, count + 32)
        assert scanned == count, "chain/count must stay coherent"
        # the new key is either fully present or fully absent
        value = mc.lookup(99)
        assert value in (-1, 4242)

    _sweep(mc, "mc_set", (mc.root, 99, 4242), check, stride=stride)
    assert mc.lookup(99) == 4242
    assert mc.count_items() == base_count + 1


def test_memcached_delete_is_crash_atomic():
    mc = MemcachedAdapter()
    mc.start()
    for k in range(10):
        mc.insert(k, 100 + k)

    def check(status):
        count = mc.count_items()
        scanned = mc.call("mc_scan", mc.root, count + 32)
        assert scanned == count
        assert mc.lookup(4) in (-1, 104)

    _sweep(mc, "mc_delete", (mc.root, 4), check)
    assert mc.lookup(4) == -1


def test_redis_set_is_crash_atomic():
    rd = RedisAdapter()
    rd.start()
    for k in range(8):
        rd.insert(k, k)

    def check(status):
        count = rd.count_items()
        scanned = rd.call("rd_scan", rd.root, count + 32)
        assert scanned == count
        assert rd.lookup(50) in (-1, 7)

    _sweep(rd, "rd_set", (rd.root, 50, 7), check)
    assert rd.lookup(50) == 7


def test_cceh_insert_is_crash_atomic_without_injection():
    cc = CCEHAdapter()
    cc.start()
    for k in range(12):
        cc.insert(k, k)

    def check(status):
        assert cc.call("cc_meta_ok", cc.root) == 1
        assert cc.lookup(100) in (-1, 5)

    _sweep(cc, "cc_insert", (cc.root, 100, 5), check)
    assert cc.lookup(100) == 5


def test_cceh_doubling_crash_is_the_known_f9_exception():
    """The one deliberate crash-consistency hole: the f9 injected crash
    between the directory swap and the depth bump leaves inconsistent
    metadata.  The sweep above cannot hit it (the gap is a nop with both
    sides in transactions); only the targeted injection does."""
    cc = CCEHAdapter()
    cc.start()
    iid = cc.double_crash_iid()
    cc.machine.add_injection(
        iid,
        lambda m, t, i: (_ for _ in ()).throw(
            InjectedCrash("untimely", location=i.location())
        ),
    )
    wedged = False
    for key in range(2000):
        try:
            cc.insert(key, key)
        except InjectedCrash:
            wedged = True
            break
    assert wedged
    cc.restart()
    cc.recover()
    assert cc.call("cc_meta_ok", cc.root) == 0


def test_pmemkv_put_is_crash_atomic():
    pk = PmemkvAdapter()
    pk.start()
    for k in range(8):
        pk.insert(k, k)

    def check(status):
        count = pk.count_items()
        scanned = pk.call("pk_scan", pk.root, count + 32)
        assert scanned == count
        assert pk.lookup(70) in (-1, 9)

    _sweep(pk, "pk_put", (pk.root, 70, 9), check)
    assert pk.lookup(70) == 9
