"""Tests for the mini-Redis target system and its seeded bugs."""

import pytest

from repro.errors import AssertTrap, SegfaultTrap
from repro.systems.redis import RedisAdapter


@pytest.fixture
def rd():
    adapter = RedisAdapter()
    adapter.start()
    return adapter


class TestBasicOps:
    def test_set_get_delete(self, rd):
        rd.insert(1, 11)
        assert rd.lookup(1) == 11
        assert rd.delete(1) == 1
        assert rd.lookup(1) == -1

    def test_getset_returns_old_value(self, rd):
        rd.insert(1, 11)
        assert rd.getset(1, 22) == 11
        assert rd.lookup(1) == 22

    def test_copy_shares_object(self, rd):
        rd.insert(1, 11)
        assert rd.copy(2, 1) == 1
        assert rd.lookup(2) == 11
        assert rd.count_items() == 2

    def test_listpack_push_and_range(self, rd):
        rd.lpush(100, 3, 7)
        rd.lpush(100, 2, 9)
        assert rd.lrange(100) == 3 * 7 + 2 * 9

    def test_listpack_grows_via_realloc(self, rd):
        for _ in range(10):
            rd.lpush(100, 10, 1)  # exceeds the initial 64-word capacity
        assert rd.lrange(100) == 100
        assert rd.consistency_violations() == []

    def test_slowlog_trim_keeps_bound(self, rd):
        for i in range(20):
            rd.slow_op(100 + i)
        assert rd.call("rd_slowlen", rd.root) <= 9

    def test_restart_preserves_data(self, rd):
        rd.insert(1, 11)
        rd.lpush(100, 2, 5)
        rd.restart()
        rd.recover()
        assert rd.lookup(1) == 11
        assert rd.lrange(100) == 10


class TestSeededBugs:
    def test_f6_large_element_corrupts_neighbour_listpack(self, rd):
        from repro.errors import Trap

        rd.lpush(100, 3, 7)
        rd.lpush(101, 3, 11)   # physically after 100's block
        assert rd.lpush(100, 300, 900_000_000) == 1  # wrapped check passes
        # the spill breaks invariants — checking them either reports
        # violations or crashes outright on the corrupt structures
        try:
            assert rd.consistency_violations()
        except Trap:
            pass
        with pytest.raises(SegfaultTrap):
            rd.lrange(101)

    def test_f7_double_decrement_panics_shared_object(self, rd):
        rd.insert(1, 11)
        rd.copy(2, 1)
        rd.getset(1, 22)  # double-decrements the shared object
        with pytest.raises(AssertTrap):
            rd.lookup(2)
        # persistent: recurs after restart
        rd.restart()
        rd.recover()
        with pytest.raises(AssertTrap):
            rd.lookup(2)

    def test_f8_trim_leaks_blocks(self, rd):
        used_before = rd.allocator.used_words()
        expected_growth = 0
        for i in range(40):
            rd.slow_op(i)
        # bounded list (8 entries) but unbounded allocation growth
        live_words = rd.call("rd_slowlen", rd.root) * 3
        leaked = rd.allocator.used_words() - used_before - live_words
        assert leaked >= 30 * 3  # ~32 unlinked-but-unfreed entries
