"""Tests for CFG construction, post-dominators and control dependence."""

from repro.analysis.cfg import VIRTUAL_EXIT, FunctionCFG
from repro.lang.compiler import compile_module


def _cfg(src, fname="f"):
    module = compile_module("t", src)
    return module, FunctionCFG(module.functions[fname])


def test_straight_line_has_no_control_deps():
    module, cfg = _cfg("def f(a):\n    b = a + 1\n    return b\n")
    cd = cfg.control_dependences()
    assert all(not deps for deps in cd.values())


def test_if_branch_controls_then_block():
    src = (
        "def f(a):\n"
        "    x = 0\n"
        "    if a:\n        x = 1\n"
        "    return x\n"
    )
    module, cfg = _cfg(src)
    cd = cfg.control_dependences()
    controlled = {block for block, deps in cd.items() if deps}
    assert any(b.startswith("then") for b in controlled)
    # the join block runs regardless: not control dependent
    assert not any(b.startswith("join") for b in controlled)


def test_if_else_both_arms_controlled():
    src = (
        "def f(a):\n"
        "    if a:\n        x = 1\n"
        "    else:\n        x = 2\n"
        "    return x\n"
    )
    module, cfg = _cfg(src)
    cd = cfg.control_dependences()
    controlled = {b for b, deps in cd.items() if deps}
    assert any(b.startswith("then") for b in controlled)
    assert any(b.startswith("else") for b in controlled)


def test_loop_body_controlled_by_loop_header():
    src = (
        "def f(n):\n"
        "    s = 0\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        s = s + i\n"
        "        i = i + 1\n"
        "    return s\n"
    )
    module, cfg = _cfg(src)
    cd = cfg.control_dependences()
    body_deps = {b: deps for b, deps in cd.items() if b.startswith("body")}
    assert body_deps
    # the controlling block is the loop header holding the cbr
    for deps in body_deps.values():
        assert any(d.startswith("loop") for d in deps)


def test_loop_header_self_dependence():
    src = (
        "def f(n):\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        i = i + 1\n"
        "    return i\n"
    )
    module, cfg = _cfg(src)
    cd = cfg.control_dependences()
    loop_blocks = [b for b in cd if b.startswith("loop")]
    assert loop_blocks
    # the header re-executes only if the branch took the body: the header
    # is control dependent on itself
    assert any(b in cd[b] for b in loop_blocks)


def test_postdominators_computed_for_all_blocks():
    src = (
        "def f(a):\n"
        "    if a:\n        return 1\n"
        "    else:\n        return 2\n"
    )
    module, cfg = _cfg(src)
    ipdom = cfg.immediate_postdominators()
    for label in module.functions["f"].block_order:
        assert label in ipdom

def test_reachable_blocks():
    src = "def f(a):\n    if a:\n        return 1\n    return 2\n"
    module, cfg = _cfg(src)
    reachable = cfg.reachable_blocks()
    assert "entry" in reachable


def test_successors_and_preds_consistent():
    src = (
        "def f(n):\n"
        "    s = 0\n"
        "    for i in range(n):\n        s += i\n"
        "    return s\n"
    )
    module, cfg = _cfg(src)
    for label, succs in cfg.succs.items():
        for s in succs:
            assert label in cfg.preds[s]
