"""Tests for GUID assignment, metadata files and the runtime tracer."""

from repro.analysis import analyze_module
from repro.instrument.guids import GuidMap, guid_for
from repro.instrument.passes import instrument_module, uninstrument_module
from repro.instrument.tracer import PMTrace
from repro.lang.interp import Machine


def test_instrument_marks_exactly_pm_instrs(kv_module):
    res = analyze_module(kv_module)
    guid_map, seconds = instrument_module(kv_module, res.pm)
    marked = {i.iid for i in kv_module.instructions() if i.guid is not None}
    assert marked == res.pm.pm_instr_iids
    assert len(guid_map) == len(marked)
    assert seconds >= 0


def test_guid_roundtrip(kv_module):
    res = analyze_module(kv_module)
    guid_map, _ = instrument_module(kv_module, res.pm)
    for instr in kv_module.instructions():
        if instr.guid is not None:
            assert guid_map.iid_of(instr.guid) == instr.iid
            assert guid_map.guid_of(instr.iid) == instr.guid
            entry = guid_map.entry(instr.guid)
            assert entry.op == instr.op
            assert entry.location == instr.location()


def test_metadata_file_roundtrip(kv_module, tmp_path):
    res = analyze_module(kv_module)
    guid_map, _ = instrument_module(kv_module, res.pm)
    path = tmp_path / "guids.json"
    guid_map.save(str(path))
    loaded = GuidMap.load(str(path))
    assert len(loaded) == len(guid_map)
    some = next(i for i in kv_module.instructions() if i.guid)
    assert loaded.iid_of(some.guid) == some.iid


def test_uninstrument_strips_guids(kv_module):
    res = analyze_module(kv_module)
    instrument_module(kv_module, res.pm)
    uninstrument_module(kv_module)
    assert all(i.guid is None for i in kv_module.instructions())
    # re-instrument for other tests sharing the session module
    instrument_module(kv_module, res.pm)


def test_trace_records_pm_addresses(kv_module):
    res = analyze_module(kv_module)
    instrument_module(kv_module, res.pm)
    trace = PMTrace(flush_threshold=4)
    machine = Machine(kv_module)
    machine.tracer = trace.record
    root = machine.call("kv_init")
    machine.call("kv_put", root, 1, 10)
    machine.call("kv_get", root, 1)
    trace.flush()
    assert len(trace.records) > 0
    assert trace.addresses_for_guid(guid_for("kv", next(
        i for i in kv_module.functions["kv_put"].instructions() if i.op == "alloc"
    )))


def test_trace_buffering_and_crash():
    trace = PMTrace(flush_threshold=100)
    trace.record("g1", 0x1000)
    assert len(trace.records) == 0  # buffered
    assert len(trace) == 1
    trace.crash()
    assert len(trace) == 0  # buffered records lost, like a real crash
    trace.record("g1", 0x1000)
    trace.record("g1", 0x2000)
    trace.flush()
    assert trace.addresses_for_guid("g1") == {0x1000, 0x2000}
    assert trace.guids_for_address(0x1000) == {"g1"}
    assert trace.addresses_for_guids(["g1", "gX"]) == {0x1000, 0x2000}


def test_trace_auto_flush_at_threshold():
    trace = PMTrace(flush_threshold=2)
    trace.record("a", 1)
    trace.record("b", 2)  # hits the threshold
    assert len(trace.records) == 2
