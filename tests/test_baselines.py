"""Tests for the pmCRIU and ArCkpt baselines."""

from repro.baselines.arckpt import ArCkpt
from repro.baselines.pmcriu import PmCRIU
from repro.checkpoint.log import CheckpointLog
from repro.detector.monitor import RunOutcome
from repro.pmem.allocator import PMAllocator
from repro.pmem.pool import PM_BASE, PMPool


def _stack():
    pool = PMPool(2048)
    allocator = PMAllocator(pool)
    return pool, allocator


class TestPmCRIU:
    def test_snapshot_interval(self):
        pool, allocator = _stack()
        criu = PmCRIU(pool, allocator, interval_seconds=60.0)
        assert criu.maybe_snapshot(0.0)
        assert not criu.maybe_snapshot(30.0)
        assert criu.maybe_snapshot(61.0)
        assert criu.snapshot_count() == 2

    def test_mitigate_restores_newest_good_snapshot(self):
        pool, allocator = _stack()
        a = allocator.zalloc(1)
        criu = PmCRIU(pool, allocator, interval_seconds=10.0)
        pool.durable_write(a, 1)
        criu.maybe_snapshot(0.0)  # snapshot: a == 1
        pool.durable_write(a, 2)
        criu.maybe_snapshot(20.0)  # snapshot: a == 2 (contains the bug)
        pool.durable_write(a, 3)

        def reexec():
            # "recovered" when the bad value 2 and later are gone
            return RunOutcome(ok=pool.durable_read(a) < 2)

        result = criu.mitigate(reexec)
        assert result.recovered
        assert result.attempts == 2
        assert pool.durable_read(a) == 1

    def test_mitigate_falls_back_to_initial_image(self):
        pool, allocator = _stack()
        a = allocator.zalloc(1)
        criu = PmCRIU(pool, allocator, interval_seconds=10.0)
        pool.durable_write(a, 9)
        criu.maybe_snapshot(0.0)  # bug already present

        def reexec():
            return RunOutcome(ok=pool.durable_read(a) == 0)

        result = criu.mitigate(reexec)
        assert result.recovered
        assert result.attempts == 2  # bad snapshot, then pristine image

    def test_mitigate_gives_up_when_nothing_helps(self):
        pool, allocator = _stack()
        criu = PmCRIU(pool, allocator)
        criu.maybe_snapshot(0.0)
        result = criu.mitigate(lambda: RunOutcome(ok=False))
        assert not result.recovered


class TestArCkpt:
    def test_reverts_newest_first(self):
        pool, allocator = _stack()
        log = CheckpointLog()
        a = allocator.zalloc(1)
        for v in (1, 2, 3):
            pool.durable_write(a, v)
            log.record_update(a, 1, [v])
        arckpt = ArCkpt(log, pool, allocator)

        def reexec():
            return RunOutcome(ok=pool.durable_read(a) == 2)

        result = arckpt.mitigate(reexec)
        assert result.recovered
        assert result.attempts == 1
        assert pool.durable_read(a) == 2

    def test_times_out_on_deep_root_cause(self):
        pool, allocator = _stack()
        log = CheckpointLog()
        a = allocator.zalloc(1)
        bad = allocator.zalloc(1)
        pool.durable_write(bad, 666)
        log.record_update(bad, 1, [666])
        for v in range(40):
            pool.durable_write(a, v)
            log.record_update(a, 1, [v])
        arckpt = ArCkpt(log, pool, allocator)
        result = arckpt.mitigate(
            lambda: RunOutcome(ok=pool.durable_read(bad) == 0),
            max_attempts=10,
        )
        assert not result.recovered
        assert result.timed_out
