"""Tests for workload generators."""

from repro.workloads.generators import MixedWorkload, Op, OpKind
from repro.workloads.ycsb import YCSBWorkload, zipf_keys


class TestMixedWorkload:
    def test_deterministic_for_seed(self):
        a = list(MixedWorkload(seed=5).ops(100))
        b = list(MixedWorkload(seed=5).ops(100))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(MixedWorkload(seed=1).ops(100))
        b = list(MixedWorkload(seed=2).ops(100))
        assert a != b

    def test_mix_ratios_roughly_hold(self):
        ops = list(MixedWorkload(seed=3, insert_ratio=0.5, get_ratio=0.4).ops(1000))
        inserts = sum(1 for o in ops if o.kind is OpKind.INSERT)
        gets = sum(1 for o in ops if o.kind is OpKind.GET)
        assert 380 <= inserts <= 620
        assert 280 <= gets <= 520

    def test_first_op_is_insert(self):
        assert MixedWorkload(seed=0).next_op().kind is OpKind.INSERT

    def test_exclusion_respected(self):
        wl = MixedWorkload(seed=4, exclude=lambda k: k % 7 == 0)
        for op in wl.ops(300):
            assert op.key % 7 != 0

    def test_gets_and_deletes_target_inserted_keys(self):
        wl = MixedWorkload(seed=6)
        seen = set()
        for op in wl.ops(300):
            if op.kind is OpKind.INSERT:
                seen.add(op.key)
            elif op.kind is OpKind.GET:
                assert op.key in seen
            else:
                assert op.key in seen
                seen.discard(op.key)


class TestYCSB:
    def test_zipf_prefers_low_ranks(self):
        keys = zipf_keys(5000, keyspace=100, theta=0.9, seed=1)
        low = sum(1 for k in keys if k < 10)
        high = sum(1 for k in keys if k >= 90)
        assert low > high * 3

    def test_zipf_uniform_when_theta_zero(self):
        keys = zipf_keys(5000, keyspace=10, theta=0.0, seed=1)
        counts = [keys.count(i) for i in range(10)]
        assert max(counts) < 2.2 * min(counts)

    def test_load_phase_covers_keyspace(self):
        wl = YCSBWorkload(seed=0, keyspace=32)
        keys = {op.key for op in wl.load_ops()}
        assert keys == set(range(32))

    def test_run_phase_mix(self):
        wl = YCSBWorkload(seed=0, keyspace=64, read_ratio=0.5)
        ops = list(wl.run_ops(1000))
        reads = sum(1 for o in ops if o.kind is OpKind.GET)
        assert 380 <= reads <= 620
        assert all(0 <= o.key < 64 for o in ops)

    def test_deterministic(self):
        a = list(YCSBWorkload(seed=9, keyspace=16).run_ops(50))
        b = list(YCSBWorkload(seed=9, keyspace=16).run_ops(50))
        assert a == b
