"""Tests for on-disk artifact round-trips and offline mitigation."""

from repro.detector.monitor import Detector
from repro.instrument.artifacts import (
    load_checkpoint_log,
    load_trace,
    save_checkpoint_log,
    save_trace,
)
from repro.instrument.guids import GuidMap
from repro.instrument.tracer import PMTrace
from repro.reactor.plan import compute_plan
from repro.reactor.revert import Reverter
from repro.systems.memcached import MemcachedAdapter


def test_trace_roundtrip(tmp_path):
    trace = PMTrace()
    trace.record("g1", 100)
    trace.record("g2", 200)
    path = str(tmp_path / "trace.json")
    assert save_trace(trace, path) == 2
    loaded = load_trace(path)
    assert loaded.records == trace.records
    assert loaded.addresses_for_guid("g1") == {100}


def test_checkpoint_log_roundtrip(tmp_path):
    mc = MemcachedAdapter()
    mc.start()
    for k in range(25):
        mc.insert(k, k)
    mc.delete(3)
    path = str(tmp_path / "ckpt.json")
    save_checkpoint_log(mc.ckpt.log, path)
    loaded = load_checkpoint_log(path)
    original = mc.ckpt.log
    assert loaded.max_seq() == original.max_seq()
    assert loaded.total_updates == original.total_updates
    assert set(loaded.entries) == set(original.entries)
    some_addr = next(iter(original.entries))
    assert (
        [v.seq for v in loaded.entries[some_addr].versions]
        == [v.seq for v in original.entries[some_addr].versions]
    )
    assert loaded.live_unfreed_allocs() == original.live_unfreed_allocs()
    assert loaded.tx_members == original.tx_members


def test_offline_mitigation_from_saved_artifacts(tmp_path):
    """The reactor can run against artifacts written before the failure —
    the paper's cross-process workflow."""
    mc = MemcachedAdapter()
    mc.start()
    for k in range(40):
        mc.insert(k, 900_000_000 + k)
    # poison (f1) and capture the artifacts, as the running system would
    victim = 5
    while mc.call("mc_refcount", mc.root, victim) != 0:
        mc.lookup(victim)
    mc.reap()
    mc.insert(victim + (1 << 20), 1)
    guid_path = str(tmp_path / "guids.json")
    trace_path = str(tmp_path / "trace.json")
    log_path = str(tmp_path / "ckpt.json")
    mc.guid_map.save(guid_path)
    save_trace(mc.trace, trace_path)
    save_checkpoint_log(mc.ckpt.log, log_path)

    detector = Detector()
    probe = victim + (1 << 21)
    outcome = detector.observe(mc.machine, lambda: mc.lookup(probe))
    assert not outcome.ok

    # the reactor reloads everything from disk
    guid_map = GuidMap.load(guid_path)
    trace = load_trace(trace_path)
    log = load_checkpoint_log(log_path)
    plan = compute_plan(mc.analysis, guid_map, trace, log, outcome.fault.iid)
    assert not plan.empty

    def reexec():
        mc.restart()
        return detector.observe(
            mc.machine, lambda: (mc.recover(), mc.lookup(probe))
        )

    reverter = Reverter(log, mc.pool, mc.allocator, reexec=reexec)
    result = reverter.mitigate_purge(plan)
    assert result.recovered
