"""Tests for the consistent-hash ring (distributed placement layer)."""

import pytest

from repro.distributed.ring import HashRing


class TestPlacement:
    def test_deterministic_across_instances(self):
        r1 = HashRing(range(5), vnodes=32, seed=7)
        r2 = HashRing(range(5), vnodes=32, seed=7)
        for key in range(200):
            assert r1.primary_for(key) == r2.primary_for(key)
            assert r1.preference_list(key) == r2.preference_list(key)

    def test_seed_changes_placement(self):
        r1 = HashRing(range(5), seed=0)
        r2 = HashRing(range(5), seed=1)
        assert any(
            r1.primary_for(k) != r2.primary_for(k) for k in range(200)
        )

    def test_every_node_owns_keys(self):
        ring = HashRing(range(4))
        owners = {ring.primary_for(k) for k in range(400)}
        assert owners == {0, 1, 2, 3}

    def test_balance_is_roughly_even(self):
        ring = HashRing(range(4), vnodes=64)
        counts = {n: 0 for n in range(4)}
        for key in range(4000):
            counts[ring.primary_for(key)] += 1
        # virtual nodes keep the spread within a loose factor of fair
        assert min(counts.values()) > 4000 / 4 / 3
        assert max(counts.values()) < 4000 / 4 * 3

    def test_preference_list_covers_all_nodes_once(self):
        ring = HashRing(range(5))
        for key in (0, 17, 123456):
            pl = ring.preference_list(key)
            assert sorted(pl) == [0, 1, 2, 3, 4]

    def test_empty_ring(self):
        ring = HashRing([])
        assert ring.preference_list(1) == []
        assert ring.primary_for(1) is None
        assert ring.replica_set(1, 2) == []


class TestMembership:
    def test_join_remaps_only_a_fraction(self):
        before = HashRing(range(4), vnodes=64)
        after = HashRing(range(4), vnodes=64)
        after.add_node(4)
        keys = range(4000)
        moved = sum(
            1 for k in keys if before.primary_for(k) != after.primary_for(k)
        )
        # the new node takes ~1/5 of the space; modulo routing would
        # have remapped ~4/5 of all keys
        assert moved < len(keys) * 0.4
        # and everything that moved, moved TO the new node
        for k in keys:
            if before.primary_for(k) != after.primary_for(k):
                assert after.primary_for(k) == 4

    def test_leave_remaps_only_the_leavers_keys(self):
        before = HashRing(range(5), vnodes=64)
        after = HashRing(range(5), vnodes=64)
        after.remove_node(2)
        for k in range(2000):
            if before.primary_for(k) != 2:
                assert after.primary_for(k) == before.primary_for(k)
            else:
                assert after.primary_for(k) != 2

    def test_add_is_idempotent(self):
        ring = HashRing(range(3))
        points = list(ring._points)
        ring.add_node(1)
        assert ring._points == points


class TestStatus:
    def test_mark_down_promotes_next_preference_node(self):
        ring = HashRing(range(3))
        key = next(k for k in range(1000) if ring.primary_for(k) == 0)
        pl = ring.preference_list(key)
        ring.mark_down(0)
        assert ring.primary_for(key) == pl[1]
        ring.mark_up(0)
        assert ring.primary_for(key) == 0

    def test_down_node_never_in_replica_set(self):
        ring = HashRing(range(4))
        ring.mark_down(1)
        for key in range(300):
            assert 1 not in ring.replica_set(key, 3)

    def test_all_down_returns_none(self):
        ring = HashRing(range(2))
        ring.mark_down(0)
        ring.mark_down(1)
        assert ring.primary_for(5) is None
        assert ring.replica_set(5, 2) == []

    def test_demoted_node_serves_as_replica_not_primary(self):
        ring = HashRing(range(3))
        key = next(k for k in range(1000) if ring.primary_for(k) == 0)
        ring.demote(0)
        assert ring.primary_for(key) != 0
        assert 0 in ring.replica_set(key, 3)
        ring.undemote(0)
        assert ring.primary_for(key) == 0

    def test_demoted_fronts_reads_when_no_better_candidate(self):
        ring = HashRing(range(2))
        ring.demote(0)
        ring.demote(1)
        assert ring.primary_for(3) is not None

    def test_whatif_down_set_for_resync_eligibility(self):
        # catch-up asks who serves a key once the healing node is back
        # up, without flipping the real flag
        ring = HashRing(range(3))
        key = next(k for k in range(1000) if ring.primary_for(k) == 0)
        ring.mark_down(0)
        assert 0 not in ring.replica_set(key, 2)
        whatif = ring.down - {0}
        assert 0 in ring.replica_set(key, 2, down=whatif)
        assert ring.is_down(0)  # the real flag never moved

    def test_replica_set_size_bounded_by_live_nodes(self):
        ring = HashRing(range(3))
        ring.mark_down(2)
        for key in range(100):
            rs = ring.replica_set(key, 3)
            assert len(rs) == 2 and 2 not in rs
