"""Tests for reaching definitions and def-use chains."""

from repro.analysis.defuse import compute_defuse, is_param_def, param_def_id
from repro.lang.compiler import compile_module


def _defuse(src, fname="f"):
    module = compile_module("t", src)
    func = module.functions[fname]
    return module, func, compute_defuse(func)


def test_param_reaches_first_use():
    module, func, du = _defuse("def f(a):\n    return a + 1\n")
    binop = next(i for i in func.instructions() if i.op == "binop")
    defs = du.reaching_defs(binop.iid, "a")
    assert defs == {param_def_id(0)}
    assert all(is_param_def(d) for d in defs)


def test_straight_line_single_def():
    src = "def f():\n    x = 1\n    y = x + 1\n    return y\n"
    module, func, du = _defuse(src)
    use = next(i for i in func.instructions() if i.op == "binop")
    (def_id,) = du.reaching_defs(use.iid, "x")
    assert module.instr(def_id).op == "mov"


def test_branch_merges_definitions():
    src = (
        "def f(c):\n"
        "    x = 1\n"
        "    if c:\n        x = 2\n"
        "    return x + 0\n"
    )
    module, func, du = _defuse(src)
    use = [i for i in func.instructions() if i.op == "binop" and i.args[0] == "+"][-1]
    defs = du.reaching_defs(use.iid, "x")
    assert len(defs) == 2  # both assignments reach the merge


def test_redefinition_kills_previous():
    src = "def f():\n    x = 1\n    x = 2\n    return x + 0\n"
    module, func, du = _defuse(src)
    use = [i for i in func.instructions() if i.op == "binop"][-1]
    (def_id,) = du.reaching_defs(use.iid, "x")
    # the reaching def moves the constant 2
    mov = module.instr(def_id)
    const = module.instr(
        next(i.iid for i in func.instructions() if i.iid < def_id and i.dst == mov.args[0])
    )
    assert const.args[0] == 2


def test_loop_carried_definition_reaches_header():
    src = (
        "def f(n):\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        i = i + 1\n"
        "    return i\n"
    )
    module, func, du = _defuse(src)
    # the loop condition's use of i sees both the init and the increment
    cond = next(
        i for i in func.instructions() if i.op == "binop" and i.args[0] == "<"
    )
    defs = du.reaching_defs(cond.iid, "i")
    assert len(defs) == 2
