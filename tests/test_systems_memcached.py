"""Tests for the mini-Memcached target system and its seeded bugs."""

import pytest

from repro.errors import HangTrap, SegfaultTrap, Trap
from repro.systems.memcached import MemcachedAdapter
from repro.workloads.generators import VALUE_BASE


@pytest.fixture
def mc():
    adapter = MemcachedAdapter()
    adapter.start()
    return adapter


class TestBasicOps:
    def test_set_get(self, mc):
        mc.insert(1, 100)
        assert mc.lookup(1) == 100
        assert mc.lookup(2) == -1

    def test_update_in_place(self, mc):
        mc.insert(1, 100)
        mc.insert(1, 200)
        assert mc.lookup(1) == 200
        assert mc.count_items() == 1

    def test_delete(self, mc):
        mc.insert(1, 100)
        assert mc.delete(1) == 1
        assert mc.lookup(1) == -1
        assert mc.delete(1) == 0
        assert mc.count_items() == 0

    def test_append_within_capacity(self, mc):
        mc.insert(1, 100)
        assert mc.append(1, 2, 7) == 1
        assert mc.append(1, 10, 7) == -1  # over capacity, honest reject

    def test_many_keys_and_consistency(self, mc):
        for k in range(120):
            mc.insert(k, VALUE_BASE + k)
        assert mc.count_items() == 120
        assert mc.consistency_violations() == []
        assert all(mc.lookup(k) == VALUE_BASE + k for k in range(120))

    def test_expansion_preserves_items(self, mc):
        for k in range(150):  # crosses the 2x64 threshold
            mc.insert(k, k)
        assert mc._root_field("m_htsize") == 128
        assert all(mc.lookup(k) == k for k in range(150))
        assert mc.consistency_violations() == []


class TestRestartRecovery:
    def test_items_survive_restart(self, mc):
        for k in range(20):
            mc.insert(k, k * 2)
        mc.restart()
        mc.recover()
        assert all(mc.lookup(k) == k * 2 for k in range(20))

    def test_recovery_recomputes_counters(self, mc):
        for k in range(10):
            mc.insert(k, k)
        # corrupt the persisted counter out-of-band
        addr = mc.root + mc.STRUCTS["mroot"].index("m_count")
        mc.pool.durable_write(addr, 999)
        mc.restart()
        mc.recover()
        assert mc.count_items() == 10
        assert mc.consistency_violations() == []

    def test_recovery_returns_touched_addresses(self, mc):
        mc.insert(1, 1)
        mc.restart()
        touched = mc.recover()
        assert touched, "recovery must trace PM accesses"


class TestSeededBugs:
    def test_f1_refcount_wrap_builds_self_loop(self, mc):
        for k in range(10):
            mc.insert(k, k)
        victim = 3
        while mc.call("mc_refcount", mc.root, victim) != 0:
            mc.lookup(victim)
        mc.reap()
        poison = victim + (1 << 20)
        mc.insert(poison, 1)
        with pytest.raises(HangTrap):
            mc.lookup(victim + (1 << 21))  # absent key, same bucket
        # the corruption is persistent: recurs after restart
        mc.restart()
        with pytest.raises(Trap):
            mc.recover()

    def test_f2_flush_all_lazily_expires_valid_items(self, mc):
        mc.insert(1, 10)
        now = mc._root_field("m_time")
        mc.flush_all(now + 1000)
        assert mc.lookup(1) == -1  # wrongly expired on access
        assert mc.count_items() == 0

    def test_f4_append_overflow_corrupts_neighbours(self, mc):
        for k in range(40):
            mc.insert(k, 900_000_000 + k)
        assert mc.append(3, 257, 987_654_321) == 1  # wrapped check passes
        with pytest.raises(SegfaultTrap):
            for k in range(40):
                mc.lookup(k)

    def test_f5_bitflip_redirects_lookups(self, mc):
        for k in range(10):
            mc.insert(k, k)
        addr = mc.root + mc.STRUCTS["mroot"].index("m_rehashing")
        mc.pool.durable_write(addr, 1)
        mc.restart()
        assert mc.lookup(3) == -1  # all lookups miss via the null old table

    def test_expected_item_words_tracks_count(self, mc):
        before = mc.expected_item_words()
        mc.insert(1, 1)
        assert mc.expected_item_words() == before + mc.ITEM_WORDS
