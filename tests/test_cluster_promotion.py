"""Tests for the shard supervisor: promotion, crash-safe heal phases,
serving through a sick shard's mitigation, and health accounting."""

import threading
from types import SimpleNamespace

import pytest

from repro import faultinject
from repro.detector.monitor import Detector
from repro.distributed.cluster import Cluster, ClusterClient
from repro.distributed.shardmgr import ShardManager
from repro.faultinject import InjectionPlan, InjectionSpec
from repro.faults.registry import scenario_by_id
from repro.harness.experiment import ExperimentContext, MitigationRun
from repro.reactor.server import WorkerGate
from repro.systems.common import ABSENT

_ClusterImpl = Cluster


def Cluster(*args, **kwargs):  # noqa: N802 — drop-in for the class
    """These tests assert re-execution resync counts (resync_replayed
    equals the node's oplog share), so they pin the oracle engine; the
    delta engine's rebase-based heal is covered by
    test_delta_replication.py."""
    kwargs.setdefault("replication_engine", "reexec")
    return _ClusterImpl(*args, **kwargs)


def _wedged_cluster(seed=0, n_nodes=3, replication=2, warm=40):
    """A cluster with node 0 wedged by the memcached f1 refcount bug,
    detected and confirmed; ready for the promotion protocol."""
    scenario = scenario_by_id("f1")
    cluster = Cluster(
        n_nodes=n_nodes, n_clients=2, seed=seed, replication=replication
    )
    a = ClusterClient(cluster, 0)
    for key in range(warm):
        a.insert(key, 500 + key)
    node0 = cluster.nodes[0]
    ctx = ExperimentContext(node0, scenario, seed)
    # the node's logical truth is the cluster's per-node oracle; the
    # scenario's node-local trigger traffic maintains the same dict
    ctx.oracle = cluster.oracles[0]
    scenario.trigger(ctx)
    detector = Detector()
    outcome = detector.observe(node0.machine, lambda: scenario.manifest(ctx))
    assert not outcome.ok and outcome.fault is not None
    return cluster, ctx, scenario, detector, outcome


@pytest.fixture(scope="module")
def healed():
    """One full trip through the promotion protocol, with a crash
    injected at the ``cluster.promote`` site and a serving window
    between promotion and mitigation.  Module-scoped: the assertions
    below are all post-heal reads."""
    cluster, ctx, scenario, detector, outcome = _wedged_cluster()
    b = ClusterClient(cluster, 1)
    mgr = ShardManager(cluster, solution="arthas", seed=0)
    mgr.note_verdict(0)
    # keys whose pre-fault primary is node 0: written during the window,
    # they must fail over now and land back on node 0 via re-sync
    arc_keys = cluster.keys_for_node(0, 3, start=1000)
    plan = InjectionPlan([InjectionSpec("cluster.promote", 1, "crash")])
    window = SimpleNamespace(
        reads=[], writes=[], routed=[], down_during_window=False
    )

    def serve_between():
        window.down_during_window = cluster.is_down(0)
        for key in range(6):  # healthy-shard reads keep flowing
            window.reads.append(b.lookup(key))
        for key in arc_keys:  # the sick arc accepts writes via replicas
            rec = b.insert(key, 9000 + key)
            window.writes.append(rec)
            window.routed.append(rec.node)

    report = mgr.heal(
        0, ctx, scenario, outcome, detector,
        inject_plan=plan, serve_between=serve_between,
    )
    return SimpleNamespace(
        cluster=cluster, mgr=mgr, report=report, plan=plan,
        window=window, arc_keys=arc_keys,
    )


class TestHeal:
    def test_happy_path_recovers_and_demotes(self, healed):
        rep = healed.report
        assert rep.promoted and rep.recovered and rep.demoted
        assert rep.recovered_by != ""
        assert rep.phases == [
            "promote", "mitigate", "rebuild", "cascade", "resync", "handoff"
        ]
        # mitigation succeeded, so the re-replication rung was a no-op
        assert not healed.mgr.journal(0).completed["rebuild"]["rebuilt"]

    def test_promote_crash_converged_on_retry(self, healed):
        # the injected second fault at cluster.promote was retried
        assert healed.plan.all_fired
        assert healed.report.crash_retries >= 1

    def test_serving_continued_while_down(self, healed):
        w = healed.window
        assert w.down_during_window
        # healthy-shard reads all answered during the window
        assert w.reads == [500 + k for k in range(6)]
        # the sick arc's writes failed over to live replicas
        assert all(node != 0 for node in w.routed)

    def test_resync_replays_missed_tail_onto_healed_node(self, healed):
        node0 = healed.cluster.nodes[0]
        replayed = [op for op in healed.window.writes if 0 in op.spans]
        assert replayed, "no window write was re-synced onto node 0"
        for op in replayed:
            assert node0.lookup(op.key) == op.value
        assert healed.report.resync_replayed >= len(replayed)

    def test_sticky_demotion_shapes_routing(self, healed):
        ring = healed.cluster.ring
        assert 0 in ring.demoted and not ring.is_down(0)
        for key in healed.arc_keys:
            assert healed.cluster.node_for(key) != 0
            # ...but the healed node is back on replica duty
            assert 0 in healed.cluster.replica_nodes_for(key)

    def test_health_scores(self, healed):
        table = healed.mgr.health_table()
        sick = table[0]
        assert sick["status"] == "demoted"
        assert sick["verdicts"] == 1 and sick["mitigations"] == 1
        assert 0 < sick["score"] < 100
        for row in table[1:]:
            assert row["status"] == "serving" and row["score"] == 100

    def test_journaled_phases_reenter_as_noops(self, healed):
        # a supervisor retrying after a crash must not redo work
        assert healed.mgr.promote(0) == 0
        again = healed.mgr.resync(0)
        assert again.resync_replayed == healed.report.resync_replayed
        journal = healed.mgr.journal(0)
        assert journal.phases_done() == list(journal.PHASES)


def _promoted_cluster_without_fault(seed=3):
    """Promotion + serving window, with the mitigate/cascade phases
    journaled as already-done — isolates the resync/handoff machinery
    (and its crash sites) from the expensive ladder."""
    cluster = Cluster(n_nodes=3, n_clients=2, seed=seed, replication=2)
    a = ClusterClient(cluster, 0)
    for key in range(30):
        a.insert(key, 500 + key)
    mgr = ShardManager(cluster, seed=seed)
    arc_keys = cluster.keys_for_node(0, 4, start=1000)
    mgr.promote(0)
    writes = [a.insert(k, 7000 + k) for k in arc_keys]
    journal = mgr.journal(0)
    journal.complete(
        "mitigate", run=MitigationRun(solution="arthas", recovered=True)
    )
    journal.complete("cascade", discarded=[], cascaded=[], rounds=0)
    return cluster, mgr, writes


class TestCrashAtHealSites:
    @pytest.mark.parametrize("occurrence", [1, 2])
    def test_resync_crash_converges(self, occurrence):
        cluster, mgr, writes = _promoted_cluster_without_fault()
        plan = InjectionPlan(
            [InjectionSpec("cluster.resync", occurrence, "crash")]
        )
        with faultinject.activate(plan):
            rep = mgr.resync(0)
        assert plan.all_fired and rep.crash_retries >= 1
        assert rep.demoted and not cluster.is_down(0)
        # the replay converged: every window write the healed node now
        # participates in is present on its pool, exactly once
        node0 = cluster.nodes[0]
        replayed = [op for op in writes if 0 in op.spans]
        assert replayed
        for op in replayed:
            assert node0.lookup(op.key) == op.value

    def test_handoff_crash_converges(self):
        cluster, mgr, writes = _promoted_cluster_without_fault(seed=4)
        plan = InjectionPlan([InjectionSpec("cluster.handoff", 1, "crash")])
        with faultinject.activate(plan):
            rep = mgr.resync(0)
        assert plan.all_fired and rep.crash_retries >= 1
        assert rep.demoted
        assert 0 in cluster.ring.demoted and not cluster.is_down(0)

    def test_promote_crash_converges(self):
        cluster = Cluster(n_nodes=2, n_clients=1, seed=5)
        ClusterClient(cluster, 0).insert(0, 1)
        mgr = ShardManager(cluster)
        plan = InjectionPlan([InjectionSpec("cluster.promote", 1, "crash")])
        with faultinject.activate(plan):
            retries = mgr.promote(0)
        assert plan.all_fired and retries >= 1
        assert cluster.is_down(0)
        assert mgr.journal(0).done("promote")


class TestRebuild:
    def test_failed_ladder_rebuilds_from_replicas(self):
        """When mitigation cannot repair the pool, the supervisor
        abandons it and resync re-replicates the node's whole oplog
        share from the surviving replicas."""
        cluster = Cluster(n_nodes=3, n_clients=2, seed=8, replication=2)
        a = ClusterClient(cluster, 0)
        for key in range(30):
            a.insert(key, 500 + key)
        mgr = ShardManager(cluster, seed=8)
        mgr.promote(0)
        old_pool = cluster.nodes[0].pool
        share = [op for op in cluster.oplog if 0 in op.spans]
        assert share
        journal = mgr.journal(0)
        journal.complete(
            "mitigate", run=MitigationRun(solution="arthas", recovered=False)
        )
        assert mgr.rebuild(0) is True
        assert cluster.nodes[0].pool is not old_pool
        journal.complete("cascade", discarded=[], cascaded=[], rounds=0)
        rep = mgr.resync(0)
        # the fresh pool re-learned every op of the node's replica share
        assert rep.resync_replayed == len(share)
        node0 = cluster.nodes[0]
        for op in share:
            assert 0 in op.spans
            assert node0.lookup(op.key) == op.value
        assert rep.demoted and not cluster.is_down(0)

    def test_rebuild_is_noop_after_successful_mitigation(self):
        cluster = Cluster(n_nodes=3, n_clients=2, seed=9, replication=2)
        ClusterClient(cluster, 0).insert(0, 1)
        mgr = ShardManager(cluster, seed=9)
        mgr.promote(0)
        pool = cluster.nodes[0].pool
        mgr.journal(0).complete(
            "mitigate", run=MitigationRun(solution="arthas", recovered=True)
        )
        assert mgr.rebuild(0) is False
        assert cluster.nodes[0].pool is pool
        # journaled: re-entry gives the same answer without a second look
        assert mgr.rebuild(0) is False


class TestServeDuringMitigation:
    def test_reads_interleave_with_mitigation_chunks(self):
        """The ISSUE's serve-during-mitigation check: a serving thread
        answers healthy-shard and promoted-primary reads between the
        sick node's mitigation chunks (WorkerGate turnstile)."""
        cluster, ctx, scenario, detector, outcome = _wedged_cluster(seed=1)
        b = ClusterClient(cluster, 1)
        mgr = ShardManager(cluster, seed=1)
        mgr.promote(0)
        gate = WorkerGate()
        result = {}

        def work():
            result["run"] = mgr.mitigate(
                0, ctx, scenario, outcome, detector, gate=gate
            )

        worker = threading.Thread(target=work)
        worker.start()
        served = []
        while worker.is_alive():
            if not gate.wait_parked(timeout=0.5):
                continue
            # mid-mitigation serving turn: every shard still answers
            for key in range(3):
                served.append(b.lookup(key))
            gate.resume()
        gate.close()
        worker.join()
        assert result["run"].recovered
        assert gate.checkpoints >= 3
        assert len(served) >= 9
        assert all(v == 500 + (i % 3) for i, v in enumerate(served))


class TestTwoNodeSequentialHeal:
    def test_second_shard_heals_while_first_is_demoted(self):
        """A second hard fault after a completed heal: the demoted
        first node keeps replica duty while the second runs the full
        protocol; the cluster ends with both demoted and serving."""
        cluster, mgr, _ = (*_promoted_cluster_without_fault(seed=6),)
        mgr.resync(0)
        assert 0 in cluster.ring.demoted
        # now node 1 goes down (journal-only heal: the machinery under
        # test is ring state + resync under an existing demotion)
        probe = cluster.keys_for_node(1, 2, start=2000)
        mgr.promote(1)
        a = ClusterClient(cluster, 0)
        recs = [a.insert(k, 4000 + k) for k in probe]
        assert all(rec.node != 1 for rec in recs)
        journal = mgr.journal(1)
        journal.complete(
            "mitigate", run=MitigationRun(solution="arthas", recovered=True)
        )
        journal.complete("cascade", discarded=[], cascaded=[], rounds=0)
        rep = mgr.resync(1)
        assert rep.demoted
        assert cluster.ring.demoted == {0, 1}
        assert not cluster.ring.down
        # with every original candidate demoted the ring still serves
        for k in probe:
            assert a.lookup(k) == 4000 + k
